// Property tests for the scheduling core's incremental load accounting
// (src/sched/core/load_account.h): after ANY sequence of push / pop /
// complete / fail / mean-update / drift-reset operations, the per-worker
// queued charge must be bit-identical (in integer ticks) to an O(queue)
// rescan that prices every queued task at its current profile mean (or its
// frozen push-time charge when the mean is unknown). The busy-tracking
// policies are additionally driven end-to-end with the debug cross-check
// armed, so the comparison also runs inside estimated_busy() itself.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "machine/presets.h"
#include "sched/affinity_scheduler.h"
#include "sched/core/load_account.h"
#include "sched/dep_aware_scheduler.h"
#include "sched/locality_versioning_scheduler.h"
#include "sched/sufferage_scheduler.h"
#include "sched/versioning_scheduler.h"

namespace versa {
namespace {

using core::LoadAccount;
using core::PriceKey;
using core::Ticks;
using core::to_seconds;
using core::to_ticks;

// --- direct LoadAccount semantics ----------------------------------------

TEST(LoadAccount, TickConversionRoundTrips) {
  for (Ticks t : {Ticks{0}, Ticks{1}, Ticks{999}, Ticks{5'000'000'000}}) {
    EXPECT_EQ(to_ticks(to_seconds(t)), t);
  }
}

TEST(LoadAccount, PushPopSettleMoveCharges) {
  LoadAccount account;
  account.reset(make_minotauro_node(2, 1));
  const PriceKey key{0, 0, 100};
  account.on_push(7, key, 0, 2e-3);
  EXPECT_EQ(account.queued_ticks(0), to_ticks(2e-3));
  EXPECT_EQ(account.running_ticks(0), 0);
  EXPECT_EQ(account.queued_count(0), 1u);
  account.on_pop(7, 0);
  EXPECT_EQ(account.queued_ticks(0), 0);
  EXPECT_EQ(account.running_ticks(0), to_ticks(2e-3));
  account.on_settle(0);
  EXPECT_EQ(account.busy_ticks(0), 0);
  EXPECT_EQ(account.tracked_tasks(), 0u);
}

TEST(LoadAccount, RepriceMovesQueuedButNotRunning) {
  LoadAccount account;
  account.reset(make_minotauro_node(2, 1));
  const PriceKey key{0, 0, 100};
  account.on_push(1, key, 0, 1e-3);
  account.on_push(2, key, 0, 1e-3);
  account.on_pop(1, 0);  // running slot frozen at 1 ms
  account.reprice(key, 5e-3);
  EXPECT_EQ(account.queued_ticks(0), to_ticks(5e-3));
  EXPECT_EQ(account.running_ticks(0), to_ticks(1e-3));
  // Forgetting the mean reverts the queued task to its push-time charge.
  account.reprice(key, std::nullopt);
  EXPECT_EQ(account.queued_ticks(0), to_ticks(1e-3));
  // A push under a known price charges the price, not the estimate.
  account.reprice(key, 3e-3);
  account.on_push(3, key, 0, 9e-3);
  EXPECT_EQ(account.queued_ticks(0), to_ticks(3e-3) * 2);
}

TEST(LoadAccount, StealMovesChargeBetweenWorkers) {
  LoadAccount account;
  account.reset(make_minotauro_node(2, 1));
  const PriceKey key{0, 0, 100};
  account.on_push(1, key, 0, 4e-3);
  account.on_steal(1, 0, 1);
  EXPECT_EQ(account.queued_ticks(0), 0);
  EXPECT_EQ(account.queued_ticks(1), to_ticks(4e-3));
  // A reprice after the steal patches the thief, not the victim.
  account.reprice(key, 6e-3);
  EXPECT_EQ(account.queued_ticks(0), 0);
  EXPECT_EQ(account.queued_ticks(1), to_ticks(6e-3));
  account.on_pop(1, 1);
  EXPECT_EQ(account.running_ticks(1), to_ticks(6e-3));
}

TEST(LoadAccount, IndexOrdersByBusyThenCountThenId) {
  LoadAccount account;
  account.reset(make_minotauro_node(3, 2));  // workers 0-2 smp, 3-4 cuda
  const PriceKey key{0, 0, 100};
  account.on_push(1, key, 1, 2e-3);
  account.on_push(2, key, 2, 1e-3);
  EXPECT_EQ(account.least_busy(DeviceKind::kSmp), 0u);
  account.on_push(3, key, 0, 1e-3);
  // Workers 0 and 2 tie on busy; equal queue counts break the tie by id.
  EXPECT_EQ(account.least_busy(DeviceKind::kSmp), 0u);
  account.on_push(4, key, 0, 0.0);  // same busy, longer queue -> 2 wins
  EXPECT_EQ(account.least_busy(DeviceKind::kSmp), 2u);
  std::vector<WorkerId> order;
  for (const LoadAccount::IndexKey& k :
       account.workers_by_busy(DeviceKind::kSmp)) {
    order.push_back(std::get<2>(k));
  }
  EXPECT_EQ(order, (std::vector<WorkerId>{2, 0, 1}));
  // GPUs live in their own index.
  EXPECT_EQ(account.least_busy(DeviceKind::kCuda), 3u);
}

// Randomized op-sequence check against an independent per-task reference:
// every queued task is priced at the key's latest reprice mean when one is
// known, else its push-time charge — summed per worker in exact ticks.
TEST(LoadAccount, RandomOpsMatchRescanReference) {
  Rng rng(20260805);
  const Machine machine = make_minotauro_node(3, 2);
  LoadAccount account;
  account.reset(machine);

  struct RefTask {
    PriceKey key;
    WorkerId worker;
    Ticks frozen;
  };
  using FlatKey = std::tuple<TaskTypeId, VersionId, std::uint64_t>;
  auto flat = [](const PriceKey& k) {
    return FlatKey{k.type, k.version, k.group};
  };
  std::map<TaskId, RefTask> queued;
  std::map<FlatKey, std::optional<Ticks>> prices;
  TaskId next_task = 1;

  auto random_key = [&] {
    return PriceKey{static_cast<TaskTypeId>(rng.next_below(3)),
                    static_cast<VersionId>(rng.next_below(2)),
                    rng.next_below(2) == 0 ? 100u : 200u};
  };
  auto rescan = [&](WorkerId w) {
    Ticks sum = 0;
    for (const auto& [id, ref] : queued) {
      if (ref.worker != w) continue;
      const std::optional<Ticks>& price = prices[flat(ref.key)];
      sum += price.has_value() ? *price : ref.frozen;
    }
    return sum;
  };

  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 45 || queued.empty()) {  // push
      const PriceKey key = random_key();
      const WorkerId w =
          static_cast<WorkerId>(rng.next_below(machine.worker_count()));
      const Duration estimate = rng.uniform(0.0, 1e-2);
      const Duration charge = account.on_push(next_task, key, w, estimate);
      const std::optional<Ticks>& price = prices[flat(key)];
      queued[next_task] =
          RefTask{key, w, price.has_value() ? *price : to_ticks(estimate)};
      EXPECT_EQ(to_ticks(charge), queued[next_task].frozen);
      ++next_task;
    } else if (op < 65) {  // pop + settle (completion or transient failure)
      auto it = queued.begin();
      std::advance(it, static_cast<long>(rng.next_below(queued.size())));
      account.on_pop(it->first, it->second.worker);
      account.on_settle(it->second.worker);
      queued.erase(it);
    } else if (op < 80) {  // steal to a random same-kind worker
      auto it = queued.begin();
      std::advance(it, static_cast<long>(rng.next_below(queued.size())));
      const DeviceKind kind = machine.worker(it->second.worker).kind;
      std::vector<WorkerId> kin;
      for (const WorkerDesc& w : machine.workers()) {
        if (w.kind == kind && w.id != it->second.worker) kin.push_back(w.id);
      }
      if (!kin.empty()) {
        const WorkerId thief = kin[rng.next_below(kin.size())];
        account.on_steal(it->first, it->second.worker, thief);
        it->second.worker = thief;
      }
    } else {  // reprice (mean moved, or forgotten on a drift reset)
      const PriceKey key = random_key();
      if (rng.next_below(5) == 0) {
        account.reprice(key, std::nullopt);
        prices[flat(key)] = std::nullopt;
      } else {
        const Duration mean = rng.uniform(1e-6, 1e-2);
        account.reprice(key, mean);
        prices[flat(key)] = to_ticks(mean);
      }
    }
    for (const WorkerDesc& w : machine.workers()) {
      ASSERT_EQ(account.queued_ticks(w.id), rescan(w.id))
          << "diverged at step " << step << " on worker " << w.id;
    }
  }
}

// --- end-to-end policy check ----------------------------------------------

/// Minimal SchedulerContext for driving policies without a full runtime.
class AccountTestContext : public SchedulerContext {
 public:
  explicit AccountTestContext(Machine machine)
      : machine_(std::move(machine)), directory_(machine_) {
    const TaskTypeId type_a = registry_.declare_task("a");
    registry_.add_version(type_a, DeviceKind::kSmp, "smp", nullptr, nullptr);
    registry_.add_version(type_a, DeviceKind::kCuda, "gpu", nullptr, nullptr);
    const TaskTypeId type_b = registry_.declare_task("b");
    registry_.add_version(type_b, DeviceKind::kSmp, "smp", nullptr, nullptr);
    registry_.add_version(type_b, DeviceKind::kCuda, "gpu", nullptr, nullptr);
    types_ = {type_a, type_b};
  }

  const Machine& machine() const override { return machine_; }
  const VersionRegistry& registry() const override { return registry_; }
  DataDirectory& directory() override { return directory_; }
  TaskGraph& graph() override { return graph_; }
  Time now() const override { return now_; }
  void task_assigned(TaskId, WorkerId) override {}

  VersionRegistry registry_;
  Machine machine_;
  DataDirectory directory_;
  TaskGraph graph_;
  Time now_ = 0.0;
  std::vector<TaskTypeId> types_;
};

/// Drive `sched` through a random submit / pop / complete / fail / drift
/// sequence. The debug cross-check compares the account to the rescan
/// reference inside every estimated_busy call; this harness additionally
/// keeps its own expected running charge so the queued + running total is
/// asserted at the gtest level too.
void run_random_workload(VersioningScheduler& sched, std::uint64_t seed) {
  AccountTestContext ctx(make_minotauro_node(4, 2));
  sched.set_debug_cross_check(true);
  sched.attach(ctx);
  Rng rng(seed);

  const WorkerId workers = static_cast<WorkerId>(ctx.machine_.worker_count());
  std::vector<TaskId> running(workers, kInvalidTask);
  std::vector<Ticks> running_charge(workers, 0);

  auto charge_of = [&](const Task& task) {
    const auto mean = sched.profile().mean(task.type, task.chosen_version,
                                           task.data_set_size);
    return to_ticks(mean.value_or(task.scheduler_estimate));
  };
  auto expected_busy = [&](WorkerId w) {
    Ticks sum = running_charge[w];
    for (TaskId id : sched.queued_tasks(w)) {
      sum += charge_of(ctx.graph_.task(id));
    }
    return sum;
  };
  auto check_all = [&] {
    for (WorkerId w = 0; w < workers; ++w) {
      // estimated_busy runs the internal cross-check; the assert adds the
      // running component on top.
      ASSERT_EQ(to_ticks(sched.estimated_busy(w)), expected_busy(w));
    }
  };

  for (int step = 0; step < 2000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 35) {  // submit a small ready wave
      const std::uint64_t count = 1 + rng.next_below(3);
      for (std::uint64_t i = 0; i < count; ++i) {
        const TaskTypeId type = ctx.types_[rng.next_below(ctx.types_.size())];
        const std::uint64_t size = rng.next_below(2) == 0 ? 100 : 200;
        Task& task = ctx.graph_.create_task(type, {}, size, "");
        task.state = TaskState::kReady;
        sched.task_ready(task);
      }
      sched.ready_batch_done();
    } else if (op < 65) {  // an idle worker asks for work
      const WorkerId w = static_cast<WorkerId>(rng.next_below(workers));
      if (running[w] == kInvalidTask) {
        const TaskId id = sched.pop_task(w);
        if (id != kInvalidTask) {
          Task& task = ctx.graph_.task(id);
          task.state = TaskState::kRunning;
          running[w] = id;
          running_charge[w] = charge_of(task);
        }
      }
    } else if (op < 85) {  // complete a running task (records a measurement)
      const WorkerId w = static_cast<WorkerId>(rng.next_below(workers));
      if (running[w] != kInvalidTask) {
        Task& task = ctx.graph_.task(running[w]);
        const Duration measured = rng.uniform(1e-4, 5e-3);
        ctx.now_ += measured;
        std::vector<TaskId> ready;
        ctx.graph_.mark_finished(task.id, ctx.now_, ready);
        sched.task_completed(task, w, measured);
        running[w] = kInvalidTask;
        running_charge[w] = 0;
      }
    } else if (op < 95) {  // transient failure: release and resubmit
      const WorkerId w = static_cast<WorkerId>(rng.next_below(workers));
      if (running[w] != kInvalidTask) {
        Task& task = ctx.graph_.task(running[w]);
        sched.task_failed(task, w);
        running[w] = kInvalidTask;
        running_charge[w] = 0;
        task.state = TaskState::kReady;
        sched.task_ready(task);
        sched.ready_batch_done();
      }
    } else {  // drift relearn: forget one version's history for a group
      const TaskTypeId type = ctx.types_[rng.next_below(ctx.types_.size())];
      const std::vector<VersionId>& versions = ctx.registry_.versions(type);
      const VersionId v = versions[rng.next_below(versions.size())];
      const std::uint64_t size = rng.next_below(2) == 0 ? 100 : 200;
      sched.mutable_profile().reset_version(type, v,
                                            sched.profile().group_key(size));
    }
    check_all();
  }
}

TEST(LoadAccountPolicy, VersioningMatchesRescan) {
  VersioningScheduler sched;
  run_random_workload(sched, 1);
}

TEST(LoadAccountPolicy, VersioningLocalityMatchesRescan) {
  LocalityVersioningScheduler sched;
  run_random_workload(sched, 2);
}

TEST(LoadAccountPolicy, VersioningFastestMatchesRescan) {
  VersioningScheduler sched;
  sched.set_fastest_executor_only(true);
  run_random_workload(sched, 3);
}

TEST(LoadAccountPolicy, SufferageMatchesRescan) {
  SufferageScheduler sched;
  run_random_workload(sched, 4);
}

/// Zero-estimate policies must stay at exactly zero busy through pushes,
/// steals, completions and failures.
template <typename Sched>
void run_zero_charge_workload(std::uint64_t seed) {
  Sched sched;
  AccountTestContext ctx(make_minotauro_node(4, 2));
  sched.attach(ctx);
  Rng rng(seed);
  const WorkerId workers = static_cast<WorkerId>(ctx.machine_.worker_count());
  std::vector<TaskId> running(workers, kInvalidTask);
  for (int step = 0; step < 1000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 40) {
      const TaskTypeId type = ctx.types_[rng.next_below(ctx.types_.size())];
      Task& task = ctx.graph_.create_task(type, {}, 100, "");
      task.state = TaskState::kReady;
      sched.task_ready(task);
      sched.ready_batch_done();
    } else if (op < 75) {
      // Pops on empty queues exercise the same-kind steal path.
      const WorkerId w = static_cast<WorkerId>(rng.next_below(workers));
      if (running[w] == kInvalidTask) {
        const TaskId id = sched.pop_task(w);
        if (id != kInvalidTask) {
          ctx.graph_.task(id).state = TaskState::kRunning;
          running[w] = id;
        }
      }
    } else {
      const WorkerId w = static_cast<WorkerId>(rng.next_below(workers));
      if (running[w] != kInvalidTask) {
        Task& task = ctx.graph_.task(running[w]);
        ctx.now_ += 1e-3;
        std::vector<TaskId> ready;
        ctx.graph_.mark_finished(task.id, ctx.now_, ready);
        sched.task_completed(task, w, 1e-3);
        running[w] = kInvalidTask;
      }
    }
    for (WorkerId w = 0; w < workers; ++w) {
      ASSERT_EQ(sched.estimated_busy(w), 0.0);
    }
  }
}

TEST(LoadAccountPolicy, AffinityStaysAtZeroBusy) {
  run_zero_charge_workload<AffinityScheduler>(5);
}

TEST(LoadAccountPolicy, DepAwareStaysAtZeroBusy) {
  run_zero_charge_workload<DepAwareScheduler>(6);
}

}  // namespace
}  // namespace versa
