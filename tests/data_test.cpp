// Unit tests for the data layer: directory coherence, transfer accounting
// in the paper's categories, capacity eviction, and the link-occupancy
// transfer engine.
#include <gtest/gtest.h>

#include "data/directory.h"
#include "data/transfer_engine.h"
#include "machine/presets.h"

namespace versa {
namespace {

class DirectoryTest : public ::testing::Test {
 protected:
  DirectoryTest() : machine_(make_minotauro_node(2, 2)), dir_(machine_) {}

  SpaceId gpu0() const { return machine_.worker(2).space; }
  SpaceId gpu1() const { return machine_.worker(3).space; }

  Machine machine_;
  DataDirectory dir_;
};

TEST_F(DirectoryTest, FreshRegionValidOnHostOnly) {
  const RegionId r = dir_.register_region("r", 1024);
  EXPECT_TRUE(dir_.is_valid_in(r, kHostSpace));
  EXPECT_FALSE(dir_.is_valid_in(r, gpu0()));
  EXPECT_EQ(dir_.dirty_space(r), kInvalidSpace);
}

TEST_F(DirectoryTest, ReadOnDeviceCopiesIn) {
  const RegionId r = dir_.register_region("r", 1024);
  TransferList ops;
  dir_.acquire({Access::in(r)}, gpu0(), ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].category, TransferCategory::kInput);
  EXPECT_EQ(ops[0].bytes, 1024u);
  EXPECT_TRUE(dir_.is_valid_in(r, gpu0()));
  EXPECT_TRUE(dir_.is_valid_in(r, kHostSpace));  // reads replicate
  EXPECT_EQ(dir_.stats().input_bytes, 1024u);
}

TEST_F(DirectoryTest, RereadIsFree) {
  const RegionId r = dir_.register_region("r", 1024);
  TransferList ops;
  dir_.acquire({Access::in(r)}, gpu0(), ops);
  ops.clear();
  dir_.acquire({Access::in(r)}, gpu0(), ops);
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(dir_.stats().input_count, 1u);
}

TEST_F(DirectoryTest, WriteInvalidatesOtherCopies) {
  const RegionId r = dir_.register_region("r", 1024);
  TransferList ops;
  dir_.acquire({Access::in(r)}, gpu0(), ops);
  dir_.acquire({Access::inout(r)}, gpu1(), ops);
  EXPECT_TRUE(dir_.is_valid_in(r, gpu1()));
  EXPECT_FALSE(dir_.is_valid_in(r, gpu0()));
  EXPECT_FALSE(dir_.is_valid_in(r, kHostSpace));
  EXPECT_EQ(dir_.dirty_space(r), gpu1());
}

TEST_F(DirectoryTest, PureOutputNeedsNoCopyIn) {
  const RegionId r = dir_.register_region("r", 4096);
  TransferList ops;
  dir_.acquire({Access::out(r)}, gpu0(), ops);
  EXPECT_TRUE(ops.empty());
  EXPECT_TRUE(dir_.is_valid_in(r, gpu0()));
  EXPECT_FALSE(dir_.is_valid_in(r, kHostSpace));
  EXPECT_EQ(dir_.dirty_space(r), gpu0());
}

TEST_F(DirectoryTest, DeviceToDeviceTransferClassified) {
  const RegionId r = dir_.register_region("r", 2048);
  TransferList ops;
  dir_.acquire({Access::inout(r)}, gpu0(), ops);  // dirty on gpu0
  ops.clear();
  dir_.acquire({Access::in(r)}, gpu1(), ops);  // must come from gpu0
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].category, TransferCategory::kDevice);
  EXPECT_EQ(ops[0].from, gpu0());
  EXPECT_EQ(dir_.stats().device_bytes, 2048u);
}

TEST_F(DirectoryTest, HostReadOfDirtyDeviceDataIsOutputTx) {
  const RegionId r = dir_.register_region("r", 2048);
  TransferList ops;
  dir_.acquire({Access::inout(r)}, gpu0(), ops);
  ops.clear();
  dir_.acquire({Access::in(r)}, kHostSpace, ops);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].category, TransferCategory::kOutput);
  EXPECT_EQ(dir_.stats().output_bytes, 2048u);
}

TEST_F(DirectoryTest, HostWriteLeavesRegionClean) {
  const RegionId r = dir_.register_region("r", 64);
  TransferList ops;
  dir_.acquire({Access::inout(r)}, gpu0(), ops);
  dir_.acquire({Access::inout(r)}, kHostSpace, ops);
  EXPECT_EQ(dir_.dirty_space(r), kInvalidSpace);
  EXPECT_FALSE(dir_.is_valid_in(r, gpu0()));
}

TEST_F(DirectoryTest, FlushAllWritesDirtyDataHome) {
  const RegionId r1 = dir_.register_region("r1", 100);
  const RegionId r2 = dir_.register_region("r2", 200);
  TransferList ops;
  dir_.acquire({Access::inout(r1)}, gpu0(), ops);
  dir_.acquire({Access::inout(r2)}, gpu1(), ops);
  ops.clear();
  dir_.flush_all(ops);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(dir_.stats().output_bytes, 300u);
  EXPECT_TRUE(dir_.is_valid_in(r1, kHostSpace));
  EXPECT_TRUE(dir_.is_valid_in(r2, kHostSpace));
  // Flush synchronizes; the device copies stay valid.
  EXPECT_TRUE(dir_.is_valid_in(r1, gpu0()));
  EXPECT_EQ(dir_.dirty_space(r1), kInvalidSpace);
}

TEST_F(DirectoryTest, FlushIsIdempotent) {
  const RegionId r = dir_.register_region("r", 100);
  TransferList ops;
  dir_.acquire({Access::inout(r)}, gpu0(), ops);
  ops.clear();
  dir_.flush_region(r, ops);
  EXPECT_EQ(ops.size(), 1u);
  ops.clear();
  dir_.flush_region(r, ops);
  EXPECT_TRUE(ops.empty());
}

TEST_F(DirectoryTest, BytesMissingAndValidQueries) {
  const RegionId a = dir_.register_region("a", 100);
  const RegionId b = dir_.register_region("b", 200);
  TransferList ops;
  dir_.acquire({Access::in(a)}, gpu0(), ops);
  const AccessList accesses = {Access::in(a), Access::in(b)};
  EXPECT_EQ(dir_.bytes_missing(accesses, gpu0()), 200u);
  EXPECT_EQ(dir_.bytes_valid(accesses, gpu0()), 100u);
  EXPECT_EQ(dir_.bytes_missing(accesses, kHostSpace), 0u);
  // Pure outputs need no copy, so they never count as missing.
  EXPECT_EQ(dir_.bytes_missing({Access::out(b)}, gpu0()), 0u);
}

TEST_F(DirectoryTest, UsedBytesTracksCopies) {
  const std::uint64_t host_before = dir_.used_bytes(kHostSpace);
  const RegionId r = dir_.register_region("r", 1000);
  EXPECT_EQ(dir_.used_bytes(kHostSpace), host_before + 1000);
  TransferList ops;
  dir_.acquire({Access::in(r)}, gpu0(), ops);
  EXPECT_EQ(dir_.used_bytes(gpu0()), 1000u);
  dir_.acquire({Access::inout(r)}, kHostSpace, ops);
  EXPECT_EQ(dir_.used_bytes(gpu0()), 0u);
}

TEST(DirectoryEviction, LruCleanCopyIsDropped) {
  // Tiny GPU space to force eviction.
  Machine::Builder builder;
  const SpaceId gpu_mem = builder.add_space("gpu", 1000);
  const DeviceId gpu = builder.add_device(DeviceKind::kCuda, gpu_mem, "g", 1);
  builder.add_worker(gpu);
  builder.add_bidi_link(kHostSpace, gpu_mem, 1e9, 0.0);
  const Machine machine = builder.build();
  DataDirectory dir(machine);

  const RegionId a = dir.register_region("a", 600);
  const RegionId b = dir.register_region("b", 600);
  TransferList ops;
  dir.acquire({Access::in(a)}, gpu_mem, ops);
  dir.acquire({Access::in(b)}, gpu_mem, ops);  // must evict a
  EXPECT_FALSE(dir.is_valid_in(a, gpu_mem));
  EXPECT_TRUE(dir.is_valid_in(b, gpu_mem));
  EXPECT_EQ(dir.eviction_count(), 1u);
  EXPECT_LE(dir.used_bytes(gpu_mem), 1000u);
}

TEST(DirectoryEviction, DirtyVictimIsWrittenBackFirst) {
  Machine::Builder builder;
  const SpaceId gpu_mem = builder.add_space("gpu", 1000);
  const DeviceId gpu = builder.add_device(DeviceKind::kCuda, gpu_mem, "g", 1);
  builder.add_worker(gpu);
  builder.add_bidi_link(kHostSpace, gpu_mem, 1e9, 0.0);
  const Machine machine = builder.build();
  DataDirectory dir(machine);

  const RegionId a = dir.register_region("a", 600);
  const RegionId b = dir.register_region("b", 600);
  TransferList ops;
  dir.acquire({Access::inout(a)}, gpu_mem, ops);  // dirty on device
  ops.clear();
  dir.acquire({Access::in(b)}, gpu_mem, ops);
  // Write-back of a, then copy-in of b.
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].category, TransferCategory::kOutput);
  EXPECT_EQ(ops[0].region, a);
  EXPECT_EQ(ops[1].category, TransferCategory::kInput);
  EXPECT_TRUE(dir.is_valid_in(a, kHostSpace));  // data not lost
}

TEST(TransferStatsTest, Classification) {
  EXPECT_EQ(classify_transfer(0, 1), TransferCategory::kInput);
  EXPECT_EQ(classify_transfer(1, 0), TransferCategory::kOutput);
  EXPECT_EQ(classify_transfer(1, 2), TransferCategory::kDevice);
  EXPECT_EQ(classify_transfer(2, 2), TransferCategory::kLocal);
}

TEST(TransferStatsTest, AccumulateAndSum) {
  TransferStats stats;
  stats.record(TransferCategory::kInput, 100);
  stats.record(TransferCategory::kOutput, 50);
  stats.record(TransferCategory::kDevice, 25);
  stats.record(TransferCategory::kLocal, 999);  // ignored
  EXPECT_EQ(stats.total_bytes(), 175u);
  EXPECT_EQ(stats.total_count(), 3u);
  TransferStats more = stats;
  more += stats;
  EXPECT_EQ(more.input_bytes, 200u);
}

class TransferEngineTest : public ::testing::Test {
 protected:
  TransferEngineTest() : machine_(make_minotauro_node(1, 2)), engine_(machine_) {}
  Machine machine_;
  TransferEngine engine_;
};

TEST_F(TransferEngineTest, SingleTransferTakesLinkTime) {
  // 6 GB/s PCIe, 15 us latency: 6 MB -> 1 ms + 15 us.
  const TransferOp op{0, kHostSpace, 1, 6'000'000, TransferCategory::kInput};
  const Time done = engine_.enqueue_one(op, 0.0);
  EXPECT_NEAR(done, 1e-3 + 15e-6, 1e-9);
}

TEST_F(TransferEngineTest, SameLinkSerializes) {
  const TransferOp op{0, kHostSpace, 1, 6'000'000, TransferCategory::kInput};
  engine_.enqueue_one(op, 0.0);
  const Time done = engine_.enqueue_one(op, 0.0);
  EXPECT_NEAR(done, 2.0 * (1e-3 + 15e-6), 1e-9);
}

TEST_F(TransferEngineTest, DifferentLinksOverlap) {
  const TransferOp to_gpu0{0, kHostSpace, 1, 6'000'000,
                           TransferCategory::kInput};
  const TransferOp to_gpu1{1, kHostSpace, 2, 6'000'000,
                           TransferCategory::kInput};
  const Time d0 = engine_.enqueue_one(to_gpu0, 0.0);
  const Time d1 = engine_.enqueue_one(to_gpu1, 0.0);
  EXPECT_NEAR(d0, d1, 1e-12);  // parallel links, no serialization
}

TEST_F(TransferEngineTest, BatchCompletionIsMaxOfOps) {
  TransferList ops = {
      {0, kHostSpace, 1, 6'000'000, TransferCategory::kInput},
      {1, kHostSpace, 2, 12'000'000, TransferCategory::kInput},
  };
  const Time done = engine_.enqueue(ops, 0.0);
  EXPECT_NEAR(done, 2e-3 + 15e-6, 1e-9);
}

TEST_F(TransferEngineTest, StartTimeRespected) {
  const TransferOp op{0, kHostSpace, 1, 6'000'000, TransferCategory::kInput};
  const Time done = engine_.enqueue_one(op, 5.0);
  EXPECT_NEAR(done, 5.0 + 1e-3 + 15e-6, 1e-9);
}

TEST_F(TransferEngineTest, ResetClearsOccupancy) {
  const TransferOp op{0, kHostSpace, 1, 6'000'000, TransferCategory::kInput};
  engine_.enqueue_one(op, 0.0);
  engine_.reset();
  EXPECT_DOUBLE_EQ(engine_.link_free_at(kHostSpace, 1), 0.0);
  EXPECT_EQ(engine_.routed_bytes(), 0u);
}

TEST(TransferEngineStaging, NoDirectLinkRoutesThroughHost) {
  // Machine with two GPU spaces but no peer link.
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", 1 << 30);
  const SpaceId g1 = builder.add_space("g1", 1 << 30);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 0.0);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 0.0);
  const Machine machine = builder.build();
  TransferEngine engine(machine);

  const TransferOp op{0, g0, g1, 1'000'000, TransferCategory::kDevice};
  const Time done = engine.enqueue_one(op, 0.0);
  EXPECT_NEAR(done, 2e-3, 1e-9);  // two 1 ms hops
  EXPECT_EQ(engine.routed_bytes(), 2'000'000u);
}

}  // namespace
}  // namespace versa
