// Property test for adaptive granularity (DESIGN.md §11): splitting a
// randomly generated task graph must preserve its happens-before relation.
//
// The oracle is serial submission order over byte-exact conflicts: tasks i
// and j (i submitted first) *conflict* when some access of i overlaps some
// access of j by at least one byte and at least one side writes. A split
// execution is equivalent to the serial one iff
//   (a) every directly conflicting pair stays ordered i -> j
//       (conflict-serializability in submission order), and
//   (b) no pair gets ordered that the serial closure does not order
//       (splitting may only *relax* false sharing, never invent edges).
// Both are checked against the analyzer edges the runtime actually wired,
// projected from split children back onto their shell parents.
//
// A second property checks the same thing end to end through data: random
// byte-transforming task bodies over shared buffers must leave exactly the
// bytes a serial replay leaves, with re-tiling active.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/core/granularity.h"
#include "task/access.h"

namespace versa {
namespace {

constexpr std::uint64_t kRegionBytes = 4096;
// Offsets/lengths are multiples of this, so every chunk_recipe factor used
// below (2 and 4) divides every access length and no partition declines.
constexpr std::uint64_t kAlign = 512;

core::SplitRecipe chunk_recipe(TaskTypeId child_type) {
  core::SplitRecipe recipe;
  recipe.child_type = child_type;
  recipe.max_factor = 8;
  recipe.partition = [](const AccessList& parent, std::uint32_t factor,
                        std::vector<AccessList>& parts) {
    for (const Access& access : parent) {
      if (access.length % factor != 0) return false;
    }
    parts.assign(factor, parent);
    for (std::uint32_t r = 0; r < factor; ++r) {
      for (Access& access : parts[r]) {
        access.length /= factor;
        access.offset += static_cast<std::uint64_t>(r) * access.length;
      }
    }
    return true;
  };
  return recipe;
}

struct RandomSubmission {
  AccessList accesses;
  bool regranulate = true;
  std::size_t body = 0;  ///< which task type / byte transform
};

/// Random program: each task touches 1..3 distinct regions with random
/// aligned sub-ranges and random in/out/inout modes.
std::vector<RandomSubmission> random_program(Rng& rng, std::size_t tasks,
                                             std::size_t regions,
                                             std::size_t bodies) {
  std::vector<RandomSubmission> program(tasks);
  for (RandomSubmission& submission : program) {
    const std::size_t clauses = 1 + rng.next_below(3);
    std::vector<RegionId> picked;
    while (picked.size() < clauses) {
      const RegionId r = static_cast<RegionId>(rng.next_below(regions));
      bool seen = false;
      for (RegionId p : picked) seen |= (p == r);
      if (!seen) picked.push_back(r);
    }
    for (RegionId region : picked) {
      const std::uint64_t slots = kRegionBytes / kAlign;
      const std::uint64_t offset = rng.next_below(slots) * kAlign;
      const std::uint64_t length =
          (1 + rng.next_below(slots - offset / kAlign)) * kAlign;
      Access access;
      access.region = region;
      access.offset = offset;
      access.length = length;
      const std::uint64_t mode = rng.next_below(4);
      // Bias towards inout: pure-reader programs have no dependences.
      access.mode = mode == 0   ? AccessMode::kIn
                    : mode == 1 ? AccessMode::kOut
                                : AccessMode::kInOut;
      submission.accesses.push_back(access);
    }
    // Most submissions may re-tile; some pin their declared tiling, so the
    // projected graph mixes split and unsplit tasks.
    submission.regranulate = rng.next_below(4) != 0;
    submission.body = rng.next_below(bodies);
  }
  return program;
}

/// Program accesses carry region *indices*; substitute the registered ids.
AccessList remap(const AccessList& accesses, const std::vector<RegionId>& ids) {
  AccessList out = accesses;
  for (Access& access : out) access.region = ids[access.region];
  return out;
}

bool conflicts(const RandomSubmission& a, const RandomSubmission& b) {
  for (const Access& x : a.accesses) {
    for (const Access& y : b.accesses) {
      if (x.region != y.region) continue;
      if (x.offset >= y.offset + y.length) continue;
      if (y.offset >= x.offset + x.length) continue;
      if (writes(x.mode) || writes(y.mode)) return true;
    }
  }
  return false;
}

/// In-place Floyd–Warshall closure of an adjacency matrix.
void close(std::vector<std::vector<char>>& reach) {
  const std::size_t n = reach.size();
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      if (!reach[i][k]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (reach[k][j]) reach[i][j] = 1;
      }
    }
  }
}

TEST(GranularityDepProperty, SplitGraphMatchesSerialOracle) {
  std::uint64_t total_splits = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    const std::size_t tasks = 10 + rng.next_below(15);
    const std::size_t regions = 3 + rng.next_below(3);
    const std::vector<RandomSubmission> program =
        random_program(rng, tasks, regions, 1);

    // Serial oracle: direct byte conflicts and their closure.
    std::vector<std::vector<char>> direct(tasks,
                                          std::vector<char>(tasks, 0));
    for (std::size_t i = 0; i < tasks; ++i) {
      for (std::size_t j = i + 1; j < tasks; ++j) {
        direct[i][j] = conflicts(program[i], program[j]) ? 1 : 0;
      }
    }
    std::vector<std::vector<char>> oracle = direct;
    close(oracle);

    // Run the same program under a fixed re-tiling factor.
    const Machine machine = make_smp_machine(4);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.noise.kind = sim::NoiseKind::kNone;
    ASSERT_TRUE(core::parse_granularity(seed % 2 == 0 ? "2" : "4",
                                        config.granularity));
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    const TaskTypeId tc = rt.declare_task("t_chunk");
    rt.add_version(t, DeviceKind::kSmp, "v", nullptr,
                   make_constant_cost(1e-3));
    rt.add_version(tc, DeviceKind::kSmp, "v", nullptr,
                   make_constant_cost(1e-3));
    rt.set_split_recipe(t, chunk_recipe(tc));
    std::vector<RegionId> ids;
    for (std::size_t r = 0; r < regions; ++r) {
      ids.push_back(rt.register_data("r" + std::to_string(r), kRegionBytes));
    }

    std::vector<TaskId> roots;
    for (const RandomSubmission& submission : program) {
      Runtime::SubmitOptions options;
      options.regranulate = submission.regranulate;
      roots.push_back(rt.submit(t, remap(submission.accesses, ids), options));
    }
    rt.taskwait();
    total_splits += rt.granularity()->stats().splits;

    // Task-level reachability over the analyzer edges actually wired.
    const TaskGraph& graph = rt.task_graph();
    const std::size_t n = graph.size();
    std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
    for (const Task& task : graph.tasks()) {
      for (TaskId succ : task.successors) reach[task.id][succ] = 1;
    }
    close(reach);

    // Project children back onto their submission roots.
    std::vector<std::size_t> root_index(n, tasks);  // tasks = "not a root"
    for (std::size_t i = 0; i < tasks; ++i) root_index[roots[i]] = i;
    auto project = [&](TaskId id) {
      const Task& task = graph.task(id);
      const TaskId root =
          task.split_parent != kInvalidTask ? task.split_parent : id;
      return root_index[root];
    };
    std::vector<std::vector<char>> projected(tasks,
                                             std::vector<char>(tasks, 0));
    for (TaskId u = 0; u < n; ++u) {
      for (TaskId v = 0; v < n; ++v) {
        if (!reach[u][v]) continue;
        const std::size_t pu = project(u), pv = project(v);
        ASSERT_LT(pu, tasks);
        ASSERT_LT(pv, tasks);
        if (pu != pv) projected[pu][pv] = 1;
      }
    }
    close(projected);

    for (std::size_t i = 0; i < tasks; ++i) {
      for (std::size_t j = 0; j < tasks; ++j) {
        // (a) Safety: every direct conflict stays ordered.
        if (direct[i][j]) {
          EXPECT_TRUE(projected[i][j])
              << "conflict " << i << " -> " << j << " lost by splitting";
        }
        // (b) No invented orderings, and never against submission order.
        if (projected[i][j]) {
          EXPECT_TRUE(oracle[i][j])
              << "spurious order " << i << " -> " << j;
          EXPECT_GT(j, i) << "edge against submission order";
        }
      }
    }
  }
  // The property is vacuous if nothing ever split.
  EXPECT_GT(total_splits, 0u);
}

TEST(GranularityDepProperty, SplitExecutionLeavesSerialBytes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed ^ 0xfeedULL);
    const std::size_t tasks = 8 + rng.next_below(13);
    const std::size_t regions = 3;
    constexpr std::size_t kBodies = 4;
    std::vector<RandomSubmission> program =
        random_program(rng, tasks, regions, kBodies);
    // The byte transforms below assume read-modify-write everywhere.
    for (RandomSubmission& submission : program) {
      for (Access& access : submission.accesses) {
        access.mode = AccessMode::kInOut;
      }
    }

    // b := 31 * b + k — byte-local (so chunking commutes with it) but
    // non-commutative across different k, so any misordered or lost
    // update between different task types changes the final bytes.
    auto transform = [](std::uint8_t byte, std::uint8_t k) {
      return static_cast<std::uint8_t>(31 * byte + k);
    };

    std::vector<std::vector<std::uint8_t>> data(
        regions, std::vector<std::uint8_t>(kRegionBytes));
    std::vector<std::vector<std::uint8_t>> expected(regions);
    for (std::size_t r = 0; r < regions; ++r) {
      for (std::uint64_t b = 0; b < kRegionBytes; ++b) {
        data[r][b] = static_cast<std::uint8_t>(rng.next_below(256));
      }
      expected[r] = data[r];
    }
    // Serial replay in submission order.
    for (const RandomSubmission& submission : program) {
      const std::uint8_t k = static_cast<std::uint8_t>(7 + submission.body);
      for (const Access& access : submission.accesses) {
        for (std::uint64_t b = access.offset;
             b < access.offset + access.length; ++b) {
          expected[access.region][b] = transform(expected[access.region][b], k);
        }
      }
    }

    const Machine machine = make_smp_machine(4);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.noise.kind = sim::NoiseKind::kNone;
    ASSERT_TRUE(core::parse_granularity("4", config.granularity));
    Runtime rt(machine, config);
    std::vector<TaskTypeId> types, child_types;
    for (std::size_t body = 0; body < kBodies; ++body) {
      const std::uint8_t k = static_cast<std::uint8_t>(7 + body);
      TaskFn fn = [k, transform](TaskContext& ctx) {
        for (std::size_t arg = 0; arg < ctx.arg_count(); ++arg) {
          auto* bytes = static_cast<std::uint8_t*>(ctx.arg(arg));
          for (std::uint64_t b = 0; b < ctx.arg_size(arg); ++b) {
            bytes[b] = transform(bytes[b], k);
          }
        }
      };
      const std::string name = "t" + std::to_string(body);
      types.push_back(rt.declare_task(name));
      child_types.push_back(rt.declare_task(name + "_chunk"));
      rt.add_version(types[body], DeviceKind::kSmp, "v", fn,
                     make_constant_cost(1e-3));
      rt.add_version(child_types[body], DeviceKind::kSmp, "v", fn,
                     make_constant_cost(1e-3));
      rt.set_split_recipe(types[body], chunk_recipe(child_types[body]));
    }
    std::vector<RegionId> ids;
    for (std::size_t r = 0; r < regions; ++r) {
      ids.push_back(rt.register_data("r" + std::to_string(r), kRegionBytes,
                                     data[r].data()));
    }
    for (const RandomSubmission& submission : program) {
      Runtime::SubmitOptions options;
      options.regranulate = submission.regranulate;
      rt.submit(types[submission.body], remap(submission.accesses, ids),
                options);
    }
    rt.taskwait();
    EXPECT_GT(rt.granularity()->stats().splits, 0u);

    for (std::size_t r = 0; r < regions; ++r) {
      EXPECT_EQ(data[r], expected[r]) << "region " << r;
    }
  }
}

}  // namespace
}  // namespace versa
