// Unit tests for the service-mode subsystem (src/service/, DESIGN.md §10):
// tenant registration and check-and-charge admission, typed rejection
// reasons, the weighted fair-share interleaver's window/park/refill
// mechanics, the shared warm-start profile cache, and end-to-end
// VersaService graph lifecycle on the sim backend (two tenants, quota
// rejection and recovery, shutdown, accounting reconciliation).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "machine/presets.h"
#include "runtime/config.h"
#include "sched/core/fair_share.h"
#include "service/profile_cache.h"
#include "service/tenant_registry.h"
#include "service/versa_service.h"

namespace versa {
namespace {

using namespace versa::service;

// --- tenant registry ------------------------------------------------------

TEST(TenantRegistry, AssignsDenseIdsFromOne) {
  TenantRegistry registry;
  EXPECT_EQ(registry.register_tenant("a", {}), 1u);
  EXPECT_EQ(registry.register_tenant("b", {}), 2u);
  EXPECT_EQ(registry.tenant_count(), 2u);
  EXPECT_TRUE(registry.known(1));
  EXPECT_TRUE(registry.known(2));
  // Tenant 0 is the implicit single-program default, never a registered
  // service tenant.
  EXPECT_FALSE(registry.known(kDefaultTenant));
  EXPECT_FALSE(registry.known(3));
  EXPECT_EQ(registry.tenant_name(2), "b");
}

TEST(TenantRegistry, UnknownTenantIsRejectedNotCharged) {
  TenantRegistry registry;
  const Rejected r = registry.admit(7, 10, 1024);
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.reason, RejectReason::kUnknownTenant);
  EXPECT_STREQ(to_string(r.reason), "unknown-tenant");
}

TEST(TenantRegistry, TaskQuotaCheckAndCharge) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.max_in_flight_tasks = 10;
  const TenantId t = registry.register_tenant("bounded", quota);

  EXPECT_FALSE(static_cast<bool>(registry.admit(t, 6, 0)));
  // 6 in flight + 5 > 10: rejected, and the failed admission charges
  // nothing.
  const Rejected r = registry.admit(t, 5, 0);
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.reason, RejectReason::kTaskQuota);
  EXPECT_NE(r.detail.find("10"), std::string::npos) << r.detail;
  EXPECT_EQ(registry.stats(t).in_flight_tasks, 6u);
  EXPECT_EQ(registry.stats(t).rejected_graphs, 1u);

  // Exactly filling the quota is admitted; retiring restores headroom.
  EXPECT_FALSE(static_cast<bool>(registry.admit(t, 4, 0)));
  registry.on_graph_complete(t, 6, 0);
  EXPECT_FALSE(static_cast<bool>(registry.admit(t, 6, 0)));

  const TenantStats stats = registry.stats(t);
  EXPECT_EQ(stats.admitted_graphs, 3u);
  EXPECT_EQ(stats.completed_graphs, 1u);
  EXPECT_EQ(stats.completed_tasks, 6u);
  EXPECT_EQ(stats.in_flight_tasks, 10u);
}

TEST(TenantRegistry, ByteQuotaAndCredit) {
  TenantRegistry registry;
  TenantQuota quota;
  quota.max_bytes = 1 << 20;
  const TenantId t = registry.register_tenant("small", quota);

  EXPECT_FALSE(static_cast<bool>(registry.admit(t, 1, 1 << 19)));
  const Rejected r = registry.admit(t, 1, (1 << 19) + 1);
  ASSERT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.reason, RejectReason::kByteQuota);

  // credit() is the submission-aborted path: charge returned, no
  // completion counted.
  registry.credit(t, 1, 1 << 19);
  EXPECT_EQ(registry.stats(t).in_flight_bytes, 0u);
  EXPECT_EQ(registry.stats(t).completed_graphs, 0u);
  EXPECT_FALSE(static_cast<bool>(registry.admit(t, 1, 1 << 20)));
}

// --- fair-share interleaver ----------------------------------------------

TEST(FairShare, WindowBoundsDispatchAndParksOverflow) {
  core::FairShareInterleaver gate;
  gate.set_window(2);
  EXPECT_TRUE(gate.offer(1, 101));
  EXPECT_TRUE(gate.offer(1, 102));
  EXPECT_FALSE(gate.offer(1, 103));  // window full: parked
  EXPECT_EQ(gate.in_flight(), 2u);
  EXPECT_EQ(gate.parked(), 1u);

  std::vector<TaskId> release;
  gate.on_complete(1, release);
  ASSERT_EQ(release.size(), 1u);
  EXPECT_EQ(release[0], 103u);  // FIFO within the tenant
  EXPECT_EQ(gate.in_flight(), 2u);
  EXPECT_EQ(gate.parked(), 0u);
  EXPECT_EQ(gate.offered(1), 3u);
  EXPECT_EQ(gate.completed(1), 1u);
}

TEST(FairShare, WeightedRoundRobinSharesRefills) {
  core::FairShareInterleaver gate;
  gate.set_window(1);
  gate.set_weight(1, 1);
  gate.set_weight(2, 2);
  gate.set_weight(3, 3);

  // One dispatched task holds the single window slot; everything else
  // parks: 12 tasks per tenant, FIFO ids t*100 + i.
  ASSERT_TRUE(gate.offer(1, 99));
  for (TenantId t = 1; t <= 3; ++t) {
    for (TaskId i = 0; i < 12; ++i) {
      EXPECT_FALSE(gate.offer(t, t * 100 + i));
    }
  }

  // Drain 24 slots: each completion frees the slot and the WRR refill
  // hands it to the next backlogged tenant. Over any span where every
  // tenant stays backlogged, the released counts must match the 1:2:3
  // weights exactly (full rounds release 1+2+3).
  TenantId holder = 1;  // tenant of the task occupying the slot
  std::vector<TaskId> order;
  for (int i = 0; i < 24; ++i) {
    std::vector<TaskId> release;
    gate.on_complete(holder, release);
    ASSERT_EQ(release.size(), 1u) << "work-conserving refill " << i;
    order.push_back(release[0]);
    holder = static_cast<TenantId>(release[0] / 100);
  }
  int per_tenant[4] = {0, 0, 0, 0};
  TaskId last_id[4] = {0, 0, 0, 0};
  for (const TaskId id : order) {
    const TenantId t = static_cast<TenantId>(id / 100);
    ++per_tenant[t];
    // FIFO inside each tenant's lane.
    if (last_id[t] != 0) {
      EXPECT_LT(last_id[t], id);
    }
    last_id[t] = id;
  }
  EXPECT_EQ(per_tenant[1], 4);   // 24 releases = 4 full rounds of 1:2:3
  EXPECT_EQ(per_tenant[2], 8);
  EXPECT_EQ(per_tenant[3], 12);
}

TEST(FairShare, WorkConservingForLoneBackloggedTenant) {
  core::FairShareInterleaver gate;
  gate.set_window(2);
  gate.set_weight(1, 1);
  gate.set_weight(2, 100);
  ASSERT_TRUE(gate.offer(1, 11));
  ASSERT_TRUE(gate.offer(1, 12));
  for (TaskId i = 0; i < 4; ++i) EXPECT_FALSE(gate.offer(1, 20 + i));

  // Tenant 2 has weight 100 but no parked work: tenant 1 keeps the whole
  // window.
  std::vector<TaskId> release;
  gate.on_complete(1, release);
  ASSERT_EQ(release.size(), 1u);
  EXPECT_EQ(release[0], 20u);
}

// --- shared profile cache -------------------------------------------------

TEST(SharedProfileCache, MemoryRoundTripIgnoresEmptyPublish) {
  SharedProfileCache cache;
  EXPECT_EQ(cache.snapshot(), "");
  EXPECT_TRUE(cache.publish("profile-text"));
  EXPECT_EQ(cache.snapshot(), "profile-text");
  EXPECT_TRUE(cache.publish(""));  // no-op, not an error
  EXPECT_EQ(cache.snapshot(), "profile-text");
}

TEST(SharedProfileCache, FilePublishVisibleToFreshInstance) {
  const std::string path = testing::TempDir() + "/service_cache.profile";
  std::remove(path.c_str());
  {
    SharedProfileCache writer(path);
    EXPECT_EQ(writer.snapshot(), "");  // missing file = cold
    EXPECT_TRUE(writer.publish("cached-profile"));
  }
  SharedProfileCache reader(path);
  EXPECT_EQ(reader.snapshot(), "cached-profile");
  std::remove(path.c_str());
}

// --- end-to-end service on the sim backend --------------------------------

GraphSpec chain_spec(TaskTypeId type, std::size_t tasks,
                     std::uint64_t bytes = 4096) {
  GraphSpec spec;
  spec.regions.push_back({"chain", bytes});
  for (std::size_t i = 0; i < tasks; ++i) {
    TaskSpec task;
    task.type = type;
    task.accesses.push_back({0, AccessMode::kInOut});
    spec.tasks.push_back(task);
  }
  return spec;
}

struct ServiceFixture {
  Machine machine = make_smp_machine(2);
  VersaService svc;
  TaskTypeId work;

  explicit ServiceFixture(VersaServiceConfig config = {})
      : svc(machine, std::move(config)) {
    work = svc.runtime().declare_task("svc_work");
    svc.runtime().add_version(work, DeviceKind::kSmp, "smp");
  }
};

TEST(VersaService, TwoTenantsSubmitWaitAndReconcile) {
  ServiceFixture fx;
  Session a = fx.svc.open_session("alpha", {});
  Session b = fx.svc.open_session("beta", {});

  std::vector<GraphId> a_graphs, b_graphs;
  for (int i = 0; i < 3; ++i) {
    const SubmitResult ra = a.submit(chain_spec(fx.work, 4));
    const SubmitResult rb = b.submit(chain_spec(fx.work, 2));
    ASSERT_TRUE(ra.admitted()) << ra.rejected.detail;
    ASSERT_TRUE(rb.admitted()) << rb.rejected.detail;
    EXPECT_NE(ra.graph, rb.graph);
    a_graphs.push_back(ra.graph);
    b_graphs.push_back(rb.graph);
  }
  for (const GraphId g : a_graphs) a.wait(g);
  for (const GraphId g : b_graphs) b.wait(g);

  const TenantStats sa = a.stats();
  EXPECT_EQ(sa.admitted_graphs, 3u);
  EXPECT_EQ(sa.completed_graphs, 3u);
  EXPECT_EQ(sa.completed_tasks, 12u);
  EXPECT_EQ(sa.in_flight_tasks, 0u);
  EXPECT_EQ(sa.in_flight_bytes, 0u);
  const TenantStats sb = b.stats();
  EXPECT_EQ(sb.completed_graphs, 3u);
  EXPECT_EQ(sb.completed_tasks, 6u);
  EXPECT_EQ(sb.rejected_graphs, 0u);
}

TEST(VersaService, WaitIsIdempotentPerGraph) {
  ServiceFixture fx;
  Session s = fx.svc.open_session("solo", {});
  const SubmitResult r = s.submit(chain_spec(fx.work, 3));
  ASSERT_TRUE(r.admitted());
  s.wait(r.graph);
  s.wait(r.graph);  // second retire must be a no-op
  const TenantStats stats = s.stats();
  EXPECT_EQ(stats.completed_graphs, 1u);
  EXPECT_EQ(stats.completed_tasks, 3u);
  EXPECT_EQ(stats.in_flight_tasks, 0u);
}

TEST(VersaService, QuotaRejectionIsTypedAndRecoverable) {
  ServiceFixture fx;
  TenantQuota quota;
  quota.max_in_flight_tasks = 5;
  Session s = fx.svc.open_session("tight", quota);

  const SubmitResult first = s.submit(chain_spec(fx.work, 4));
  ASSERT_TRUE(first.admitted());
  const SubmitResult second = s.submit(chain_spec(fx.work, 4));
  ASSERT_FALSE(second.admitted());
  EXPECT_EQ(second.rejected.reason, RejectReason::kTaskQuota);
  EXPECT_EQ(second.graph, kInvalidGraph);

  // Retiring the first graph frees its quota charge; the same spec is now
  // admitted.
  s.wait(first.graph);
  const SubmitResult third = s.submit(chain_spec(fx.work, 4));
  ASSERT_TRUE(third.admitted()) << third.rejected.detail;
  s.wait(third.graph);
  EXPECT_EQ(s.stats().rejected_graphs, 1u);
}

TEST(VersaService, ByteQuotaCountsSpecRegions) {
  ServiceFixture fx;
  TenantQuota quota;
  quota.max_bytes = 8192;
  Session s = fx.svc.open_session("lowmem", quota);
  const SubmitResult r = s.submit(chain_spec(fx.work, 1, 8193));
  ASSERT_FALSE(r.admitted());
  EXPECT_EQ(r.rejected.reason, RejectReason::kByteQuota);
  const SubmitResult ok = s.submit(chain_spec(fx.work, 1, 8192));
  ASSERT_TRUE(ok.admitted());
  s.wait(ok.graph);
}

TEST(VersaService, UnknownTenantAndShutdownRejections) {
  ServiceFixture fx;
  Session s = fx.svc.open_session("only", {});

  const SubmitResult ghost = fx.svc.submit_graph(42, chain_spec(fx.work, 1));
  ASSERT_FALSE(ghost.admitted());
  EXPECT_EQ(ghost.rejected.reason, RejectReason::kUnknownTenant);

  const SubmitResult live = s.submit(chain_spec(fx.work, 2));
  ASSERT_TRUE(live.admitted());
  fx.svc.shutdown();
  const SubmitResult after = s.submit(chain_spec(fx.work, 2));
  ASSERT_FALSE(after.admitted());
  EXPECT_EQ(after.rejected.reason, RejectReason::kShutdown);
  // In-flight graphs keep running across shutdown.
  s.wait(live.graph);
  EXPECT_EQ(s.stats().completed_graphs, 1u);
}

TEST(VersaService, ProfilePublishAndWarmStartAcrossInstances) {
  const std::string path = testing::TempDir() + "/service_warm.profile";
  std::remove(path.c_str());
  VersaServiceConfig config;
  config.profile_cache_path = path;
  {
    ServiceFixture fx(config);
    Session s = fx.svc.open_session("learner", {});
    for (int i = 0; i < 4; ++i) {
      const SubmitResult r = s.submit(chain_spec(fx.work, 8));
      ASSERT_TRUE(r.admitted());
      s.wait(r.graph);
    }
    EXPECT_TRUE(fx.svc.publish_profile());
    EXPECT_NE(fx.svc.profile_cache().snapshot(), "");
  }
  // A fresh service on the same machine warm-starts from the shared cache
  // once its task types are declared.
  ServiceFixture fresh(config);
  const ProfileLoadResult warm = fresh.svc.warm_start();
  EXPECT_EQ(warm.status, ProfileLoadStatus::kOk) << warm.message;
  EXPECT_GT(warm.applied, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace versa
