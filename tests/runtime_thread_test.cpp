// Integration tests for the real-thread backend: functional correctness of
// dependence-ordered execution with actually-executing bodies, nested task
// submission, and versioning on measured wall-clock durations.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

RuntimeConfig thread_config(const std::string& scheduler = "versioning") {
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = scheduler;
  return config;
}

TEST(RuntimeThreads, ChainOfIncrementsIsSequential) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, thread_config());
  long counter = 0;
  const RegionId r = rt.register_data("counter", sizeof(counter), &counter);
  const TaskTypeId t = rt.declare_task("inc");
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    auto* value = static_cast<long*>(ctx.arg(0));
    *value = *value * 2 + 1;  // non-commutative: order matters
  });
  for (int i = 0; i < 12; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  // f(x) = 2x + 1 applied 12 times to 0 gives 2^12 - 1.
  EXPECT_EQ(counter, (1L << 12) - 1);
}

TEST(RuntimeThreads, IndependentTasksAllExecute) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, thread_config());
  constexpr int kTasks = 64;
  std::vector<int> cells(kTasks, 0);
  const TaskTypeId t = rt.declare_task("fill");
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    *static_cast<int*>(ctx.arg(0)) += 1;
  });
  for (int i = 0; i < kTasks; ++i) {
    const RegionId r = rt.register_data("cell" + std::to_string(i),
                                        sizeof(int), &cells[i]);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(cells[i], 1) << i;
  }
}

TEST(RuntimeThreads, ReadersSeeTheWriterResult) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, thread_config());
  int source = 0;
  std::vector<int> sinks(8, -1);
  const RegionId src = rt.register_data("src", sizeof(source), &source);

  const TaskTypeId writer = rt.declare_task("writer");
  rt.add_version(writer, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    *static_cast<int*>(ctx.arg(0)) = 42;
  });
  const TaskTypeId reader = rt.declare_task("reader");
  rt.add_version(reader, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    *static_cast<int*>(ctx.arg(1)) = *static_cast<const int*>(ctx.arg(0));
  });

  rt.submit(writer, {Access::out(src)});
  for (auto& sink : sinks) {
    const RegionId dst = rt.register_data("dst", sizeof(int), &sink);
    rt.submit(reader, {Access::in(src), Access::out(dst)});
  }
  rt.taskwait();
  for (int value : sinks) {
    EXPECT_EQ(value, 42);
  }
}

TEST(RuntimeThreads, NestedSubmissionFromTaskBody) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, thread_config());
  std::atomic<int> executed{0};
  int child_cell = 0;
  const RegionId child_region =
      rt.register_data("child", sizeof(child_cell), &child_cell);

  const TaskTypeId child = rt.declare_task("child");
  rt.add_version(child, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  const TaskTypeId parent = rt.declare_task("parent");
  rt.add_version(parent, DeviceKind::kSmp, "v", [&](TaskContext&) {
    // Task bodies may create more tasks (OmpSs nesting).
    for (int i = 0; i < 4; ++i) {
      rt.submit(child, {Access::inout(child_region)});
    }
  });

  int parent_cell = 0;
  const RegionId parent_region =
      rt.register_data("parent", sizeof(parent_cell), &parent_cell);
  rt.submit(parent, {Access::inout(parent_region)});
  rt.taskwait();
  EXPECT_EQ(executed.load(), 4);
}

TEST(RuntimeThreads, VersioningLearnsFromWallClock) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = thread_config("versioning");
  config.profile.lambda = 2;
  Runtime rt(machine, config);

  const TaskTypeId t = rt.declare_task("spin");
  // Two SMP versions with very different real costs: the fast one must
  // dominate once the group is reliable.
  const VersionId fast = rt.add_version(t, DeviceKind::kSmp, "fast",
                                        [](TaskContext&) {});
  const VersionId slow =
      rt.add_version(t, DeviceKind::kSmp, "slow", [](TaskContext&) {
        volatile double sink = 0.0;
        for (int i = 0; i < 2'000'000; ++i) {
          sink = sink + static_cast<double>(i) * 1e-9;
        }
      });

  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 40; ++i) {
    rt.submit(t, {Access::inout(r)});  // chain: trickled readiness
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().count(fast) + rt.run_stats().count(slow), 40u);
  EXPECT_GT(rt.run_stats().count(fast), rt.run_stats().count(slow));
}

TEST(RuntimeThreads, TransferAccountingStillWorksWithGpuWorkers) {
  // Simulated accelerator workers run host code, but the directory still
  // accounts the copies their memory spaces would need.
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, thread_config("fifo"));
  int cell = 7;
  const RegionId r = rt.register_data("r", sizeof(cell), &cell);
  const TaskTypeId t = rt.declare_task("gpu_inc");
  rt.add_version(t, DeviceKind::kCuda, "v", [](TaskContext& ctx) {
    *static_cast<int*>(ctx.arg(0)) += 1;
  });
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_EQ(cell, 8);
  EXPECT_EQ(rt.transfer_stats().input_bytes, sizeof(cell));
  EXPECT_EQ(rt.transfer_stats().output_bytes, sizeof(cell));
}

TEST(RuntimeThreads, TaskwaitOnBlocksUntilWriterDone) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, thread_config());
  int value = 0;
  const RegionId r = rt.register_data("r", sizeof(value), &value);
  const TaskTypeId t = rt.declare_task("set");
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    *static_cast<int*>(ctx.arg(0)) = 99;
  });
  rt.submit(t, {Access::inout(r)});
  rt.taskwait_on(r);
  EXPECT_EQ(value, 99);
  rt.taskwait();
}

TEST(RuntimeThreads, StressManySmallTasks) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, thread_config("dep-aware"));
  constexpr int kChains = 16;
  constexpr int kLinks = 50;
  std::vector<long> counters(kChains, 0);
  const TaskTypeId t = rt.declare_task("inc");
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    *static_cast<long*>(ctx.arg(0)) += 1;
  });
  for (int c = 0; c < kChains; ++c) {
    const RegionId r = rt.register_data("chain" + std::to_string(c),
                                        sizeof(long), &counters[c]);
    for (int i = 0; i < kLinks; ++i) {
      rt.submit(t, {Access::inout(r)});
    }
  }
  rt.taskwait();
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(counters[c], kLinks) << c;
  }
  EXPECT_EQ(rt.run_stats().total_tasks(),
            static_cast<std::uint64_t>(kChains * kLinks));
}

}  // namespace
}  // namespace versa
