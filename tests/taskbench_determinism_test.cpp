// Determinism suite for the synthetic workload generator: the same seed
// and parameters must produce a byte-identical graph spec (edge list +
// per-edge payload sizes, diffed via GraphSpec::canonical_text) no matter
// what else the process has done — including having run full Runtime
// instances on either backend and under either granularity mode. The
// generator draws only from its own seeded Rng, so runtime execution,
// scheduling randomness and granularity splitting must leave it
// untouched; this is what makes METG numbers comparable across
// configurations.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/core/granularity.h"
#include "taskbench/graph_spec.h"
#include "taskbench/runner.h"

namespace versa::taskbench {
namespace {

TaskBenchParams reference_params(GraphFamily family) {
  TaskBenchParams params;
  params.family = family;
  params.width = 12;
  params.steps = 6;
  params.payload_bytes = 2048;
  params.fan = 3;
  params.seed = 1234;
  return params;
}

TEST(TaskbenchDeterminism, RepeatedGenerationIsByteIdentical) {
  for (const GraphFamily family : all_families()) {
    const TaskBenchParams params = reference_params(family);
    const std::string first = generate_graph(params).canonical_text();
    const std::string second = generate_graph(params).canonical_text();
    EXPECT_EQ(first, second) << to_string(family);
    EXPECT_FALSE(first.empty());
  }
}

TEST(TaskbenchDeterminism, SeedChangesRandomFamilyOnly) {
  for (const GraphFamily family : all_families()) {
    TaskBenchParams params = reference_params(family);
    const std::string base = generate_graph(params).canonical_text();
    params.seed = 99;
    const std::string reseeded = generate_graph(params).canonical_text();
    // The seed is part of the header, so the text always differs; the
    // *edge lists* may only differ for the seeded-random family.
    EXPECT_NE(base, reseeded) << to_string(family);
    const GraphSpec a = generate_graph(reference_params(family));
    const GraphSpec b = generate_graph(params);
    if (family == GraphFamily::kRandomFan) {
      EXPECT_NE(a.edges, b.edges);
    } else {
      EXPECT_EQ(a.edges, b.edges) << to_string(family);
    }
  }
}

/// Generation after running full Runtimes — every backend × granularity
/// combination — must still produce the pristine byte-identical spec.
TEST(TaskbenchDeterminism, UnaffectedByBackendAndGranularityRuns) {
  const TaskBenchParams params = reference_params(GraphFamily::kRandomFan);
  const std::string pristine = generate_graph(params).canonical_text();
  const Machine machine = make_minotauro_node(2, 1);

  for (const Backend backend : {Backend::kSim, Backend::kThreads}) {
    for (const std::string mode : {"off", "auto"}) {
      RuntimeConfig config;
      config.backend = backend;
      config.seed = params.seed;
      ASSERT_TRUE(core::parse_granularity(mode, config.granularity));
      Runtime rt(machine, config);
      const GraphSpec spec = generate_graph(params);
      EXPECT_EQ(spec.canonical_text(), pristine)
          << "generated inside " << mode << " run";

      SubmitGraphOptions options;
      options.task_cost = backend == Backend::kThreads ? 50e-6 : 1e-4;
      options.spin_bodies = backend == Backend::kThreads;
      submit_graph(rt, spec, options);
      rt.taskwait();

      EXPECT_EQ(generate_graph(params).canonical_text(), pristine)
          << "generated after " << mode << " run on backend "
          << (backend == Backend::kSim ? "sim" : "threads");
    }
  }
}

TEST(TaskbenchDeterminism, CanonicalTextCarriesPayloadPerEdge) {
  TaskBenchParams params = reference_params(GraphFamily::kChain);
  const std::string base = generate_graph(params).canonical_text();
  params.payload_bytes = 4096;
  const std::string bigger = generate_graph(params).canonical_text();
  EXPECT_NE(base, bigger);
  EXPECT_NE(base.find(":2048"), std::string::npos);
  EXPECT_NE(bigger.find(":4096"), std::string::npos);
}

TEST(TaskbenchDeterminism, FamilyNamesRoundTrip) {
  for (const GraphFamily family : all_families()) {
    GraphFamily parsed;
    ASSERT_TRUE(parse_family(to_string(family), parsed));
    EXPECT_EQ(parsed, family);
  }
  GraphFamily parsed;
  EXPECT_FALSE(parse_family("nonsense", parsed));
  EXPECT_FALSE(parse_family("", parsed));
}

}  // namespace
}  // namespace versa::taskbench
