// Unit tests for the discrete-event core: event queue ordering,
// cancellation, virtual clock; noise model statistics.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "sim/event_queue.h"
#include "sim/noise.h"

namespace versa::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.schedule_at(1.0, [&] { order.push_back(1); });
  q.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5.0, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueue, ScheduleAfterUsesCurrentClock) {
  EventQueue q;
  Time seen = -1.0;
  q.schedule_at(2.0, [&] {
    q.schedule_after(3.0, [&] { seen = q.now(); });
  });
  q.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.schedule_at(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));  // double-cancel reports failure
  q.run();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelledEventsAreSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(1.0, [&] { order.push_back(1); });
  const EventHandle h = q.schedule_at(2.0, [&] { order.push_back(2); });
  q.schedule_at(3.0, [&] { order.push_back(3); });
  q.cancel(h);
  EXPECT_EQ(q.run(), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 5) q.schedule_after(1.0, chain);
  };
  q.schedule_at(0.0, chain);
  q.run();
  EXPECT_EQ(depth, 5);
  EXPECT_DOUBLE_EQ(q.now(), 4.0);
}

TEST(EventQueue, RunUntilStopsAtLimit) {
  EventQueue q;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    q.schedule_at(static_cast<Time>(i), [&] { ++count; });
  }
  EXPECT_EQ(q.run_until(5.0), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.pending(), 5u);
}

TEST(EventQueue, EmptyAndPendingTrackLiveEvents) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  const EventHandle h = q.schedule_at(1.0, [] {});
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.pending(), 1u);
  q.cancel(h);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StepReturnsFalseWhenDrained) {
  EventQueue q;
  EXPECT_FALSE(q.step());
  q.schedule_at(1.0, [] {});
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
}

TEST(Noise, NoneIsExact) {
  NoiseModel model({NoiseKind::kNone, 0.0}, Rng(1));
  EXPECT_DOUBLE_EQ(model.apply(0.5), 0.5);
}

TEST(Noise, ZeroDurationStaysZero) {
  NoiseModel model({NoiseKind::kLognormal, 0.05}, Rng(1));
  EXPECT_DOUBLE_EQ(model.apply(0.0), 0.0);
}

TEST(Noise, LognormalMeanIsUnbiased) {
  NoiseModel model({NoiseKind::kLognormal, 0.05}, Rng(3));
  Welford acc;
  for (int i = 0; i < 50000; ++i) {
    acc.add(model.apply(1.0));
  }
  EXPECT_NEAR(acc.mean(), 1.0, 0.005);
  EXPECT_NEAR(acc.stddev(), 0.05, 0.005);
}

TEST(Noise, UniformStaysInBand) {
  NoiseModel model({NoiseKind::kUniform, 0.1}, Rng(5));
  for (int i = 0; i < 10000; ++i) {
    const Duration d = model.apply(2.0);
    EXPECT_GE(d, 2.0 * 0.9 - 1e-12);
    EXPECT_LE(d, 2.0 * 1.1 + 1e-12);
  }
}

TEST(Noise, AlwaysStrictlyPositive) {
  NoiseModel model({NoiseKind::kLognormal, 0.5}, Rng(7));
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GT(model.apply(1e-9), 0.0);
  }
}

}  // namespace
}  // namespace versa::sim
