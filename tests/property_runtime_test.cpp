// Property tests over randomized task graphs: for every scheduler and both
// backends, random workloads must (a) run to completion, (b) honour every
// data dependence, and (c) keep the runtime's bookkeeping consistent.
//
// Dependences are validated against a sequential oracle replay of the
// submitted access lists: for each region, writers must execute in program
// order, and every reader must fall strictly between the writer that
// produced its value and the next writer.
#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

namespace versa {
namespace {

struct WorkloadSpec {
  std::size_t regions = 8;
  std::size_t tasks = 120;
  std::uint64_t seed = 1;
};

struct SubmittedTask {
  TaskId id;
  AccessList accesses;
};

/// Build a random workload on `rt`; every task gets 1-3 whole-region
/// accesses with random modes. Returns what was submitted.
std::vector<SubmittedTask> submit_random(Runtime& rt, const WorkloadSpec& spec,
                                         TaskTypeId type) {
  Rng rng(spec.seed);
  std::vector<RegionId> regions;
  for (std::size_t r = 0; r < spec.regions; ++r) {
    regions.push_back(
        rt.register_data("r" + std::to_string(r), 1024 * (1 + r % 4)));
  }
  std::vector<SubmittedTask> out;
  for (std::size_t t = 0; t < spec.tasks; ++t) {
    const std::size_t clauses = 1 + rng.next_below(3);
    AccessList accesses;
    std::vector<bool> used(spec.regions, false);
    for (std::size_t c = 0; c < clauses; ++c) {
      const std::size_t region = rng.next_below(spec.regions);
      if (used[region]) continue;  // one clause per region per task
      used[region] = true;
      const auto mode = static_cast<AccessMode>(rng.next_below(3));
      accesses.push_back(Access{regions[region], mode, 0, 0});
    }
    if (accesses.empty()) {
      accesses.push_back(Access::inout(regions[0]));
    }
    const TaskId id = rt.submit(type, accesses);
    out.push_back({id, accesses});
  }
  return out;
}

/// Check execution timestamps against the dependence oracle.
void verify_dependences(const Runtime& rt,
                        const std::vector<SubmittedTask>& submitted) {
  struct RegionHistory {
    TaskId last_writer = kInvalidTask;
    Time last_writer_finish = 0.0;
    Time max_reader_finish = 0.0;
  };
  std::map<RegionId, RegionHistory> history;
  constexpr double kEps = 1e-9;

  for (const SubmittedTask& entry : submitted) {
    const Task& task = rt.task_graph().task(entry.id);
    ASSERT_EQ(task.state, TaskState::kFinished) << entry.id;
    for (const Access& access : entry.accesses) {
      RegionHistory& h = history[access.region];
      if (reads(access.mode) && h.last_writer != kInvalidTask) {
        EXPECT_GE(task.start_time + kEps, h.last_writer_finish)
            << "task " << entry.id << " read region " << access.region
            << " before its writer finished";
      }
      if (writes(access.mode)) {
        EXPECT_GE(task.start_time + kEps, h.last_writer_finish)
            << "WAW violation on region " << access.region;
        EXPECT_GE(task.start_time + kEps, h.max_reader_finish)
            << "WAR violation on region " << access.region;
        h.last_writer = entry.id;
        h.last_writer_finish = task.finish_time;
        h.max_reader_finish = 0.0;
      } else {
        h.max_reader_finish = std::max(h.max_reader_finish, task.finish_time);
      }
    }
  }
}

struct Combo {
  std::string scheduler;
  std::uint64_t seed;
};

class RandomDagSimTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(RandomDagSimTest, DependencesHoldInVirtualTime) {
  const auto& [scheduler, seed] = GetParam();
  const Machine machine = make_minotauro_node(3, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.seed = seed;
  Runtime rt(machine, config);

  const TaskTypeId type = rt.declare_task("t");
  rt.add_version(type, DeviceKind::kCuda, "g", nullptr,
                 make_constant_cost(1e-3));
  rt.add_version(type, DeviceKind::kSmp, "c", nullptr,
                 make_constant_cost(2.5e-3));

  WorkloadSpec spec;
  spec.seed = seed;
  const auto submitted = submit_random(rt, spec, type);
  rt.taskwait();

  EXPECT_EQ(rt.run_stats().total_tasks(), spec.tasks);
  verify_dependences(rt, submitted);
  EXPECT_TRUE(rt.task_graph().all_finished());
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, RandomDagSimTest,
    ::testing::Combine(::testing::Values("fifo", "dep-aware", "affinity",
                                         "versioning", "versioning-locality"),
                       ::testing::Values(11u, 22u, 33u)));

class RandomDagThreadTest : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomDagThreadTest, SequentialSemanticsWithRealExecution) {
  // Functional check on the thread backend: every task multiplies a
  // per-region sequence number into a running non-commutative hash, so
  // any ordering violation changes the final value.
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = GetParam();
  Runtime rt(machine, config);

  constexpr std::size_t kRegions = 6;
  constexpr std::size_t kTasks = 200;
  std::vector<std::uint64_t> cells(kRegions, 1);
  std::vector<RegionId> regions;
  for (std::size_t r = 0; r < kRegions; ++r) {
    regions.push_back(rt.register_data("r" + std::to_string(r),
                                       sizeof(std::uint64_t), &cells[r]));
  }

  const TaskTypeId type = rt.declare_task("hash");
  rt.add_version(type, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    for (std::size_t i = 0; i < ctx.arg_count(); ++i) {
      auto* cell = static_cast<std::uint64_t*>(ctx.arg(i));
      *cell = *cell * 6364136223846793005ull + 1442695040888963407ull;
    }
  });

  Rng rng(GetParam().size());  // any deterministic seed
  std::vector<std::uint64_t> expected(kRegions, 1);
  for (std::size_t t = 0; t < kTasks; ++t) {
    const std::size_t r = rng.next_below(kRegions);
    rt.submit(type, {Access::inout(regions[r])});
    expected[r] = expected[r] * 6364136223846793005ull + 1442695040888963407ull;
  }
  rt.taskwait();

  for (std::size_t r = 0; r < kRegions; ++r) {
    EXPECT_EQ(cells[r], expected[r]) << "region " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, RandomDagThreadTest,
                         ::testing::Values("fifo", "dep-aware", "affinity",
                                           "versioning",
                                           "versioning-locality"));

// Determinism property: a fixed seed reproduces the identical schedule on
// the sim backend for every scheduler.
class DeterminismTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTest, SameSeedSameScheduleAndStats) {
  auto run = [&] {
    const Machine machine = make_minotauro_node(2, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = GetParam();
    config.seed = 1234;
    Runtime rt(machine, config);
    const TaskTypeId type = rt.declare_task("t");
    rt.add_version(type, DeviceKind::kCuda, "g", nullptr,
                   make_constant_cost(1e-3));
    rt.add_version(type, DeviceKind::kSmp, "c", nullptr,
                   make_constant_cost(3e-3));
    WorkloadSpec spec;
    spec.tasks = 80;
    spec.seed = 5;
    submit_random(rt, spec, type);
    rt.taskwait();
    std::vector<std::pair<WorkerId, Time>> schedule;
    for (const Task& task : rt.task_graph().tasks()) {
      schedule.emplace_back(task.assigned_worker, task.finish_time);
    }
    return std::make_tuple(rt.elapsed(), rt.transfer_stats().total_bytes(),
                           schedule);
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, DeterminismTest,
                         ::testing::Values("fifo", "dep-aware", "affinity",
                                           "versioning",
                                           "versioning-locality"));

// Noise-robustness property: heavy duration jitter must not break the
// versioning scheduler's convergence to the faster version.
class NoisyVersioningTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NoisyVersioningTest, ConvergesToFasterVersionDespiteJitter) {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.seed = GetParam();
  config.noise.kind = sim::NoiseKind::kUniform;
  config.noise.magnitude = 0.4;  // +-40 % jitter
  config.profile.lambda = 3;
  Runtime rt(machine, config);

  const TaskTypeId type = rt.declare_task("t");
  const VersionId fast = rt.add_version(type, DeviceKind::kCuda, "fast",
                                        nullptr, make_constant_cost(1e-3));
  rt.add_version(type, DeviceKind::kSmp, "slow", nullptr,
                 make_constant_cost(20e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 100; ++i) {
    rt.submit(type, {Access::inout(r)});  // serial chain
  }
  rt.taskwait();
  // Even at 40 % jitter the 20x gap is unambiguous after learning.
  EXPECT_GE(rt.run_stats().count(fast), 90u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoisyVersioningTest,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace versa
