// White-box tests for the versioning scheduler's learning-phase machinery:
// λ-bounded in-flight sampling, the central pending pool, idle-worker
// pulls, and the fastest-executor ablation switch.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"
#include "sched/versioning_scheduler.h"

namespace versa {
namespace {

TEST(VersioningInternals, LearningInflightIsBoundedByLambda) {
  // A burst of ready tasks must not queue more than λ learning runs of the
  // slow version before any measurement exists: with gpu/smp versions,
  // λ=2 and 30 simultaneously-ready tasks, at most 2 land on SMP workers
  // before the first completions (the rest pool up or go to the GPU pool
  // slots). We check post-hoc: the slow version ran only a handful of
  // times even though half the round-robin would have sent 15.
  const Machine machine = make_minotauro_node(4, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 2;
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  const VersionId gpu =
      rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                     make_constant_cost(1e-3));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_constant_cost(100e-3));
  for (int i = 0; i < 30; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  // 30 tasks, gpu 100x faster: the slow version gets its λ learning runs
  // plus at most a couple of idle-pull extras, nowhere near 15.
  EXPECT_LE(rt.run_stats().count(smp), 6u);
  EXPECT_GE(rt.run_stats().count(smp), 2u);  // λ samples do happen
  EXPECT_EQ(rt.run_stats().count(gpu) + rt.run_stats().count(smp), 30u);
}

TEST(VersioningInternals, IdleWorkersPullFromPoolDuringLearning) {
  // One GPU version only + a burst: while the single version learns, the
  // pool must keep the GPU busy (pull path), not deadlock.
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 5;
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_constant_cost(1e-3));
  for (int i = 0; i < 20; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().total_tasks(), 20u);
  // Single worker, 1 ms each (+ 15 us PCIe latency per tiny input copy):
  // essentially serial despite the pool detour.
  EXPECT_NEAR(rt.elapsed(), 20e-3, 1e-3);
}

TEST(VersioningInternals, FastestExecutorSwitchIgnoresBusyTime) {
  // versioning-fastest: even with a saturated GPU, tasks keep going to the
  // fastest version's device; SMP workers only see λ learning runs.
  const Machine machine = make_minotauro_node(4, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning-fastest";
  config.profile.lambda = 1;
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  const VersionId gpu =
      rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                     make_constant_cost(1e-3));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_constant_cost(2e-3));
  for (int i = 0; i < 50; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  // Only the λ learning run plus a few idle pulls during the pre-reliable
  // window reach the SMP workers; the reliable phase sends everything to
  // the "fastest" GPU no matter how deep its queue gets.
  EXPECT_LE(rt.run_stats().count(smp), 5u);
  EXPECT_GE(rt.run_stats().count(gpu), 45u);
}

TEST(VersioningInternals, EarliestExecutorUsesIdleSlowWorkersInstead) {
  // Identical setup under the real policy: SMP workers pick up overflow.
  const Machine machine = make_minotauro_node(4, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 1;
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_constant_cost(1e-3));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_constant_cost(2e-3));
  for (int i = 0; i < 50; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_GT(rt.run_stats().count(smp), 10u);
}

TEST(VersioningInternals, PoolDrainsInSubmissionOrder) {
  // With a single worker and a burst larger than the learning slots, the
  // pooled tasks must still execute respecting their (chain) dependences
  // and finish in submission order per chain.
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                 make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 64);
  std::vector<TaskId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(rt.submit(t, {Access::inout(r)}));
  }
  rt.taskwait();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LE(rt.task_graph().task(ids[i - 1]).finish_time,
              rt.task_graph().task(ids[i]).start_time + 1e-12);
  }
}

TEST(VersioningInternals, CompletionRepriceCoalescesPerKey) {
  // PR-4 batched re-pricing, deterministic shape: 4 identical independent
  // tasks on 4 identical workers with λ=4 are all placed (as learning
  // samples) in the first ready batch, before any completion. The 4
  // completions then defer 4 re-price requests for the *same* price key
  // (same type, chosen version, size group); nothing places or pops
  // afterwards, so the requests sit coalesced in the dirty map until a
  // round boundary applies them — as exactly one LoadAccount::reprice.
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.profile.lambda = 4;
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                 make_constant_cost(1e-3));
  for (int i = 0; i < 4; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().total_tasks(), 4u);

  auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler());
  ASSERT_NE(qs, nullptr);
  EXPECT_EQ(qs->reprice_requests(), 4u);  // one per completion record
  const auto before = qs->reprice_flushes();
  EXPECT_LE(before, 1u);
  (void)qs->estimated_busy(0);  // forces the pending flush, a round boundary
  // The four same-key requests collapse into at most one applied re-price.
  EXPECT_LE(qs->reprice_flushes(), before + 1);
  EXPECT_LT(qs->reprice_flushes(), qs->reprice_requests());
}

TEST(VersioningInternals, ProfileTableReachableThroughRuntime) {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "gpu", nullptr, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "smp", nullptr, make_constant_cost(2e-3));
  const RegionId r = rt.register_data("r", 1024);
  for (int i = 0; i < 10; ++i) {
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait();
  auto& versioning = dynamic_cast<VersioningScheduler&>(rt.scheduler());
  EXPECT_TRUE(versioning.profile().reliable(t, 1024));
  EXPECT_EQ(versioning.profile().group_count(), 1u);
  EXPECT_FALSE(versioning.profile().dump().empty());
}

}  // namespace
}  // namespace versa
