// Tests for host calibration: measured rates are positive and sane, and
// the derived cost models reflect them.
#include <gtest/gtest.h>

#include "perf/calibrate.h"

namespace versa {
namespace {

TEST(Calibrate, MeasuresPositiveRates) {
  const HostCalibration calibration = calibrate_host(/*tile=*/48, /*reps=*/1);
  EXPECT_GT(calibration.dgemm_flops_per_second, 1e6);   // > 1 MFLOP/s
  EXPECT_LT(calibration.dgemm_flops_per_second, 1e12);  // < 1 TFLOP/s/core
  EXPECT_GT(calibration.stencil_bytes_per_second, 1e6);
  EXPECT_GT(calibration.spotrf_flops_per_second, 1e5);
}

TEST(Calibrate, GemmCostScalesCubically) {
  HostCalibration calibration;
  calibration.dgemm_flops_per_second = 1e9;
  const CostModelPtr small = calibrated_gemm_cost(calibration, 64);
  const CostModelPtr large = calibrated_gemm_cost(calibration, 128);
  EXPECT_NEAR(large->mean_duration(0) / small->mean_duration(0), 8.0, 1e-9);
  EXPECT_NEAR(small->mean_duration(0), 2.0 * 64 * 64 * 64 / 1e9, 1e-12);
}

TEST(Calibrate, StreamCostScalesLinearlyWithBytes) {
  HostCalibration calibration;
  calibration.stencil_bytes_per_second = 2e9;
  const CostModelPtr cost = calibrated_stream_cost(calibration);
  EXPECT_NEAR(cost->mean_duration(2'000'000), 1e-3, 1e-12);
  EXPECT_NEAR(cost->mean_duration(4'000'000), 2e-3, 1e-12);
}

TEST(Calibrate, RepeatedMeasurementsAreStableWithinAnOrder) {
  const HostCalibration a = calibrate_host(48, 2);
  const HostCalibration b = calibrate_host(48, 2);
  EXPECT_LT(a.dgemm_flops_per_second / b.dgemm_flops_per_second, 10.0);
  EXPECT_GT(a.dgemm_flops_per_second / b.dgemm_flops_per_second, 0.1);
}

}  // namespace
}  // namespace versa
