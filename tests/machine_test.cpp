// Unit tests for the machine model: builder invariants, interconnect
// timing, presets, kernel cost models and their paper-calibrated ratios.
#include <gtest/gtest.h>

#include "machine/cost_model.h"
#include "machine/interconnect.h"
#include "machine/kernel_models.h"
#include "machine/machine.h"
#include "machine/presets.h"

namespace versa {
namespace {

TEST(MachineBuilder, HostSpaceExistsFromStart) {
  Machine::Builder builder;
  builder.add_worker(builder.add_device(DeviceKind::kSmp, kHostSpace, "c", 1));
  const Machine machine = builder.build();
  ASSERT_GE(machine.space_count(), 1u);
  EXPECT_TRUE(machine.space(kHostSpace).is_host);
  EXPECT_EQ(machine.space(kHostSpace).name, "host");
}

TEST(MachineBuilder, IdsAreDense) {
  Machine::Builder builder;
  const SpaceId s1 = builder.add_space("g0", 1 << 20);
  const SpaceId s2 = builder.add_space("g1", 1 << 20);
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  const DeviceId d0 = builder.add_device(DeviceKind::kSmp, kHostSpace, "c", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, s1, "g", 2);
  EXPECT_EQ(d0, 0u);
  EXPECT_EQ(d1, 1u);
  EXPECT_EQ(builder.add_worker(d0), 0u);
  EXPECT_EQ(builder.add_worker(d1), 1u);
}

TEST(MachineBuilder, WorkerInheritsDeviceKindAndSpace) {
  Machine::Builder builder;
  const SpaceId gpu_mem = builder.add_space("gpu", 1 << 20);
  const DeviceId gpu = builder.add_device(DeviceKind::kCuda, gpu_mem, "g", 1);
  builder.add_worker(gpu, "gpu-worker");
  const Machine machine = builder.build();
  EXPECT_EQ(machine.worker(0).kind, DeviceKind::kCuda);
  EXPECT_EQ(machine.worker(0).space, gpu_mem);
  EXPECT_EQ(machine.worker(0).name, "gpu-worker");
}

TEST(Machine, CountWorkersByKind) {
  const Machine machine = make_minotauro_node(4, 2);
  EXPECT_EQ(machine.count_workers(DeviceKind::kSmp), 4u);
  EXPECT_EQ(machine.count_workers(DeviceKind::kCuda), 2u);
  EXPECT_EQ(machine.worker_count(), 6u);
}

TEST(Interconnect, TransferTimeIsLatencyPlusBandwidthTerm) {
  Interconnect net;
  net.add_bidi_link(0, 1, 1e9, 1e-5);
  // 1 MB over 1 GB/s = 1 ms (+10 us latency).
  EXPECT_NEAR(net.transfer_time(0, 1, 1'000'000), 1.01e-3, 1e-9);
  EXPECT_NEAR(net.transfer_time(1, 0, 1'000'000), 1.01e-3, 1e-9);
}

TEST(Interconnect, MissingLinkIsNull) {
  Interconnect net;
  net.add_bidi_link(0, 1, 1e9, 0.0);
  EXPECT_NE(net.find(0, 1), nullptr);
  EXPECT_EQ(net.find(1, 2), nullptr);
}

TEST(Interconnect, ReaddingLinkReplacesIt) {
  Interconnect net;
  net.add_link(LinkDesc{0, 1, 1e9, 0.0});
  net.add_link(LinkDesc{0, 1, 2e9, 0.0});
  EXPECT_EQ(net.link_count(), 1u);
  EXPECT_DOUBLE_EQ(net.find(0, 1)->bandwidth, 2e9);
}

TEST(Presets, MinotauroTopology) {
  const Machine machine = make_minotauro_node(8, 2);
  // host + 2 GPU spaces.
  EXPECT_EQ(machine.space_count(), 3u);
  // PCIe both ways per GPU + GPU<->GPU both ways.
  EXPECT_EQ(machine.interconnect().link_count(), 6u);
  // 6 GB per GPU memory.
  EXPECT_EQ(machine.space(1).capacity, 6ull << 30);
  EXPECT_EQ(machine.space(kHostSpace).capacity, 24ull << 30);
}

TEST(Presets, SingleGpuHasNoPeerLink) {
  const Machine machine = make_minotauro_node(2, 1);
  EXPECT_EQ(machine.space_count(), 2u);
  EXPECT_EQ(machine.interconnect().link_count(), 2u);
}

TEST(Presets, OneGpuIsRoughlyHalfMachinePeak) {
  // §V-B1: one GPU ≈ 45 % of node peak, one SMP core < 1 %.
  const Machine machine = make_minotauro_node(12, 2);
  const double total = machine.total_peak_flops();
  double gpu_peak = 0.0, core_peak = 0.0;
  for (const auto& device : machine.devices()) {
    if (device.kind == DeviceKind::kCuda) gpu_peak = device.peak_flops;
    if (device.kind == DeviceKind::kSmp) core_peak = device.peak_flops;
  }
  EXPECT_NEAR(gpu_peak / total, 0.45, 0.03);
  EXPECT_LT(core_peak / total, 0.01);
}

TEST(Presets, SmpMachineIsHostOnly) {
  const Machine machine = make_smp_machine(3);
  EXPECT_EQ(machine.space_count(), 1u);
  EXPECT_EQ(machine.worker_count(), 3u);
  EXPECT_EQ(machine.count_workers(DeviceKind::kCuda), 0u);
}

TEST(CostModel, ConstantIgnoresSize) {
  const CostModelPtr model = make_constant_cost(2.5e-3);
  EXPECT_DOUBLE_EQ(model->mean_duration(0), 2.5e-3);
  EXPECT_DOUBLE_EQ(model->mean_duration(1 << 30), 2.5e-3);
}

TEST(CostModel, LinearScalesWithBytes) {
  const CostModelPtr model = make_linear_cost(1e-3, 1e-9);
  EXPECT_DOUBLE_EQ(model->mean_duration(0), 1e-3);
  EXPECT_DOUBLE_EQ(model->mean_duration(1'000'000), 2e-3);
}

TEST(CostModel, CallableDelegates) {
  const CostModelPtr model = make_callable_cost(
      [](std::uint64_t bytes) { return static_cast<double>(bytes) * 2.0; });
  EXPECT_DOUBLE_EQ(model->mean_duration(21), 42.0);
}

TEST(KernelModels, FlopCounts) {
  EXPECT_EQ(kernels::gemm_flops(1024), 2ull * 1024 * 1024 * 1024);
  EXPECT_EQ(kernels::potrf_flops(3), 9ull);  // 27/3
  EXPECT_EQ(kernels::trsm_flops(4), 64ull);
  EXPECT_EQ(kernels::syrk_flops(4), 64ull);
}

TEST(KernelModels, SmpGemmTileIsAbout60xCublas) {
  // §V-B1: "SMP task duration is about 60 times the GPU task duration".
  const double cublas = kernels::cublas_dgemm_tile(1024)->mean_duration(0);
  const double cblas = kernels::cblas_dgemm_tile(1024)->mean_duration(0);
  EXPECT_NEAR(cblas / cublas, 60.0, 6.0);
}

TEST(KernelModels, HandCudaSlowerThanCublas) {
  const double cublas = kernels::cublas_dgemm_tile(1024)->mean_duration(0);
  const double cuda = kernels::hand_cuda_dgemm_tile(1024)->mean_duration(0);
  EXPECT_GT(cuda, cublas);
  EXPECT_LT(cuda, 60.0 * cublas);
}

TEST(KernelModels, PbpiLoop2SmpIs3To4xGpu) {
  // §V-B3: "the task itself is between three and four times slower for
  // the SMP versions" (said of the shared loop-2 work).
  using kernels::PbpiCosts;
  const double r2 = PbpiCosts::kLoop2Smp / PbpiCosts::kLoop2Gpu;
  EXPECT_GE(r2, 3.0);
  EXPECT_LE(r2, 4.0);
  // Loop 1 is distinctly GPU-friendly (Figure 14 sends it to the GPU).
  EXPECT_GT(PbpiCosts::kLoop1Smp / PbpiCosts::kLoop1Gpu,
            PbpiCosts::kLoop2Smp / PbpiCosts::kLoop2Gpu);
}

TEST(KernelModels, PotrfGpuFasterThanSmp) {
  const double gpu = kernels::magma_spotrf_block(2048)->mean_duration(0);
  const double smp = kernels::cblas_spotrf_block(2048)->mean_duration(0);
  EXPECT_LT(gpu, smp);
}

}  // namespace
}  // namespace versa
