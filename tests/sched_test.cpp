// Unit tests for the scheduling layer: profile tables (Table I semantics),
// the plugin factory, the baseline policies, and the versioning scheduler's
// two phases — learning (round-robin to λ) and reliable (earliest
// executor, Figure 5) — plus hints files and the locality extension.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "sched/affinity_scheduler.h"
#include "sched/dep_aware_scheduler.h"
#include "sched/fifo_scheduler.h"
#include "sched/hints_file.h"
#include "sched/locality_versioning_scheduler.h"
#include "sched/profile_table.h"
#include "sched/scheduler_factory.h"
#include "sched/versioning_scheduler.h"

namespace versa {
namespace {

/// Minimal SchedulerContext for driving policies without a full runtime.
class TestContext : public SchedulerContext {
 public:
  explicit TestContext(Machine machine)
      : machine_(std::move(machine)), directory_(machine_) {}

  const Machine& machine() const override { return machine_; }
  const VersionRegistry& registry() const override { return registry_; }
  DataDirectory& directory() override { return directory_; }
  TaskGraph& graph() override { return graph_; }
  Time now() const override { return now_; }
  void task_assigned(TaskId task, WorkerId worker) override {
    assignments.emplace_back(task, worker);
  }

  Task& make_ready_task(TaskTypeId type, std::uint64_t size,
                        AccessList accesses = {}) {
    for (Access& a : accesses) {
      if (a.length == 0) a.length = directory_.region(a.region).size;
    }
    Task& task = graph_.create_task(type, std::move(accesses), size, "");
    task.state = TaskState::kReady;
    return task;
  }

  /// Pop, "run", and complete a task on `worker` with a fixed duration.
  TaskId run_one(Scheduler& sched, WorkerId worker, Duration duration) {
    const TaskId id = sched.pop_task(worker);
    if (id == kInvalidTask) return id;
    Task& task = graph_.task(id);
    task.state = TaskState::kRunning;
    std::vector<TaskId> ready;
    graph_.mark_finished(id, now_ += duration, ready);
    sched.task_completed(task, worker, duration);
    return id;
  }

  VersionRegistry registry_;
  Machine machine_;
  DataDirectory directory_;
  TaskGraph graph_;
  Time now_ = 0.0;
  std::vector<std::pair<TaskId, WorkerId>> assignments;
};

// --- ProfileTable ---------------------------------------------------------

TEST(ProfileTable, ExactGroupingSeparatesSizes) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v, 1000, 1.0);
  table.record(t, v, 1001, 3.0);
  EXPECT_EQ(table.count(t, v, 1000), 1u);
  EXPECT_EQ(table.count(t, v, 1001), 1u);
  EXPECT_DOUBLE_EQ(*table.mean(t, v, 1000), 1.0);
  EXPECT_EQ(table.group_count(), 2u);
}

TEST(ProfileTable, RangeGroupingJoinsSimilarSizes) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileConfig config;
  config.grouping = SizeGrouping::kRange;
  config.range_ratio = 1.25;
  ProfileTable table(reg, config);
  // 1000 and 1001 fall in the same log bucket; 4000 does not.
  EXPECT_EQ(table.group_key(1000), table.group_key(1001));
  EXPECT_NE(table.group_key(1000), table.group_key(4000));
  table.record(t, v, 1000, 1.0);
  EXPECT_EQ(table.count(t, v, 1001), 1u);
}

// nearest_group_mean is the busy-accounting fallback for unprofiled
// (type, size) groups; its selection rule is part of the deterministic
// contract documented in profile_table.h.

TEST(ProfileTableNearestGroup, SingleGroupServesEveryQuery) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v, 1000, 2.5);
  // Any query key — below, at, far above — falls back to the only group.
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 1), 2.5);
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 1000), 2.5);
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 1'000'000'000), 2.5);
}

TEST(ProfileTableNearestGroup, ExactMidpointTieBreaksToSmallerKey) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v, 1000, 1.0);
  table.record(t, v, 3000, 9.0);
  // 2000 is equidistant from both groups: the smaller key (1000) wins.
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 2000), 1.0);
  // Off the midpoint the strictly nearest group wins in either direction.
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 1999), 1.0);
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v, 2001), 9.0);
}

TEST(ProfileTableNearestGroup, IgnoresGroupsWithoutTheVersion) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v1 = reg.add_version(t, DeviceKind::kCuda, "a", nullptr, nullptr);
  const VersionId v2 = reg.add_version(t, DeviceKind::kSmp, "b", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v1, 1000, 1.0);  // near, but only for v1
  table.record(t, v2, 9000, 7.0);
  EXPECT_DOUBLE_EQ(*table.nearest_group_mean(t, v2, 1100), 7.0);
  const VersionId v3 = reg.add_version(t, DeviceKind::kSmp, "c", nullptr, nullptr);
  EXPECT_FALSE(table.nearest_group_mean(t, v3, 1000).has_value());
}

TEST(ProfileTable, MeanAveragesObservations) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v, 100, 2.0);
  table.record(t, v, 100, 4.0);
  EXPECT_DOUBLE_EQ(*table.mean(t, v, 100), 3.0);
  EXPECT_FALSE(table.mean(t, v, 200).has_value());
}

TEST(ProfileTable, ReliableNeedsLambdaRunsOfEveryVersion) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v1 = reg.add_version(t, DeviceKind::kCuda, "a", nullptr, nullptr);
  const VersionId v2 = reg.add_version(t, DeviceKind::kSmp, "b", nullptr, nullptr);
  ProfileConfig config;
  config.lambda = 2;
  ProfileTable table(reg, config);
  table.record(t, v1, 100, 1.0);
  table.record(t, v1, 100, 1.0);
  EXPECT_FALSE(table.reliable(t, 100));  // v2 never ran
  table.record(t, v2, 100, 1.0);
  EXPECT_FALSE(table.reliable(t, 100));  // v2 only once
  table.record(t, v2, 100, 1.0);
  EXPECT_TRUE(table.reliable(t, 100));
  EXPECT_FALSE(table.reliable(t, 999));  // other group unaffected
}

TEST(ProfileTable, FastestVersion) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId slow = reg.add_version(t, DeviceKind::kSmp, "slow", nullptr, nullptr);
  const VersionId fast = reg.add_version(t, DeviceKind::kCuda, "fast", nullptr, nullptr);
  ProfileTable table(reg, {});
  EXPECT_FALSE(table.fastest_version(t, 100).has_value());
  table.record(t, slow, 100, 10.0);
  table.record(t, fast, 100, 1.0);
  EXPECT_EQ(*table.fastest_version(t, 100), fast);
}

TEST(ProfileTable, PrimeSeedsMeanAndCount) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.prime(t, v, table.group_key(100), 5.0, 3);
  EXPECT_EQ(table.count(t, v, 100), 3u);
  EXPECT_DOUBLE_EQ(*table.mean(t, v, 100), 5.0);
  EXPECT_TRUE(table.reliable(t, 100));
}

TEST(ProfileTable, DumpMentionsVersionNames) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("matmul_tile");
  const VersionId v = reg.add_version(t, DeviceKind::kCuda, "cublas", nullptr, nullptr);
  ProfileTable table(reg, {});
  table.record(t, v, 8 << 20, 5e-3);
  const std::string dump = table.dump();
  EXPECT_NE(dump.find("matmul_tile"), std::string::npos);
  EXPECT_NE(dump.find("cublas"), std::string::npos);
}

TEST(ProfileTable, EmaConfigPropagates) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileConfig config;
  config.mean_kind = MeanKind::kExponential;
  config.ema_alpha = 0.9;
  ProfileTable table(reg, config);
  table.record(t, v, 100, 1.0);
  for (int i = 0; i < 10; ++i) table.record(t, v, 100, 9.0);
  EXPECT_GT(*table.mean(t, v, 100), 8.5);  // recent-dominated
}

// --- factory ---------------------------------------------------------------

TEST(SchedulerFactory, MakesEveryAdvertisedScheduler) {
  for (const std::string& name : scheduler_names()) {
    const auto sched = make_scheduler(name);
    ASSERT_NE(sched, nullptr) << name;
    EXPECT_EQ(sched->name(), name);
  }
}

TEST(SchedulerFactory, UnknownNameIsNull) {
  EXPECT_EQ(make_scheduler("no-such-policy"), nullptr);
}

// --- baseline policies -------------------------------------------------------

TEST(Fifo, ServesOldestCompatibleTask) {
  TestContext ctx(make_minotauro_node(1, 1));
  const TaskTypeId gpu_task = ctx.registry_.declare_task("g");
  ctx.registry_.add_version(gpu_task, DeviceKind::kCuda, "v", nullptr, nullptr);
  const TaskTypeId cpu_task = ctx.registry_.declare_task("c");
  ctx.registry_.add_version(cpu_task, DeviceKind::kSmp, "v", nullptr, nullptr);

  FifoScheduler sched;
  sched.attach(ctx);
  Task& t0 = ctx.make_ready_task(gpu_task, 0);
  Task& t1 = ctx.make_ready_task(cpu_task, 0);
  Task& t2 = ctx.make_ready_task(gpu_task, 0);
  sched.task_ready(t0);
  sched.task_ready(t1);
  sched.task_ready(t2);

  // Worker 0 is SMP: skips GPU tasks and takes t1.
  EXPECT_EQ(sched.pop_task(0), t1.id);
  // Worker 1 is the GPU: takes t0 then t2, in order.
  EXPECT_EQ(sched.pop_task(1), t0.id);
  EXPECT_EQ(sched.pop_task(1), t2.id);
  EXPECT_EQ(sched.pop_task(1), kInvalidTask);
  EXPECT_FALSE(sched.has_pending());
}

TEST(Fifo, ChoosesMainVersion) {
  TestContext ctx(make_minotauro_node(1, 1));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  const VersionId main =
      ctx.registry_.add_version(t, DeviceKind::kCuda, "main", nullptr, nullptr);
  ctx.registry_.add_version(t, DeviceKind::kSmp, "alt", nullptr, nullptr);

  FifoScheduler sched;
  sched.attach(ctx);
  Task& task = ctx.make_ready_task(t, 0);
  sched.task_ready(task);
  // The baseline ignores `implements` versions: the SMP worker gets nothing.
  EXPECT_EQ(sched.pop_task(0), kInvalidTask);
  EXPECT_EQ(sched.pop_task(1), task.id);
  EXPECT_EQ(task.chosen_version, main);
}

TEST(DepAware, FollowsChainsOntoReleasingWorker) {
  TestContext ctx(make_minotauro_node(4, 0));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  ctx.registry_.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);

  DepAwareScheduler sched;
  sched.attach(ctx);
  Task& head = ctx.make_ready_task(t, 0);
  sched.task_ready(head);
  const WorkerId worker = head.assigned_worker;
  ASSERT_NE(worker, kInvalidWorker);

  // Simulate completion on that worker, then release the successor.
  ctx.run_one(sched, worker, 1.0);
  Task& next = ctx.make_ready_task(t, 0);
  sched.task_ready(next);
  EXPECT_EQ(next.assigned_worker, worker);  // chain continues
}

TEST(DepAware, IncompatibleChainFallsBackToLeastLoaded) {
  TestContext ctx(make_minotauro_node(2, 1));
  const TaskTypeId gpu_task = ctx.registry_.declare_task("g");
  ctx.registry_.add_version(gpu_task, DeviceKind::kCuda, "v", nullptr, nullptr);
  const TaskTypeId cpu_task = ctx.registry_.declare_task("c");
  ctx.registry_.add_version(cpu_task, DeviceKind::kSmp, "v", nullptr, nullptr);

  DepAwareScheduler sched;
  sched.attach(ctx);
  Task& gpu_head = ctx.make_ready_task(gpu_task, 0);
  sched.task_ready(gpu_head);
  ctx.run_one(sched, gpu_head.assigned_worker, 1.0);

  // Released task only has an SMP version: must not go to the GPU worker.
  Task& cpu_next = ctx.make_ready_task(cpu_task, 0);
  sched.task_ready(cpu_next);
  EXPECT_EQ(ctx.machine_.worker(cpu_next.assigned_worker).kind,
            DeviceKind::kSmp);
}

TEST(Affinity, PrefersSpaceHoldingTheData) {
  TestContext ctx(make_minotauro_node(1, 2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  ctx.registry_.add_version(t, DeviceKind::kCuda, "v", nullptr, nullptr);
  const RegionId r = ctx.directory_.register_region("r", 1 << 20);

  // Put the data on GPU 1 (worker 2).
  const SpaceId gpu1_space = ctx.machine_.worker(2).space;
  TransferList ops;
  ctx.directory_.acquire({Access::inout_range(r, 0, 1 << 20)}, gpu1_space, ops);

  AffinityScheduler sched;
  sched.attach(ctx);
  Task& task = ctx.make_ready_task(t, 1 << 20, {Access::in(r)});
  sched.task_ready(task);
  EXPECT_EQ(task.assigned_worker, 2u);
}

TEST(Affinity, TieBreaksByQueueLength) {
  TestContext ctx(make_minotauro_node(1, 2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  ctx.registry_.add_version(t, DeviceKind::kCuda, "v", nullptr, nullptr);

  AffinityScheduler sched;
  sched.attach(ctx);
  // No data anywhere: both GPUs miss everything equally; queue length
  // decides, so assignments alternate.
  Task& a = ctx.make_ready_task(t, 0);
  sched.task_ready(a);
  Task& b = ctx.make_ready_task(t, 0);
  sched.task_ready(b);
  EXPECT_NE(a.assigned_worker, b.assigned_worker);
}

TEST(QueueSchedulerStealing, IdleSameKindWorkerSteals) {
  TestContext ctx(make_minotauro_node(1, 2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  ctx.registry_.add_version(t, DeviceKind::kCuda, "v", nullptr, nullptr);
  const RegionId r = ctx.directory_.register_region("r", 1 << 20);
  const SpaceId gpu0_space = ctx.machine_.worker(1).space;
  TransferList ops;
  ctx.directory_.acquire({Access::inout_range(r, 0, 1 << 20)}, gpu0_space, ops);

  AffinityScheduler sched;
  sched.attach(ctx);
  // Both tasks want the data on GPU 0 -> both queue on worker 1.
  Task& a = ctx.make_ready_task(t, 1 << 20, {Access::in(r)});
  Task& b = ctx.make_ready_task(t, 1 << 20, {Access::in(r)});
  sched.task_ready(a);
  sched.task_ready(b);
  EXPECT_EQ(sched.queue_length(1), 2u);

  // Worker 2 (the other GPU) is idle: it steals from worker 1's tail.
  const TaskId stolen = sched.pop_task(2);
  EXPECT_EQ(stolen, b.id);
  // Since the lock split, the steal path never touches the task graph:
  // re-homing Task::assigned_worker is the executor's job, done under the
  // runtime lock when the stolen task starts. Here the scheduler only
  // moved the queue entry.
  EXPECT_EQ(sched.queue_length(1), 1u);
  // The SMP worker cannot steal GPU work.
  EXPECT_EQ(sched.pop_task(0), kInvalidTask);
  // The victim keeps its head-of-queue task.
  EXPECT_EQ(sched.pop_task(1), a.id);
}

// --- versioning scheduler ----------------------------------------------------

class VersioningTest : public ::testing::Test {
 protected:
  VersioningTest() : ctx_(make_minotauro_node(2, 1)) {
    // Workers 0,1 = SMP; worker 2 = GPU.
    type_ = ctx_.registry_.declare_task("work");
    gpu_ = ctx_.registry_.add_version(type_, DeviceKind::kCuda, "gpu", nullptr,
                                      nullptr);
    smp_ = ctx_.registry_.add_version(type_, DeviceKind::kSmp, "smp", nullptr,
                                      nullptr);
  }

  /// Drive `n` ready tasks through the scheduler, completing each
  /// immediately on its assigned worker with a duration depending on the
  /// chosen version.
  void run_tasks(VersioningScheduler& sched, int n, Duration gpu_time,
                 Duration smp_time, std::uint64_t size = 1000) {
    for (int i = 0; i < n; ++i) {
      Task& task = ctx_.make_ready_task(type_, size);
      sched.task_ready(task);
      const WorkerId w = task.assigned_worker;
      ASSERT_NE(w, kInvalidWorker);
      const Duration d = task.chosen_version == gpu_ ? gpu_time : smp_time;
      ASSERT_EQ(ctx_.run_one(sched, w, d), task.id);
    }
  }

  TestContext ctx_;
  TaskTypeId type_;
  VersionId gpu_, smp_;
};

TEST_F(VersioningTest, LearningPhaseSamplesEveryVersionLambdaTimes) {
  ProfileConfig config;
  config.lambda = 3;
  VersioningScheduler sched(config);
  sched.attach(ctx_);

  run_tasks(sched, 6, 1e-3, 10e-3);
  EXPECT_EQ(sched.profile().count(type_, gpu_, 1000), 3u);
  EXPECT_EQ(sched.profile().count(type_, smp_, 1000), 3u);
  EXPECT_TRUE(sched.profile().reliable(type_, 1000));
}

TEST_F(VersioningTest, ReliablePhasePicksFastestWhenIdle) {
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx_);
  run_tasks(sched, 2, 1e-3, 10e-3);  // learning: one of each
  ASSERT_TRUE(sched.profile().reliable(type_, 1000));

  // All workers idle: the GPU version is 10x faster -> earliest executor.
  Task& task = ctx_.make_ready_task(type_, 1000);
  sched.task_ready(task);
  EXPECT_EQ(task.chosen_version, gpu_);
  EXPECT_EQ(ctx_.machine_.worker(task.assigned_worker).kind,
            DeviceKind::kCuda);
}

TEST_F(VersioningTest, BusyFastWorkerLosesToIdleSlowWorker) {
  // The Figure 5 scenario: the GPU is the fastest executor but its queue
  // is long; an idle SMP worker finishes the task earlier.
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx_);
  run_tasks(sched, 2, 1e-3, 3e-3);  // gpu 1 ms, smp 3 ms

  // Enqueue (without completing) enough GPU work to make its estimated
  // busy time exceed the SMP mean.
  std::vector<TaskId> queued;
  for (int i = 0; i < 5; ++i) {
    Task& task = ctx_.make_ready_task(type_, 1000);
    sched.task_ready(task);
    queued.push_back(task.id);
  }
  // First picks go to the GPU until its backlog passes 3 ms, then SMP
  // workers start receiving tasks.
  int gpu_count = 0, smp_count = 0;
  for (TaskId id : queued) {
    const Task& task = ctx_.graph_.task(id);
    if (task.chosen_version == gpu_) {
      ++gpu_count;
    } else {
      ++smp_count;
    }
  }
  EXPECT_GE(gpu_count, 2);
  EXPECT_GE(smp_count, 1);  // the overflow went to idle SMP workers
  EXPECT_GT(sched.estimated_busy(2), 0.0);
}

TEST_F(VersioningTest, NewDataSizeReentersLearning) {
  ProfileConfig config;
  config.lambda = 2;
  VersioningScheduler sched(config);
  sched.attach(ctx_);
  run_tasks(sched, 4, 1e-3, 10e-3);
  ASSERT_TRUE(sched.profile().reliable(type_, 1000));

  // A different data-set size has no information: learning again.
  EXPECT_FALSE(sched.profile().reliable(type_, 5000));
  run_tasks(sched, 4, 1e-3, 10e-3, /*size=*/5000);
  EXPECT_TRUE(sched.profile().reliable(type_, 5000));
  EXPECT_EQ(sched.profile().count(type_, gpu_, 5000), 2u);
}

TEST_F(VersioningTest, BusyAccountingDrainsOnCompletion) {
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx_);
  run_tasks(sched, 2, 1e-3, 3e-3);
  for (WorkerId w = 0; w < 3; ++w) {
    EXPECT_NEAR(sched.estimated_busy(w), 0.0, 1e-12) << w;
  }
}

TEST_F(VersioningTest, ProfileKeepsLearningInReliablePhase) {
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx_);
  run_tasks(sched, 2, 1e-3, 3e-3);
  const std::uint64_t before = sched.profile().count(type_, gpu_, 1000);
  run_tasks(sched, 4, 1e-3, 3e-3);
  EXPECT_GT(sched.profile().count(type_, gpu_, 1000) +
                sched.profile().count(type_, smp_, 1000),
            before + 1);
}

TEST(VersioningSingleDevice, WorksWithOnlySmpWorkers) {
  TestContext ctx(make_smp_machine(2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  const VersionId smp =
      ctx.registry_.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx);
  for (int i = 0; i < 4; ++i) {
    Task& task = ctx.make_ready_task(t, 100);
    sched.task_ready(task);
    EXPECT_EQ(task.chosen_version, smp);
    ctx.run_one(sched, task.assigned_worker, 1e-3);
  }
}

TEST(VersioningUnrunnableVersion, FallsBackToRunnableVersions) {
  // A version targeting a device kind with no workers must not wedge the
  // learning phase.
  TestContext ctx(make_smp_machine(2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  ctx.registry_.add_version(t, DeviceKind::kCuda, "gpu", nullptr, nullptr);
  const VersionId smp =
      ctx.registry_.add_version(t, DeviceKind::kSmp, "smp", nullptr, nullptr);
  ProfileConfig config;
  config.lambda = 1;
  VersioningScheduler sched(config);
  sched.attach(ctx);
  for (int i = 0; i < 3; ++i) {
    Task& task = ctx.make_ready_task(t, 100);
    sched.task_ready(task);
    EXPECT_EQ(task.chosen_version, smp);
    ctx.run_one(sched, task.assigned_worker, 1e-3);
  }
}

TEST(LocalityVersioning, PenaltyBreaksTieTowardDataHolder) {
  TestContext ctx(make_minotauro_node(1, 2));
  const TaskTypeId t = ctx.registry_.declare_task("t");
  const VersionId gpu =
      ctx.registry_.add_version(t, DeviceKind::kCuda, "gpu", nullptr, nullptr);
  const RegionId r = ctx.directory_.register_region("r", 64 << 20);

  ProfileConfig config;
  config.lambda = 1;
  LocalityVersioningScheduler sched(config);
  sched.attach(ctx);

  // Learn the version once (goes to some GPU). Mimic the executor's data
  // acquire so the directory knows where the data ended up.
  Task& warmup = ctx.make_ready_task(t, 64 << 20, {Access::inout(r)});
  sched.task_ready(warmup);
  const WorkerId holder = warmup.assigned_worker;
  TransferList ops;
  ctx.directory_.acquire(warmup.accesses, ctx.machine_.worker(holder).space,
                         ops);
  ctx.run_one(sched, holder, 1e-3);
  // Pick the non-holder GPU as a control: it must be missing the data.
  const WorkerId other = holder == 1 ? 2 : 1;
  ASSERT_GT(ctx.directory_.bytes_missing(warmup.accesses,
                                         ctx.machine_.worker(other).space),
            0u);

  // The data now lives on `holder`'s GPU; with equal means and equal
  // (zero) busy, the transfer penalty must steer the next task there.
  Task& task = ctx.make_ready_task(t, 64 << 20, {Access::inout(r)});
  sched.task_ready(task);
  EXPECT_EQ(task.assigned_worker, holder);
  EXPECT_EQ(task.chosen_version, gpu);
}

// --- hints files -------------------------------------------------------------

TEST(Hints, RoundTripThroughText) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("matmul");
  const VersionId v = reg.add_version(t, DeviceKind::kCuda, "cublas", nullptr,
                                      nullptr);
  ProfileConfig config;
  config.lambda = 3;
  ProfileTable source(reg, config);
  for (int i = 0; i < 5; ++i) source.record(t, v, 4096, 2e-3);

  const std::string text = serialize_hints(reg, source);
  ProfileTable target(reg, config);
  EXPECT_EQ(parse_hints(text, reg, target), 1);
  EXPECT_NEAR(*target.mean(t, v, 4096), 2e-3, 1e-12);
  // Count is clamped to λ.
  EXPECT_EQ(target.count(t, v, 4096), 3u);
}

TEST(Hints, UnknownNamesAreSkippedNotFatal) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("known");
  reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable table(reg, {});
  EXPECT_EQ(parse_hints("hint ghost v 100 1.0 2\n", reg, table), 0);
  EXPECT_EQ(parse_hints("hint known ghost 100 1.0 2\n", reg, table), 0);
}

TEST(Hints, MalformedInputReturnsError) {
  VersionRegistry reg;
  ProfileTable table(reg, {});
  EXPECT_EQ(parse_hints("hint too few\n", reg, table), -1);
  EXPECT_EQ(parse_hints("nothint a b 1 1.0 1\n", reg, table), -1);
  EXPECT_EQ(parse_hints("hint a b 1 -5.0 1\n", reg, table), -1);
}

TEST(Hints, CommentsAndBlanksIgnored) {
  VersionRegistry reg;
  ProfileTable table(reg, {});
  EXPECT_EQ(parse_hints("# comment\n\n   \n", reg, table), 0);
}

TEST(Hints, FileRoundTrip) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("t");
  const VersionId v = reg.add_version(t, DeviceKind::kSmp, "v", nullptr, nullptr);
  ProfileTable source(reg, {});
  source.record(t, v, 100, 1.5);

  const std::string path = testing::TempDir() + "/versa_hints_test.txt";
  ASSERT_TRUE(save_hints(path, reg, source));
  ProfileTable target(reg, {});
  EXPECT_GE(load_hints(path, reg, target), 1);
  EXPECT_NEAR(*target.mean(t, v, 100), 1.5, 1e-12);
  EXPECT_EQ(load_hints("/nonexistent/path/hints.txt", reg, target), -1);
}

}  // namespace
}  // namespace versa
