// Tests for the persistent profile subsystem (src/profile/): machine
// signatures, store save/load round-trips (property test over random
// tables), signature-mismatch rejection, corrupt-file fallback, legacy
// hint-format import through the unified store path, and the CUSUM drift
// detector (no false trigger under calibrated lognormal noise; prompt
// trigger after a 2x cost shift).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "machine/presets.h"
#include "profile/drift_detector.h"
#include "profile/machine_signature.h"
#include "profile/profile_store.h"
#include "sched/hints_file.h"
#include "sched/xml_hints.h"

namespace versa {
namespace {

struct Fixture {
  VersionRegistry registry;
  TaskTypeId matmul, potrf;
  VersionId mm_gpu, mm_smp, po_gpu;

  Fixture() {
    matmul = registry.declare_task("matmul_tile");
    mm_gpu = registry.add_version(matmul, DeviceKind::kCuda, "cublas", nullptr,
                                  nullptr);
    mm_smp = registry.add_version(matmul, DeviceKind::kSmp, "cblas", nullptr,
                                  nullptr);
    potrf = registry.declare_task("potrf");
    po_gpu = registry.add_version(potrf, DeviceKind::kCuda, "magma", nullptr,
                                  nullptr);
  }
};

MachineSignature test_signature() {
  return compute_machine_signature(make_minotauro_node(4, 2));
}

// --- machine signature --------------------------------------------------

TEST(MachineSignature, DeterministicAndSensitive) {
  const Machine a = make_minotauro_node(4, 2);
  const Machine b = make_minotauro_node(4, 2);
  EXPECT_EQ(compute_machine_signature(a).hash,
            compute_machine_signature(b).hash);

  // Different worker counts, device sets, and calibration tokens all
  // change the hash.
  EXPECT_NE(compute_machine_signature(a).hash,
            compute_machine_signature(make_minotauro_node(8, 2)).hash);
  EXPECT_NE(compute_machine_signature(a).hash,
            compute_machine_signature(make_minotauro_node(4, 1)).hash);
  EXPECT_NE(compute_machine_signature(a).hash,
            compute_machine_signature(make_smp_machine(4)).hash);
  EXPECT_NE(compute_machine_signature(a).hash,
            compute_machine_signature(a, "calib-v2").hash);
  EXPECT_EQ(compute_machine_signature(a, "calib-v2").hash,
            compute_machine_signature(a, "calib-v2").hash);
}

// --- store round trip ---------------------------------------------------

TEST(ProfileStore, RoundTripPropertyOverRandomTables) {
  Fixture fx;
  Rng rng(20260805);
  for (int trial = 0; trial < 25; ++trial) {
    ProfileConfig config;
    config.lambda = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    config.mean_kind =
        rng.next_below(2) == 0 ? MeanKind::kArithmetic : MeanKind::kExponential;
    ProfileTable source(fx.registry, config);

    // Random observation history over random (type, version, size) cells.
    const struct {
      TaskTypeId type;
      VersionId version;
    } cells[] = {{fx.matmul, fx.mm_gpu}, {fx.matmul, fx.mm_smp},
                 {fx.potrf, fx.po_gpu}};
    const int observations = 1 + static_cast<int>(rng.next_below(60));
    for (int i = 0; i < observations; ++i) {
      const auto& cell = cells[rng.next_below(3)];
      const std::uint64_t size = 1024u << rng.next_below(4);
      source.record(cell.type, cell.version, size,
                    rng.uniform(1e-4, 5e-1));
    }

    const ProfileStore store(fx.registry, test_signature());
    const std::string text = store.serialize(source);

    ProfileTable loaded(fx.registry, config);
    const ProfileLoadResult result = store.import_text(text, loaded);
    ASSERT_EQ(result.status, ProfileLoadStatus::kOk) << result.message;
    EXPECT_EQ(result.skipped, 0);
    EXPECT_TRUE(result.warm());

    const auto source_entries = source.entries();
    const auto loaded_entries = loaded.entries();
    ASSERT_EQ(source_entries.size(), loaded_entries.size());
    ASSERT_EQ(result.applied, static_cast<int>(source_entries.size()));
    for (std::size_t i = 0; i < source_entries.size(); ++i) {
      EXPECT_EQ(source_entries[i].type, loaded_entries[i].type);
      EXPECT_EQ(source_entries[i].version, loaded_entries[i].version);
      EXPECT_EQ(source_entries[i].group_key, loaded_entries[i].group_key);
      EXPECT_EQ(source_entries[i].count, loaded_entries[i].count);
      // %.17g round-trips doubles exactly.
      EXPECT_EQ(source_entries[i].mean, loaded_entries[i].mean);
      EXPECT_EQ(source_entries[i].m2, loaded_entries[i].m2);
    }
  }
}

TEST(ProfileStore, RoundTripPreservesVarianceAndReliability) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  ProfileTable source(fx.registry, config);
  source.record(fx.matmul, fx.mm_gpu, 4096, 4e-3);
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  source.record(fx.matmul, fx.mm_gpu, 4096, 6e-3);
  source.record(fx.matmul, fx.mm_smp, 4096, 0.30);
  source.record(fx.matmul, fx.mm_smp, 4096, 0.32);
  source.record(fx.matmul, fx.mm_smp, 4096, 0.34);
  ASSERT_TRUE(source.reliable(fx.matmul, 4096));

  const ProfileStore store(fx.registry, test_signature());
  ProfileTable loaded(fx.registry, config);
  ASSERT_EQ(store.import_text(store.serialize(source), loaded).status,
            ProfileLoadStatus::kOk);
  // A warm-started table is immediately reliable — no learning phase.
  EXPECT_TRUE(loaded.reliable(fx.matmul, 4096));
  EXPECT_DOUBLE_EQ(loaded.variance(fx.matmul, fx.mm_gpu, 4096),
                   source.variance(fx.matmul, fx.mm_gpu, 4096));
  EXPECT_NEAR(loaded.variance(fx.matmul, fx.mm_gpu, 4096), 1e-6, 1e-12);
}

// --- validation and fallback --------------------------------------------

TEST(ProfileStore, SignatureMismatchRejectsWholeFile) {
  Fixture fx;
  ProfileTable source(fx.registry, {});
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);

  const ProfileStore writer(
      fx.registry, compute_machine_signature(make_minotauro_node(8, 2)));
  const std::string text = writer.serialize(source);

  const ProfileStore reader(fx.registry, test_signature());
  ProfileTable target(fx.registry, {});
  const ProfileLoadResult result = reader.import_text(text, target);
  EXPECT_EQ(result.status, ProfileLoadStatus::kSignatureMismatch);
  EXPECT_EQ(result.applied, 0);
  EXPECT_FALSE(result.warm());
  EXPECT_EQ(target.group_count(), 0u);  // graceful cold start
  EXPECT_NE(result.message.find("signature"), std::string::npos);
}

TEST(ProfileStore, CorruptAndTruncatedFilesFallBackToColdStart) {
  Fixture fx;
  ProfileTable source(fx.registry, {});
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  source.record(fx.matmul, fx.mm_smp, 4096, 0.3);

  const ProfileStore store(fx.registry, test_signature());
  const std::string text = store.serialize(source);

  // Flip one payload byte: the checksum catches it.
  std::string tampered = text;
  const std::size_t pos = tampered.find("entry");
  ASSERT_NE(pos, std::string::npos);
  tampered[pos + 10] ^= 1;
  ProfileTable t1(fx.registry, {});
  EXPECT_EQ(store.import_text(tampered, t1).status,
            ProfileLoadStatus::kCorrupt);
  EXPECT_EQ(t1.group_count(), 0u);

  // Truncate before the checksum line: missing-checksum corruption.
  const std::string truncated = text.substr(0, text.rfind("checksum"));
  ProfileTable t2(fx.registry, {});
  EXPECT_EQ(store.import_text(truncated, t2).status,
            ProfileLoadStatus::kCorrupt);
  EXPECT_EQ(t2.group_count(), 0u);

  // Garbage and wrong magic.
  ProfileTable t3(fx.registry, {});
  EXPECT_EQ(store.import_text("# versa profile-store v99\n", t3).status,
            ProfileLoadStatus::kCorrupt);
  ProfileTable t4(fx.registry, {});
  EXPECT_EQ(store.import_text("", t4).status, ProfileLoadStatus::kCorrupt);
}

TEST(ProfileStore, MissingFileReportsMissing) {
  Fixture fx;
  const ProfileStore store(fx.registry, test_signature());
  ProfileTable table(fx.registry, {});
  EXPECT_EQ(store.load("/nonexistent/versa.profile", table).status,
            ProfileLoadStatus::kMissing);
}

TEST(ProfileStore, UnknownNamesCountAsMisses) {
  Fixture fx;
  ProfileTable source(fx.registry, {});
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  source.record(fx.potrf, fx.po_gpu, 4096, 7e-3);
  const ProfileStore store(fx.registry, test_signature());
  const std::string text = store.serialize(source);

  // A registry that evolved: potrf no longer exists.
  VersionRegistry small;
  const TaskTypeId matmul = small.declare_task("matmul_tile");
  const VersionId gpu =
      small.add_version(matmul, DeviceKind::kCuda, "cublas", nullptr, nullptr);
  const ProfileStore reader(small,
                            compute_machine_signature(make_minotauro_node(4, 2)));
  ProfileTable target(small, {});
  const ProfileLoadResult result = reader.import_text(text, target);
  EXPECT_EQ(result.status, ProfileLoadStatus::kOk);
  EXPECT_EQ(result.applied, 1);
  EXPECT_EQ(result.skipped, 1);
  EXPECT_EQ(target.count(matmul, gpu, 4096), 1u);
}

// --- unified import path for the legacy hint formats --------------------

TEST(ProfileStore, ImportsLegacyTextAndXmlHintsThroughSamePath) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  ProfileTable source(fx.registry, config);
  for (int i = 0; i < 5; ++i) source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);

  const ProfileStore store(fx.registry, test_signature());

  ProfileTable from_text(fx.registry, config);
  const ProfileLoadResult text_result = store.import_text(
      serialize_hints(fx.registry, source), from_text);
  EXPECT_EQ(text_result.status, ProfileLoadStatus::kOk);
  EXPECT_EQ(text_result.applied, 1);

  ProfileTable from_xml(fx.registry, config);
  const ProfileLoadResult xml_result = store.import_text(
      serialize_xml_hints(fx.registry, source), from_xml);
  EXPECT_EQ(xml_result.status, ProfileLoadStatus::kOk);
  EXPECT_EQ(xml_result.applied, 1);

  // Both legacy importers seed identically (count clamped to λ).
  EXPECT_EQ(from_text.count(fx.matmul, fx.mm_gpu, 4096),
            from_xml.count(fx.matmul, fx.mm_gpu, 4096));
  EXPECT_DOUBLE_EQ(*from_text.mean(fx.matmul, fx.mm_gpu, 4096),
                   *from_xml.mean(fx.matmul, fx.mm_gpu, 4096));

  ProfileTable bad(fx.registry, config);
  EXPECT_EQ(store.import_text("hint broken line", bad).status,
            ProfileLoadStatus::kCorrupt);
}

TEST(ProfileStore, SaveFormatFollowsExtension) {
  Fixture fx;
  ProfileTable source(fx.registry, {});
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  const ProfileStore store(fx.registry, test_signature());

  auto first_line = [](const std::string& path) {
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    return line;
  };

  const std::string dir = testing::TempDir();
  ASSERT_TRUE(store.save(dir + "/p.profile", source));
  EXPECT_NE(first_line(dir + "/p.profile").find("profile-store"),
            std::string::npos);
  ASSERT_TRUE(store.save(dir + "/p.txt", source));
  EXPECT_NE(first_line(dir + "/p.txt").find("versa hints"), std::string::npos);
  ASSERT_TRUE(store.save(dir + "/p.xml", source));
  EXPECT_NE(first_line(dir + "/p.xml").find("<?xml"), std::string::npos);

  // Every format loads back through the same sniffing entry point.
  for (const char* name : {"/p.profile", "/p.txt", "/p.xml"}) {
    ProfileTable loaded(fx.registry, {});
    EXPECT_EQ(store.load(dir + name, loaded).status, ProfileLoadStatus::kOk)
        << name;
    EXPECT_NEAR(*loaded.mean(fx.matmul, fx.mm_gpu, 4096), 5e-3, 1e-12);
  }
}

// --- concurrent store access (service mode shares one cache file) --------

TEST(ProfileStoreConcurrency, SaveAndLoadSamePathNeverTearOrMismatch) {
  // Service mode has many runtimes sharing one warm-start file: one
  // writer republishing while readers load. save() writes temp + rename,
  // so every load must observe a complete file — either kOk with the
  // signature validated, or kMissing before the very first publish.
  // kCorrupt or kSignatureMismatch would mean a torn read.
  Fixture fx;
  const std::string path =
      testing::TempDir() + "/concurrent_store.profile";
  std::remove(path.c_str());
  const ProfileStore store(fx.registry, test_signature());

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    ProfileTable table(fx.registry, {});
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      table.record(fx.matmul, fx.mm_gpu, 4096, 1e-3 * (1 + i % 7));
      if (!store.save(path, table)) failures.fetch_add(1);
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      ProfileTable target(fx.registry, {});
      const ProfileLoadResult result = store.load(path, target);
      if (result.status != ProfileLoadStatus::kOk &&
          result.status != ProfileLoadStatus::kMissing) {
        failures.fetch_add(1);
        ADD_FAILURE() << "torn read: " << result.message;
        stop.store(true);
      }
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);

  // Final state is a complete, loadable profile.
  ProfileTable final_table(fx.registry, {});
  EXPECT_EQ(store.load(path, final_table).status, ProfileLoadStatus::kOk);
  std::remove(path.c_str());
}

TEST(ProfileStoreConcurrency, CorruptedFileUnderConcurrentReadColdStarts) {
  // A non-atomic writer (external tool, crashed publisher) scribbling
  // garbage over the cache file must degrade readers to a clean cold
  // start — kCorrupt (or kOk for an intact snapshot, kMissing around the
  // truncation), never a crash, never a partially-applied table.
  Fixture fx;
  const std::string path = testing::TempDir() + "/corrupt_store.profile";
  const ProfileStore store(fx.registry, test_signature());
  ProfileTable source(fx.registry, {});
  source.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  const std::string good = store.serialize(source);

  std::atomic<bool> stop{false};
  std::thread corruptor([&] {
    for (int i = 0; i < 200 && !stop.load(); ++i) {
      std::ofstream out(path,
                        std::ios::trunc | std::ios::binary);  // not atomic
      if (i % 2 == 0) {
        out << good.substr(0, good.size() / 2) << "garbage\xff\x01";
      } else {
        out << good;
      }
    }
    stop.store(true);
  });
  std::thread reader([&] {
    while (!stop.load()) {
      ProfileTable target(fx.registry, {});
      const ProfileLoadResult result = store.load(path, target);
      switch (result.status) {
        case ProfileLoadStatus::kOk:
          EXPECT_EQ(target.count(fx.matmul, fx.mm_gpu, 4096), 1u);
          break;
        case ProfileLoadStatus::kCorrupt:
          // Cold start: nothing partially applied.
          EXPECT_EQ(target.group_count(), 0u);
          break;
        case ProfileLoadStatus::kMissing:
          break;  // raced the truncating open
        default:
          ADD_FAILURE() << "unexpected status: " << result.message;
          stop.store(true);
      }
    }
  });
  corruptor.join();
  reader.join();
  std::remove(path.c_str());
}

// --- drift detector -----------------------------------------------------

DriftConfig enabled_drift() {
  DriftConfig config;
  config.enabled = true;
  return config;
}

TEST(DriftDetector, NoFalseTriggerUnderCalibratedLognormalNoise) {
  // The simulator's default noise is lognormal with cv 0.03; check margin
  // up to cv 0.10. mu = -sigma^2/2 keeps the distribution mean at 1.
  for (const double cv : {0.03, 0.05, 0.10}) {
    CusumDetector detector(enabled_drift());
    detector.arm(5e-3);
    Rng rng(99 + static_cast<std::uint64_t>(cv * 1000));
    const double sigma = std::sqrt(std::log(1.0 + cv * cv));
    for (int i = 0; i < 2000; ++i) {
      const double sample =
          5e-3 * rng.next_lognormal(-0.5 * sigma * sigma, sigma);
      ASSERT_FALSE(detector.add(sample))
          << "false alarm at cv=" << cv << " obs=" << i;
    }
    EXPECT_TRUE(detector.armed());
  }
}

TEST(DriftDetector, TriggersPromptlyAfterTwoXShift) {
  CusumDetector detector(enabled_drift());
  detector.arm(5e-3);
  Rng rng(7);
  const double cv = 0.03;
  const double sigma = std::sqrt(std::log(1.0 + cv * cv));
  for (int i = 0; i < 200; ++i) {
    ASSERT_FALSE(
        detector.add(5e-3 * rng.next_lognormal(-0.5 * sigma * sigma, sigma)));
  }
  // 2x slowdown: must alarm within a handful of observations.
  int alarms_after = 0;
  for (int i = 0; i < 10; ++i) {
    ++alarms_after;
    if (detector.add(10e-3 * rng.next_lognormal(-0.5 * sigma * sigma, sigma))) {
      break;
    }
  }
  EXPECT_LE(alarms_after, 5);
  EXPECT_FALSE(detector.armed());  // disarms on alarm
}

TEST(DriftDetector, TriggersOnSpeedupToo) {
  CusumDetector detector(enabled_drift());
  detector.arm(10e-3);
  int n = 0;
  while (n < 20 && !detector.add(5e-3)) ++n;
  EXPECT_LT(n, 10);
}

TEST(DriftDetector, NonPositiveReferenceStaysDisarmed) {
  CusumDetector detector(enabled_drift());
  detector.arm(0.0);
  EXPECT_FALSE(detector.armed());
  EXPECT_FALSE(detector.add(1.0));
}

// --- drift integration in the profile table ------------------------------

TEST(ProfileTableDrift, TwoXShiftResetsGroupIntoLearningPhase) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  config.drift.enabled = true;
  ProfileTable table(fx.registry, config);

  for (int i = 0; i < 3; ++i) table.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  for (int i = 0; i < 3; ++i) table.record(fx.matmul, fx.mm_smp, 4096, 0.02);
  ASSERT_TRUE(table.reliable(fx.matmul, 4096));

  // Sustained 2x slowdown of the GPU version.
  int fed = 0;
  while (table.drift_events().empty() && fed < 10) {
    table.record(fx.matmul, fx.mm_gpu, 4096, 10e-3);
    ++fed;
  }
  ASSERT_EQ(table.drift_events().size(), 1u);
  EXPECT_LE(fed, 5);
  const ProfileTable::DriftEvent& event = table.drift_events().front();
  EXPECT_EQ(event.type, fx.matmul);
  EXPECT_EQ(event.version, fx.mm_gpu);
  EXPECT_NEAR(event.stale_mean, 5e-3, 1e-3);

  // The stale history is gone: the group is back in the learning phase and
  // the relearned mean reflects only post-drift observations.
  EXPECT_FALSE(table.reliable(fx.matmul, 4096));
  EXPECT_LT(table.count(fx.matmul, fx.mm_gpu, 4096), 3u);
  table.record(fx.matmul, fx.mm_gpu, 4096, 10e-3);
  table.record(fx.matmul, fx.mm_gpu, 4096, 10e-3);
  EXPECT_TRUE(table.reliable(fx.matmul, 4096));
  EXPECT_NEAR(*table.mean(fx.matmul, fx.mm_gpu, 4096), 10e-3, 1e-12);

  // The detector re-armed against the new mean: a shift back alarms again.
  int back = 0;
  while (table.drift_events().size() == 1 && back < 10) {
    table.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
    ++back;
  }
  EXPECT_EQ(table.drift_events().size(), 2u);
}

TEST(ProfileTableDrift, RestoredEntriesArmTheDetector) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  config.drift.enabled = true;
  ProfileTable table(fx.registry, config);
  table.restore(fx.matmul, fx.mm_gpu, 4096, 5e-3, 8, 0.0);
  ASSERT_EQ(table.count(fx.matmul, fx.mm_gpu, 4096), 8u);

  int fed = 0;
  while (table.drift_events().empty() && fed < 10) {
    table.record(fx.matmul, fx.mm_gpu, 4096, 10e-3);
    ++fed;
  }
  EXPECT_EQ(table.drift_events().size(), 1u);
}

TEST(ProfileTableDrift, DisabledConfigNeverResets) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  config.drift.enabled = false;
  ProfileTable table(fx.registry, config);
  for (int i = 0; i < 3; ++i) table.record(fx.matmul, fx.mm_gpu, 4096, 5e-3);
  for (int i = 0; i < 50; ++i) table.record(fx.matmul, fx.mm_gpu, 4096, 10e-3);
  EXPECT_TRUE(table.drift_events().empty());
  EXPECT_EQ(table.count(fx.matmul, fx.mm_gpu, 4096), 53u);
}

}  // namespace
}  // namespace versa
