// Tests for the SparseLU workload: sparsity pattern, dynamic fill-in
// (regions registered between submissions), functional correctness vs a
// sequential replay, and hybrid scheduling.
#include <gtest/gtest.h>

#include "apps/sparselu.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa::apps {
namespace {

RuntimeConfig sim_config(const std::string& scheduler = "versioning") {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

SparseLuParams small_params() {
  SparseLuParams params;
  params.blocks = 6;
  params.block_size = 16;
  params.density = 0.4;
  params.real_compute = true;
  return params;
}

TEST(SparseLu, PatternHasDiagonalAndRespectsDensity) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config());
  SparseLuParams params;
  params.blocks = 12;
  params.block_size = 8;
  params.density = 0.3;
  SparseLuApp app(rt, params);
  // Diagonal always present; off-diagonal roughly density * count.
  EXPECT_GE(app.initial_block_count(), params.blocks);
  const std::size_t off_diagonal =
      app.initial_block_count() - params.blocks;
  const double expected = 0.3 * (12.0 * 12.0 - 12.0);
  EXPECT_NEAR(static_cast<double>(off_diagonal), expected, expected * 0.5);
}

TEST(SparseLu, FillInMaterializesNewRegions) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config());
  SparseLuParams params;
  params.blocks = 10;
  params.block_size = 8;
  params.density = 0.4;
  SparseLuApp app(rt, params);
  const std::size_t before = rt.data_directory().region_count();
  app.run();
  EXPECT_GT(app.fill_in_count(), 0u);
  EXPECT_EQ(rt.data_directory().region_count(),
            before + app.fill_in_count());
  EXPECT_GT(app.task_count(), params.blocks);  // lu0 per step plus panels
  EXPECT_EQ(rt.run_stats().total_tasks(), app.task_count());
}

TEST(SparseLu, MatchesSequentialReplayOnSim) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, sim_config());
  SparseLuApp app(rt, small_params());
  app.run();
  EXPECT_LT(app.max_error(), 1e-4);
}

TEST(SparseLu, MatchesSequentialReplayUnderEveryScheduler) {
  for (const char* scheduler :
       {"fifo", "dep-aware", "affinity", "versioning", "versioning-locality"}) {
    const Machine machine = make_minotauro_node(2, 2);
    Runtime rt(machine, sim_config(scheduler));
    SparseLuApp app(rt, small_params());
    app.run();
    EXPECT_LT(app.max_error(), 1e-4) << scheduler;
  }
}

TEST(SparseLu, MatchesSequentialReplayOnThreads) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";  // SMP-only machine needs version sets
  Runtime rt(machine, config);
  SparseLuApp app(rt, small_params());
  app.run();
  EXPECT_LT(app.max_error(), 1e-4);
}

TEST(SparseLu, HybridSplitsAcrossDeviceKinds) {
  const Machine machine = make_minotauro_node(8, 1);
  RuntimeConfig config = sim_config("versioning");
  config.profile.lambda = 2;
  Runtime rt(machine, config);
  SparseLuParams params;
  params.blocks = 20;
  params.block_size = 128;
  params.density = 0.5;
  SparseLuApp app(rt, params);
  app.run();
  std::uint64_t smp_runs = 0;
  for (const VersionId v : rt.version_registry().versions(app.bmod_type())) {
    if (rt.version_registry().version(v).device == DeviceKind::kSmp) {
      smp_runs += rt.run_stats().count(v);
    }
  }
  EXPECT_GT(smp_runs, 0u);
}

TEST(SparseLu, DeterministicAcrossRuns) {
  auto run = [] {
    const Machine machine = make_minotauro_node(2, 2);
    Runtime rt(machine, sim_config());
    SparseLuApp app(rt, small_params());
    app.run();
    return std::make_pair(rt.elapsed(), app.task_count());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace versa::apps
