// Unit and integration tests for the dependence-spec sanitizer
// (DESIGN.md §12): clock-table happens-before against a brute-force
// reachability oracle, shadow-map conflict detection, conformance math,
// CSV round-trips, and end-to-end catches on both backends.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "apps/matmul.h"
#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sanitizer/sanitize_report.h"
#include "sanitizer/sanitizer.h"
#include "sanitizer/shadow_map.h"
#include "sanitizer/task_clock.h"
#include "sched/core/granularity.h"

namespace versa {
namespace {

using sanitize::AccessSanitizer;
using sanitize::ClockTable;
using sanitize::SanitizeMode;
using sanitize::SanitizeStats;
using sanitize::ShadowConflict;
using sanitize::ShadowMap;
using sanitize::Violation;
using sanitize::ViolationKind;

TEST(SanitizeMode, Parsing) {
  SanitizeMode mode = SanitizeMode::kRace;
  EXPECT_TRUE(sanitize::parse_sanitize_mode("off", mode));
  EXPECT_EQ(mode, SanitizeMode::kOff);
  EXPECT_TRUE(sanitize::parse_sanitize_mode("spec", mode));
  EXPECT_EQ(mode, SanitizeMode::kSpec);
  EXPECT_TRUE(sanitize::parse_sanitize_mode("race", mode));
  EXPECT_EQ(mode, SanitizeMode::kRace);
  mode = SanitizeMode::kSpec;
  EXPECT_FALSE(sanitize::parse_sanitize_mode("bogus", mode));
  EXPECT_EQ(mode, SanitizeMode::kSpec) << "failed parse must not clobber";
}

// --- ClockTable -----------------------------------------------------------

TEST(ClockTable, LinearChainIsTotallyOrdered) {
  ClockTable clocks;
  clocks.add(0, {}, kInvalidTask);
  clocks.add(1, {0}, kInvalidTask);
  clocks.add(2, {1}, kInvalidTask);
  EXPECT_TRUE(clocks.ordered(0, 2));
  EXPECT_TRUE(clocks.ordered(2, 0));  // symmetric
  EXPECT_EQ(clocks.chain_count(), 1u);
}

TEST(ClockTable, IndependentTasksUnordered) {
  ClockTable clocks;
  clocks.add(0, {}, kInvalidTask);
  clocks.add(1, {}, kInvalidTask);
  EXPECT_FALSE(clocks.ordered(0, 1));
  EXPECT_EQ(clocks.chain_count(), 2u);
}

TEST(ClockTable, DiamondOrdersThroughJoin) {
  // 0 -> {1, 2} -> 3: the branches are unordered, everything else is.
  ClockTable clocks;
  clocks.add(0, {}, kInvalidTask);
  clocks.add(1, {0}, kInvalidTask);
  clocks.add(2, {0}, kInvalidTask);
  clocks.add(3, {1, 2}, kInvalidTask);
  EXPECT_FALSE(clocks.ordered(1, 2));
  EXPECT_TRUE(clocks.ordered(0, 3));
  EXPECT_TRUE(clocks.ordered(1, 3));
  EXPECT_TRUE(clocks.ordered(2, 3));
}

TEST(ClockTable, ParentEdgeOrdersNestedChild) {
  ClockTable clocks;
  clocks.add(7, {}, kInvalidTask);
  clocks.add(8, {}, /*hb_parent=*/7);
  EXPECT_TRUE(clocks.ordered(7, 8));
}

TEST(ClockTable, AliasResolvesToHost) {
  ClockTable clocks;
  clocks.add(0, {}, kInvalidTask);
  clocks.add(1, {0}, kInvalidTask);  // fuse host
  clocks.add(2, {}, kInvalidTask);
  clocks.alias(3, 1);  // absorbed member never registered itself
  EXPECT_TRUE(clocks.ordered(3, 0));
  EXPECT_FALSE(clocks.ordered(3, 2));
  EXPECT_TRUE(clocks.ordered(3, 1)) << "member aliases to its own host";
}

TEST(ClockTable, UnknownIdsAreUnordered) {
  ClockTable clocks;
  clocks.add(0, {}, kInvalidTask);
  EXPECT_FALSE(clocks.ordered(0, 99));
  EXPECT_FALSE(clocks.ordered(99, 0));
}

// Property: ordered() must agree with brute-force reachability over
// random DAGs (edges always point from lower to higher id, as in real
// submission order).
TEST(ClockTable, MatchesReachabilityOracleOnRandomDags) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x9e37u);
    const std::size_t n = 5 + rng.next_below(40);
    std::vector<std::vector<char>> reach(n, std::vector<char>(n, 0));
    ClockTable clocks;
    for (std::size_t v = 0; v < n; ++v) {
      std::vector<TaskId> preds;
      for (std::size_t u = 0; u < v; ++u) {
        if (rng.next_below(4) == 0) {
          preds.push_back(u);
          reach[u][v] = 1;
        }
      }
      clocks.add(v, preds, kInvalidTask);
    }
    // Floyd–Warshall closure of the edge matrix.
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t i = 0; i < n; ++i) {
        if (!reach[i][k]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (reach[k][j]) reach[i][j] = 1;
        }
      }
    }
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = 0; b < n; ++b) {
        const bool expect = a == b || reach[a][b] || reach[b][a];
        EXPECT_EQ(clocks.ordered(a, b), expect)
            << "pair (" << a << ", " << b << ")";
      }
    }
  }
}

// --- ShadowMap ------------------------------------------------------------

sanitize::OrderedFn never_ordered() {
  return [](TaskId, TaskId) { return false; };
}

TEST(ShadowMap, WriteWriteConflictReported) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  shadow.record(1, 10, AccessMode::kOut, 0, 64, never_ordered(), conflicts);
  EXPECT_TRUE(conflicts.empty());
  shadow.record(1, 11, AccessMode::kOut, 32, 64, never_ordered(), conflicts);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(conflicts[0].prior, 10u);
  EXPECT_EQ(conflicts[0].begin, 32u);
  EXPECT_EQ(conflicts[0].end, 64u);
}

TEST(ShadowMap, ReadersDoNotConflictWithEachOther) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  shadow.record(1, 10, AccessMode::kIn, 0, 64, never_ordered(), conflicts);
  shadow.record(1, 11, AccessMode::kIn, 0, 64, never_ordered(), conflicts);
  EXPECT_TRUE(conflicts.empty());
  // A later writer conflicts with both unordered readers.
  shadow.record(1, 12, AccessMode::kOut, 0, 64, never_ordered(), conflicts);
  EXPECT_EQ(conflicts.size(), 2u);
}

TEST(ShadowMap, OrderedAccessesNeverConflict) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  const auto all_ordered = [](TaskId, TaskId) { return true; };
  shadow.record(1, 10, AccessMode::kOut, 0, 64, all_ordered, conflicts);
  shadow.record(1, 11, AccessMode::kInOut, 0, 64, all_ordered, conflicts);
  shadow.record(1, 12, AccessMode::kIn, 0, 64, all_ordered, conflicts);
  EXPECT_TRUE(conflicts.empty());
}

TEST(ShadowMap, SameTaskNeverConflictsWithItself) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  shadow.record(1, 10, AccessMode::kOut, 0, 64, never_ordered(), conflicts);
  shadow.record(1, 10, AccessMode::kInOut, 0, 64, never_ordered(), conflicts);
  EXPECT_TRUE(conflicts.empty());
}

TEST(ShadowMap, DisjointRangesNeverConflict) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  shadow.record(1, 10, AccessMode::kOut, 0, 32, never_ordered(), conflicts);
  shadow.record(1, 11, AccessMode::kOut, 32, 32, never_ordered(), conflicts);
  shadow.record(2, 12, AccessMode::kOut, 0, 32, never_ordered(), conflicts);
  EXPECT_TRUE(conflicts.empty());
}

TEST(ShadowMap, ClearRegionDropsState) {
  ShadowMap shadow;
  std::vector<ShadowConflict> conflicts;
  shadow.record(1, 10, AccessMode::kOut, 0, 64, never_ordered(), conflicts);
  EXPECT_GT(shadow.interval_count(), 0u);
  shadow.clear_region(1);
  EXPECT_EQ(shadow.interval_count(), 0u);
  shadow.record(1, 11, AccessMode::kOut, 0, 64, never_ordered(), conflicts);
  EXPECT_TRUE(conflicts.empty()) << "cleared region keeps no prior writer";
}

// --- CSV round-trip -------------------------------------------------------

TEST(SanitizeReport, CsvRoundTrip) {
  std::vector<Violation> records(2);
  records[0].kind = ViolationKind::kRace;
  records[0].task_a = 3;
  records[0].type_a = 1;
  records[0].task_b = 9;
  records[0].type_b = 2;
  records[0].region = 7;
  records[0].begin = 128;
  records[0].end = 256;
  records[0].mode_a = AccessMode::kOut;
  records[0].mode_b = AccessMode::kInOut;
  records[0].bytes = 128;
  records[1].kind = ViolationKind::kOverDeclaration;
  records[1].task_a = 4;
  records[1].type_a = 1;
  records[1].region = 8;
  records[1].begin = 0;
  records[1].end = 64;
  records[1].mode_a = AccessMode::kIn;
  records[1].mode_b = AccessMode::kIn;
  records[1].bytes = 64;
  SanitizeStats stats;
  stats.tasks_checked = 10;
  stats.tasks_witnessed = 8;
  stats.races = 1;
  stats.over_declaration = 1;
  stats.wasted_transfer_bytes = 64;

  const std::string path = ::testing::TempDir() + "/sanitize_roundtrip.csv";
  ASSERT_TRUE(sanitize::write_csv(path, records, stats));
  std::vector<Violation> loaded;
  SanitizeStats loaded_stats;
  std::string error;
  ASSERT_TRUE(sanitize::read_csv(path, loaded, loaded_stats, error)) << error;
  ASSERT_EQ(loaded.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(loaded[i].kind, records[i].kind);
    EXPECT_EQ(loaded[i].task_a, records[i].task_a);
    EXPECT_EQ(loaded[i].type_a, records[i].type_a);
    EXPECT_EQ(loaded[i].task_b, records[i].task_b);
    EXPECT_EQ(loaded[i].type_b, records[i].type_b);
    EXPECT_EQ(loaded[i].region, records[i].region);
    EXPECT_EQ(loaded[i].begin, records[i].begin);
    EXPECT_EQ(loaded[i].end, records[i].end);
    EXPECT_EQ(loaded[i].mode_a, records[i].mode_a);
    EXPECT_EQ(loaded[i].mode_b, records[i].mode_b);
    EXPECT_EQ(loaded[i].bytes, records[i].bytes);
  }
  EXPECT_EQ(loaded_stats.tasks_checked, stats.tasks_checked);
  EXPECT_EQ(loaded_stats.tasks_witnessed, stats.tasks_witnessed);
  EXPECT_EQ(loaded_stats.races, stats.races);
  EXPECT_EQ(loaded_stats.wasted_transfer_bytes, stats.wasted_transfer_bytes);
  std::remove(path.c_str());
}

TEST(SanitizeReport, ReadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/sanitize_garbage.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("not,a,sanitize,report\n", f);
    std::fclose(f);
  }
  std::vector<Violation> loaded;
  SanitizeStats stats;
  std::string error;
  EXPECT_FALSE(sanitize::read_csv(path, loaded, stats, error));
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// --- runtime integration --------------------------------------------------

RuntimeConfig sanitizing_config(Backend backend, SanitizeMode mode) {
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = "fifo";
  config.sanitize.mode = mode;
  return config;
}

TEST(SanitizerRuntime, OffAllocatesNothing) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  EXPECT_EQ(rt.sanitizer(), nullptr);
}

struct BackendCase {
  Backend backend;
  const char* name;
};

class SanitizerBackendTest : public ::testing::TestWithParam<BackendCase> {};

// A correct program: declared clauses cover exactly what the bodies
// witness. Both modes must stay silent.
TEST_P(SanitizerBackendTest, CleanProgramHasNoViolations) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine,
             sanitizing_config(GetParam().backend, SanitizeMode::kRace));
  std::vector<float> data(256, 1.0f);
  const RegionId region =
      rt.register_data("data", data.size() * sizeof(float), data.data());
  const TaskTypeId writer = rt.declare_task("writer");
  rt.add_version(writer, DeviceKind::kSmp, "smp", [](TaskContext& ctx) {
    AccessWitness(ctx).write(0);
    auto* out = static_cast<float*>(ctx.arg(0));
    for (std::size_t i = 0; i < ctx.arg_size(0) / sizeof(float); ++i) {
      out[i] = 2.0f;
    }
  });
  const TaskTypeId reader = rt.declare_task("reader");
  rt.add_version(reader, DeviceKind::kSmp, "smp", [](TaskContext& ctx) {
    AccessWitness(ctx).read(0);
    auto* in = static_cast<const float*>(ctx.arg(0));
    volatile float sink = in[0];
    (void)sink;
  });
  rt.submit(writer, {Access::out(region)});
  rt.submit(reader, {Access::in(region)});
  rt.submit(reader, {Access::in(region)});
  rt.submit(writer, {Access::inout(region)});
  rt.taskwait();

  ASSERT_NE(rt.sanitizer(), nullptr);
  EXPECT_EQ(rt.sanitizer()->error_count(), 0u)
      << [&] {
           std::ostringstream os;
           rt.sanitizer()->render(os);
           return os.str();
         }();
  const SanitizeStats stats = rt.sanitizer()->stats();
  EXPECT_EQ(stats.tasks_checked, 4u);
  EXPECT_EQ(stats.tasks_witnessed, 4u);
  EXPECT_EQ(stats.over_declaration, 0u);
}

// The canonical bug: a body updates a shared region it never declared.
// The race mode must report it both as out-of-spec and as a race.
TEST_P(SanitizerBackendTest, UndeclaredSharedWriteCaught) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine,
             sanitizing_config(GetParam().backend, SanitizeMode::kRace));
  std::vector<float> acc(64, 0.0f);
  std::vector<float> src(64, 1.0f);
  const RegionId acc_region =
      rt.register_data("acc", acc.size() * sizeof(float), acc.data());
  const RegionId src_region =
      rt.register_data("src", src.size() * sizeof(float), src.data());

  const TaskTypeId rogue = rt.declare_task("rogue");
  rt.add_version(rogue, DeviceKind::kSmp, "smp",
                 [&acc, acc_region](TaskContext& ctx) {
                   AccessWitness witness(ctx);
                   witness.read(0);
                   witness.touch_bytes(acc_region, AccessMode::kInOut, 0,
                                       acc.size() * sizeof(float));
                   acc[0] += 1.0f;
                 });
  // Two rogue tasks: only in(src) declared, so the analyzer wires no edge
  // between them even though both update acc.
  rt.submit(rogue, {Access::in(src_region)});
  rt.submit(rogue, {Access::in(src_region)});
  rt.taskwait();

  ASSERT_NE(rt.sanitizer(), nullptr);
  const SanitizeStats stats = rt.sanitizer()->stats();
  EXPECT_GE(stats.out_of_spec, 2u) << "each rogue write is out-of-spec";
  EXPECT_GE(stats.races, 1u) << "the unordered pair must surface as a race";
  bool found_race = false;
  for (const Violation& v : rt.sanitizer()->violations()) {
    if (v.kind != ViolationKind::kRace) continue;
    found_race = true;
    EXPECT_EQ(v.region, acc_region);
    EXPECT_NE(v.task_a, kInvalidTask);
    EXPECT_NE(v.task_b, kInvalidTask);
    EXPECT_NE(v.task_a, v.task_b);
  }
  EXPECT_TRUE(found_race);
}

// Spec mode: over-declaration is a diagnostic, not an error.
TEST_P(SanitizerBackendTest, OverDeclarationIsDiagnosticOnly) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine,
             sanitizing_config(GetParam().backend, SanitizeMode::kSpec));
  std::vector<float> data(256, 0.0f);
  const RegionId region =
      rt.register_data("data", data.size() * sizeof(float), data.data());
  const TaskTypeId t = rt.declare_task("touches_half");
  rt.add_version(t, DeviceKind::kSmp, "smp", [](TaskContext& ctx) {
    // Declares the whole region, witnesses only the first half.
    AccessWitness(ctx).write_range(0, 0, ctx.arg_size(0) / 2);
  });
  rt.submit(t, {Access::out(region)});
  rt.taskwait();

  ASSERT_NE(rt.sanitizer(), nullptr);
  const SanitizeStats stats = rt.sanitizer()->stats();
  EXPECT_EQ(rt.sanitizer()->error_count(), 0u);
  EXPECT_EQ(stats.over_declaration, 1u);
  EXPECT_EQ(stats.wasted_transfer_bytes, 128 * sizeof(float));
}

// Uninstrumented bodies (no witness calls) must stay silent in spec mode.
TEST_P(SanitizerBackendTest, UnwitnessedBodiesAreSkipped) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine,
             sanitizing_config(GetParam().backend, SanitizeMode::kSpec));
  const RegionId region = rt.register_data("virtual", 4096);
  const TaskTypeId t = rt.declare_task("plain");
  rt.add_version(t, DeviceKind::kSmp, "smp", [](TaskContext&) {});
  rt.submit(t, {Access::inout(region)});
  rt.submit(t, {Access::inout(region)});
  rt.taskwait();

  ASSERT_NE(rt.sanitizer(), nullptr);
  const SanitizeStats stats = rt.sanitizer()->stats();
  EXPECT_EQ(stats.tasks_checked, 2u);
  EXPECT_EQ(stats.tasks_witnessed, 0u);
  EXPECT_EQ(rt.sanitizer()->error_count(), 0u);
  EXPECT_EQ(stats.over_declaration, 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, SanitizerBackendTest,
                         ::testing::Values(BackendCase{Backend::kSim, "sim"},
                                           BackendCase{Backend::kThreads,
                                                       "threads"}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// Figure-shaped apps under race mode must be clean: their clauses are the
// oracle the analyzer already orders, so any report is a runtime bug.
TEST(SanitizerRuntime, MatmulCleanUnderRaceMode) {
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.sanitize.mode = SanitizeMode::kRace;
  Runtime rt(machine, config);
  apps::MatmulParams params;
  params.n = 8;
  params.tile = 4;
  params.real_compute = true;
  apps::MatmulApp app(rt, params);
  app.run();
  ASSERT_NE(rt.sanitizer(), nullptr);
  EXPECT_EQ(rt.sanitizer()->error_count(), 0u)
      << [&] {
           std::ostringstream os;
           rt.sanitizer()->render(os);
           return os.str();
         }();
  EXPECT_GT(rt.sanitizer()->stats().tasks_witnessed, 0u);
}

TEST(SanitizerRuntime, GranularitySplitStaysClean) {
  // Splitting rewires byte-exact children; their clocks must inherit the
  // shell's ordering or false races would appear here.
  const Machine machine = make_minotauro_node(4, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.sanitize.mode = SanitizeMode::kRace;
  ASSERT_TRUE(core::parse_granularity("2", config.granularity));
  Runtime rt(machine, config);
  apps::MatmulParams params;
  params.n = 8;
  params.tile = 4;
  params.real_compute = true;
  apps::MatmulApp app(rt, params);
  app.run();
  ASSERT_NE(rt.sanitizer(), nullptr);
  EXPECT_EQ(rt.sanitizer()->error_count(), 0u)
      << [&] {
           std::ostringstream os;
           rt.sanitizer()->render(os);
           return os.str();
         }();
}

}  // namespace
}  // namespace versa
