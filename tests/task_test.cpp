// Unit tests for the task system: access clauses, version registry
// (`implements` semantics), region/interval dependence analysis, and graph
// readiness propagation — including randomized property checks that the
// interval analyzer matches a brute-force byte-level oracle.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/random.h"
#include "task/access.h"
#include "task/dependency_analyzer.h"
#include "task/task_graph.h"
#include "task/version_registry.h"

namespace versa {
namespace {

TEST(Access, Helpers) {
  const Access a = Access::in(3);
  EXPECT_EQ(a.region, 3u);
  EXPECT_EQ(a.mode, AccessMode::kIn);
  EXPECT_TRUE(reads(AccessMode::kIn));
  EXPECT_FALSE(writes(AccessMode::kIn));
  EXPECT_TRUE(writes(AccessMode::kOut));
  EXPECT_FALSE(reads(AccessMode::kOut));
  EXPECT_TRUE(reads(AccessMode::kInOut));
  EXPECT_TRUE(writes(AccessMode::kInOut));
}

TEST(Access, RangeHelpers) {
  const Access a = Access::inout_range(2, 128, 64);
  EXPECT_EQ(a.offset, 128u);
  EXPECT_EQ(a.length, 64u);
  EXPECT_STREQ(to_string(AccessMode::kInOut), "inout");
}

TEST(VersionRegistry, FirstVersionIsMain) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("work");
  const VersionId main = reg.add_version(t, DeviceKind::kCuda, "gpu", nullptr,
                                         nullptr);
  reg.add_version(t, DeviceKind::kSmp, "cpu", nullptr, nullptr);
  EXPECT_EQ(reg.main_version(t), main);
  EXPECT_TRUE(reg.version(main).is_main);
  EXPECT_FALSE(reg.version(reg.versions(t)[1]).is_main);
}

TEST(VersionRegistry, VersionsForDeviceFilters) {
  VersionRegistry reg;
  const TaskTypeId t = reg.declare_task("work");
  reg.add_version(t, DeviceKind::kCuda, "cublas", nullptr, nullptr);
  reg.add_version(t, DeviceKind::kCuda, "cuda", nullptr, nullptr);
  reg.add_version(t, DeviceKind::kSmp, "cblas", nullptr, nullptr);
  EXPECT_EQ(reg.versions_for_device(t, DeviceKind::kCuda).size(), 2u);
  EXPECT_EQ(reg.versions_for_device(t, DeviceKind::kSmp).size(), 1u);
  EXPECT_TRUE(reg.device_supported(t, DeviceKind::kSmp));
}

TEST(VersionRegistry, FindTaskByName) {
  VersionRegistry reg;
  const TaskTypeId t1 = reg.declare_task("alpha");
  const TaskTypeId t2 = reg.declare_task("beta");
  EXPECT_EQ(reg.find_task("alpha"), t1);
  EXPECT_EQ(reg.find_task("beta"), t2);
  EXPECT_EQ(reg.find_task("gamma"), kInvalidTaskType);
  EXPECT_EQ(reg.task_name(t2), "beta");
}

TEST(VersionRegistry, MultipleTypesKeepSeparateSets) {
  VersionRegistry reg;
  const TaskTypeId t1 = reg.declare_task("a");
  const TaskTypeId t2 = reg.declare_task("b");
  reg.add_version(t1, DeviceKind::kSmp, "a0", nullptr, nullptr);
  reg.add_version(t2, DeviceKind::kCuda, "b0", nullptr, nullptr);
  reg.add_version(t2, DeviceKind::kSmp, "b1", nullptr, nullptr);
  EXPECT_EQ(reg.versions(t1).size(), 1u);
  EXPECT_EQ(reg.versions(t2).size(), 2u);
  EXPECT_EQ(reg.version_count(), 3u);
}

// --- dependency analyzer -------------------------------------------------

AccessList whole(RegionId r, AccessMode mode, std::uint64_t size = 100) {
  return {Access{r, mode, 0, size}};
}

TEST(DependencyAnalyzer, ReadAfterWrite) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  EXPECT_TRUE(preds.empty());
  analyzer.add_task(1, whole(1, AccessMode::kIn), preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
}

TEST(DependencyAnalyzer, ConcurrentReadersDoNotDepend) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  preds.clear();
  analyzer.add_task(1, whole(1, AccessMode::kIn), preds);
  preds.clear();
  analyzer.add_task(2, whole(1, AccessMode::kIn), preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));  // only the writer
}

TEST(DependencyAnalyzer, WriteAfterReadDependsOnAllReaders) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  preds.clear();
  analyzer.add_task(1, whole(1, AccessMode::kIn), preds);
  preds.clear();
  analyzer.add_task(2, whole(1, AccessMode::kIn), preds);
  preds.clear();
  analyzer.add_task(3, whole(1, AccessMode::kOut), preds);
  // WAR on both readers plus the (transitively redundant but harmless)
  // WAW on the original writer.
  EXPECT_EQ(preds, (std::vector<TaskId>{0, 1, 2}));
}

TEST(DependencyAnalyzer, WriteAfterWrite) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  preds.clear();
  analyzer.add_task(1, whole(1, AccessMode::kOut), preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
}

TEST(DependencyAnalyzer, InoutChainsSerialize) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  for (TaskId t = 0; t < 5; ++t) {
    preds.clear();
    analyzer.add_task(t, whole(1, AccessMode::kInOut), preds);
    if (t == 0) {
      EXPECT_TRUE(preds.empty());
    } else {
      EXPECT_EQ(preds, (std::vector<TaskId>{t - 1}));
    }
  }
}

TEST(DependencyAnalyzer, DistinctRegionsAreIndependent) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  preds.clear();
  analyzer.add_task(1, whole(2, AccessMode::kOut), preds);
  EXPECT_TRUE(preds.empty());
}

TEST(DependencyAnalyzer, DisjointRangesAreIndependent) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, {Access{1, AccessMode::kOut, 0, 50}}, preds);
  preds.clear();
  analyzer.add_task(1, {Access{1, AccessMode::kOut, 50, 50}}, preds);
  EXPECT_TRUE(preds.empty());
  preds.clear();
  // A read spanning both depends on both writers.
  analyzer.add_task(2, {Access{1, AccessMode::kIn, 25, 50}}, preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0, 1}));
}

TEST(DependencyAnalyzer, PartialOverlapSplitsIntervals) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, {Access{1, AccessMode::kOut, 0, 100}}, preds);
  preds.clear();
  analyzer.add_task(1, {Access{1, AccessMode::kOut, 40, 20}}, preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
  preds.clear();
  // Reading [0,40) still sees task 0 as the writer.
  analyzer.add_task(2, {Access{1, AccessMode::kIn, 0, 40}}, preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
  preds.clear();
  // Reading [40,60) sees task 1.
  analyzer.add_task(3, {Access{1, AccessMode::kIn, 40, 20}}, preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{1}));
}

TEST(DependencyAnalyzer, DuplicatePredecessorsAreDeduped) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  // Task 0 writes two regions; task 1 reads both -> one dependence.
  analyzer.add_task(
      0, {Access{1, AccessMode::kOut, 0, 10}, Access{2, AccessMode::kOut, 0, 10}},
      preds);
  preds.clear();
  analyzer.add_task(
      1, {Access{1, AccessMode::kIn, 0, 10}, Access{2, AccessMode::kIn, 0, 10}},
      preds);
  EXPECT_EQ(preds, (std::vector<TaskId>{0}));
}

TEST(DependencyAnalyzer, ClearRegionForgetsHistory) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  analyzer.add_task(0, whole(1, AccessMode::kOut), preds);
  analyzer.clear_region(1);
  preds.clear();
  analyzer.add_task(1, whole(1, AccessMode::kIn), preds);
  EXPECT_TRUE(preds.empty());
}

TEST(DependencyAnalyzer, IntervalCountStaysBounded) {
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  // Whole-region writes repeatedly collapse to one interval per region.
  for (TaskId t = 0; t < 100; ++t) {
    preds.clear();
    analyzer.add_task(t, whole(t % 4, AccessMode::kInOut), preds);
  }
  EXPECT_LE(analyzer.interval_count(), 4u);
}

// Property test: the interval analyzer must agree with a brute-force
// byte-granularity oracle over random access patterns.
class DependencyOracle {
 public:
  explicit DependencyOracle(std::uint64_t region_size)
      : writer_(region_size, kInvalidTask), readers_(region_size) {}

  void add(TaskId task, const Access& access, std::set<TaskId>& preds) {
    for (std::uint64_t b = access.offset; b < access.offset + access.length;
         ++b) {
      if (reads(access.mode) && writer_[b] != kInvalidTask) {
        preds.insert(writer_[b]);
      }
      if (writes(access.mode)) {
        if (writer_[b] != kInvalidTask) preds.insert(writer_[b]);
        for (TaskId r : readers_[b]) preds.insert(r);
        writer_[b] = task;
        readers_[b].clear();
      } else {
        readers_[b].insert(task);
      }
    }
    preds.erase(task);
  }

 private:
  std::vector<TaskId> writer_;
  std::vector<std::set<TaskId>> readers_;
};

class AnalyzerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerPropertyTest, MatchesByteLevelOracle) {
  constexpr std::uint64_t kRegionSize = 64;
  Rng rng(GetParam());
  DependencyAnalyzer analyzer;
  DependencyOracle oracle(kRegionSize);

  for (TaskId t = 0; t < 200; ++t) {
    const std::uint64_t offset = rng.next_below(kRegionSize);
    const std::uint64_t length = 1 + rng.next_below(kRegionSize - offset);
    const AccessMode mode =
        static_cast<AccessMode>(rng.next_below(3));
    const Access access{7, mode, offset, length};

    std::vector<TaskId> got;
    analyzer.add_task(t, {access}, got);
    std::set<TaskId> expected;
    oracle.add(t, access, expected);

    const std::set<TaskId> got_set(got.begin(), got.end());
    ASSERT_EQ(got_set, expected) << "task " << t << " mode "
                                 << to_string(mode) << " [" << offset << ","
                                 << offset + length << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, AnalyzerPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- task graph ----------------------------------------------------------

TEST(TaskGraph, ReadinessPropagation) {
  TaskGraph graph;
  Task& a = graph.create_task(0, {}, 0, "a");
  Task& b = graph.create_task(0, {}, 0, "b");
  EXPECT_EQ(graph.add_dependencies(a, {}), 0u);
  EXPECT_EQ(graph.add_dependencies(b, {a.id}), 1u);

  a.state = TaskState::kReady;
  a.state = TaskState::kRunning;
  std::vector<TaskId> ready;
  graph.mark_finished(a.id, 1.0, ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{b.id}));
  EXPECT_EQ(graph.unfinished(), 1u);
  EXPECT_FALSE(graph.all_finished());
}

TEST(TaskGraph, FinishedPredecessorAddsNoEdge) {
  TaskGraph graph;
  Task& a = graph.create_task(0, {}, 0, "a");
  graph.add_dependencies(a, {});
  a.state = TaskState::kRunning;
  std::vector<TaskId> ready;
  graph.mark_finished(a.id, 1.0, ready);

  Task& b = graph.create_task(0, {}, 0, "b");
  EXPECT_EQ(graph.add_dependencies(b, {a.id}), 0u);
}

TEST(TaskGraph, DiamondReleasesOnlyWhenAllPredsDone) {
  TaskGraph graph;
  Task& a = graph.create_task(0, {}, 0, "a");
  Task& b = graph.create_task(0, {}, 0, "b");
  Task& c = graph.create_task(0, {}, 0, "c");
  Task& d = graph.create_task(0, {}, 0, "d");
  graph.add_dependencies(a, {});
  graph.add_dependencies(b, {a.id});
  graph.add_dependencies(c, {a.id});
  graph.add_dependencies(d, {b.id, c.id});

  std::vector<TaskId> ready;
  a.state = TaskState::kRunning;
  graph.mark_finished(a.id, 1.0, ready);
  EXPECT_EQ(ready.size(), 2u);

  ready.clear();
  b.state = TaskState::kRunning;
  graph.mark_finished(b.id, 2.0, ready);
  EXPECT_TRUE(ready.empty());  // d still waits on c

  ready.clear();
  c.state = TaskState::kRunning;
  graph.mark_finished(c.id, 3.0, ready);
  EXPECT_EQ(ready, (std::vector<TaskId>{d.id}));
  EXPECT_EQ(graph.edge_count(), 4u);
}

TEST(TaskGraph, ResetDropsEverything) {
  TaskGraph graph;
  graph.create_task(0, {}, 0, "a");
  graph.reset();
  EXPECT_EQ(graph.size(), 0u);
  EXPECT_TRUE(graph.all_finished());
}

TEST(Task, DataSetSizeFieldDefaults) {
  TaskGraph graph;
  Task& t = graph.create_task(2, {Access::in(1)}, 4096, "t");
  EXPECT_EQ(t.type, 2u);
  EXPECT_EQ(t.data_set_size, 4096u);
  EXPECT_EQ(t.state, TaskState::kCreated);
  EXPECT_EQ(t.chosen_version, kInvalidVersion);
  EXPECT_STREQ(to_string(t.state), "created");
}

}  // namespace
}  // namespace versa
