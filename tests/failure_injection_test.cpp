// Tests for transient-failure injection on the sim backend: every task
// completes despite failures, bodies run exactly once (numerics intact),
// retries are bounded, and the whole thing stays deterministic per seed.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

RuntimeConfig faulty_config(double failure_rate, std::uint64_t seed = 42) {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.noise.kind = sim::NoiseKind::kNone;
  config.failure_rate = failure_rate;
  config.seed = seed;
  return config;
}

TEST(FailureInjection, AllTasksCompleteDespiteFailures) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, faulty_config(0.3));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(3e-3));
  for (int i = 0; i < 100; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().total_tasks(), 100u);
  EXPECT_GT(rt.failed_attempts(), 5u);  // 30 % of ~100+ attempts
  EXPECT_TRUE(rt.task_graph().all_finished());
}

TEST(FailureInjection, BodiesRunExactlyOncePerTask) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, faulty_config(0.4));
  long counter = 0;
  const RegionId r = rt.register_data("counter", sizeof(counter), &counter);
  const TaskTypeId t = rt.declare_task("inc");
  const TaskFn body = [](TaskContext& ctx) {
    *static_cast<long*>(ctx.arg(0)) += 1;
  };
  rt.add_version(t, DeviceKind::kCuda, "g", body, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "c", body, make_constant_cost(2e-3));
  for (int i = 0; i < 50; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  ASSERT_GT(rt.failed_attempts(), 0u);
  EXPECT_EQ(counter, 50);  // retried attempts never re-ran the body
}

TEST(FailureInjection, AttemptsAreBoundedByMaxAttempts) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config = faulty_config(0.9);  // near-certain failure
  config.scheduler = "fifo";
  config.max_attempts = 3;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 20; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  for (const Task& task : rt.task_graph().tasks()) {
    EXPECT_LE(task.attempts, 3u);
    EXPECT_EQ(task.state, TaskState::kFinished);
  }
}

TEST(FailureInjection, FailedTimeCountsIntoTheMakespan) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config = faulty_config(0.5);
  config.scheduler = "fifo";
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 50; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  // 50 tasks x 1 ms plus the partial time of every failed attempt.
  EXPECT_GT(rt.elapsed(), 50e-3);
}

TEST(FailureInjection, DeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    const Machine machine = make_minotauro_node(2, 1);
    Runtime rt(machine, faulty_config(0.3, seed));
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(3e-3));
    const RegionId r = rt.register_data("r", 64);
    for (int i = 0; i < 60; ++i) {
      rt.submit(t, {Access::inout(r)});
    }
    rt.taskwait();
    return std::make_pair(rt.elapsed(), rt.failed_attempts());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(FailureInjection, ZeroRateMeansZeroFailures) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, faulty_config(0.0));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(3e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 30; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.failed_attempts(), 0u);
  for (const Task& task : rt.task_graph().tasks()) {
    EXPECT_EQ(task.attempts, 1u);
  }
}

}  // namespace
}  // namespace versa
