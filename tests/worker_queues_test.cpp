// Unit tests of the sharded per-worker queues behind the ThreadExecutor
// lock split: ordering semantics (priority insertion, FIFO pop, back
// steal) must match the historical single-lock queues exactly, and the
// shards must survive concurrent push/pop/steal (the TSan CI job runs
// this binary too).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>
#include <vector>

#include "sched/core/worker_queues.h"

namespace versa::core {
namespace {

QueueEntry entry(TaskId id, int priority = 0) {
  QueueEntry e;
  e.id = id;
  e.type = 1;
  e.version = 2;
  e.priority = priority;
  e.estimate = 0.5;
  return e;
}

TEST(WorkerQueues, PopIsFifoWithinOnePriorityLevel) {
  WorkerQueues queues;
  queues.reset(2);
  for (TaskId id = 1; id <= 4; ++id) {
    queues.push(0, entry(id));
  }
  for (TaskId id = 1; id <= 4; ++id) {
    const auto popped = queues.pop_front(0);
    ASSERT_TRUE(popped.has_value());
    EXPECT_EQ(popped->id, id);
  }
  EXPECT_FALSE(queues.pop_front(0).has_value());
}

TEST(WorkerQueues, PriorityInsertionOvertakesLowerPriorityOnly) {
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(1, 0));
  queues.push(0, entry(2, 5));  // overtakes the priority-0 entry
  queues.push(0, entry(3, 0));
  queues.push(0, entry(4, 5));  // stable behind the earlier priority-5
  const std::vector<TaskId> expected = {2, 4, 1, 3};
  EXPECT_EQ(queues.snapshot(0), expected);
}

TEST(WorkerQueues, StealTakesFromTheBack) {
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(1));
  queues.push(0, entry(2));
  queues.push(0, entry(3));
  const auto stolen = queues.steal_back(0);
  ASSERT_TRUE(stolen.has_value());
  EXPECT_EQ(stolen->id, 3);  // the victim keeps its head-of-queue work
  const auto popped = queues.pop_front(0);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1);
}

TEST(WorkerQueues, EntryCarriesThePushedFields) {
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(7, 3));
  const auto popped = queues.pop_front(0);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->type, 1);
  EXPECT_EQ(popped->version, 2);
  EXPECT_EQ(popped->priority, 3);
  EXPECT_DOUBLE_EQ(popped->estimate, 0.5);
}

TEST(WorkerQueues, LengthMirrorsTheShard) {
  WorkerQueues queues;
  queues.reset(3);
  EXPECT_EQ(queues.worker_count(), 3u);
  queues.push(1, entry(1));
  queues.push(1, entry(2));
  EXPECT_EQ(queues.length(0), 0u);
  EXPECT_EQ(queues.length(1), 2u);
  queues.steal_back(1);
  EXPECT_EQ(queues.length(1), 1u);
  queues.pop_front(1);
  EXPECT_EQ(queues.length(1), 0u);
  EXPECT_FALSE(queues.steal_back(1).has_value());
}

TEST(WorkerQueues, ResetDropsQueuedWork) {
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(1));
  queues.reset(2);
  EXPECT_EQ(queues.length(0), 0u);
  EXPECT_FALSE(queues.pop_front(0).has_value());
}

TEST(WorkerQueues, BufferedDrainMatchesDirectPushOrdering) {
  // The PR-4 producer path (buffer_push + drain) must publish a shard
  // indistinguishable from one built with direct pushes: same priority
  // insertion, same stability within a level, same pop order.
  WorkerQueues direct;
  direct.reset(1);
  WorkerQueues buffered;
  buffered.reset(1);
  const std::vector<std::pair<TaskId, int>> sequence = {
      {1, 0}, {2, 5}, {3, 0}, {4, 5}, {5, 2}, {6, 5}, {7, 0}};
  for (const auto& [id, priority] : sequence) {
    direct.push(0, entry(id, priority));
    buffered.buffer_push(0, entry(id, priority));
  }
  EXPECT_EQ(buffered.buffered_length(0), sequence.size());
  buffered.drain(0);
  EXPECT_EQ(buffered.buffered_length(0), 0u);
  EXPECT_EQ(buffered.snapshot(0), direct.snapshot(0));
  while (true) {
    const auto a = direct.pop_front(0);
    const auto b = buffered.pop_front(0);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->id, b->id);
    EXPECT_EQ(a->priority, b->priority);
  }
}

TEST(WorkerQueues, BufferedEntriesOvertakeDrainedLowerPriority) {
  // A buffered high-priority entry must overtake already-published
  // lower-priority work when it drains, exactly as a direct push would.
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(1, 0));
  queues.push(0, entry(2, 3));
  queues.buffer_push(0, entry(3, 5));
  queues.buffer_push(0, entry(4, 0));
  queues.drain(0);
  const std::vector<TaskId> expected = {3, 2, 1, 4};
  EXPECT_EQ(queues.snapshot(0), expected);
}

TEST(WorkerQueues, LengthCountsBufferedEntries) {
  // Victim selection reads length() lock-free; buffered-but-undrained
  // entries are real queued work and must be visible there, and in the
  // snapshot (shard entries first).
  WorkerQueues queues;
  queues.reset(2);
  queues.push(1, entry(1));
  queues.buffer_push(1, entry(2));
  queues.buffer_push(1, entry(3));
  EXPECT_EQ(queues.length(1), 3u);
  EXPECT_EQ(queues.buffered_length(1), 2u);
  const std::vector<TaskId> expected = {1, 2, 3};
  EXPECT_EQ(queues.snapshot(1), expected);
  // Pop only sees published entries until someone drains.
  ASSERT_TRUE(queues.pop_front(1).has_value());
  EXPECT_FALSE(queues.pop_front(1).has_value());
  EXPECT_EQ(queues.length(1), 2u);
  queues.drain_all();
  EXPECT_EQ(queues.length(1), 2u);
  EXPECT_EQ(queues.buffered_length(1), 0u);
  const auto popped = queues.pop_front(1);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 2u);
}

TEST(WorkerQueues, ResetDropsBufferedWork) {
  WorkerQueues queues;
  queues.reset(1);
  queues.buffer_push(0, entry(1));
  queues.reset(1);
  EXPECT_EQ(queues.length(0), 0u);
  EXPECT_EQ(queues.buffered_length(0), 0u);
  queues.drain(0);
  EXPECT_FALSE(queues.pop_front(0).has_value());
}

TEST(WorkerQueues, EntryCarriesThePriceGroup) {
  WorkerQueues queues;
  queues.reset(1);
  QueueEntry e = entry(9, 1);
  e.group = 42;
  queues.buffer_push(0, e);
  queues.drain(0);
  const auto popped = queues.pop_front(0);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->group, 42u);
}

TEST(WorkerQueues, BatchedBufferPushPublishesOnEndBatch) {
  // PR-5 batching: inside a window, pushes park in producer-private runs
  // (no submit-mutex traffic), still counted by length(); end_batch
  // publishes each non-empty run in one append, and the drained shard is
  // indistinguishable from per-task buffer pushes.
  WorkerQueues batched;
  batched.reset(2);
  WorkerQueues reference;
  reference.reset(2);

  batched.begin_batch();
  const std::vector<std::pair<TaskId, int>> sequence = {
      {1, 0}, {2, 5}, {3, 0}, {4, 2}, {5, 5}};
  for (const auto& [id, priority] : sequence) {
    batched.buffer_push(0, entry(id, priority));
    reference.buffer_push(0, entry(id, priority));
  }
  batched.buffer_push(1, entry(9, 1));
  reference.buffer_push(1, entry(9, 1));

  // Parked, not yet buffered: length advertises the staged work, the
  // buffers are still empty, and a drain publishes nothing.
  EXPECT_EQ(batched.length(0), sequence.size());
  EXPECT_EQ(batched.buffered_length(0), 0u);
  batched.drain(0);
  EXPECT_FALSE(batched.pop_front(0).has_value());
  EXPECT_EQ(batched.batch_appends(), 0u);

  batched.end_batch();
  // Two non-empty runs (worker 0 and worker 1) = two appends.
  EXPECT_EQ(batched.batch_appends(), 2u);
  EXPECT_EQ(batched.buffered_length(0), sequence.size());
  batched.drain_all();
  reference.drain_all();
  EXPECT_EQ(batched.snapshot(0), reference.snapshot(0));
  EXPECT_EQ(batched.snapshot(1), reference.snapshot(1));
}

TEST(WorkerQueues, EndBatchWithoutBeginIsANoop) {
  WorkerQueues queues;
  queues.reset(1);
  queues.buffer_push(0, entry(1));  // unbatched path
  queues.end_batch();               // legacy drivers: done without begin
  EXPECT_EQ(queues.batch_appends(), 0u);
  queues.drain(0);
  const auto popped = queues.pop_front(0);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->id, 1u);
}

TEST(WorkerQueues, EmptyBatchAppendsNothing) {
  WorkerQueues queues;
  queues.reset(2);
  queues.begin_batch();
  queues.end_batch();
  EXPECT_EQ(queues.batch_appends(), 0u);
  EXPECT_EQ(queues.length(0), 0u);
}

TEST(WorkerQueues, SnapshotIncludesStagedRun) {
  WorkerQueues queues;
  queues.reset(1);
  queues.push(0, entry(1));
  queues.buffer_push(0, entry(2));
  queues.begin_batch();
  queues.buffer_push(0, entry(3));
  // Shard entries, then buffered, then the staged run.
  const std::vector<TaskId> expected = {1, 2, 3};
  EXPECT_EQ(queues.snapshot(0), expected);
  EXPECT_EQ(queues.length(0), 3u);
  queues.end_batch();
  queues.drain_all();
  EXPECT_EQ(queues.snapshot(0), expected);
}

TEST(WorkerQueues, BatchWindowRacesConsumersSafely) {
  // The batch window is producer-serialized, but owners/thieves keep
  // popping, stealing and draining concurrently — end_batch's published
  // runs must surface exactly once alongside direct pushes (TSan cross-
  // checks the one-submit-acquisition append against the drain path).
  constexpr int kBatches = 200;
  constexpr int kPerBatch = 5;
  constexpr int kEntries = kBatches * kPerBatch;
  WorkerQueues queues;
  queues.reset(1);

  std::vector<std::atomic<int>> seen(kEntries + 1);
  std::atomic<int> drained{0};

  auto consume = [&](auto take) {
    while (drained.load(std::memory_order_relaxed) < kEntries) {
      queues.drain(0);
      if (const auto e = take()) {
        seen[e->id].fetch_add(1, std::memory_order_relaxed);
        drained.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };

  std::thread producer([&] {
    for (int b = 0; b < kBatches; ++b) {
      queues.begin_batch();
      for (int i = 0; i < kPerBatch; ++i) {
        const int id = b * kPerBatch + i + 1;
        queues.buffer_push(0, entry(static_cast<TaskId>(id), i % 3));
      }
      queues.end_batch();
    }
  });
  std::thread owner([&] { consume([&] { return queues.pop_front(0); }); });
  std::thread thief([&] { consume([&] { return queues.steal_back(0); }); });

  producer.join();
  owner.join();
  thief.join();

  EXPECT_EQ(drained.load(), kEntries);
  for (int i = 1; i <= kEntries; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "entry " << i;
  }
  EXPECT_EQ(queues.length(0), 0u);
  EXPECT_EQ(queues.batch_appends(), static_cast<std::uint64_t>(kBatches));
}

TEST(WorkerQueues, ConcurrentBufferedProducersDrainExactly) {
  // Several producers buffer into one shard while the owner drains and
  // pops and a thief drains and steals: every entry must surface exactly
  // once. Exercises the submit mutex against the queue mutex under TSan.
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 600;
  constexpr int kEntries = kProducers * kPerProducer;
  WorkerQueues queues;
  queues.reset(1);

  std::vector<std::atomic<int>> seen(kEntries + 1);
  std::atomic<int> drained{0};

  auto consume = [&](auto take) {
    while (drained.load(std::memory_order_relaxed) < kEntries) {
      queues.drain(0);
      if (const auto e = take()) {
        seen[e->id].fetch_add(1, std::memory_order_relaxed);
        drained.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int id = p * kPerProducer + i + 1;
        queues.buffer_push(0, entry(static_cast<TaskId>(id), i % 3));
      }
    });
  }
  std::thread owner([&] { consume([&] { return queues.pop_front(0); }); });
  std::thread thief([&] { consume([&] { return queues.steal_back(0); }); });

  for (std::thread& t : producers) t.join();
  owner.join();
  thief.join();

  EXPECT_EQ(drained.load(), kEntries);
  for (int i = 1; i <= kEntries; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "entry " << i;
  }
  EXPECT_EQ(queues.length(0), 0u);
}

TEST(WorkerQueues, ConcurrentPushPopStealDrainsExactly) {
  // One producer pushes into a shard while its owner pops from the front
  // and a thief steals from the back: every entry must surface exactly
  // once. Exercises the shard mutex and the atomic length mirror under
  // TSan.
  constexpr int kEntries = 2000;
  WorkerQueues queues;
  queues.reset(1);

  std::vector<std::atomic<int>> seen(kEntries + 1);
  std::atomic<int> drained{0};

  auto consume = [&](auto take) {
    while (drained.load(std::memory_order_relaxed) < kEntries) {
      if (const auto e = take()) {
        seen[e->id].fetch_add(1, std::memory_order_relaxed);
        drained.fetch_add(1, std::memory_order_relaxed);
      } else {
        std::this_thread::yield();
      }
    }
  };

  std::thread producer([&] {
    for (int i = 1; i <= kEntries; ++i) {
      queues.push(0, entry(static_cast<TaskId>(i), i % 3));
    }
  });
  std::thread owner([&] { consume([&] { return queues.pop_front(0); }); });
  std::thread thief([&] { consume([&] { return queues.steal_back(0); }); });

  producer.join();
  owner.join();
  thief.join();

  EXPECT_EQ(drained.load(), kEntries);
  for (int i = 1; i <= kEntries; ++i) {
    EXPECT_EQ(seen[static_cast<std::size_t>(i)].load(), 1) << "entry " << i;
  }
  EXPECT_EQ(queues.length(0), 0u);
}

}  // namespace
}  // namespace versa::core
