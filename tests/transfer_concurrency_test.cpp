// Concurrency tests for the off-runtime-lock data path, written for the
// CI thread-sanitizer job (run there with VERSA_LOCK_ORDER=1): producer
// threads mutate the coherence directory through acquire() while reader
// threads price placements through the consistent-read queries, with the
// lock-order checker enforced and a counting violation handler installed.
//
// Three guarantees are pinned down, beyond surviving TSan:
//  * Consistency — a reader can never observe half of an acquire. Each
//    producer always acquires its two regions together, so any pair
//    aggregate (bytes_valid / bytes_missing) must be 0 or the full pair
//    size; a torn snapshot shows up as exactly half.
//  * Serial equivalence — producers own disjoint regions, so each
//    region's transfer sequence is interleaving-independent; the
//    concurrent run's transfer accounting must equal the sum of serial
//    replays of each producer's plan against a private directory.
//  * The TransferEngine's lock-free aggregate mirrors (routed_bytes,
//    record_count) stay exact under concurrent enqueuers and are
//    readable while the enqueuers are still running.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "data/directory.h"
#include "data/transfer_engine.h"
#include "machine/machine.h"
#include "machine/presets.h"
#include "util/lock_order.h"

namespace versa {
namespace {

std::atomic<int> g_violations{0};

void counting_handler(const char* /*report*/) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
}

/// Enforce the lock-order checker for the test's duration and fail it if
/// any acquisition inverted the documented ranks.
class LockOrderGuard {
 public:
  LockOrderGuard()
      : was_enforced_(lock_order::enforced()),
        previous_(lock_order::set_violation_handler(counting_handler)) {
    g_violations.store(0, std::memory_order_relaxed);
    lock_order::set_enforced(true);
  }
  ~LockOrderGuard() {
    EXPECT_EQ(g_violations.load(std::memory_order_relaxed), 0)
        << "lock-order violations under the concurrent data path";
    lock_order::set_violation_handler(previous_);
    lock_order::set_enforced(was_enforced_);
  }

 private:
  bool was_enforced_;
  lock_order::ViolationHandler previous_;
};

Machine make_two_gpu_machine() {
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", 0);  // capacity 0 = unlimited
  const SpaceId g1 = builder.add_space("g1", 0);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  const DeviceId c0 = builder.add_device(DeviceKind::kSmp, kHostSpace, "c", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_worker(c0);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 1e-5);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 1e-5);
  builder.add_bidi_link(g0, g1, 1e9, 1e-5);
  return builder.build();
}

/// One step of a producer's precomputed plan: acquire both pair regions at
/// `space` with `mode` (write flips exclusive residency, read replicates).
struct PlanStep {
  SpaceId space = kHostSpace;
  AccessMode mode = AccessMode::kInOut;
};

std::vector<PlanStep> make_plan(std::uint64_t seed, std::size_t steps,
                                std::size_t space_count) {
  Rng rng(seed);
  std::vector<PlanStep> plan;
  plan.reserve(steps);
  for (std::size_t i = 0; i < steps; ++i) {
    PlanStep step;
    step.space = static_cast<SpaceId>(rng.next_below(space_count));
    // Mostly writes (exclusive flips, the torn-read-sensitive case), some
    // reads (replication) so valid sets of size > 1 are exercised too.
    step.mode = rng.next_below(4) == 0 ? AccessMode::kIn : AccessMode::kInOut;
    plan.push_back(step);
  }
  return plan;
}

void apply_step(DataDirectory& dir, RegionId a, RegionId b,
                const PlanStep& step) {
  const AccessList accesses = {Access{a, step.mode, 0, 0},
                               Access{b, step.mode, 0, 0}};
  TransferList ops;
  dir.acquire(accesses, step.space, ops);
}

TEST(TransferConcurrency, ProducersAndReadersSeeConsistentSnapshots) {
  LockOrderGuard lock_order_guard;
  const Machine machine = make_two_gpu_machine();
  DataDirectory directory(machine);

  constexpr int kProducers = 4;
  constexpr int kReaders = 3;
  constexpr std::size_t kSteps = 300;
  constexpr std::uint64_t kRegionBytes = 1 << 12;
  constexpr std::uint64_t kPairBytes = 2 * kRegionBytes;

  // Each producer owns a disjoint pair; both members are always acquired
  // together, so every consistent pair aggregate is 0 or kPairBytes.
  std::vector<std::pair<RegionId, RegionId>> pairs;
  std::vector<std::vector<PlanStep>> plans;
  for (int p = 0; p < kProducers; ++p) {
    pairs.emplace_back(
        directory.register_region("a" + std::to_string(p), kRegionBytes),
        directory.register_region("b" + std::to_string(p), kRegionBytes));
    plans.push_back(
        make_plan(1000u + static_cast<std::uint64_t>(p), kSteps,
                  machine.space_count()));
  }

  std::atomic<bool> stop{false};
  std::atomic<long> torn_valid{0};
  std::atomic<long> torn_missing{0};
  std::atomic<long> bad_cost{0};
  std::atomic<long> reads_done{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (const PlanStep& step : plans[static_cast<std::size_t>(p)]) {
        apply_step(directory, pairs[static_cast<std::size_t>(p)].first,
                   pairs[static_cast<std::size_t>(p)].second, step);
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(77u + static_cast<std::uint64_t>(r));
      // do/while: on a loaded single-core host the producers can finish
      // (and raise `stop`) before a reader is first scheduled; every
      // reader still probes at least once, so reads_done stays nonzero.
      do {
        const auto& pair = pairs[rng.next_below(pairs.size())];
        const AccessList probe = {Access::in(pair.first),
                                  Access::in(pair.second)};
        const SpaceId space =
            static_cast<SpaceId>(rng.next_below(machine.space_count()));
        const std::uint64_t valid = directory.bytes_valid(probe, space);
        if (valid != 0 && valid != kPairBytes) {
          torn_valid.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t missing = directory.bytes_missing(probe, space);
        if (missing != 0 && missing != kPairBytes) {
          torn_missing.fetch_add(1, std::memory_order_relaxed);
        }
        // transfer_cost prices the missing bytes over the host->space
        // link inside ONE consistent read; since the consistent missing
        // count is 0 or kPairBytes, the cost must be 0 or the full-pair
        // price — a half-pair price is a torn snapshot. (Each query is
        // its own linearization point, so cost is checked against its own
        // two admissible values, not against the separate missing read.)
        const Duration cost = directory.transfer_cost(probe, space);
        const Duration full_pair =
            1e-5 + static_cast<double>(kPairBytes) / 1e9;
        if (space != kHostSpace && cost != 0.0 &&
            (cost < 0.99 * full_pair || cost > 1.01 * full_pair)) {
          bad_cost.fetch_add(1, std::memory_order_relaxed);
        }
        // Single-region reads take only the shard lock; exercise them in
        // the same mix.
        (void)directory.is_valid_in(pair.first, space);
        (void)directory.dirty_space(pair.second);
        reads_done.fetch_add(1, std::memory_order_relaxed);
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  for (int p = 0; p < kProducers; ++p) {
    threads[static_cast<std::size_t>(p)].join();
  }
  stop.store(true, std::memory_order_release);
  for (std::size_t t = kProducers; t < threads.size(); ++t) {
    threads[t].join();
  }

  EXPECT_EQ(torn_valid.load(), 0);
  EXPECT_EQ(torn_missing.load(), 0);
  EXPECT_EQ(bad_cost.load(), 0);
  EXPECT_GT(reads_done.load(), 0);

  // Serial equivalence: replay each producer's plan against a private
  // directory and sum the accounting. Regions are disjoint, so each
  // region's transfer sequence is interleaving-independent and the
  // concurrent totals must match the serial reference exactly.
  TransferStats reference;
  for (int p = 0; p < kProducers; ++p) {
    DataDirectory replay(machine);
    const RegionId a = replay.register_region("a", kRegionBytes);
    const RegionId b = replay.register_region("b", kRegionBytes);
    for (const PlanStep& step : plans[static_cast<std::size_t>(p)]) {
      apply_step(replay, a, b, step);
    }
    const TransferStats stats = replay.stats();
    reference.input_bytes += stats.input_bytes;
    reference.output_bytes += stats.output_bytes;
    reference.device_bytes += stats.device_bytes;
    reference.input_count += stats.input_count;
    reference.output_count += stats.output_count;
    reference.device_count += stats.device_count;
  }
  const TransferStats concurrent = directory.stats();
  EXPECT_EQ(concurrent.input_bytes, reference.input_bytes);
  EXPECT_EQ(concurrent.output_bytes, reference.output_bytes);
  EXPECT_EQ(concurrent.device_bytes, reference.device_bytes);
  EXPECT_EQ(concurrent.input_count, reference.input_count);
  EXPECT_EQ(concurrent.output_count, reference.output_count);
  EXPECT_EQ(concurrent.device_count, reference.device_count);
}

TEST(TransferConcurrency, WriterMutexFallbackIsCountedAndDoesNotStarve) {
  LockOrderGuard lock_order_guard;
  const Machine machine = make_two_gpu_machine();
  DataDirectory directory(machine);

  // Retries = 0 forces EVERY consistent read straight to the writer-mutex
  // fallback. The fallback takes the directory mutex exclusively, which
  // excludes the (shared-holding) parallel acquirers — so each read holds
  // a stable snapshot and is guaranteed to terminate even under a
  // continuous mutator barrage. The test pins both halves: the fallback
  // is *counted* (transfer stats) and *non-starving* (all reads finish
  // and still see untorn pair aggregates).
  directory.set_consistent_read_retries(0);
  ASSERT_EQ(directory.consistent_read_retries(), 0);

  constexpr std::uint64_t kRegionBytes = 1 << 12;
  constexpr std::uint64_t kPairBytes = 2 * kRegionBytes;
  const RegionId a = directory.register_region("a", kRegionBytes);
  const RegionId b = directory.register_region("b", kRegionBytes);
  const std::vector<PlanStep> plan = make_plan(9000, 400,
                                               machine.space_count());

  std::atomic<long> torn{0};
  std::atomic<long> reads_done{0};
  std::thread producer([&] {
    for (const PlanStep& step : plan) {
      apply_step(directory, a, b, step);
    }
  });
  constexpr int kReaders = 2;
  constexpr int kReadsPerReader = 200;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(40u + static_cast<std::uint64_t>(r));
      const AccessList probe = {Access::in(a), Access::in(b)};
      // A fixed read count (not a stop flag): if the fallback could
      // starve, this loop would hang and the test would time out.
      for (int i = 0; i < kReadsPerReader; ++i) {
        const SpaceId space =
            static_cast<SpaceId>(rng.next_below(machine.space_count()));
        const std::uint64_t valid = directory.bytes_valid(probe, space);
        if (valid != 0 && valid != kPairBytes) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        reads_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  producer.join();
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(reads_done.load(), kReaders * kReadsPerReader);
  // Every read exhausted its (zero) retry budget before falling back.
  EXPECT_GE(directory.stats().consistent_fallback_count,
            static_cast<std::uint64_t>(kReaders * kReadsPerReader));
}

TEST(TransferConcurrency, ConcurrentFlushersAndAcquirersStayCoherent) {
  LockOrderGuard lock_order_guard;
  const Machine machine = make_two_gpu_machine();
  DataDirectory directory(machine);

  constexpr std::uint64_t kRegionBytes = 1 << 10;
  std::vector<RegionId> regions;
  for (int r = 0; r < 8; ++r) {
    regions.push_back(
        directory.register_region("r" + std::to_string(r), kRegionBytes));
  }

  // Writers dirty regions on the device spaces; a flusher concurrently
  // forces write-backs. Whatever the interleaving, the terminal flush
  // must leave every region host-valid and clean — the invariant a
  // taskwait relies on.
  std::vector<std::thread> threads;
  for (int w = 0; w < 3; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(500u + static_cast<std::uint64_t>(w));
      for (int i = 0; i < 200; ++i) {
        const RegionId region = regions[rng.next_below(regions.size())];
        const SpaceId space =
            static_cast<SpaceId>(1 + rng.next_below(machine.space_count() - 1));
        TransferList ops;
        directory.acquire({Access::inout(region)}, space, ops);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      TransferList ops;
      directory.flush_all(ops);
      std::this_thread::yield();
    }
  });
  for (auto& t : threads) {
    t.join();
  }

  TransferList ops;
  directory.flush_all(ops);
  for (const RegionId region : regions) {
    EXPECT_TRUE(directory.is_valid_in(region, kHostSpace));
    EXPECT_EQ(directory.dirty_space(region), kInvalidSpace);
  }
}

TEST(TransferConcurrency, EngineMirrorsStayExactUnderConcurrentEnqueue) {
  LockOrderGuard lock_order_guard;
  const Machine machine = make_minotauro_node(2, 2);
  TransferEngine engine(machine);

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 250;
  constexpr std::uint64_t kBytes = 4096;

  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    // Lock-free polls while enqueuers run: monotone, never torn, and
    // TSan-clean — exactly what a live dashboard would do.
    std::uint64_t last = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t now = engine.routed_bytes();
      EXPECT_GE(now, last);
      last = now;
      (void)engine.record_count();
    }
  });

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Direct host<->GPU hops (no staging), so routed bytes == op bytes.
      const SpaceId gpu = static_cast<SpaceId>(1 + (t % 2));
      for (int i = 0; i < kOpsPerThread; ++i) {
        TransferList ops;
        ops.push_back(TransferOp{0, kHostSpace, gpu, kBytes,
                                 TransferCategory::kInput});
        engine.enqueue(ops, 0.0);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  stop.store(true, std::memory_order_release);
  monitor.join();

  const std::uint64_t expected_ops =
      static_cast<std::uint64_t>(kThreads) * kOpsPerThread;
  EXPECT_EQ(engine.routed_bytes(), expected_ops * kBytes);
  EXPECT_EQ(engine.record_count(), expected_ops);
}

}  // namespace
}  // namespace versa
