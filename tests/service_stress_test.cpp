// Service-mode stress tests (run under TSan with VERSA_LOCK_ORDER=1 in
// CI): many client threads × several tenants × graph storms through one
// shared VersaService.
//
// StormReconcilesExactly is the acceptance scenario from the service-mode
// work: 6 client threads, 3 tenants, 240 graphs total (well past the
// 4 × 3 × 200 bar on the thread backend), one tenant quota-tight so the
// storm produces real typed rejections. Every graph must complete or be
// cleanly rejected, and the per-tenant accounting must reconcile *exactly*
// against the client-side tallies and the executed-task counters.
//
// FairShareHoldsUnderBacklog pins the weighted interleave: three tenants
// with weights 1:2:3 all fully backlogged behind a small dispatch window;
// over a mid-stream sample of task starts, every tenant's share must stay
// within 2x of its weight share.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "machine/presets.h"
#include "runtime/config.h"
#include "service/versa_service.h"

namespace versa {
namespace {

using namespace versa::service;

GraphSpec chain_spec(TaskTypeId type, std::size_t tasks) {
  GraphSpec spec;
  spec.regions.push_back({"chain", 4096});
  for (std::size_t i = 0; i < tasks; ++i) {
    TaskSpec task;
    task.type = type;
    task.accesses.push_back({0, AccessMode::kInOut});
    spec.tasks.push_back(task);
  }
  return spec;
}

class ServiceStormTest : public testing::TestWithParam<Backend> {};

TEST_P(ServiceStormTest, StormReconcilesExactly) {
  constexpr int kClients = 6;          // two per tenant
  constexpr int kGraphsPerClient = 40; // 240 graphs total
  constexpr std::size_t kTasksPerGraph = 3;

  const Machine machine = make_smp_machine(4);
  VersaServiceConfig config;
  config.runtime.backend = GetParam();
  VersaService svc(machine, config);

  // One task type per tenant so the executed-task counters can be
  // attributed without the body knowing its tenant.
  std::atomic<std::uint64_t> executed[3] = {{0}, {0}, {0}};
  TaskTypeId types[3];
  for (int t = 0; t < 3; ++t) {
    types[t] = svc.runtime().declare_task("storm_t" + std::to_string(t));
    svc.runtime().add_version(types[t], DeviceKind::kSmp, "smp",
                              [&executed, t](TaskContext&) {
                                executed[t].fetch_add(
                                    1, std::memory_order_relaxed);
                              });
  }

  // Tenant 2 ("tight") can hold at most 2 graphs in flight: with two
  // clients storming it, some submissions MUST be rejected.
  std::vector<Session> sessions;
  sessions.push_back(svc.open_session("bulk", {}));
  sessions.push_back(svc.open_session("steady", {}));
  TenantQuota tight;
  tight.max_in_flight_tasks = 2 * kTasksPerGraph;
  sessions.push_back(svc.open_session("tight", tight));

  std::atomic<std::uint64_t> admitted[3] = {{0}, {0}, {0}};
  std::atomic<std::uint64_t> rejected[3] = {{0}, {0}, {0}};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    const int tenant_index = c % 3;
    Session session = sessions[static_cast<std::size_t>(tenant_index)];
    clients.emplace_back([&, tenant_index, session]() mutable {
      const GraphSpec spec =
          chain_spec(types[tenant_index], kTasksPerGraph);
      for (int g = 0; g < kGraphsPerClient; ++g) {
        const SubmitResult result = session.submit(spec);
        if (!result.admitted()) {
          // The only legal rejection here is the tight tenant's task
          // quota — typed, graceful, nothing charged.
          ASSERT_EQ(result.rejected.reason, RejectReason::kTaskQuota);
          ASSERT_EQ(tenant_index, 2);
          rejected[tenant_index].fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        admitted[tenant_index].fetch_add(1, std::memory_order_relaxed);
        session.wait(result.graph);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Exact reconciliation: registry accounting vs client tallies vs
  // executed bodies.
  std::uint64_t total_graphs = 0;
  for (int t = 0; t < 3; ++t) {
    const TenantStats stats = sessions[static_cast<std::size_t>(t)].stats();
    EXPECT_EQ(stats.admitted_graphs, admitted[t].load()) << "tenant " << t;
    EXPECT_EQ(stats.rejected_graphs, rejected[t].load()) << "tenant " << t;
    EXPECT_EQ(stats.completed_graphs, stats.admitted_graphs);
    EXPECT_EQ(stats.completed_tasks, admitted[t].load() * kTasksPerGraph);
    EXPECT_EQ(executed[t].load(), stats.completed_tasks);
    EXPECT_EQ(stats.in_flight_tasks, 0u);
    EXPECT_EQ(stats.in_flight_bytes, 0u);
    total_graphs += stats.admitted_graphs + stats.rejected_graphs;
  }
  EXPECT_EQ(total_graphs,
            static_cast<std::uint64_t>(kClients) * kGraphsPerClient);
  // The untight tenants never see a rejection.
  EXPECT_EQ(rejected[0].load(), 0u);
  EXPECT_EQ(rejected[1].load(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, ServiceStormTest,
                         testing::Values(Backend::kSim, Backend::kThreads),
                         [](const testing::TestParamInfo<Backend>& info) {
                           return info.param == Backend::kSim ? "sim"
                                                              : "threads";
                         });

TEST(ServiceFairShare, FairShareHoldsUnderBacklog) {
  constexpr int kGraphsPerTenant = 40;
  constexpr std::size_t kTasksPerGraph = 4;
  constexpr std::size_t kTotalTasks = 3 * kGraphsPerTenant * kTasksPerGraph;
  constexpr std::size_t kWindow = 8;

  const Machine machine = make_smp_machine(4);
  VersaServiceConfig config;
  config.runtime.backend = Backend::kThreads;
  config.fair_share_window = kWindow;
  VersaService svc(machine, config);

  // Bodies park on a start gate until every graph is submitted, so the
  // interleaver refills from a state where all three tenants are fully
  // backlogged — the regime the weights are defined over. Each body then
  // records which tenant the n-th task start belonged to.
  std::atomic<bool> go{false};
  std::atomic<std::size_t> seq{0};
  std::vector<std::atomic<std::uint32_t>> starts(kTotalTasks);
  TaskTypeId types[3];
  for (int t = 0; t < 3; ++t) {
    types[t] = svc.runtime().declare_task("fair_t" + std::to_string(t));
    svc.runtime().add_version(
        types[t], DeviceKind::kSmp, "smp", [&go, &seq, &starts, t](TaskContext&) {
          while (!go.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          const std::size_t n = seq.fetch_add(1, std::memory_order_relaxed);
          ASSERT_LT(n, starts.size());
          starts[n].store(static_cast<std::uint32_t>(t),
                          std::memory_order_relaxed);
        });
  }

  std::vector<Session> sessions;
  for (std::uint32_t w = 1; w <= 3; ++w) {
    TenantQuota quota;
    quota.weight = w;  // tenants 1, 2, 3 with weights 1, 2, 3
    sessions.push_back(svc.open_session("w" + std::to_string(w), quota));
  }

  // Independent tasks (all inout chains would serialize): each task reads
  // the shared region, so every task of a graph is ready at submission and
  // the window is the only thing limiting dispatch.
  auto fanout_spec = [&](int tenant_index) {
    GraphSpec spec;
    spec.regions.push_back({"in", 4096});
    for (std::size_t i = 0; i < kTasksPerGraph; ++i) {
      TaskSpec task;
      task.type = types[tenant_index];
      task.accesses.push_back({0, AccessMode::kIn});
      spec.tasks.push_back(task);
    }
    return spec;
  };

  std::atomic<int> clients_done{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    Session session = sessions[static_cast<std::size_t>(t)];
    clients.emplace_back([&, t, session]() mutable {
      const GraphSpec spec = fanout_spec(t);
      std::vector<GraphId> graphs;
      graphs.reserve(kGraphsPerTenant);
      for (int g = 0; g < kGraphsPerTenant; ++g) {
        const SubmitResult result = session.submit(spec);
        ASSERT_TRUE(result.admitted()) << result.rejected.detail;
        graphs.push_back(result.graph);
      }
      clients_done.fetch_add(1, std::memory_order_release);
      for (const GraphId g : graphs) session.wait(g);
    });
  }
  while (clients_done.load(std::memory_order_acquire) < 3) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  ASSERT_EQ(seq.load(), kTotalTasks);

  // Skip the initial window fill (submission-ordered, not weighted), then
  // sample a stretch where every tenant still has deep backlog: tenant
  // shares must be within 2x of weight/6.
  constexpr std::size_t kSkip = 2 * kWindow;
  constexpr std::size_t kSample = 90;
  static_assert(kSkip + kSample < kGraphsPerTenant * kTasksPerGraph,
                "sample must end while the weight-1 tenant is backlogged");
  std::size_t per_tenant[3] = {0, 0, 0};
  for (std::size_t n = kSkip; n < kSkip + kSample; ++n) {
    ++per_tenant[starts[n].load(std::memory_order_relaxed)];
  }
  for (std::uint32_t t = 0; t < 3; ++t) {
    const std::uint32_t weight = t + 1;
    // share >= (weight / 6) / 2  <=>  12 * count >= kSample * weight
    EXPECT_GE(12 * per_tenant[t], kSample * weight)
        << "tenant with weight " << weight << " got " << per_tenant[t]
        << " of " << kSample << " starts";
  }
}

}  // namespace
}  // namespace versa
