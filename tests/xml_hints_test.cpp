// Tests for the XML hints format (§VII): serializer/parser round-trips,
// schema validation, the embedded XML subset reader's error handling, and
// runtime integration via the ".xml" extension.
#include <gtest/gtest.h>

#include <fstream>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/xml_hints.h"

namespace versa {
namespace {

struct Fixture {
  VersionRegistry registry;
  TaskTypeId task;
  VersionId gpu, smp;

  Fixture() {
    task = registry.declare_task("matmul_tile");
    gpu = registry.add_version(task, DeviceKind::kCuda, "cublas", nullptr,
                               nullptr);
    smp = registry.add_version(task, DeviceKind::kSmp, "cblas", nullptr,
                               nullptr);
  }
};

TEST(XmlHints, RoundTrip) {
  Fixture fx;
  ProfileConfig config;
  config.lambda = 3;
  ProfileTable source(fx.registry, config);
  for (int i = 0; i < 7; ++i) source.record(fx.task, fx.gpu, 4096, 5e-3);
  source.record(fx.task, fx.smp, 4096, 0.3);

  const std::string xml = serialize_xml_hints(fx.registry, source);
  EXPECT_NE(xml.find("<hints>"), std::string::npos);
  EXPECT_NE(xml.find("task name=\"matmul_tile\""), std::string::npos);
  EXPECT_NE(xml.find("version name=\"cublas\""), std::string::npos);

  ProfileTable target(fx.registry, config);
  EXPECT_EQ(parse_xml_hints(xml, fx.registry, target), 2);
  EXPECT_NEAR(*target.mean(fx.task, fx.gpu, 4096), 5e-3, 1e-12);
  EXPECT_EQ(target.count(fx.task, fx.gpu, 4096), 3u);  // clamped to λ
  EXPECT_EQ(target.count(fx.task, fx.smp, 4096), 1u);
}

TEST(XmlHints, HandwrittenFileWithCommentsAndDeclaration) {
  Fixture fx;
  ProfileTable table(fx.registry, {});
  const char* xml = R"(<?xml version="1.0" encoding="UTF-8"?>
<!-- measured on minotauro, 2026-07 -->
<hints>
  <task name="matmul_tile">
    <group size="1000">
      <!-- the GPU version -->
      <version name="cublas" mean="2.0e-3" count="9"/>
    </group>
  </task>
</hints>)";
  EXPECT_EQ(parse_xml_hints(xml, fx.registry, table), 1);
  EXPECT_NEAR(*table.mean(fx.task, fx.gpu, 1000), 2e-3, 1e-12);
}

TEST(XmlHints, UnknownNamesAreSkipped) {
  Fixture fx;
  ProfileTable table(fx.registry, {});
  const char* xml =
      "<hints><task name=\"ghost\"><group size=\"1\">"
      "<version name=\"x\" mean=\"1\" count=\"1\"/></group></task>"
      "<task name=\"matmul_tile\"><group size=\"1\">"
      "<version name=\"ghostv\" mean=\"1\" count=\"1\"/></group></task>"
      "</hints>";
  EXPECT_EQ(parse_xml_hints(xml, fx.registry, table), 0);
}

TEST(XmlHints, MalformedInputsFailCleanly) {
  Fixture fx;
  ProfileTable table(fx.registry, {});
  std::string error;
  EXPECT_EQ(parse_xml_hints("<hints><task></task></hints>", fx.registry,
                            table, &error),
            -1);
  EXPECT_NE(error.find("name"), std::string::npos);
  EXPECT_EQ(parse_xml_hints(
                "<hints><version name=\"x\" mean=\"1\" count=\"1\"/></hints>",
                fx.registry, table, &error),
            -1);
  EXPECT_EQ(parse_xml_hints("<hints><task name=\"t\"><group size=\"zz\">",
                            fx.registry, table, &error),
            -1);
  EXPECT_EQ(parse_xml_hints("<hints><bogus/></hints>", fx.registry, table,
                            &error),
            -1);
  EXPECT_EQ(parse_xml_hints("<hints attr=unquoted></hints>", fx.registry,
                            table, &error),
            -1);
}

TEST(XmlHints, RuntimePicksXmlByExtension) {
  const std::string path = testing::TempDir() + "/versa_hints.xml";
  std::remove(path.c_str());
  const Machine machine = make_minotauro_node(2, 1);

  auto run = [&](const std::string& load, const std::string& save) {
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.profile.lambda = 3;
    config.noise.kind = sim::NoiseKind::kNone;
    config.hints_load_path = load;
    config.hints_save_path = save;
    std::uint64_t slow_runs = 0;
    {
      Runtime rt(machine, config);
      const TaskTypeId t = rt.declare_task("kernel");
      rt.add_version(t, DeviceKind::kCuda, "fast", nullptr,
                     make_constant_cost(1e-3));
      const VersionId slow = rt.add_version(t, DeviceKind::kSmp, "slow",
                                            nullptr, make_constant_cost(20e-3));
      const RegionId r = rt.register_data("r", 1024);
      for (int i = 0; i < 30; ++i) {
        rt.submit(t, {Access::in(r)});
      }
      rt.taskwait();
      slow_runs = rt.run_stats().count(slow);
    }
    return slow_runs;
  };

  const std::uint64_t cold = run("", path);
  // The file exists and is XML.
  std::ifstream in(path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("<?xml"), std::string::npos);

  const std::uint64_t warm = run(path, "");
  EXPECT_LT(warm, cold);
}

}  // namespace
}  // namespace versa
