// Tests for the timeline analyzer: interval algebra and end-to-end
// compute/transfer overlap measurement on simulated runs.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "perf/timeline.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(Intervals, MergeCollapsesOverlaps) {
  const auto merged = merge_intervals({{0, 2}, {1, 3}, {5, 6}, {6, 7}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(merged[0].begin, 0.0);
  EXPECT_DOUBLE_EQ(merged[0].end, 3.0);
  EXPECT_DOUBLE_EQ(merged[1].begin, 5.0);
  EXPECT_DOUBLE_EQ(merged[1].end, 7.0);
  EXPECT_DOUBLE_EQ(total_length(merged), 5.0);
}

TEST(Intervals, MergeDropsEmptyAndSorts) {
  const auto merged = merge_intervals({{4, 4}, {3, 1}, {2, 3}, {0, 1}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_DOUBLE_EQ(total_length(merged), 2.0);
}

TEST(Intervals, IntersectionLength) {
  const auto a = merge_intervals({{0, 4}, {6, 8}});
  const auto b = merge_intervals({{2, 7}});
  EXPECT_DOUBLE_EQ(intersection_length(a, b), 3.0);  // [2,4) + [6,7)
  EXPECT_DOUBLE_EQ(intersection_length(a, {}), 0.0);
  EXPECT_DOUBLE_EQ(intersection_length(a, a), total_length(a));
}

TEST(Timeline, PrefetchedRunHidesMostTransferTime) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "affinity";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  for (int i = 0; i < 8; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 6'000'000);
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait_noflush();

  const auto* records = rt.transfer_records();
  ASSERT_NE(records, nullptr);
  EXPECT_EQ(records->size(), 8u);  // one copy per input
  const TimelineStats stats =
      analyze_timeline(rt.task_graph(), *records, rt.elapsed());
  EXPECT_NEAR(stats.compute_wall, 8e-3, 1e-6);
  EXPECT_NEAR(stats.transfer_wall, 8e-3, 0.2e-3);
  // First copy cannot overlap (nothing computing yet); the other seven
  // hide behind compute.
  EXPECT_GT(stats.overlap_fraction, 0.8);
  EXPECT_LT(stats.exposed_transfer, 1.5e-3);
}

TEST(Timeline, NoPrefetchExposesTransfers) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "affinity";
  config.noise.kind = sim::NoiseKind::kNone;
  config.prefetch = false;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  for (int i = 0; i < 8; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 6'000'000);
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait_noflush();
  const TimelineStats stats = analyze_timeline(
      rt.task_graph(), *rt.transfer_records(), rt.elapsed());
  // Copy and compute strictly alternate on the single worker: nothing
  // overlaps.
  EXPECT_LT(stats.overlap_fraction, 0.05);
  EXPECT_NEAR(stats.makespan, stats.compute_wall + stats.transfer_wall,
              0.5e-3);
}

TEST(Timeline, ThreadBackendHasNoRecords) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  Runtime rt(machine, config);
  EXPECT_EQ(rt.transfer_records(), nullptr);
}

TEST(Timeline, ReportMentionsKeyNumbers) {
  TimelineStats stats;
  stats.makespan = 1.0;
  stats.compute_wall = 0.8;
  stats.transfer_wall = 0.5;
  stats.overlapped_wall = 0.4;
  stats.overlap_fraction = 0.8;
  stats.exposed_transfer = 0.1;
  const std::string report = timeline_report(stats);
  EXPECT_NE(report.find("80.0 %"), std::string::npos);
  EXPECT_NE(report.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace versa
