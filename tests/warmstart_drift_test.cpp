// Acceptance tests for the ISSUE's two end-to-end criteria: a
// warm-started matmul run performs zero learning-phase executions while
// matching the cold run's steady-state GFLOP/s, and after an injected
// mid-run 2x slowdown the drift detector re-enters learning and the
// assignment shares recover to within 10 points of an oracle that knew
// the post-drift costs from the start.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include "apps/matmul.h"
#include "machine/presets.h"
#include "perf/run_stats.h"
#include "runtime/runtime.h"
#include "sched/versioning_scheduler.h"

namespace versa {
namespace {

struct MatmulOutcome {
  double gflops = 0.0;
  std::uint64_t learning = 0;
  bool warm = false;
};

MatmulOutcome run_matmul(const std::string& load, const std::string& save) {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.seed = 42;
  config.profile_load_path = load;
  config.profile_save_path = save;

  MatmulOutcome outcome;
  const Machine machine = make_minotauro_node(4, 2);  // must outlive rt
  Runtime rt(machine, config);
  // Paper scale (4096 tasks): the cold run's learning transient is a small
  // fraction of the total, so cold throughput ~= cold steady state.
  apps::MatmulParams params;
  params.n = 16384;
  params.tile = 1024;
  apps::MatmulApp app(rt, params);
  app.run();
  outcome.gflops = gflops(app.total_flops(), rt.elapsed());
  outcome.learning =
      dynamic_cast<const VersioningScheduler&>(rt.scheduler())
          .learning_executions();
  outcome.warm = rt.profile_load_result().warm();
  return outcome;
}

TEST(WarmStart, ZeroLearningExecutionsAndColdSteadyStatePerformance) {
  const std::string store = testing::TempDir() + "warmstart_matmul.profile";
  std::remove(store.c_str());

  const MatmulOutcome cold = run_matmul("", store);
  EXPECT_FALSE(cold.warm);
  EXPECT_GT(cold.learning, 0u);

  const MatmulOutcome warm = run_matmul(store, "");
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.learning, 0u);
  // Warm start must match cold steady-state throughput within 5 %.
  EXPECT_NEAR(warm.gflops, cold.gflops, 0.05 * cold.gflops)
      << "cold " << cold.gflops << " GFLOP/s vs warm " << warm.gflops;
}

// --- drift recovery ------------------------------------------------------

constexpr double kGpuMs = 8e-3;
constexpr double kSmpMs = 12e-3;
constexpr std::size_t kWaves = 40;
constexpr std::size_t kTasksPerWave = 10;
constexpr std::size_t kDriftWave = 10;

struct DriftOutcome {
  double post_drift_smp_pct = 0.0;  ///< SMP share of post-drift tasks
  std::size_t drift_events = 0;
  std::uint64_t relearning = 0;  ///< learning executions after warm wave 0
};

/// Wave-submitted kernel run on make_minotauro_node(4, 2). The GPU cost
/// model reads `scale` through a callable, so flipping it mid-run changes
/// measured durations without the scheduler being told.
DriftOutcome run_drift(double initial_scale, bool flip_at_drift_wave,
                       bool detector) {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.seed = 42;
  config.profile.lambda = 3;
  config.profile.drift.enabled = detector;

  double scale = initial_scale;
  DriftOutcome outcome;
  const Machine machine = make_minotauro_node(4, 2);  // must outlive rt
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("kernel");
  const VersionId gpu = rt.add_version(
      t, DeviceKind::kCuda, "gpu", nullptr,
      make_callable_cost([&scale](std::uint64_t) { return kGpuMs * scale; }));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp", nullptr,
                                       make_constant_cost(kSmpMs));
  const RegionId r = rt.register_data("data", 4 << 20);

  std::uint64_t gpu_at_drift = 0, smp_at_drift = 0;
  for (std::size_t wave = 0; wave < kWaves; ++wave) {
    if (wave == kDriftWave) {
      if (flip_at_drift_wave) scale = 2.0;
      gpu_at_drift = rt.run_stats().count(gpu);
      smp_at_drift = rt.run_stats().count(smp);
    }
    for (std::size_t i = 0; i < kTasksPerWave; ++i) {
      rt.submit(t, {Access::in(r)});
    }
    rt.taskwait();
  }

  const double post_gpu =
      static_cast<double>(rt.run_stats().count(gpu) - gpu_at_drift);
  const double post_smp =
      static_cast<double>(rt.run_stats().count(smp) - smp_at_drift);
  outcome.post_drift_smp_pct = 100.0 * post_smp / (post_gpu + post_smp);
  const auto& versioning =
      dynamic_cast<const VersioningScheduler&>(rt.scheduler());
  outcome.drift_events = versioning.profile().drift_events().size();
  outcome.relearning = versioning.learning_executions();
  return outcome;
}

TEST(DriftRecovery, SharesRecoverWithinTenPointsOfPostDriftOracle) {
  // Oracle: the GPU was 2x slower from the very first task.
  const DriftOutcome oracle = run_drift(2.0, false, false);
  EXPECT_EQ(oracle.drift_events, 0u);

  // Detector run: costs flip at wave kDriftWave; the stored GPU mean is
  // now stale and the CUSUM alarm resets the group into learning.
  const DriftOutcome adaptive = run_drift(1.0, true, true);
  EXPECT_GE(adaptive.drift_events, 1u);
  EXPECT_NEAR(adaptive.post_drift_smp_pct, oracle.post_drift_smp_pct, 10.0)
      << "oracle smp share " << oracle.post_drift_smp_pct
      << " % vs adaptive " << adaptive.post_drift_smp_pct << " %";
}

TEST(DriftRecovery, DetectorDisabledNeverRaisesEvents) {
  const DriftOutcome stale = run_drift(1.0, true, false);
  EXPECT_EQ(stale.drift_events, 0u);
}

TEST(DriftRecovery, NoFalseAlarmsWithoutDrift) {
  // Same workload, no cost change: the detector must stay silent for the
  // whole run despite the simulator's lognormal noise.
  const DriftOutcome steady = run_drift(1.0, false, true);
  EXPECT_EQ(steady.drift_events, 0u);
}

}  // namespace
}  // namespace versa
