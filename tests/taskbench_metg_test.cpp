// Unit tests for the METG bisection (taskbench::metg_bisect) on synthetic
// perfect-runtime cost models — no real execution, so the analytically
// known crossing can be checked exactly. The canonical model is the
// per-task-overhead law eff(c) = c / (c + overhead): efficiency reaches
// 50% exactly at c = overhead, so METG(50%) == overhead; a target t
// crosses at c = overhead * t / (1 - t).
#include <gtest/gtest.h>

#include <cmath>

#include "taskbench/metg.h"

namespace versa::taskbench {
namespace {

/// Perfect-runtime model with a fixed per-task overhead.
EfficiencyFn overhead_model(double overhead) {
  return [overhead](Duration cost) { return cost / (cost + overhead); };
}

TEST(MetgBisect, ConvergesToKnownOverhead) {
  const double overhead = 250e-6;
  const MetgResult result =
      metg_bisect(overhead_model(overhead), 1e-6, 1.0, 0.5, 1.01);
  ASSERT_TRUE(result.found);
  EXPECT_FALSE(result.all_overhead);
  EXPECT_FALSE(result.zero_overhead);
  // metg is the smallest *passing* probe: >= the true crossing, within
  // the tolerance factor of it.
  EXPECT_GE(result.metg, overhead * 0.999);
  EXPECT_LE(result.metg, overhead * 1.01 * 1.001);
  EXPECT_GE(result.efficiency, 0.5);
}

TEST(MetgBisect, TargetShiftsTheCrossing) {
  const double overhead = 100e-6;
  // eff = 0.9 at c = 9 * overhead.
  const MetgResult result =
      metg_bisect(overhead_model(overhead), 1e-6, 1.0, 0.9, 1.01);
  ASSERT_TRUE(result.found);
  EXPECT_GE(result.metg, 9.0 * overhead * 0.999);
  EXPECT_LE(result.metg, 9.0 * overhead * 1.01 * 1.001);
}

TEST(MetgBisect, AllOverheadEndpoint) {
  // Efficiency never reaches the target inside the range: one probe (at
  // hi) suffices to classify the configuration.
  const MetgResult result =
      metg_bisect([](Duration) { return 0.2; }, 1e-6, 1.0, 0.5, 1.1);
  EXPECT_FALSE(result.found);
  EXPECT_TRUE(result.all_overhead);
  EXPECT_FALSE(result.zero_overhead);
  EXPECT_TRUE(std::isinf(result.metg));
  EXPECT_EQ(result.evaluations, 1);
}

TEST(MetgBisect, ZeroOverheadEndpoint) {
  // Target already met at lo: METG is the lower probe bound and exactly
  // two probes were spent (hi to rule out all-overhead, then lo).
  const MetgResult result =
      metg_bisect([](Duration) { return 0.9; }, 1e-6, 1.0, 0.5, 1.1);
  EXPECT_FALSE(result.found);
  EXPECT_FALSE(result.all_overhead);
  EXPECT_TRUE(result.zero_overhead);
  EXPECT_DOUBLE_EQ(result.metg, 1e-6);
  EXPECT_DOUBLE_EQ(result.efficiency, 0.9);
  EXPECT_EQ(result.evaluations, 2);
}

TEST(MetgBisect, ExactThresholdAtHiCountsAsPassing) {
  // eff(hi) == target exactly: not all-overhead; bisection proceeds.
  const double overhead = 1.0;  // eff(1.0) == 0.5 == target at hi
  const MetgResult result =
      metg_bisect(overhead_model(overhead), 1e-3, 1.0, 0.5, 1.05);
  EXPECT_FALSE(result.all_overhead);
  ASSERT_TRUE(result.found);
  // The crossing sits on the bracket's upper edge.
  EXPECT_GE(result.metg, overhead / 1.05);
  EXPECT_LE(result.metg, overhead);
}

TEST(MetgBisect, EvaluationCountIsLogarithmic) {
  // Six-decade bracket at 10% tolerance: each step halves the log-width,
  // so ~10 probes, never a linear scan.
  const MetgResult result =
      metg_bisect(overhead_model(1e-4), 1e-6, 1.0, 0.5, 1.1);
  ASSERT_TRUE(result.found);
  EXPECT_LE(result.evaluations, 20);
  EXPECT_GE(result.evaluations, 3);
}

TEST(MetgBisect, ResultBracketsRespectTolerance) {
  for (const double tolerance : {1.02, 1.1, 1.5, 2.0}) {
    const double overhead = 3.3e-4;
    const MetgResult result =
        metg_bisect(overhead_model(overhead), 1e-6, 1.0, 0.5, tolerance);
    ASSERT_TRUE(result.found) << tolerance;
    // metg is a passing cost within `tolerance` of the true crossing.
    EXPECT_GE(result.metg, overhead / tolerance) << tolerance;
    EXPECT_LE(result.metg, overhead * tolerance) << tolerance;
  }
}

}  // namespace
}  // namespace versa::taskbench
