// Property tests for the sharded DependencyAnalyzer (CI thread-sanitizer
// job, run there with VERSA_LOCK_ORDER=1): producers registering tasks
// over disjoint region sets from concurrent threads must compute exactly
// the predecessor sets a single-threaded serial replay computes, with the
// lock-order checker enforced (multi-shard tasks lock analyzer.shard
// mutexes in ascending index order; the counting handler fails the test
// on any inversion).
//
// Two layers are pinned down:
//  * Unit — 20 random programs, each registered by 4 concurrent producer
//    threads (disjoint region ownership, shard sets overlapping across
//    producers), compared task-by-task against a serial oracle replay.
//  * End-to-end — a dependence-heavy chain program runs through the full
//    Runtime on BOTH backends; a reordered pair anywhere would break the
//    non-commutative arithmetic the chains compute.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "task/dependency_analyzer.h"
#include "util/lock_order.h"

namespace versa {
namespace {

std::atomic<int> g_violations{0};

void counting_handler(const char* /*report*/) {
  g_violations.fetch_add(1, std::memory_order_relaxed);
}

class LockOrderGuard {
 public:
  LockOrderGuard()
      : was_enforced_(lock_order::enforced()),
        previous_(lock_order::set_violation_handler(counting_handler)) {
    g_violations.store(0, std::memory_order_relaxed);
    lock_order::set_enforced(true);
  }
  ~LockOrderGuard() {
    EXPECT_EQ(g_violations.load(std::memory_order_relaxed), 0)
        << "lock-order violations in the sharded analyzer";
    lock_order::set_violation_handler(previous_);
    lock_order::set_enforced(was_enforced_);
  }

 private:
  bool was_enforced_;
  lock_order::ViolationHandler previous_;
};

constexpr int kProducers = 4;
constexpr int kTasksPerProducer = 12;
constexpr int kRegionsPerProducer = 6;
constexpr std::uint64_t kRegionBytes = 256;

/// One submission of one producer's program.
struct ProgramTask {
  TaskId id = kInvalidTask;
  AccessList accesses;
};

/// Random program for producer `p`: tasks over the producer's private
/// region set {p*K .. p*K+K-1}. Consecutive producers' regions land on
/// overlapping *shards* (region % 8), so the concurrent run contends on
/// shard mutexes even though the region chains are disjoint.
std::vector<ProgramTask> make_program(std::uint64_t seed, int p) {
  Rng rng(seed * 131u + static_cast<std::uint64_t>(p));
  std::vector<ProgramTask> program;
  for (int i = 0; i < kTasksPerProducer; ++i) {
    ProgramTask task;
    task.id = static_cast<TaskId>(p * 100 + i + 1);
    const std::size_t region_count = 1 + rng.next_below(3);
    std::vector<RegionId> chosen;
    while (chosen.size() < region_count) {
      const RegionId region = static_cast<RegionId>(
          p * kRegionsPerProducer + rng.next_below(kRegionsPerProducer));
      if (std::find(chosen.begin(), chosen.end(), region) != chosen.end()) {
        continue;
      }
      chosen.push_back(region);
      const std::uint64_t start = rng.next_below(kRegionBytes - 1);
      const std::uint64_t length = 1 + rng.next_below(kRegionBytes - start);
      const AccessMode mode =
          rng.next_below(3) == 0
              ? AccessMode::kIn
              : (rng.next_below(2) == 0 ? AccessMode::kOut
                                        : AccessMode::kInOut);
      task.accesses.push_back(Access{region, mode, start, length});
    }
    program.push_back(std::move(task));
  }
  return program;
}

std::vector<TaskId> sorted(std::vector<TaskId> preds) {
  std::sort(preds.begin(), preds.end());
  return preds;
}

TEST(AnalyzerSharding, ConcurrentProducersMatchSerialOracle) {
  LockOrderGuard lock_order_guard;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<std::vector<ProgramTask>> programs;
    for (int p = 0; p < kProducers; ++p) {
      programs.push_back(make_program(seed, p));
    }

    // Concurrent run: each producer registers its program in its own
    // program order from its own thread; region chains are disjoint
    // across producers, so any interleaving is serially equivalent.
    DependencyAnalyzer concurrent;
    std::vector<std::vector<std::vector<TaskId>>> got(kProducers);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
      got[static_cast<std::size_t>(p)].resize(kTasksPerProducer);
      threads.emplace_back([&, p] {
        const auto& program = programs[static_cast<std::size_t>(p)];
        for (std::size_t i = 0; i < program.size(); ++i) {
          concurrent.add_task(program[i].id, program[i].accesses,
                              got[static_cast<std::size_t>(p)][i]);
        }
      });
    }
    for (auto& t : threads) {
      t.join();
    }

    // Serial oracle: one thread, producer by producer, same per-producer
    // program order. Predecessors only ever arise within a producer's own
    // region chains, so the sets must match exactly.
    DependencyAnalyzer oracle;
    for (int p = 0; p < kProducers; ++p) {
      const auto& program = programs[static_cast<std::size_t>(p)];
      for (std::size_t i = 0; i < program.size(); ++i) {
        std::vector<TaskId> expected;
        oracle.add_task(program[i].id, program[i].accesses, expected);
        EXPECT_EQ(sorted(got[static_cast<std::size_t>(p)][i]),
                  sorted(expected))
            << "seed " << seed << " producer " << p << " task " << i;
      }
    }
    EXPECT_EQ(concurrent.interval_count(), oracle.interval_count())
        << "seed " << seed;
  }
}

TEST(AnalyzerSharding, ClearRegionAndResetDropOnlyTheirState) {
  LockOrderGuard lock_order_guard;
  DependencyAnalyzer analyzer;
  std::vector<TaskId> preds;
  // Two regions on different shards, one task each.
  analyzer.add_task(1, {Access{0, AccessMode::kInOut, 0, 64}}, preds);
  analyzer.add_task(2, {Access{3, AccessMode::kInOut, 0, 64}}, preds);
  EXPECT_EQ(analyzer.interval_count(), 2u);
  analyzer.clear_region(0);
  EXPECT_EQ(analyzer.interval_count(), 1u);
  // A fresh task on the cleared region sees no predecessors.
  preds.clear();
  analyzer.add_task(3, {Access{0, AccessMode::kInOut, 0, 64}}, preds);
  EXPECT_TRUE(preds.empty());
  analyzer.reset();
  EXPECT_EQ(analyzer.interval_count(), 0u);
}

/// End-to-end dependence order through the sharded analyzer on one
/// backend: 16 independent chains of non-commutative updates (x -> 2x+1)
/// whose regions spread over every analyzer shard, plus cross-chain
/// readers between links. Any pair executed out of dependence order
/// produces a wrong chain value.
void run_chain_program(Backend backend) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = "dep-aware";
  Runtime rt(machine, config);

  constexpr int kChains = 16;
  constexpr int kLinks = 8;
  std::vector<long> cells(kChains, 0);
  std::vector<RegionId> regions;
  for (int c = 0; c < kChains; ++c) {
    regions.push_back(rt.register_data("chain" + std::to_string(c),
                                       sizeof(long), &cells[c]));
  }
  const TaskTypeId step = rt.declare_task("step");
  rt.add_version(step, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    auto* value = static_cast<long*>(ctx.arg(0));
    *value = *value * 2 + 1;
  });
  const TaskTypeId observe = rt.declare_task("observe");
  rt.add_version(observe, DeviceKind::kSmp, "v", [](TaskContext& ctx) {
    (void)*static_cast<const long*>(ctx.arg(0));
  });
  for (int link = 0; link < kLinks; ++link) {
    for (int c = 0; c < kChains; ++c) {
      rt.submit(step, {Access::inout(regions[static_cast<std::size_t>(c)])});
      // Cross-chain reader: depends on this chain's latest link and the
      // neighbour chain's, widening tasks across shard boundaries.
      rt.submit(observe,
                {Access::in(regions[static_cast<std::size_t>(c)]),
                 Access::in(regions[static_cast<std::size_t>(
                     (c + 1) % kChains)])});
    }
  }
  rt.taskwait();
  for (int c = 0; c < kChains; ++c) {
    EXPECT_EQ(cells[static_cast<std::size_t>(c)], (1L << kLinks) - 1) << c;
  }
}

TEST(AnalyzerSharding, ChainProgramOrderedOnSimBackend) {
  run_chain_program(Backend::kSim);
}

TEST(AnalyzerSharding, ChainProgramOrderedOnThreadBackend) {
  run_chain_program(Backend::kThreads);
}

}  // namespace
}  // namespace versa
