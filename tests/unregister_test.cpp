// Tests for region deregistration (dynamic workloads freeing blocks).
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

RuntimeConfig sim_config() {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "dep-aware";
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

TEST(Unregister, ReleasesSpaceBytesEverywhere) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 1 << 20);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const SpaceId gpu = machine.worker(1).space;
  EXPECT_GT(rt.data_directory().used_bytes(gpu), 0u);
  const std::uint64_t host_before =
      rt.data_directory().used_bytes(kHostSpace);
  rt.unregister_data(r);
  EXPECT_EQ(rt.data_directory().used_bytes(gpu), 0u);
  EXPECT_EQ(rt.data_directory().used_bytes(kHostSpace),
            host_before - (1 << 20));
  EXPECT_FALSE(rt.data_directory().is_registered(r));
}

TEST(Unregister, IdsAreNotReusedAndHistoryIsForgotten) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId old_region = rt.register_data("old", 64);
  rt.submit(t, {Access::out(old_region)});
  rt.taskwait();
  rt.unregister_data(old_region);

  const RegionId fresh = rt.register_data("fresh", 64);
  EXPECT_NE(fresh, old_region);
  // A task on the fresh region has no spurious dependence on the old
  // region's history.
  const TaskId id = rt.submit(t, {Access::in(fresh)});
  rt.taskwait();
  EXPECT_EQ(rt.task_graph().task(id).state, TaskState::kFinished);
}

TEST(Unregister, LiveRegionCountTracks) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config());
  const RegionId a = rt.register_data("a", 64);
  rt.register_data("b", 64);
  EXPECT_EQ(rt.data_directory().live_region_count(), 2u);
  rt.unregister_data(a);
  EXPECT_EQ(rt.data_directory().live_region_count(), 1u);
  EXPECT_EQ(rt.data_directory().region_count(), 2u);  // tombstoned
}

TEST(UnregisterDeath, UnfinishedUserAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  EXPECT_DEATH(
      {
        Runtime rt(machine, sim_config());
        const TaskTypeId t = rt.declare_task("t");
        rt.add_version(t, DeviceKind::kSmp, "v", nullptr,
                       make_constant_cost(1e-3));
        const RegionId r = rt.register_data("r", 64);
        rt.submit(t, {Access::inout(r)});
        rt.unregister_data(r);  // task not yet finished
      },
      "unfinished tasks");
}

TEST(UnregisterDeath, UseAfterUnregisterAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  EXPECT_DEATH(
      {
        Runtime rt(machine, sim_config());
        const TaskTypeId t = rt.declare_task("t");
        rt.add_version(t, DeviceKind::kSmp, "v", nullptr,
                       make_constant_cost(1e-3));
        const RegionId r = rt.register_data("r", 64);
        rt.unregister_data(r);
        rt.submit(t, {Access::in(r)});
      },
      "unregistered");
}

}  // namespace
}  // namespace versa
