// Tests for the Jacobi stencil workload: task-graph shape, array-section
// (halo) dependences, and functional correctness against a sequential
// reference on both backends.
#include <gtest/gtest.h>

#include "apps/jacobi.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa::apps {
namespace {

RuntimeConfig sim_config(const std::string& scheduler = "versioning") {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

JacobiParams small_params() {
  JacobiParams params;
  params.cells = 1024;
  params.slabs = 8;
  params.sweeps = 6;
  params.real_compute = true;
  return params;
}

TEST(JacobiApp_, TaskCountIsSweepsTimesSlabs) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, sim_config());
  JacobiParams params;
  params.cells = 1 << 16;
  params.slabs = 8;
  params.sweeps = 5;
  JacobiApp app(rt, params);
  EXPECT_EQ(app.task_count(), 40u);
  app.run();
  EXPECT_EQ(rt.run_stats().total_tasks(), 40u);
}

TEST(JacobiApp_, MatchesSequentialReferenceOnSim) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, sim_config());
  JacobiApp app(rt, small_params());
  app.run();
  EXPECT_LT(app.max_error(), 1e-6);
  EXPECT_GT(app.checksum(), 0.0);
}

TEST(JacobiApp_, MatchesReferenceOnThreads) {
  // SMP-only machine: only the hybrid SMP version is runnable, so the
  // versioning scheduler (which understands version sets) must drive it.
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  Runtime rt(machine, config);
  JacobiApp app(rt, small_params());
  app.run();
  EXPECT_LT(app.max_error(), 1e-6);
}

TEST(JacobiApp_, MatchesReferenceUnderEveryScheduler) {
  for (const char* scheduler :
       {"fifo", "dep-aware", "affinity", "versioning", "versioning-locality"}) {
    const Machine machine = make_minotauro_node(2, 2);
    Runtime rt(machine, sim_config(scheduler));
    JacobiParams params = small_params();
    params.hybrid = true;
    JacobiApp app(rt, params);
    app.run();
    EXPECT_LT(app.max_error(), 1e-6) << scheduler;
  }
}

TEST(JacobiApp_, OddSweepCountLandsInOtherBuffer) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config());
  JacobiParams params = small_params();
  params.sweeps = 7;
  JacobiApp app(rt, params);
  app.run();
  EXPECT_LT(app.max_error(), 1e-6);
}

TEST(JacobiApp_, HaloDependencesAllowSameSweepParallelism) {
  // All slabs of one sweep are mutually independent (halo reads touch the
  // *source* buffer only), so with one worker per slab a sweep runs as
  // wide as the machine: makespan ~= sweeps * slab_time, far below the
  // serial tasks * slab_time. (Versioning is used because the machine is
  // SMP-only and only the hybrid SMP version is runnable there.)
  const Machine machine = make_smp_machine(8);
  RuntimeConfig config = sim_config("versioning");
  config.profile.lambda = 1;
  Runtime rt(machine, config);
  JacobiParams params;
  params.cells = 1 << 16;
  params.slabs = 8;
  params.sweeps = 4;
  params.hybrid = true;
  JacobiApp app(rt, params);
  app.run();
  const double slab_time = 3.0 * (params.cells / params.slabs) * 4 / 6e9;
  const double serial = static_cast<double>(app.task_count()) * slab_time;
  EXPECT_LT(rt.elapsed(), serial / 4.0);
  EXPECT_GT(rt.elapsed(), static_cast<double>(params.sweeps) * slab_time * 0.9);
}

TEST(JacobiApp_, SweepsSerializeOnSharedSlablessMachine) {
  // One worker: every task serializes; makespan == tasks * task_time.
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config("fifo"));
  JacobiParams params;
  params.cells = 1 << 16;
  params.slabs = 4;
  params.sweeps = 3;
  params.hybrid = false;  // GPU-only
  JacobiApp app(rt, params);
  app.run();
  const Time elapsed = rt.elapsed();
  EXPECT_GT(elapsed, 0.0);
  // 12 GPU tasks on one GPU: all finish times distinct and ordered.
  EXPECT_EQ(rt.run_stats().count(app.gpu_version()), 12u);
}

TEST(JacobiApp_, HybridUsesSmpWorkersUnderVersioning) {
  const Machine machine = make_minotauro_node(8, 1);
  RuntimeConfig config = sim_config("versioning");
  config.profile.lambda = 2;
  Runtime rt(machine, config);
  JacobiParams params;
  params.cells = 1 << 20;
  params.slabs = 32;
  params.sweeps = 20;
  params.hybrid = true;
  JacobiApp app(rt, params);
  app.run();
  EXPECT_GT(rt.run_stats().count(app.smp_version()), 0u);
  EXPECT_GT(rt.run_stats().count(app.gpu_version()), 0u);
}

}  // namespace
}  // namespace versa::apps
