// Tests for the priority clause (queue overtaking, scheduler integration,
// critical-path effect) and the per-worker utilization reporter.
#include <gtest/gtest.h>

#include "apps/cholesky.h"
#include "machine/presets.h"
#include "perf/utilization.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

RuntimeConfig sim_config(const std::string& scheduler) {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

TEST(Priority, HighPriorityOvertakesQueuedWork) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config("dep-aware"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  // Five independent normal tasks, then one urgent task. All six are
  // ready (and queued) before the sim starts executing; the urgent one
  // must run first.
  std::vector<TaskId> normal;
  for (int i = 0; i < 5; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    normal.push_back(rt.submit(t, {Access::inout(r)}, "normal"));
  }
  const RegionId urgent_region = rt.register_data("u", 64);
  const TaskId urgent =
      rt.submit(t, {Access::inout(urgent_region)}, "urgent", /*priority=*/5);
  rt.taskwait();
  const Time urgent_start = rt.task_graph().task(urgent).start_time;
  for (const TaskId id : normal) {
    EXPECT_LE(urgent_start, rt.task_graph().task(id).start_time);
  }
}

TEST(Priority, StableOrderWithinSamePriority) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config("dep-aware"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  std::vector<TaskId> ids;
  for (int i = 0; i < 6; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    ids.push_back(rt.submit(t, {Access::inout(r)}, "", /*priority=*/1));
  }
  rt.taskwait();
  for (std::size_t i = 1; i < ids.size(); ++i) {
    EXPECT_LT(rt.task_graph().task(ids[i - 1]).start_time,
              rt.task_graph().task(ids[i]).start_time);
  }
}

TEST(Priority, FifoCentralQueueRespectsPriority) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config("fifo"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId a = rt.register_data("a", 64);
  const RegionId b = rt.register_data("b", 64);
  const TaskId low = rt.submit(t, {Access::inout(a)}, "", 0);
  const TaskId high = rt.submit(t, {Access::inout(b)}, "", 3);
  rt.taskwait();
  EXPECT_LT(rt.task_graph().task(high).start_time,
            rt.task_graph().task(low).start_time);
  (void)low;
}

TEST(Priority, PotrfPriorityDoesNotHurtCholesky) {
  auto run = [](int priority) {
    const Machine machine = make_minotauro_node(4, 2);
    Runtime rt(machine, sim_config("dep-aware"));
    apps::CholeskyParams params;
    params.n = 16384;
    params.block = 2048;
    params.potrf = apps::PotrfVariant::kGpu;
    params.potrf_priority = priority;
    apps::CholeskyApp app(rt, params);
    app.run();
    return rt.elapsed();
  };
  // Prioritizing the bottleneck task must not lengthen the run.
  EXPECT_LE(run(10), run(0) * 1.001);
}

TEST(Utilization, ComputesBusyFractions) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, sim_config("dep-aware"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 4; ++i) {
    rt.submit(t, {Access::inout(r)});  // serial chain on one worker
  }
  rt.taskwait();

  const auto rows = compute_utilization(rt.task_graph(), machine, rt.elapsed());
  ASSERT_EQ(rows.size(), 2u);
  const double total_busy = rows[0].busy + rows[1].busy;
  EXPECT_NEAR(total_busy, 4e-3, 1e-9);
  EXPECT_EQ(rows[0].tasks + rows[1].tasks, 4u);
  for (const auto& row : rows) {
    EXPECT_GE(row.fraction, 0.0);
    EXPECT_LE(row.fraction, 1.0 + 1e-9);
  }
  // A serial chain saturates exactly one worker.
  EXPECT_NEAR(mean_utilization(rows), 0.5, 1e-6);
}

TEST(Utilization, TableMentionsWorkerNames) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config("fifo"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 64);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  const std::string table = utilization_table(
      compute_utilization(rt.task_graph(), machine, rt.elapsed()));
  EXPECT_NE(table.find("gpu-0"), std::string::npos);
  EXPECT_NE(table.find("smp-0"), std::string::npos);
  EXPECT_NE(table.find("%"), std::string::npos);
}

}  // namespace
}  // namespace versa
