// Tests for the multi-node cluster preset and multi-hop transfer routing.
#include <gtest/gtest.h>

#include "apps/matmul.h"
#include "data/transfer_engine.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(Cluster, TopologyCounts) {
  const Machine machine = make_gpu_cluster(/*nodes=*/2, /*smp=*/4, /*gpus=*/2);
  EXPECT_EQ(machine.worker_count(), 12u);
  EXPECT_EQ(machine.count_workers(DeviceKind::kSmp), 8u);
  EXPECT_EQ(machine.count_workers(DeviceKind::kCuda), 4u);
  // Spaces: node0 host + node1 host + 4 GPU memories.
  EXPECT_EQ(machine.space_count(), 6u);
  EXPECT_TRUE(machine.space(kHostSpace).is_host);
}

TEST(Cluster, NodeHostsAreNetworked) {
  const Machine machine = make_gpu_cluster(3, 1, 0);
  // Full mesh between the three node host spaces.
  int links = 0;
  for (SpaceId a = 0; a < machine.space_count(); ++a) {
    for (SpaceId b = 0; b < machine.space_count(); ++b) {
      if (machine.interconnect().find(a, b) != nullptr) ++links;
    }
  }
  EXPECT_EQ(links, 6);  // 3 pairs x 2 directions
}

TEST(Cluster, CrossNodeGpuTransferRoutesOverFourHops) {
  const Machine machine = make_gpu_cluster(2, 1, 1);
  TransferEngine engine(machine);
  // node0 GPU memory -> node1 GPU memory: gpu -> host0 -> host1 -> gpu.
  const SpaceId gpu0 = machine.worker(1).space;   // n0 gpu
  const SpaceId gpu1 = machine.worker(3).space;   // n1 gpu
  ASSERT_EQ(machine.interconnect().find(gpu0, gpu1), nullptr);

  const std::uint64_t bytes = 64 << 20;  // 64 MB
  const Time done =
      engine.enqueue_one(TransferOp{0, gpu0, gpu1, bytes,
                                    TransferCategory::kDevice},
                         0.0);
  // PCIe hop (~11.2 ms) + network hop (~21 ms) + PCIe hop, store-and-
  // forward: strictly more than any single hop, less than 4x the slowest.
  const double pcie = static_cast<double>(bytes) / 6.0e9;
  const double net = static_cast<double>(bytes) / 3.2e9;
  EXPECT_GT(done, pcie + net);
  EXPECT_LT(done, 2 * pcie + 2 * net);
  EXPECT_EQ(engine.routed_bytes(), 3 * bytes);  // three hops accounted
}

TEST(Cluster, MatmulRunsAcrossNodes) {
  const Machine machine = make_gpu_cluster(2, 2, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  apps::MatmulParams params;
  params.n = 4096;
  params.tile = 1024;
  params.hybrid = true;
  apps::MatmulApp app(rt, params);
  app.run();
  EXPECT_EQ(rt.run_stats().total_tasks(), 64u);
  EXPECT_GT(rt.elapsed(), 0.0);
  // Both nodes' GPUs participate.
  std::uint64_t node0_tasks = 0, node1_tasks = 0;
  for (const Task& task : rt.task_graph().tasks()) {
    const std::string& name = machine.worker(task.assigned_worker).name;
    if (name.rfind("n0-", 0) == 0) ++node0_tasks;
    if (name.rfind("n1-", 0) == 0) ++node1_tasks;
  }
  EXPECT_GT(node0_tasks, 0u);
  EXPECT_GT(node1_tasks, 0u);
}

TEST(Cluster, TwoNodesOutperformOneOnIndependentWork) {
  auto run = [](std::size_t nodes) {
    const Machine machine = make_gpu_cluster(nodes, 2, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.noise.kind = sim::NoiseKind::kNone;
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr,
                   make_constant_cost(10e-3));
    // Independent compute-heavy tasks with tiny data: scaling is limited
    // only by worker count, not the network.
    for (int i = 0; i < 64; ++i) {
      const RegionId r = rt.register_data("r" + std::to_string(i), 4096);
      rt.submit(t, {Access::inout(r)});
    }
    rt.taskwait();
    return rt.elapsed();
  };
  const Time one = run(1);
  const Time two = run(2);
  EXPECT_LT(two, one * 0.6);
}

}  // namespace
}  // namespace versa
