// Tests for the workload applications: task-graph shapes at paper scale
// (virtual data) and functional correctness at small scale (real data,
// results checked against references) under several schedulers/backends.
#include <gtest/gtest.h>

#include "apps/cholesky.h"
#include "apps/matmul.h"
#include "apps/pbpi.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa::apps {
namespace {

RuntimeConfig quiet_sim(const std::string& scheduler = "versioning") {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

// --- matmul ----------------------------------------------------------------

TEST(MatmulApp_, TaskCountIsTilesCubed) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim());
  MatmulParams params;
  params.n = 4096;
  params.tile = 1024;
  MatmulApp app(rt, params);
  EXPECT_EQ(app.tiles_per_edge(), 4u);
  EXPECT_EQ(app.task_count(), 64u);
  app.run();
  EXPECT_EQ(rt.run_stats().total_tasks(), 64u);
}

TEST(MatmulApp_, HybridRegistersThreeVersions) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim());
  MatmulParams params;
  params.n = 2048;
  params.hybrid = true;
  MatmulApp app(rt, params);
  EXPECT_EQ(rt.version_registry().versions(app.task_type()).size(), 3u);
  EXPECT_NE(app.cblas_version(), kInvalidVersion);
  // CUBLAS is the main implementation.
  EXPECT_EQ(rt.version_registry().main_version(app.task_type()),
            app.cublas_version());
}

TEST(MatmulApp_, GpuOnlyRegistersOneVersion) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim("dep-aware"));
  MatmulParams params;
  params.n = 2048;
  params.hybrid = false;
  MatmulApp app(rt, params);
  EXPECT_EQ(rt.version_registry().versions(app.task_type()).size(), 1u);
  EXPECT_EQ(app.cblas_version(), kInvalidVersion);
  app.run();
  EXPECT_EQ(rt.run_stats().count(app.cublas_version()), app.task_count());
}

TEST(MatmulApp_, RealComputeMatchesReferenceOnSim) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, quiet_sim());
  MatmulParams params;
  params.n = 96;
  params.tile = 32;
  params.real_compute = true;
  MatmulApp app(rt, params);
  app.run();
  EXPECT_LT(app.max_error(), 1e-9);
}

TEST(MatmulApp_, RealComputeMatchesReferenceOnThreads) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  Runtime rt(machine, config);
  MatmulParams params;
  params.n = 96;
  params.tile = 32;
  params.real_compute = true;
  params.hybrid = false;  // machine has no GPU workers
  // CUBLAS main version targets cuda: swap to an SMP-only setup by using
  // hybrid and letting versioning pick the runnable SMP version.
  params.hybrid = true;
  MatmulApp app(rt, params);
  app.run();
  EXPECT_LT(app.max_error(), 1e-9);
  // Only the SMP version is runnable here.
  EXPECT_EQ(rt.run_stats().count(app.cblas_version()), app.task_count());
}

TEST(MatmulApp_, FlopsFormula) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, quiet_sim());
  MatmulParams params;
  params.n = 1024;
  MatmulApp app(rt, params);
  EXPECT_DOUBLE_EQ(app.total_flops(), 2.0 * 1024.0 * 1024.0 * 1024.0);
}

// --- cholesky ----------------------------------------------------------------

TEST(CholeskyApp_, TaskCountMatchesFormula) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim());
  CholeskyParams params;
  params.n = 8192;
  params.block = 2048;  // 4 blocks per edge
  CholeskyApp app(rt, params);
  // T=4: potrf 4, trsm 3+2+1=6, syrk 6, gemm 3+1+0... sum over k of
  // below*(below-1)/2 = 3+1+0+0 = 4. Total 20.
  EXPECT_EQ(app.task_count(), 20u);
  app.run();
  EXPECT_EQ(rt.run_stats().total_tasks(), 20u);
}

TEST(CholeskyApp_, VariantsRegisterExpectedPotrfVersions) {
  const Machine machine = make_minotauro_node(2, 2);
  {
    Runtime rt(machine, quiet_sim());
    CholeskyParams params;
    params.n = 4096;
    params.potrf = PotrfVariant::kHybrid;
    CholeskyApp app(rt, params);
    EXPECT_EQ(rt.version_registry().versions(app.potrf_type()).size(), 2u);
  }
  {
    Runtime rt(machine, quiet_sim("affinity"));
    CholeskyParams params;
    params.n = 4096;
    params.potrf = PotrfVariant::kSmp;
    CholeskyApp app(rt, params);
    EXPECT_EQ(rt.version_registry().versions(app.potrf_type()).size(), 1u);
    EXPECT_EQ(app.potrf_gpu_version(), kInvalidVersion);
  }
  {
    Runtime rt(machine, quiet_sim("affinity"));
    CholeskyParams params;
    params.n = 4096;
    params.potrf = PotrfVariant::kGpu;
    CholeskyApp app(rt, params);
    EXPECT_EQ(app.potrf_smp_version(), kInvalidVersion);
  }
}

TEST(CholeskyApp_, RealComputeFactorizesSpdMatrix) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, quiet_sim());
  CholeskyParams params;
  params.n = 64;
  params.block = 16;
  params.real_compute = true;
  CholeskyApp app(rt, params);
  app.run();
  // A has diagonal ~n with off-diagonal noise in [-0.5, 0.5]; single
  // precision reconstruction error stays well under 1e-2.
  EXPECT_LT(app.max_error(), 1e-2);
}

TEST(CholeskyApp_, RealComputeWorksUnderEveryVariant) {
  for (const PotrfVariant variant :
       {PotrfVariant::kSmp, PotrfVariant::kGpu, PotrfVariant::kHybrid}) {
    const Machine machine = make_minotauro_node(2, 2);
    Runtime rt(machine, quiet_sim(variant == PotrfVariant::kHybrid
                                      ? "versioning"
                                      : "affinity"));
    CholeskyParams params;
    params.n = 48;
    params.block = 16;
    params.real_compute = true;
    params.potrf = variant;
    CholeskyApp app(rt, params);
    app.run();
    EXPECT_LT(app.max_error(), 1e-2) << to_string(variant);
  }
}

TEST(CholeskyApp_, PotrfSmpVariantRunsPotrfOnSmpWorkers) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim("dep-aware"));
  CholeskyParams params;
  params.n = 16384;
  params.block = 2048;
  params.potrf = PotrfVariant::kSmp;
  CholeskyApp app(rt, params);
  app.run();
  EXPECT_EQ(rt.run_stats().count(app.potrf_smp_version()),
            app.blocks_per_edge());
}

// --- pbpi ---------------------------------------------------------------------

TEST(PbpiApp_, TaskCountMatchesStructure) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim());
  PbpiParams params;
  params.generations = 5;
  params.slices = 4;
  params.chunks = 10;
  params.sites_bytes = 1 << 20;
  params.chunks_bytes = 1 << 20;
  PbpiApp app(rt, params);
  EXPECT_EQ(app.task_count(), 5u * (4 + 10 + 1));
  app.run();
  EXPECT_EQ(rt.run_stats().total_tasks(), app.task_count());
}

TEST(PbpiApp_, VariantsControlVersionSets) {
  const Machine machine = make_minotauro_node(2, 2);
  {
    Runtime rt(machine, quiet_sim());
    PbpiParams params;
    params.variant = PbpiVariant::kHybrid;
    params.sites_bytes = 1 << 20;
    params.chunks_bytes = 1 << 20;
    PbpiApp app(rt, params);
    EXPECT_EQ(rt.version_registry().versions(app.loop1_type()).size(), 2u);
    EXPECT_EQ(rt.version_registry().versions(app.loop2_type()).size(), 2u);
    EXPECT_EQ(rt.version_registry().versions(app.loop3_type()).size(), 1u);
  }
  {
    Runtime rt(machine, quiet_sim("affinity"));
    PbpiParams params;
    params.variant = PbpiVariant::kGpu;
    params.sites_bytes = 1 << 20;
    params.chunks_bytes = 1 << 20;
    PbpiApp app(rt, params);
    EXPECT_EQ(app.loop1_smp(), kInvalidVersion);
    EXPECT_NE(app.loop1_gpu(), kInvalidVersion);
  }
}

TEST(PbpiApp_, RealComputeMatchesSequentialReference) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, quiet_sim());
  PbpiParams params;
  params.sites_bytes = 64 << 10;
  params.chunks_bytes = 32 << 10;
  params.slices = 4;
  params.chunks = 8;
  params.generations = 6;
  params.real_compute = true;
  PbpiApp app(rt, params);
  app.run();
  EXPECT_DOUBLE_EQ(app.likelihood(), app.reference_likelihood());
  EXPECT_NE(app.likelihood(), 0.0);
}

TEST(PbpiApp_, RealComputeMatchesReferenceOnThreads) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "dep-aware";
  Runtime rt(machine, config);
  PbpiParams params;
  params.sites_bytes = 64 << 10;
  params.chunks_bytes = 32 << 10;
  params.slices = 4;
  params.chunks = 8;
  params.generations = 6;
  params.variant = PbpiVariant::kSmp;  // SMP-only machine
  params.real_compute = true;
  PbpiApp app(rt, params);
  app.run();
  EXPECT_DOUBLE_EQ(app.likelihood(), app.reference_likelihood());
}

TEST(PbpiApp_, GenerationsSerializeThroughTheAccumulator) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, quiet_sim());
  PbpiParams params;
  params.sites_bytes = 1 << 20;
  params.chunks_bytes = 1 << 20;
  params.slices = 2;
  params.chunks = 4;
  params.generations = 3;
  PbpiApp app(rt, params);
  app.run();
  // Every loop3 task must finish before the next generation's loop1 tasks
  // start (they read the accumulator loop3 wrote).
  std::vector<Time> loop3_finish;
  std::vector<std::vector<Time>> loop1_starts(params.generations);
  std::size_t generation = 0;
  for (const Task& task : rt.task_graph().tasks()) {
    if (task.type == app.loop3_type()) {
      loop3_finish.push_back(task.finish_time);
      ++generation;
    } else if (task.type == app.loop1_type()) {
      loop1_starts[generation].push_back(task.start_time);
    }
  }
  ASSERT_EQ(loop3_finish.size(), params.generations);
  for (std::size_t g = 1; g < params.generations; ++g) {
    for (Time start : loop1_starts[g]) {
      EXPECT_GE(start, loop3_finish[g - 1] - 1e-12);
    }
  }
}

}  // namespace
}  // namespace versa::apps
