// Tests for device-speed emulation on the thread backend: modelled cost
// ratios become real wall-clock ratios, so the versioning scheduler learns
// the same split it would in simulation.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(Emulation, MeasuredDurationsTrackTheModel) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "fifo";
  config.emulate_costs = true;
  config.emulation_time_scale = 1.0;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(20e-3));
  const RegionId r = rt.register_data("r", 64);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  const Task& task = rt.task_graph().task(0);
  EXPECT_GE(task.measured_duration, 18e-3);   // slept to the model
  EXPECT_LE(task.measured_duration, 100e-3);  // scheduling slack only
}

TEST(Emulation, TimeScaleCompressesTheSleep) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "fifo";
  config.emulate_costs = true;
  config.emulation_time_scale = 0.1;  // 10x faster than modelled
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(0.1));
  const RegionId r = rt.register_data("r", 64);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_LT(rt.task_graph().task(0).measured_duration, 0.06);
}

TEST(Emulation, VersioningLearnsModelledRatiosOnRealThreads) {
  // Identical (trivial) bodies, but the modelled costs say the "GPU"
  // version is 8x faster. With emulation the wall clock agrees, so after
  // learning, the GPU workers take most of the chain.
  const Machine machine = make_minotauro_node(2, 2);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  config.profile.lambda = 2;
  config.emulate_costs = true;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  const VersionId gpu = rt.add_version(t, DeviceKind::kCuda, "gpu",
                                       [](TaskContext&) {},
                                       make_constant_cost(1e-3));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "smp",
                                       [](TaskContext&) {},
                                       make_constant_cost(8e-3));
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 40; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().count(gpu) + rt.run_stats().count(smp), 40u);
  EXPECT_GT(rt.run_stats().count(gpu), 30u);
}

TEST(Emulation, OffByDefaultRunsAtNativeSpeed) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "fifo";
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  // Huge modelled cost, but emulation is off: the empty body returns fast.
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext&) {},
                 make_constant_cost(10.0));
  const RegionId r = rt.register_data("r", 64);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_LT(rt.task_graph().task(0).measured_duration, 1.0);
}

}  // namespace
}  // namespace versa
