// Property tests for the synthetic workload generator (src/taskbench,
// DESIGN.md §14). Two layers:
//
//  * Oracle conformance — for a parameter sweep over every family, the
//    generated edge list must match the closed-form oracle exactly:
//    node/edge counts, payload volume, and (computed independently by
//    longest-path DP over the generated edges) the critical-path length.
//    The generator and the oracle share only the normalized parameters,
//    so a bug in either side trips the comparison.
//
//  * Execution conformance — 20 seeds × both backends: a generated graph
//    runs through the full Runtime (analyzer, directory, scheduler,
//    executor) and every task's observed timeline must respect the
//    oracle dependence closure: finish(ancestor) <= start(descendant)
//    for EVERY closure pair, zero violations. Families, policies and
//    shapes cycle with the seed so all seven families and all seven
//    policies are covered. Runs under the CI thread-sanitizer job with
//    VERSA_LOCK_ORDER=1.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"
#include "taskbench/graph_spec.h"
#include "taskbench/runner.h"

namespace versa::taskbench {
namespace {

/// Critical path recomputed from the generated edges (longest chain in
/// tasks), independent of the oracle's closed-form formula. Edges are
/// sorted by (to, from) and every edge crosses one timestep forward, so a
/// single pass in flat-id order is a valid topological order.
std::uint32_t longest_chain(const GraphSpec& spec) {
  std::vector<std::uint32_t> depth(spec.node_count, 1);
  for (const auto& [from, to] : spec.edges) {
    depth[to] = std::max(depth[to], depth[from] + 1);
  }
  return spec.node_count == 0
             ? 0
             : *std::max_element(depth.begin(), depth.end());
}

TEST(TaskbenchOracle, GeneratorMatchesClosedForm) {
  for (const GraphFamily family : all_families()) {
    for (const std::uint32_t width : {1u, 2u, 3u, 7u, 16u, 33u}) {
      for (const std::uint32_t steps : {1u, 2u, 5u, 9u}) {
        TaskBenchParams params;
        params.family = family;
        params.width = width;
        params.steps = steps;
        params.payload_bytes = 512;
        params.fan = 3;
        params.seed = 7 * width + steps;
        const GraphSpec spec = generate_graph(params);
        const GraphOracle oracle = oracle_for(params);
        const std::string where = std::string(to_string(family)) + " w" +
                                  std::to_string(width) + " s" +
                                  std::to_string(steps);
        ASSERT_EQ(spec.node_count, oracle.nodes) << where;
        ASSERT_EQ(spec.edges.size(), oracle.edges) << where;
        ASSERT_EQ(longest_chain(spec), oracle.critical_path) << where;
        ASSERT_EQ(oracle.total_payload_bytes,
                  oracle.edges * spec.params.payload_bytes)
            << where;
        // Every edge must cross exactly one timestep forward — the
        // invariant the double-buffer submission scheme relies on.
        for (const auto& [from, to] : spec.edges) {
          ASSERT_EQ(spec.locate(to).first, spec.locate(from).first + 1)
              << where;
        }
      }
    }
  }
}

TEST(TaskbenchOracle, ClosureContainsEdgesAndTransitivePairs) {
  TaskBenchParams params;
  params.family = GraphFamily::kChain;
  params.width = 3;
  params.steps = 5;
  const GraphSpec spec = generate_graph(params);
  const auto closure = dependence_closure(spec);
  for (const auto& [from, to] : spec.edges) {
    EXPECT_TRUE(closure_reaches(closure, from, to));
  }
  // Chain column 0: node (0,0) reaches (4,0) but never column 1.
  EXPECT_TRUE(closure_reaches(closure, 0, spec.level_offset[4]));
  EXPECT_FALSE(closure_reaches(closure, 0, spec.level_offset[4] + 1));
  EXPECT_FALSE(closure_reaches(closure, spec.level_offset[4], 0));
}

/// One conformance run: submit the spec, run it, and require every
/// closure pair's timeline ordering. Returns the violation count so the
/// caller can attribute it to (seed, family, policy, backend).
int conformance_violations(const GraphSpec& spec, const std::string& policy,
                           Backend backend) {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = policy;
  config.seed = spec.params.seed;
  Runtime rt(machine, config);

  SubmitGraphOptions options;
  options.task_cost = backend == Backend::kThreads ? 100e-6 : 1e-4;
  options.spin_bodies = backend == Backend::kThreads;
  const std::vector<TaskId> tasks = submit_graph(rt, spec, options);
  rt.taskwait();

  const auto closure = dependence_closure(spec);
  int violations = 0;
  for (std::uint64_t v = 0; v < spec.node_count; ++v) {
    const Task& descendant = rt.task_graph().task(tasks[v]);
    for (std::uint64_t u = 0; u < spec.node_count; ++u) {
      if (!closure_reaches(closure, u, v)) continue;
      const Task& ancestor = rt.task_graph().task(tasks[u]);
      if (!(ancestor.finish_time <= descendant.start_time)) ++violations;
    }
  }
  return violations;
}

TEST(TaskbenchConformance, ObservedOrderRespectsOracleClosure) {
  const std::vector<GraphFamily> families = all_families();
  const std::vector<std::string> policies = scheduler_factory_names();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    TaskBenchParams params;
    params.family = families[seed % families.size()];
    params.width = 3 + static_cast<std::uint32_t>(seed % 6);
    params.steps = 3 + static_cast<std::uint32_t>(seed % 4);
    params.payload_bytes = 256;
    params.fan = 2 + static_cast<std::uint32_t>(seed % 2);
    params.seed = seed;
    const GraphSpec spec = generate_graph(params);
    const std::string& policy = policies[seed % policies.size()];
    for (const Backend backend : {Backend::kSim, Backend::kThreads}) {
      EXPECT_EQ(conformance_violations(spec, policy, backend), 0)
          << "seed " << seed << " family " << to_string(params.family)
          << " policy " << policy << " backend "
          << (backend == Backend::kSim ? "sim" : "threads");
    }
  }
}

/// The efficiency definition is the dependence-aware ideal: a chain on
/// many workers is span-limited, not work-limited, so a perfect run
/// scores ~100%, not ~1/workers.
TEST(TaskbenchConformance, EfficiencyUsesSpanLimitedIdeal) {
  GraphOracle oracle;
  oracle.nodes = 8;
  oracle.critical_path = 8;  // pure chain
  const double cost = 1e-3;
  // Perfect serial execution of the chain on 4 workers: elapsed = 8 ms.
  EXPECT_DOUBLE_EQ(parallel_efficiency(oracle, cost, 4, 8e-3), 1.0);
  // Work-limited case: 8 independent tasks, 4 workers, perfect = 2 ms.
  oracle.critical_path = 1;
  EXPECT_DOUBLE_EQ(parallel_efficiency(oracle, cost, 4, 2e-3), 1.0);
  EXPECT_DOUBLE_EQ(parallel_efficiency(oracle, cost, 4, 4e-3), 0.5);
  // Degenerate inputs report 0, never divide by zero.
  EXPECT_DOUBLE_EQ(parallel_efficiency(oracle, cost, 0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(parallel_efficiency(oracle, cost, 4, 0.0), 0.0);
}

}  // namespace
}  // namespace versa::taskbench
