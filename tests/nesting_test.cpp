// Tests for nested tasks: parent attribution, children-scoped taskwait
// from inside task bodies (both backends), and recursive nesting.
#include <gtest/gtest.h>

#include <atomic>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

RuntimeConfig config_for(Backend backend,
                         const std::string& scheduler = "dep-aware") {
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

TEST(Nesting, ChildrenAreAttributedToTheirParent) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, config_for(Backend::kSim));
  const RegionId r = rt.register_data("r", 64);
  const TaskTypeId child = rt.declare_task("child");
  rt.add_version(child, DeviceKind::kSmp, "v", nullptr,
                 make_constant_cost(1e-3));
  const TaskTypeId parent = rt.declare_task("parent");
  TaskId child_id = kInvalidTask;
  rt.add_version(parent, DeviceKind::kSmp, "v", [&](TaskContext&) {
    child_id = rt.submit(child, {Access::inout(r)});
  });

  const RegionId pr = rt.register_data("pr", 64);
  const TaskId parent_id = rt.submit(parent, {Access::inout(pr)});
  rt.taskwait();
  ASSERT_NE(child_id, kInvalidTask);
  EXPECT_EQ(rt.task_graph().task(child_id).parent, parent_id);
  EXPECT_EQ(rt.task_graph().task(parent_id).parent, kInvalidTask);
  EXPECT_EQ(rt.task_graph().task(parent_id).live_children, 0u);
}

template <Backend kBackend>
void nested_taskwait_sees_children_results() {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = config_for(kBackend);
  Runtime rt(machine, config);

  std::vector<int> cells(4, 0);
  std::vector<RegionId> regions;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    regions.push_back(
        rt.register_data("c" + std::to_string(i), sizeof(int), &cells[i]));
  }
  const TaskTypeId child = rt.declare_task("child");
  rt.add_version(
      child, DeviceKind::kSmp, "v",
      [](TaskContext& ctx) { *static_cast<int*>(ctx.arg(0)) = 7; },
      make_constant_cost(1e-3));

  const TaskTypeId parent = rt.declare_task("parent");
  int observed_sum = -1;
  rt.add_version(
      parent, DeviceKind::kSmp, "v",
      [&](TaskContext&) {
        for (const RegionId r : regions) {
          rt.submit(child, {Access::inout(r)});
        }
        rt.taskwait();  // children-scoped: must see all four writes
        int sum = 0;
        for (const int cell : cells) {
          sum += cell;
        }
        observed_sum = sum;
      },
      make_constant_cost(1e-3));

  const RegionId pr = rt.register_data("pr", 64);
  rt.submit(parent, {Access::inout(pr)});
  rt.taskwait();
  EXPECT_EQ(observed_sum, 28);
}

TEST(Nesting, NestedTaskwaitSimBackend) {
  nested_taskwait_sees_children_results<Backend::kSim>();
}

TEST(Nesting, NestedTaskwaitThreadBackend) {
  nested_taskwait_sees_children_results<Backend::kThreads>();
}

TEST(Nesting, NestedTaskwaitWorksOnSingleWorker) {
  // The waiting worker must execute its own queued children inline rather
  // than deadlock (task switching at the taskwait).
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, config_for(Backend::kSim));
  const TaskTypeId child = rt.declare_task("child");
  int done = 0;
  rt.add_version(
      child, DeviceKind::kSmp, "v", [&](TaskContext&) { ++done; },
      make_constant_cost(1e-3));
  const TaskTypeId parent = rt.declare_task("parent");
  const RegionId cr = rt.register_data("cr", 64);
  rt.add_version(
      parent, DeviceKind::kSmp, "v",
      [&](TaskContext&) {
        rt.submit(child, {Access::inout(cr)});
        rt.submit(child, {Access::inout(cr)});
        rt.taskwait();
        EXPECT_EQ(done, 2);
      },
      make_constant_cost(1e-3));
  const RegionId pr = rt.register_data("pr", 64);
  rt.submit(parent, {Access::inout(pr)});
  rt.taskwait();
  EXPECT_EQ(done, 2);
}

TEST(Nesting, RecursiveNestingComputesFibonacci) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, config_for(Backend::kThreads, "fifo"));
  const TaskTypeId fib = rt.declare_task("fib");

  struct Job {
    int n;
    long result;
  };
  // Self-referential task type: each invocation spawns two children and a
  // nested taskwait, OmpSs-style recursive decomposition.
  std::function<void(Job&)> spawn = [&](Job& job) {
    if (job.n < 2) {
      job.result = job.n;
      return;
    }
    Job left{job.n - 1, 0};
    Job right{job.n - 2, 0};
    const RegionId lr = rt.register_data("l", sizeof(Job), &left);
    const RegionId rr = rt.register_data("r", sizeof(Job), &right);
    rt.submit(fib, {Access::inout(lr)});
    rt.submit(fib, {Access::inout(rr)});
    rt.taskwait();  // children-scoped
    job.result = left.result + right.result;
  };
  rt.add_version(fib, DeviceKind::kSmp, "v", [&](TaskContext& ctx) {
    spawn(*static_cast<Job*>(ctx.arg(0)));
  });

  Job root{10, 0};
  const RegionId root_region = rt.register_data("root", sizeof(Job), &root);
  rt.submit(fib, {Access::inout(root_region)});
  rt.taskwait();
  EXPECT_EQ(root.result, 55);
}

TEST(Nesting, MasterTaskwaitStillWaitsForGrandchildren) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, config_for(Backend::kSim));
  std::atomic<int> executed{0};
  const RegionId r = rt.register_data("r", 64);
  const TaskTypeId leaf = rt.declare_task("leaf");
  rt.add_version(
      leaf, DeviceKind::kSmp, "v", [&](TaskContext&) { ++executed; },
      make_constant_cost(1e-3));
  const TaskTypeId mid = rt.declare_task("mid");
  rt.add_version(
      mid, DeviceKind::kSmp, "v",
      [&](TaskContext&) {
        rt.submit(leaf, {Access::inout(r)});  // grandchild, not awaited here
      },
      make_constant_cost(1e-3));
  const RegionId mr = rt.register_data("mr", 64);
  rt.submit(mid, {Access::inout(mr)});
  rt.taskwait();  // master-level: global barrier, includes the grandchild
  EXPECT_EQ(executed.load(), 1);
}

}  // namespace
}  // namespace versa
