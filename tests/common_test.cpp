// Unit tests for src/common: RNG, running statistics, string helpers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/types.h"

namespace versa {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextBelowCoversRangeWithoutBias) {
  Rng rng(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(9);
  Welford acc;
  for (int i = 0; i < 50000; ++i) {
    acc.add(rng.next_gaussian());
  }
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.next_lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, SplitStreamsAreIndependentlySeeded) {
  Rng parent(5);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  // Not a statistical independence test, only that they are distinct.
  EXPECT_NE(child1.next_u64(), child2.next_u64());
}

TEST(RunningMean, ArithmeticMatchesDefinition) {
  RunningMean mean;
  mean.add(1.0);
  mean.add(2.0);
  mean.add(6.0);
  EXPECT_DOUBLE_EQ(mean.mean(), 3.0);
  EXPECT_EQ(mean.count(), 3u);
}

TEST(RunningMean, EmptyReportsZero) {
  RunningMean mean;
  EXPECT_TRUE(mean.empty());
  EXPECT_DOUBLE_EQ(mean.mean(), 0.0);
}

TEST(RunningMean, ExponentialWeighsRecentValues) {
  RunningMean ema(MeanKind::kExponential, 0.5);
  ema.add(0.0);
  for (int i = 0; i < 20; ++i) {
    ema.add(10.0);
  }
  // The EMA converges toward recent values; arithmetic mean would sit at
  // 200/21 ≈ 9.52 but below 10 - 1e-4 too... so compare against the exact
  // arithmetic value instead.
  RunningMean arith;
  arith.add(0.0);
  for (int i = 0; i < 20; ++i) {
    arith.add(10.0);
  }
  EXPECT_GT(ema.mean(), arith.mean());
  EXPECT_NEAR(ema.mean(), 10.0, 1e-4);
}

TEST(RunningMean, ExponentialFirstValueSeedsMean) {
  RunningMean ema(MeanKind::kExponential, 0.1);
  ema.add(4.0);
  EXPECT_DOUBLE_EQ(ema.mean(), 4.0);
}

TEST(Welford, VarianceMatchesTwoPassResult) {
  const double values[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  Welford acc;
  for (double v : values) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  // Two-pass sample variance: sum((x-5)^2) / 7 = 32 / 7.
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

TEST(Welford, FewerThanTwoSamplesHaveZeroVariance) {
  Welford acc;
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(StringUtil, SplitPreservesEmptyFields) {
  const auto parts = split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtil, TrimStripsBothEnds) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtil, StartsWith) {
  EXPECT_TRUE(starts_with("hint foo", "hint"));
  EXPECT_FALSE(starts_with("hi", "hint"));
}

TEST(StringUtil, FormatBytesPicksUnits) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(8.0 * 1024 * 1024), "8.00 MB");
  EXPECT_EQ(format_bytes(2.0 * 1024 * 1024 * 1024), "2.00 GB");
}

TEST(StringUtil, FormatDurationPicksUnits) {
  EXPECT_EQ(format_duration(1.5), "1.500 s");
  EXPECT_EQ(format_duration(0.0185), "18.500 ms");
  EXPECT_EQ(format_duration(42e-6), "42.000 us");
}

TEST(Types, DeviceKindNames) {
  EXPECT_STREQ(to_string(DeviceKind::kSmp), "smp");
  EXPECT_STREQ(to_string(DeviceKind::kCuda), "cuda");
}

}  // namespace
}  // namespace versa
