// Unit tests for the reporting layer: run statistics, table/CSV emitters,
// GFLOP/s helper and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "perf/sched_trace.h"
#include "perf/trace.h"
#include "perf/trace_report.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(RunStatsCollector, CountsAndTotals) {
  RunStatsCollector stats;
  stats.on_complete(/*type=*/0, /*version=*/0, 1.0);
  stats.on_complete(0, 0, 2.0);
  stats.on_complete(0, 1, 4.0);
  stats.on_complete(1, 2, 8.0);

  EXPECT_EQ(stats.total_tasks(), 4u);
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.count(1), 1u);
  EXPECT_DOUBLE_EQ(stats.total_time(0), 3.0);
  EXPECT_EQ(stats.type_count(0), 3u);
  EXPECT_EQ(stats.type_count(1), 1u);
  EXPECT_EQ(stats.type_count(9), 0u);
}

TEST(RunStatsCollector, PercentPerType) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 1, 1.0);
  stats.on_complete(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 7), 0.0);
  EXPECT_DOUBLE_EQ(stats.percent(9, 0), 0.0);  // unknown type
}

TEST(RunStatsCollector, ResetClears) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.reset();
  EXPECT_EQ(stats.total_tasks(), 0u);
  EXPECT_EQ(stats.count(0), 0u);
}

TEST(Gflops, Computation) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.5), 2.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "23"});
  const std::string out = table.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line has the same width (trailing spaces pad short cells).
  const auto lines = split(out.substr(0, out.size() - 1), '\n');
  EXPECT_EQ(lines[0].size(), lines[1].size());
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.add_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(csv.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv;
  csv.add_row({"a", "b"});
  const std::string path = testing::TempDir() + "/versa_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

TEST(Trace, ExportsCompleteEventsPerWorker) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 100);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json =
      trace_json(rt.task_graph(), machine, rt.version_registry());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("demo/v"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("gpu-0"), std::string::npos);  // worker lane names
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, TransferLanesWhenRecordsProvided) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 1 << 20);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json = trace_json(rt.task_graph(), machine,
                                      rt.version_registry(),
                                      rt.transfer_records());
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("host->gpu-mem-0"), std::string::npos);
  EXPECT_NE(json.find("gpu-mem-0->host"), std::string::npos);  // flush
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, WriteFileRoundTrip) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("x");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 8);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string path = testing::TempDir() + "/versa_trace.json";
  EXPECT_TRUE(write_trace(path, rt.task_graph(), machine,
                          rt.version_registry()));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_FALSE(write_trace("/nonexistent/dir/trace.json", rt.task_graph(),
                           machine, rt.version_registry()));
}

TEST(TraceReport, CsvRoundTripPreservesEventsAndMetadata) {
  // Record a synthetic decision stream, render it with sched_trace_csv and
  // feed it back through the versa_trace_report parser: every field and
  // the `#` metadata must survive the trip.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.25;
  e.task = 7;
  e.type = 2;
  e.version = 3;
  e.worker = 1;
  e.busy_term = 0.5;
  e.mean_term = 0.25;
  e.penalty_term = 0.125;
  e.candidates = 6;
  e.kind = core::TraceEventKind::kLearningPlacement;
  trace.record(e);
  e.time = 2.5;
  e.task = 8;
  e.worker = 0;
  e.kind = core::TraceEventKind::kPlacement;
  trace.record(e);
  e.time = 3.0;
  e.kind = core::TraceEventKind::kSteal;
  e.worker = 1;
  trace.record(e);
  e.time = 4.0;
  e.kind = core::TraceEventKind::kComplete;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_EQ(dump.policy, "versioning");
  EXPECT_EQ(dump.recorded, 4u);
  EXPECT_EQ(dump.dropped, 0u);
  EXPECT_EQ(dump.capacity, 16u);
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_DOUBLE_EQ(dump.events[0].time, 1.25);
  EXPECT_EQ(dump.events[0].task, 7u);
  EXPECT_EQ(dump.events[0].type, 2u);
  EXPECT_EQ(dump.events[0].version, 3u);
  EXPECT_EQ(dump.events[0].worker, 1u);
  EXPECT_DOUBLE_EQ(dump.events[0].busy_term, 0.5);
  EXPECT_DOUBLE_EQ(dump.events[0].mean_term, 0.25);
  EXPECT_DOUBLE_EQ(dump.events[0].penalty_term, 0.125);
  EXPECT_EQ(dump.events[0].candidates, 6u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kLearningPlacement);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kComplete);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.placements, 1u);
  EXPECT_EQ(report.learning_placements, 1u);
  EXPECT_EQ(report.steals, 1u);
  EXPECT_EQ(report.completions, 1u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_DOUBLE_EQ(report.steal_churn, 0.5);   // 1 steal / 2 placements
  EXPECT_DOUBLE_EQ(report.learning_share, 0.5);
  EXPECT_EQ(report.versions_placed, 1u);   // both placements share (2, 3)
  EXPECT_EQ(report.versions_sampled, 1u);
  ASSERT_EQ(report.per_worker.size(), 2u);
  EXPECT_EQ(report.per_worker.at(0).first, 1u);   // placements on worker 0
  EXPECT_EQ(report.per_worker.at(1).first, 1u);
  EXPECT_EQ(report.per_worker.at(1).second, 1u);  // the steal, by worker 1

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(rendered.find("policy: versioning"), std::string::npos);
  EXPECT_NE(rendered.find("steal churn: 50.0%"), std::string::npos);
}

TEST(TraceReport, V3GranularityColumnsRoundTripAndAggregate) {
  // Split/fuse/reversal events carry the group key and child count through
  // the CSV; the analyzer folds them into the per-group breakdown and the
  // renderer shows a granularity section.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.0;
  e.task = 1;
  e.type = 5;
  e.kind = core::TraceEventKind::kSplit;
  e.group = 4096;
  e.children = 4;
  trace.record(e);
  e.time = 2.0;
  e.task = 2;
  e.kind = core::TraceEventKind::kSplit;
  e.children = 8;
  trace.record(e);
  e.time = 3.0;
  e.task = 3;
  e.type = 6;
  e.kind = core::TraceEventKind::kFuse;
  e.group = 512;
  e.children = 3;  // original submissions absorbed
  trace.record(e);
  e.time = 4.0;
  e.task = 4;
  e.type = 5;
  e.kind = core::TraceEventKind::kReversal;
  e.group = 4096;
  e.children = 0;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  EXPECT_NE(csv.find("# versa-sched-trace v4"), std::string::npos);
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_granularity_columns);
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kSplit);
  EXPECT_EQ(dump.events[0].group, 4096u);
  EXPECT_EQ(dump.events[0].children, 4u);
  EXPECT_EQ(dump.events[2].kind, core::TraceEventKind::kFuse);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kReversal);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.splits, 2u);
  EXPECT_EQ(report.fuses, 1u);
  EXPECT_EQ(report.reversals, 1u);
  ASSERT_EQ(report.per_group.size(), 2u);
  const TraceReport::GranularityBreakdown& coarse =
      report.per_group.at({5, 4096});
  EXPECT_EQ(coarse.splits, 2u);
  EXPECT_EQ(coarse.children_created, 12u);
  EXPECT_EQ(coarse.reversals, 1u);
  const TraceReport::GranularityBreakdown& fine =
      report.per_group.at({6, 512});
  EXPECT_EQ(fine.fuses, 1u);
  EXPECT_EQ(fine.tasks_fused, 3u);

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(rendered.find("granularity: 2 splits, 1 fuses, 1 reversals"),
            std::string::npos);
  EXPECT_NE(rendered.find("4096"), std::string::npos);
}

TEST(TraceReport, V4PrefetchKindsRoundTripAndReport) {
  // Placement-time/dequeue-fallback/stale prefetch events carry the staged
  // byte count in `group`; the analyzer folds them into the effectiveness
  // counters and the renderer shows a prefetch section.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.0;
  e.task = 1;
  e.type = 5;
  e.worker = 0;
  e.kind = core::TraceEventKind::kPrefetchPlaced;
  e.group = 4096;
  trace.record(e);
  e.time = 2.0;
  e.task = 2;
  e.kind = core::TraceEventKind::kPrefetchPlaced;
  e.group = 1024;
  trace.record(e);
  e.time = 3.0;
  e.task = 3;
  e.kind = core::TraceEventKind::kPrefetchDequeue;
  e.group = 512;
  trace.record(e);
  e.time = 4.0;
  e.task = 4;
  e.kind = core::TraceEventKind::kPrefetchStale;
  e.group = 0;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  EXPECT_NE(csv.find(",prefetch,"), std::string::npos);
  EXPECT_NE(csv.find(",prefetch-pop,"), std::string::npos);
  EXPECT_NE(csv.find(",prefetch-stale,"), std::string::npos);
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kPrefetchPlaced);
  EXPECT_EQ(dump.events[0].group, 4096u);
  EXPECT_EQ(dump.events[2].kind, core::TraceEventKind::kPrefetchDequeue);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kPrefetchStale);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.prefetch_placed, 2u);
  EXPECT_EQ(report.prefetch_dequeue, 1u);
  EXPECT_EQ(report.prefetch_stale, 1u);
  EXPECT_EQ(report.prefetch_bytes, 4096u + 1024u + 512u);
  EXPECT_DOUBLE_EQ(report.prefetch_placement_share, 0.5);
  EXPECT_DOUBLE_EQ(report.prefetch_claim_share, 0.75);

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(
      rendered.find("prefetch: 2 placement-time + 1 dequeue-fallback claims"),
      std::string::npos);
  EXPECT_NE(rendered.find("prefetch bytes overlapped: 5632"),
            std::string::npos);
}

TEST(TraceReport, LegacyV3FilesStillParse) {
  // v3 files (13 fields, granularity columns, no prefetch kinds) must keep
  // parsing with the prefetch counters zeroed and no prefetch section.
  const std::string v3 =
      "# versa-sched-trace v3\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n"
      "1.0,split,7,2,0,0,0,0,0,0,0,4096,4\n";
  std::istringstream in(v3);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_granularity_columns);
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kSplit);
  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.prefetch_placed + report.prefetch_dequeue +
                report.prefetch_stale,
            0u);
  const std::string rendered = render_trace_report(dump, report);
  EXPECT_EQ(rendered.find("prefetch:"), std::string::npos);
}

TEST(TraceReport, LegacyV1AndV2FilesStillParse) {
  // Pre-granularity CSVs: 10 fields (v1) and 11 fields (v2, tenant
  // appended) must keep parsing, with the granularity fields zeroed and
  // no granularity section in the rendered report.
  const std::string v1 =
      "# versa-sched-trace v1\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
      "1.0,place,7,2,3,1,0.5,0.25,0.125,6\n";
  const std::string v2 =
      "# versa-sched-trace v2\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant\n"
      "1.0,place,7,2,3,1,0.5,0.25,0.125,6,4\n";
  for (const std::string& text : {v1, v2}) {
    std::istringstream in(text);
    SchedTraceDump dump;
    std::string error;
    ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
    EXPECT_FALSE(dump.has_granularity_columns);
    ASSERT_EQ(dump.events.size(), 1u);
    EXPECT_EQ(dump.events[0].group, 0u);
    EXPECT_EQ(dump.events[0].children, 0u);
    const TraceReport report = analyze_sched_trace(dump);
    EXPECT_EQ(report.splits, 0u);
    EXPECT_TRUE(report.per_group.empty());
    const std::string rendered = render_trace_report(dump, report);
    EXPECT_EQ(rendered.find("granularity:"), std::string::npos);
  }
  // The v2 tenant column still round-trips.
  std::istringstream in(v2);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_tenant_column);
  EXPECT_EQ(dump.events[0].tenant, 4u);
}

TEST(TraceReport, ParserRejectsMalformedInput) {
  SchedTraceDump dump;
  std::string error;
  {
    // Arbitrary text: no column header.
    std::istringstream in("hello\nworld\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("column header"), std::string::npos);
  }
  {
    // Header but a row with the wrong field count.
    std::istringstream in(
        "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
        "1.0,place,1,2,3\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("10, 11 or 13 fields"), std::string::npos);
  }
  {
    // Unknown event kind.
    std::istringstream in(
        "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
        "1.0,bogus,1,2,3,0,0.0,0.0,0.0,1\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("malformed"), std::string::npos);
  }
  {
    // Empty stream.
    std::istringstream in("");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
  }
}

TEST(TraceReport, TruncatedRowsAreRejectedAtEveryPrefix) {
  // Chop a valid v4 row after the header at every byte length: the parser
  // must reject every strict prefix — with exactly three survivors: the
  // full row, and the two prefixes that end exactly on the v1 (10-field)
  // and v2 (11-field) boundaries, which ARE valid older-version rows (the
  // mixed-version support the format guarantees). Nothing may crash.
  const std::string header =
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n";
  const std::string row = "1.5,prefetch,7,2,3,1,0.5,0.25,0.125,6,0,4096,0";
  std::vector<std::size_t> comma_at;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] == ',') comma_at.push_back(i);
  }
  ASSERT_EQ(comma_at.size(), 12u);
  const std::size_t v1_boundary = comma_at[9];   // 10 fields before this
  const std::size_t v2_boundary = comma_at[10];  // 11 fields before this
  for (std::size_t length = 0; length <= row.size(); ++length) {
    std::istringstream in(header + row.substr(0, length) + "\n");
    SchedTraceDump dump;
    std::string error;
    const bool parsed = parse_sched_trace_csv(in, dump, error);
    if (length == row.size()) {
      EXPECT_TRUE(parsed) << error;
      ASSERT_EQ(dump.events.size(), 1u);
      EXPECT_EQ(dump.events[0].group, 4096u);
    } else if (length == 0) {
      // The empty line is skipped: a header-only file parses to no events.
      EXPECT_TRUE(parsed) << error;
      EXPECT_TRUE(dump.events.empty());
    } else if (length == v1_boundary || length == v2_boundary) {
      EXPECT_TRUE(parsed) << error << " (legacy boundary " << length << ")";
      ASSERT_EQ(dump.events.size(), 1u);
      EXPECT_EQ(dump.events[0].group, 0u);  // truncated columns defaulted
    } else {
      EXPECT_FALSE(parsed) << "prefix length " << length << " accepted";
      EXPECT_FALSE(error.empty());
    }
  }
}

TEST(TraceReport, UnknownKindVariantsAreRejected) {
  const std::string header =
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n";
  // Near-misses of real kinds: case changes, prefixes, extensions and
  // whitespace must all fail — the kind match is exact.
  for (const std::string kind :
       {"Place", "PLACE", "pla", "placed", "steal ", " steal", "complete",
        "prefetch-", "done2", ""}) {
    std::istringstream in(header + "1.0," + kind + ",1,2,3,0,0.0,0.0,0.0,1\n");
    SchedTraceDump dump;
    std::string error;
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error)) << "'" << kind << "'";
    EXPECT_NE(error.find("malformed"), std::string::npos);
  }
}

TEST(TraceReport, MixedVersionRowsInOneFileParse) {
  // A concatenation of v1 (10 fields), v2 (11) and v4 (13) rows under one
  // header: each row parses with its own defaults, and the dump flags
  // every column set that appeared anywhere in the file.
  std::istringstream in(
      "# versa-sched-trace v4\n"
      "# policy=versioning\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n"
      "1.0,place,1,2,3,1,0.5,0.25,0.125,6\n"
      "2.0,steal,1,2,3,0,0.0,0.0,0.0,1,4\n"
      "3.0,split,9,2,0,0,0.0,0.0,0.0,0,0,65536,4\n");
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  ASSERT_EQ(dump.events.size(), 3u);
  EXPECT_TRUE(dump.has_tenant_column);
  EXPECT_TRUE(dump.has_granularity_columns);
  // v1 row: default tenant, zero granularity fields.
  EXPECT_EQ(dump.events[0].tenant, kDefaultTenant);
  EXPECT_EQ(dump.events[0].group, 0u);
  // v2 row: tenant carried, granularity defaulted.
  EXPECT_EQ(dump.events[1].tenant, 4u);
  EXPECT_EQ(dump.events[1].children, 0u);
  // v4 row: everything carried.
  EXPECT_EQ(dump.events[2].group, 65536u);
  EXPECT_EQ(dump.events[2].children, 4u);
  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.placements, 1u);
  EXPECT_EQ(report.steals, 1u);
  EXPECT_EQ(report.splits, 1u);
}

TEST(TraceReport, TwelveFieldRowsAreRejected) {
  // 12 fields sits between the known widths (11 and 13): a v3/v4 row that
  // lost one column must fail loudly, not parse with a shifted field.
  std::istringstream in(
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n"
      "1.0,place,1,2,3,1,0.5,0.25,0.125,6,0,4096\n");
  SchedTraceDump dump;
  std::string error;
  EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
  EXPECT_NE(error.find("got 12"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(TraceReport, DeterministicMutationFuzzNeverCrashes) {
  // Seeded byte-level mutations of a valid dump: every variant must either
  // parse or fail with a diagnostic — no crashes, no hangs, and a failed
  // parse always names a line. The seed is fixed so a regression replays.
  const std::string valid =
      "# versa-sched-trace v4\n"
      "# policy=fifo\n"
      "# recorded=4 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n"
      "1.0,learn,1,0,1,0,0.5,0.25,0.125,3,0,0,0\n"
      "2.0,place,2,1,2,1,0.5,0.25,0.125,3,0,0,0\n"
      "3.0,done,1,0,1,0,0.0,0.0,0.0,0,0,0,0\n"
      "4.0,prefetch-pop,2,1,2,1,0.0,0.0,0.0,0,0,512,0\n";
  const std::string alphabet = "0123456789,.-azZ \n#";
  Rng rng(20260809);
  int parsed_count = 0;
  int rejected_count = 0;
  for (int round = 0; round < 500; ++round) {
    std::string mutated = valid;
    const std::size_t mutations = 1 + rng.next_below(4);
    for (std::size_t m = 0; m < mutations; ++m) {
      const std::size_t at = rng.next_below(mutated.size());
      switch (rng.next_below(3)) {
        case 0:  // overwrite
          mutated[at] = alphabet[rng.next_below(alphabet.size())];
          break;
        case 1:  // delete
          mutated.erase(at, 1);
          break;
        default:  // insert
          mutated.insert(at, 1, alphabet[rng.next_below(alphabet.size())]);
          break;
      }
    }
    std::istringstream in(mutated);
    SchedTraceDump dump;
    std::string error;
    if (parse_sched_trace_csv(in, dump, error)) {
      ++parsed_count;
      // Whatever parsed must also analyze and render without crashing.
      const TraceReport report = analyze_sched_trace(dump);
      EXPECT_FALSE(render_trace_report(dump, report).empty());
    } else {
      ++rejected_count;
      EXPECT_FALSE(error.empty());
    }
  }
  // The mutation space hits both outcomes; if either count is zero the
  // fuzzer is not exercising the parser any more.
  EXPECT_GT(parsed_count, 0);
  EXPECT_GT(rejected_count, 0);
}

TEST(TraceReport, PerTypeBreakdownRenderedForMultiTypeDumps) {
  // Two task types with placements: the per-type section appears with one
  // row per type. One type: section absent (old reports unchanged).
  const std::string header =
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n";
  std::istringstream multi(
      header +
      "1.0,place,1,0,1,0,0.0,0.0,0.0,1\n"
      "2.0,learn,2,5,2,1,0.0,0.0,0.0,1\n"
      "3.0,done,1,0,1,0,0.0,0.0,0.0,0\n"
      "4.0,steal,2,5,2,0,0.0,0.0,0.0,0\n");
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(multi, dump, error)) << error;
  const TraceReport report = analyze_sched_trace(dump);
  ASSERT_EQ(report.per_type.size(), 2u);
  EXPECT_EQ(report.per_type.at(0).placements, 1u);
  EXPECT_EQ(report.per_type.at(0).completions, 1u);
  EXPECT_EQ(report.per_type.at(5).placements, 1u);
  EXPECT_EQ(report.per_type.at(5).learning, 1u);
  EXPECT_EQ(report.per_type.at(5).steals, 1u);
  EXPECT_DOUBLE_EQ(report.per_type.at(5).steal_churn, 1.0);
  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(rendered.find("per-type breakdown:"), std::string::npos);

  std::istringstream single(header + "1.0,place,1,0,1,0,0.0,0.0,0.0,1\n");
  ASSERT_TRUE(parse_sched_trace_csv(single, dump, error)) << error;
  const TraceReport single_report = analyze_sched_trace(dump);
  EXPECT_EQ(render_trace_report(dump, single_report).find("per-type"),
            std::string::npos);
}

TEST(TraceReport, EmptyTraceAnalyzesToZeros) {
  // A dump with a header and no rows (enabled trace, nothing recorded) is
  // valid and must not divide by zero.
  std::istringstream in(
      "# versa-sched-trace v1\n"
      "# policy=fifo\n"
      "# recorded=0 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n");
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_EQ(dump.policy, "fifo");
  EXPECT_TRUE(dump.events.empty());
  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_DOUBLE_EQ(report.steal_churn, 0.0);
  EXPECT_DOUBLE_EQ(report.learning_share, 0.0);
  EXPECT_TRUE(report.per_worker.empty());
}

}  // namespace
}  // namespace versa
