// Unit tests for the reporting layer: run statistics, table/CSV emitters,
// GFLOP/s helper and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "perf/trace.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(RunStatsCollector, CountsAndTotals) {
  RunStatsCollector stats;
  stats.on_complete(/*type=*/0, /*version=*/0, 1.0);
  stats.on_complete(0, 0, 2.0);
  stats.on_complete(0, 1, 4.0);
  stats.on_complete(1, 2, 8.0);

  EXPECT_EQ(stats.total_tasks(), 4u);
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.count(1), 1u);
  EXPECT_DOUBLE_EQ(stats.total_time(0), 3.0);
  EXPECT_EQ(stats.type_count(0), 3u);
  EXPECT_EQ(stats.type_count(1), 1u);
  EXPECT_EQ(stats.type_count(9), 0u);
}

TEST(RunStatsCollector, PercentPerType) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 1, 1.0);
  stats.on_complete(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 7), 0.0);
  EXPECT_DOUBLE_EQ(stats.percent(9, 0), 0.0);  // unknown type
}

TEST(RunStatsCollector, ResetClears) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.reset();
  EXPECT_EQ(stats.total_tasks(), 0u);
  EXPECT_EQ(stats.count(0), 0u);
}

TEST(Gflops, Computation) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.5), 2.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "23"});
  const std::string out = table.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line has the same width (trailing spaces pad short cells).
  const auto lines = split(out.substr(0, out.size() - 1), '\n');
  EXPECT_EQ(lines[0].size(), lines[1].size());
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.add_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(csv.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv;
  csv.add_row({"a", "b"});
  const std::string path = testing::TempDir() + "/versa_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

TEST(Trace, ExportsCompleteEventsPerWorker) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 100);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json =
      trace_json(rt.task_graph(), machine, rt.version_registry());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("demo/v"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("gpu-0"), std::string::npos);  // worker lane names
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, TransferLanesWhenRecordsProvided) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 1 << 20);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json = trace_json(rt.task_graph(), machine,
                                      rt.version_registry(),
                                      rt.transfer_records());
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("host->gpu-mem-0"), std::string::npos);
  EXPECT_NE(json.find("gpu-mem-0->host"), std::string::npos);  // flush
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, WriteFileRoundTrip) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("x");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 8);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string path = testing::TempDir() + "/versa_trace.json";
  EXPECT_TRUE(write_trace(path, rt.task_graph(), machine,
                          rt.version_registry()));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_FALSE(write_trace("/nonexistent/dir/trace.json", rt.task_graph(),
                           machine, rt.version_registry()));
}

}  // namespace
}  // namespace versa
