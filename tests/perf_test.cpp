// Unit tests for the reporting layer: run statistics, table/CSV emitters,
// GFLOP/s helper and the Chrome-trace exporter.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/string_util.h"
#include "machine/presets.h"
#include "perf/report.h"
#include "perf/run_stats.h"
#include "perf/sched_trace.h"
#include "perf/trace.h"
#include "perf/trace_report.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(RunStatsCollector, CountsAndTotals) {
  RunStatsCollector stats;
  stats.on_complete(/*type=*/0, /*version=*/0, 1.0);
  stats.on_complete(0, 0, 2.0);
  stats.on_complete(0, 1, 4.0);
  stats.on_complete(1, 2, 8.0);

  EXPECT_EQ(stats.total_tasks(), 4u);
  EXPECT_EQ(stats.count(0), 2u);
  EXPECT_EQ(stats.count(1), 1u);
  EXPECT_DOUBLE_EQ(stats.total_time(0), 3.0);
  EXPECT_EQ(stats.type_count(0), 3u);
  EXPECT_EQ(stats.type_count(1), 1u);
  EXPECT_EQ(stats.type_count(9), 0u);
}

TEST(RunStatsCollector, PercentPerType) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 0, 1.0);
  stats.on_complete(0, 1, 1.0);
  stats.on_complete(0, 1, 1.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 0), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 1), 50.0);
  EXPECT_DOUBLE_EQ(stats.percent(0, 7), 0.0);
  EXPECT_DOUBLE_EQ(stats.percent(9, 0), 0.0);  // unknown type
}

TEST(RunStatsCollector, ResetClears) {
  RunStatsCollector stats;
  stats.on_complete(0, 0, 1.0);
  stats.reset();
  EXPECT_EQ(stats.total_tasks(), 0u);
  EXPECT_EQ(stats.count(0), 0u);
}

TEST(Gflops, Computation) {
  EXPECT_DOUBLE_EQ(gflops(2e9, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(gflops(1e9, 0.5), 2.0);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.add_row({"a", "1"});
  table.add_row({"longer-name", "23"});
  const std::string out = table.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  // Every line has the same width (trailing spaces pad short cells).
  const auto lines = split(out.substr(0, out.size() - 1), '\n');
  EXPECT_EQ(lines[0].size(), lines[1].size());
}

TEST(TablePrinterTest, MissingCellsRenderEmpty) {
  TablePrinter table({"a", "b", "c"});
  table.add_row({"only"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("only"), std::string::npos);
  EXPECT_EQ(table.row_count(), 1u);
}

TEST(CsvWriterTest, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.add_row({"plain", "with,comma", "with\"quote"});
  EXPECT_EQ(csv.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

TEST(CsvWriterTest, WritesFile) {
  CsvWriter csv;
  csv.add_row({"a", "b"});
  const std::string path = testing::TempDir() + "/versa_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
}

TEST(Trace, ExportsCompleteEventsPerWorker) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 100);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json =
      trace_json(rt.task_graph(), machine, rt.version_registry());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("demo/v"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("gpu-0"), std::string::npos);  // worker lane names
  // Balanced braces as a cheap well-formedness check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, TransferLanesWhenRecordsProvided) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("demo");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 1 << 20);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string json = trace_json(rt.task_graph(), machine,
                                      rt.version_registry(),
                                      rt.transfer_records());
  EXPECT_NE(json.find("\"cat\":\"transfer\""), std::string::npos);
  EXPECT_NE(json.find("host->gpu-mem-0"), std::string::npos);
  EXPECT_NE(json.find("gpu-mem-0->host"), std::string::npos);  // flush
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Trace, WriteFileRoundTrip) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("x");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 8);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  const std::string path = testing::TempDir() + "/versa_trace.json";
  EXPECT_TRUE(write_trace(path, rt.task_graph(), machine,
                          rt.version_registry()));
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  EXPECT_FALSE(write_trace("/nonexistent/dir/trace.json", rt.task_graph(),
                           machine, rt.version_registry()));
}

TEST(TraceReport, CsvRoundTripPreservesEventsAndMetadata) {
  // Record a synthetic decision stream, render it with sched_trace_csv and
  // feed it back through the versa_trace_report parser: every field and
  // the `#` metadata must survive the trip.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.25;
  e.task = 7;
  e.type = 2;
  e.version = 3;
  e.worker = 1;
  e.busy_term = 0.5;
  e.mean_term = 0.25;
  e.penalty_term = 0.125;
  e.candidates = 6;
  e.kind = core::TraceEventKind::kLearningPlacement;
  trace.record(e);
  e.time = 2.5;
  e.task = 8;
  e.worker = 0;
  e.kind = core::TraceEventKind::kPlacement;
  trace.record(e);
  e.time = 3.0;
  e.kind = core::TraceEventKind::kSteal;
  e.worker = 1;
  trace.record(e);
  e.time = 4.0;
  e.kind = core::TraceEventKind::kComplete;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_EQ(dump.policy, "versioning");
  EXPECT_EQ(dump.recorded, 4u);
  EXPECT_EQ(dump.dropped, 0u);
  EXPECT_EQ(dump.capacity, 16u);
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_DOUBLE_EQ(dump.events[0].time, 1.25);
  EXPECT_EQ(dump.events[0].task, 7u);
  EXPECT_EQ(dump.events[0].type, 2u);
  EXPECT_EQ(dump.events[0].version, 3u);
  EXPECT_EQ(dump.events[0].worker, 1u);
  EXPECT_DOUBLE_EQ(dump.events[0].busy_term, 0.5);
  EXPECT_DOUBLE_EQ(dump.events[0].mean_term, 0.25);
  EXPECT_DOUBLE_EQ(dump.events[0].penalty_term, 0.125);
  EXPECT_EQ(dump.events[0].candidates, 6u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kLearningPlacement);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kComplete);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.placements, 1u);
  EXPECT_EQ(report.learning_placements, 1u);
  EXPECT_EQ(report.steals, 1u);
  EXPECT_EQ(report.completions, 1u);
  EXPECT_EQ(report.failures, 0u);
  EXPECT_DOUBLE_EQ(report.steal_churn, 0.5);   // 1 steal / 2 placements
  EXPECT_DOUBLE_EQ(report.learning_share, 0.5);
  EXPECT_EQ(report.versions_placed, 1u);   // both placements share (2, 3)
  EXPECT_EQ(report.versions_sampled, 1u);
  ASSERT_EQ(report.per_worker.size(), 2u);
  EXPECT_EQ(report.per_worker.at(0).first, 1u);   // placements on worker 0
  EXPECT_EQ(report.per_worker.at(1).first, 1u);
  EXPECT_EQ(report.per_worker.at(1).second, 1u);  // the steal, by worker 1

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(rendered.find("policy: versioning"), std::string::npos);
  EXPECT_NE(rendered.find("steal churn: 50.0%"), std::string::npos);
}

TEST(TraceReport, V3GranularityColumnsRoundTripAndAggregate) {
  // Split/fuse/reversal events carry the group key and child count through
  // the CSV; the analyzer folds them into the per-group breakdown and the
  // renderer shows a granularity section.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.0;
  e.task = 1;
  e.type = 5;
  e.kind = core::TraceEventKind::kSplit;
  e.group = 4096;
  e.children = 4;
  trace.record(e);
  e.time = 2.0;
  e.task = 2;
  e.kind = core::TraceEventKind::kSplit;
  e.children = 8;
  trace.record(e);
  e.time = 3.0;
  e.task = 3;
  e.type = 6;
  e.kind = core::TraceEventKind::kFuse;
  e.group = 512;
  e.children = 3;  // original submissions absorbed
  trace.record(e);
  e.time = 4.0;
  e.task = 4;
  e.type = 5;
  e.kind = core::TraceEventKind::kReversal;
  e.group = 4096;
  e.children = 0;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  EXPECT_NE(csv.find("# versa-sched-trace v4"), std::string::npos);
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_granularity_columns);
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kSplit);
  EXPECT_EQ(dump.events[0].group, 4096u);
  EXPECT_EQ(dump.events[0].children, 4u);
  EXPECT_EQ(dump.events[2].kind, core::TraceEventKind::kFuse);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kReversal);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.splits, 2u);
  EXPECT_EQ(report.fuses, 1u);
  EXPECT_EQ(report.reversals, 1u);
  ASSERT_EQ(report.per_group.size(), 2u);
  const TraceReport::GranularityBreakdown& coarse =
      report.per_group.at({5, 4096});
  EXPECT_EQ(coarse.splits, 2u);
  EXPECT_EQ(coarse.children_created, 12u);
  EXPECT_EQ(coarse.reversals, 1u);
  const TraceReport::GranularityBreakdown& fine =
      report.per_group.at({6, 512});
  EXPECT_EQ(fine.fuses, 1u);
  EXPECT_EQ(fine.tasks_fused, 3u);

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(rendered.find("granularity: 2 splits, 1 fuses, 1 reversals"),
            std::string::npos);
  EXPECT_NE(rendered.find("4096"), std::string::npos);
}

TEST(TraceReport, V4PrefetchKindsRoundTripAndReport) {
  // Placement-time/dequeue-fallback/stale prefetch events carry the staged
  // byte count in `group`; the analyzer folds them into the effectiveness
  // counters and the renderer shows a prefetch section.
  core::DecisionTrace trace;
  trace.enable(16);
  core::TraceEvent e;
  e.time = 1.0;
  e.task = 1;
  e.type = 5;
  e.worker = 0;
  e.kind = core::TraceEventKind::kPrefetchPlaced;
  e.group = 4096;
  trace.record(e);
  e.time = 2.0;
  e.task = 2;
  e.kind = core::TraceEventKind::kPrefetchPlaced;
  e.group = 1024;
  trace.record(e);
  e.time = 3.0;
  e.task = 3;
  e.kind = core::TraceEventKind::kPrefetchDequeue;
  e.group = 512;
  trace.record(e);
  e.time = 4.0;
  e.task = 4;
  e.kind = core::TraceEventKind::kPrefetchStale;
  e.group = 0;
  trace.record(e);

  const std::string csv = sched_trace_csv(trace, "versioning");
  EXPECT_NE(csv.find(",prefetch,"), std::string::npos);
  EXPECT_NE(csv.find(",prefetch-pop,"), std::string::npos);
  EXPECT_NE(csv.find(",prefetch-stale,"), std::string::npos);
  std::istringstream in(csv);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  ASSERT_EQ(dump.events.size(), 4u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kPrefetchPlaced);
  EXPECT_EQ(dump.events[0].group, 4096u);
  EXPECT_EQ(dump.events[2].kind, core::TraceEventKind::kPrefetchDequeue);
  EXPECT_EQ(dump.events[3].kind, core::TraceEventKind::kPrefetchStale);

  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.prefetch_placed, 2u);
  EXPECT_EQ(report.prefetch_dequeue, 1u);
  EXPECT_EQ(report.prefetch_stale, 1u);
  EXPECT_EQ(report.prefetch_bytes, 4096u + 1024u + 512u);
  EXPECT_DOUBLE_EQ(report.prefetch_placement_share, 0.5);
  EXPECT_DOUBLE_EQ(report.prefetch_claim_share, 0.75);

  const std::string rendered = render_trace_report(dump, report);
  EXPECT_NE(
      rendered.find("prefetch: 2 placement-time + 1 dequeue-fallback claims"),
      std::string::npos);
  EXPECT_NE(rendered.find("prefetch bytes overlapped: 5632"),
            std::string::npos);
}

TEST(TraceReport, LegacyV3FilesStillParse) {
  // v3 files (13 fields, granularity columns, no prefetch kinds) must keep
  // parsing with the prefetch counters zeroed and no prefetch section.
  const std::string v3 =
      "# versa-sched-trace v3\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant,group,children\n"
      "1.0,split,7,2,0,0,0,0,0,0,0,4096,4\n";
  std::istringstream in(v3);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_granularity_columns);
  ASSERT_EQ(dump.events.size(), 1u);
  EXPECT_EQ(dump.events[0].kind, core::TraceEventKind::kSplit);
  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_EQ(report.prefetch_placed + report.prefetch_dequeue +
                report.prefetch_stale,
            0u);
  const std::string rendered = render_trace_report(dump, report);
  EXPECT_EQ(rendered.find("prefetch:"), std::string::npos);
}

TEST(TraceReport, LegacyV1AndV2FilesStillParse) {
  // Pre-granularity CSVs: 10 fields (v1) and 11 fields (v2, tenant
  // appended) must keep parsing, with the granularity fields zeroed and
  // no granularity section in the rendered report.
  const std::string v1 =
      "# versa-sched-trace v1\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
      "1.0,place,7,2,3,1,0.5,0.25,0.125,6\n";
  const std::string v2 =
      "# versa-sched-trace v2\n"
      "# policy=versioning\n"
      "# recorded=1 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates,"
      "tenant\n"
      "1.0,place,7,2,3,1,0.5,0.25,0.125,6,4\n";
  for (const std::string& text : {v1, v2}) {
    std::istringstream in(text);
    SchedTraceDump dump;
    std::string error;
    ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
    EXPECT_FALSE(dump.has_granularity_columns);
    ASSERT_EQ(dump.events.size(), 1u);
    EXPECT_EQ(dump.events[0].group, 0u);
    EXPECT_EQ(dump.events[0].children, 0u);
    const TraceReport report = analyze_sched_trace(dump);
    EXPECT_EQ(report.splits, 0u);
    EXPECT_TRUE(report.per_group.empty());
    const std::string rendered = render_trace_report(dump, report);
    EXPECT_EQ(rendered.find("granularity:"), std::string::npos);
  }
  // The v2 tenant column still round-trips.
  std::istringstream in(v2);
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_TRUE(dump.has_tenant_column);
  EXPECT_EQ(dump.events[0].tenant, 4u);
}

TEST(TraceReport, ParserRejectsMalformedInput) {
  SchedTraceDump dump;
  std::string error;
  {
    // Arbitrary text: no column header.
    std::istringstream in("hello\nworld\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("column header"), std::string::npos);
  }
  {
    // Header but a row with the wrong field count.
    std::istringstream in(
        "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
        "1.0,place,1,2,3\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("10, 11 or 13 fields"), std::string::npos);
  }
  {
    // Unknown event kind.
    std::istringstream in(
        "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n"
        "1.0,bogus,1,2,3,0,0.0,0.0,0.0,1\n");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
    EXPECT_NE(error.find("malformed"), std::string::npos);
  }
  {
    // Empty stream.
    std::istringstream in("");
    EXPECT_FALSE(parse_sched_trace_csv(in, dump, error));
  }
}

TEST(TraceReport, EmptyTraceAnalyzesToZeros) {
  // A dump with a header and no rows (enabled trace, nothing recorded) is
  // valid and must not divide by zero.
  std::istringstream in(
      "# versa-sched-trace v1\n"
      "# policy=fifo\n"
      "# recorded=0 dropped=0 capacity=8\n"
      "time,kind,task,type,version,worker,busy,estimate,penalty,candidates\n");
  SchedTraceDump dump;
  std::string error;
  ASSERT_TRUE(parse_sched_trace_csv(in, dump, error)) << error;
  EXPECT_EQ(dump.policy, "fifo");
  EXPECT_TRUE(dump.events.empty());
  const TraceReport report = analyze_sched_trace(dump);
  EXPECT_DOUBLE_EQ(report.steal_churn, 0.0);
  EXPECT_DOUBLE_EQ(report.learning_share, 0.0);
  EXPECT_TRUE(report.per_worker.empty());
}

}  // namespace
}  // namespace versa
