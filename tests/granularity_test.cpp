// Adaptive task granularity (DESIGN.md §11): the profile-guided split/fuse
// controller — config parsing, the decision/reversal rules in isolation,
// the runtime integration (shell/child lineage, fuse windows, barrier
// flushes), and functional exactness of re-tiled applications.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "apps/cholesky.h"
#include "apps/matmul.h"
#include "apps/sparselu.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/core/granularity.h"
#include "sched/profile_table.h"
#include "task/version_registry.h"

namespace versa {
namespace {

using core::GranularityConfig;
using core::GranularityController;
using core::GranularityDecision;
using core::GranularityMode;

RuntimeConfig sim_config(const std::string& granularity = "off") {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "versioning";
  config.noise.kind = sim::NoiseKind::kNone;
  EXPECT_TRUE(core::parse_granularity(granularity, config.granularity));
  return config;
}

core::SplitRecipe chunk_recipe(TaskTypeId child_type) {
  core::SplitRecipe recipe;
  recipe.child_type = child_type;
  recipe.max_factor = 8;
  // Split every access into `factor` contiguous chunks; part r takes
  // chunk r of each range. Covers the parent's bytes exactly.
  recipe.partition = [](const AccessList& parent, std::uint32_t factor,
                        std::vector<AccessList>& parts) {
    for (const Access& access : parent) {
      if (access.length % factor != 0) return false;
    }
    parts.assign(factor, parent);
    for (std::uint32_t r = 0; r < factor; ++r) {
      for (Access& access : parts[r]) {
        access.length /= factor;
        access.offset += static_cast<std::uint64_t>(r) * access.length;
      }
    }
    return true;
  };
  return recipe;
}

// --- parsing ---------------------------------------------------------------

TEST(GranularityParse, OffAutoAndFixedFactors) {
  GranularityConfig config;
  EXPECT_TRUE(core::parse_granularity("off", config));
  EXPECT_EQ(config.mode, GranularityMode::kOff);
  EXPECT_TRUE(core::parse_granularity("auto", config));
  EXPECT_EQ(config.mode, GranularityMode::kAuto);
  EXPECT_TRUE(core::parse_granularity("4", config));
  EXPECT_EQ(config.mode, GranularityMode::kFixed);
  EXPECT_EQ(config.fixed_factor, 4u);
  // N <= 1 means "do not re-tile": off.
  EXPECT_TRUE(core::parse_granularity("1", config));
  EXPECT_EQ(config.mode, GranularityMode::kOff);
  EXPECT_TRUE(core::parse_granularity("0", config));
  EXPECT_EQ(config.mode, GranularityMode::kOff);
}

TEST(GranularityParse, RejectsGarbageUntouched) {
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  EXPECT_FALSE(core::parse_granularity("", config));
  EXPECT_FALSE(core::parse_granularity("fast", config));
  EXPECT_FALSE(core::parse_granularity("4x", config));
  EXPECT_FALSE(core::parse_granularity("-3", config));
  EXPECT_EQ(config.mode, GranularityMode::kAuto);  // untouched on failure
}

// --- controller decision rules (no runtime) --------------------------------

struct ControllerFixture {
  VersionRegistry registry;
  TaskTypeId type;
  VersionId version;
  ProfileTable table;

  ControllerFixture()
      : type(registry.declare_task("t")),
        version(
            registry.add_version(type, DeviceKind::kSmp, "v", nullptr, nullptr)),
        table(registry, {}) {}

  void record_mean(std::uint64_t size, Duration mean, int runs = 3) {
    for (int i = 0; i < runs; ++i) table.record(type, version, size, mean);
  }
};

TEST(GranularityController, FixedModeSplitsEverythingWithARecipe) {
  GranularityConfig config;
  config.mode = GranularityMode::kFixed;
  config.fixed_factor = 4;
  GranularityController controller(config);
  std::uint32_t factor = 0;
  // No recipe registered: nothing to split.
  EXPECT_EQ(controller.decide(0, 1000, 0.0, factor),
            GranularityDecision::kKeep);
  controller.set_split_recipe(0, chunk_recipe(1));
  EXPECT_EQ(controller.decide(0, 1000, 0.0, factor),
            GranularityDecision::kSplit);
  EXPECT_EQ(factor, 4u);
}

TEST(GranularityController, AutoSplitsWhenMeanDominatesSpread) {
  ControllerFixture f;
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  GranularityController controller(config);
  controller.set_profile(&f.table);
  controller.set_split_recipe(f.type, chunk_recipe(1));

  std::uint32_t factor = 0;
  // No profiled mean yet: still learning at the original key, keep.
  EXPECT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kKeep);

  f.record_mean(1000, 1.0);
  // Mean 1 s against a 0.1 s spread: far too coarse. The chosen factor is
  // the smallest power of two whose per-child mean fits under the
  // threshold (1/8 <= 2 * 0.1), clamped by the recipe.
  EXPECT_EQ(controller.decide(f.type, 1000, 0.1, factor),
            GranularityDecision::kSplit);
  EXPECT_EQ(factor, 8u);
  // A machine already spread out by 1 s has nothing to gain: keep.
  EXPECT_EQ(controller.decide(f.type, 1000, 1.0, factor),
            GranularityDecision::kKeep);
  // Other sizes remain unprofiled: keep.
  EXPECT_EQ(controller.decide(f.type, 5000, 0.1, factor),
            GranularityDecision::kKeep);
}

TEST(GranularityController, AutoFusesBelowOverheadThreshold) {
  ControllerFixture f;
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  GranularityController controller(config);
  controller.set_profile(&f.table);
  core::FuseRecipe fuse;
  fuse.fused_type = 2;
  fuse.window = 4;
  fuse.can_fuse = [](const AccessList&, const AccessList&) { return true; };
  fuse.fuse = [](const std::vector<AccessList>& lists) { return lists[0]; };
  controller.set_fuse_recipe(f.type, std::move(fuse));

  // Mean well under fuse_threshold * overhead_estimate: dispatch cost
  // dominates, coalesce.
  f.record_mean(1000, 10e-6);
  std::uint32_t factor = 0;
  EXPECT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kFuse);
}

TEST(GranularityController, SplitReversalTripsAfterSustainedLosses) {
  ControllerFixture f;
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  GranularityController controller(config);
  controller.set_profile(&f.table);
  controller.set_split_recipe(f.type, chunk_recipe(1));
  f.record_mean(1000, 1.0);

  std::uint32_t factor = 0;
  ASSERT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kSplit);

  // Children keep costing ~2x the profiled single-task baseline: each
  // outcome adds ~0.9 s of excess; the CUSUM alarms past 3 * baseline.
  int outcomes = 0;
  bool reversed = false;
  while (!reversed && outcomes < 10) {
    reversed = controller.record_split_outcome(f.type, 1000, 2.0, 4);
    ++outcomes;
  }
  EXPECT_TRUE(reversed);
  EXPECT_EQ(outcomes, 4);
  EXPECT_EQ(controller.stats().reversals, 1u);
  // The group is pinned back to its declared tiling from now on.
  EXPECT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kKeep);
}

TEST(GranularityController, WinningSplitsNeverReverse) {
  ControllerFixture f;
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  GranularityController controller(config);
  controller.set_profile(&f.table);
  controller.set_split_recipe(f.type, chunk_recipe(1));
  f.record_mean(1000, 1.0);
  for (int i = 0; i < 100; ++i) {
    // Children together cost half the baseline: the split pays off and
    // the accumulator stays drained.
    EXPECT_FALSE(controller.record_split_outcome(f.type, 1000, 0.5, 4));
  }
  EXPECT_EQ(controller.stats().splits, 100u);
  EXPECT_EQ(controller.stats().reversals, 0u);
}

TEST(GranularityController, FuseReversalStopsFusing) {
  ControllerFixture f;
  GranularityConfig config;
  config.mode = GranularityMode::kAuto;
  GranularityController controller(config);
  controller.set_profile(&f.table);
  core::FuseRecipe fuse;
  fuse.fused_type = 2;
  fuse.window = 2;
  fuse.can_fuse = [](const AccessList&, const AccessList&) { return true; };
  fuse.fuse = [](const std::vector<AccessList>& lists) { return lists[0]; };
  controller.set_fuse_recipe(f.type, std::move(fuse));
  f.record_mean(1000, 10e-6);

  std::uint32_t factor = 0;
  ASSERT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kFuse);
  // A fused pair that costs 100x the two tasks it replaced keeps losing.
  bool reversed = false;
  for (int i = 0; !reversed && i < 100; ++i) {
    reversed = controller.record_fuse_outcome(f.type, 1000, 2e-3, 2);
  }
  EXPECT_TRUE(reversed);
  EXPECT_EQ(controller.decide(f.type, 1000, 0.0, factor),
            GranularityDecision::kKeep);
}

// --- row_band_partition ----------------------------------------------------

TEST(RowBandPartition, SplitsAAndCAndKeepsBWhole) {
  auto partition = core::row_band_partition(128);
  const AccessList parent = {Access::in_range(0, 0, 1024),
                             Access::in_range(1, 0, 4096),
                             Access::inout_range(2, 512, 1024)};
  std::vector<AccessList> parts;
  ASSERT_TRUE(partition(parent, 4, parts));
  ASSERT_EQ(parts.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    ASSERT_EQ(parts[r].size(), 3u);
    EXPECT_EQ(parts[r][0].offset, r * 256u);
    EXPECT_EQ(parts[r][0].length, 256u);
    EXPECT_EQ(parts[r][0].mode, AccessMode::kIn);
    // B stays whole.
    EXPECT_EQ(parts[r][1].offset, 0u);
    EXPECT_EQ(parts[r][1].length, 4096u);
    // C bands keep the parent's base offset and mode.
    EXPECT_EQ(parts[r][2].offset, 512 + r * 256u);
    EXPECT_EQ(parts[r][2].length, 256u);
    EXPECT_EQ(parts[r][2].mode, AccessMode::kInOut);
  }
}

TEST(RowBandPartition, DeclinesIndivisibleOrMalformedShapes) {
  auto partition = core::row_band_partition(128);
  std::vector<AccessList> parts;
  // 8 rows do not divide by 3.
  EXPECT_FALSE(partition({Access::in_range(0, 0, 1024),
                          Access::in_range(1, 0, 1024),
                          Access::inout_range(2, 0, 1024)},
                         3, parts));
  // A and C lengths differ.
  EXPECT_FALSE(partition({Access::in_range(0, 0, 1024),
                          Access::in_range(1, 0, 1024),
                          Access::inout_range(2, 0, 512)},
                         2, parts));
  // Not the 3-access GEMM shape.
  EXPECT_FALSE(partition({Access::inout_range(0, 0, 1024)}, 2, parts));
  // Length not a multiple of the row stride.
  EXPECT_FALSE(partition({Access::in_range(0, 0, 1000),
                          Access::in_range(1, 0, 1024),
                          Access::inout_range(2, 0, 1000)},
                         2, parts));
}

// --- runtime integration ---------------------------------------------------

TEST(GranularityRuntime, OffModeHasNoControllerAndRecipesAreNoops) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, sim_config("off"));
  EXPECT_EQ(rt.granularity(), nullptr);
  const TaskTypeId t = rt.declare_task("t");
  const TaskTypeId tc = rt.declare_task("tc");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  rt.set_split_recipe(t, chunk_recipe(tc));  // must be a harmless no-op
  const RegionId r = rt.register_data("r", 4096);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_EQ(rt.task_graph().size(), 1u);
  EXPECT_NEAR(rt.elapsed(), 1e-3, 1e-9);
}

TEST(GranularityRuntime, FixedSplitCreatesShellAndChildren) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config("4"));
  ASSERT_NE(rt.granularity(), nullptr);
  const TaskTypeId t = rt.declare_task("t");
  const TaskTypeId tc = rt.declare_task("t_chunk");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(4e-3));
  rt.add_version(tc, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  rt.set_split_recipe(t, chunk_recipe(tc));

  const RegionId r = rt.register_data("r", 4096);
  const TaskId id = rt.submit(t, {Access::inout(r)});
  rt.taskwait();

  // Four independent children on four workers: one wave.
  EXPECT_NEAR(rt.elapsed(), 1e-3, 1e-9);
  const TaskGraph& graph = rt.task_graph();
  ASSERT_EQ(graph.size(), 5u);  // shell + 4 children
  const Task& shell = graph.task(id);
  EXPECT_EQ(shell.type, t);
  EXPECT_EQ(shell.state, TaskState::kFinished);
  EXPECT_EQ(shell.split_children, 4u);
  EXPECT_EQ(shell.split_live, 0u);
  EXPECT_NEAR(shell.split_accum, 4e-3, 1e-9);  // summed child time
  std::size_t children = 0;
  for (const Task& task : graph.tasks()) {
    if (task.split_parent == kInvalidTask) continue;
    ++children;
    EXPECT_EQ(task.split_parent, id);
    EXPECT_EQ(task.type, tc);
    EXPECT_EQ(task.state, TaskState::kFinished);
    EXPECT_EQ(task.data_set_size, 1024u);  // chunk bytes, not region bytes
  }
  EXPECT_EQ(children, 4u);
  EXPECT_EQ(rt.granularity()->stats().splits, 1u);
  EXPECT_EQ(rt.granularity()->stats().children_created, 4u);
}

TEST(GranularityRuntime, RegranulateFalsePinsTheDeclaredTiling) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config("4"));
  const TaskTypeId t = rt.declare_task("t");
  const TaskTypeId tc = rt.declare_task("t_chunk");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(4e-3));
  rt.add_version(tc, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  rt.set_split_recipe(t, chunk_recipe(tc));
  const RegionId r = rt.register_data("r", 4096);
  Runtime::SubmitOptions options;
  options.regranulate = false;
  rt.submit(t, {Access::inout(r)}, options);
  rt.taskwait();
  EXPECT_EQ(rt.task_graph().size(), 1u);
  EXPECT_NEAR(rt.elapsed(), 4e-3, 1e-9);
  EXPECT_EQ(rt.granularity()->stats().splits, 0u);
}

TEST(GranularityRuntime, SplitChildrenPreserveChunkwiseDependences) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config("4"));
  const TaskTypeId t = rt.declare_task("t");
  const TaskTypeId tc = rt.declare_task("t_chunk");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(4e-3));
  rt.add_version(tc, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  rt.set_split_recipe(t, chunk_recipe(tc));
  const RegionId r = rt.register_data("r", 4096);
  // Two inout generations over the same region: chunk i of the second
  // must wait for chunk i of the first — two waves, not one, not eight.
  rt.submit(t, {Access::inout(r)});
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_NEAR(rt.elapsed(), 2e-3, 1e-9);
}

TEST(GranularityRuntime, DeclinedPartitionFallsBackToPlainSubmission) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config("3"));  // 4096 % 3 != 0: recipe declines
  const TaskTypeId t = rt.declare_task("t");
  const TaskTypeId tc = rt.declare_task("t_chunk");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(4e-3));
  rt.add_version(tc, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  rt.set_split_recipe(t, chunk_recipe(tc));
  const RegionId r = rt.register_data("r", 4096);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_EQ(rt.task_graph().size(), 1u);
  EXPECT_NEAR(rt.elapsed(), 4e-3, 1e-9);
}

// Fuse tests prime the profile through a hints file so the controller has
// a baseline mean from the very first submission (one-pass determinism).
class GranularityFuse : public testing::Test {
 protected:
  std::string write_hints(const std::string& body) {
    const std::string path = testing::TempDir() + "/granularity_hints.txt";
    std::ofstream out(path);
    out << "# versa hints v1\n" << body;
    return path;
  }

  void setup_runtime(Runtime& rt) {
    t_ = rt.declare_task("t");
    tf_ = rt.declare_task("t_fused");
    rt.add_version(t_, DeviceKind::kSmp, "v", nullptr,
                   make_constant_cost(10e-6));
    rt.add_version(tf_, DeviceKind::kSmp, "v", nullptr,
                   make_constant_cost(15e-6));
    core::FuseRecipe fuse;
    fuse.fused_type = tf_;
    fuse.window = 4;
    // Siblings fuse when they share the output region (the last access).
    fuse.can_fuse = [](const AccessList& last, const AccessList& next) {
      return last.back().region == next.back().region;
    };
    fuse.fuse = [](const std::vector<AccessList>& lists) {
      AccessList fused;
      for (const AccessList& list : lists) fused.push_back(list.front());
      fused.push_back(lists.front().back());
      return fused;
    };
    rt.set_fuse_recipe(t_, std::move(fuse));
  }

  TaskTypeId t_ = kInvalidTaskType;
  TaskTypeId tf_ = kInvalidTaskType;
};

TEST_F(GranularityFuse, FullWindowFlushesIntoOneFusedTask) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = sim_config("auto");
  // dss of each member: in(a_i, 100) + inout(c, 100) = 200.
  config.hints_load_path = write_hints("hint t v 200 1e-5 3\n");
  Runtime rt(machine, config);
  setup_runtime(rt);

  const RegionId c = rt.register_data("c", 100);
  std::vector<TaskId> members;
  for (int i = 0; i < 4; ++i) {
    const RegionId a = rt.register_data("a" + std::to_string(i), 100);
    members.push_back(rt.submit(t_, {Access::in(a), Access::inout(c)}));
  }
  rt.taskwait();

  const TaskGraph& graph = rt.task_graph();
  ASSERT_EQ(graph.size(), 4u);
  const Task& host = graph.task(members[0]);
  EXPECT_EQ(host.type, tf_);
  EXPECT_EQ(host.origin_type, t_);
  EXPECT_EQ(host.origin_size, 200u);
  EXPECT_EQ(host.fused_count, 3u);
  EXPECT_EQ(host.accesses.size(), 5u);  // 4 inputs + shared output
  for (std::size_t i = 1; i < members.size(); ++i) {
    const Task& absorbed = graph.task(members[i]);
    EXPECT_EQ(absorbed.fused_into, members[0]);
    EXPECT_EQ(absorbed.state, TaskState::kFinished);
  }
  // One fused execution stands for all four submissions.
  EXPECT_NEAR(rt.elapsed(), 15e-6, 1e-12);
  EXPECT_EQ(rt.granularity()->stats().fuses, 1u);
  EXPECT_EQ(rt.granularity()->stats().tasks_fused, 3u);
}

TEST_F(GranularityFuse, TaskwaitFlushesAPartialWindow) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = sim_config("auto");
  config.hints_load_path = write_hints("hint t v 200 1e-5 3\n");
  Runtime rt(machine, config);
  setup_runtime(rt);

  const RegionId c = rt.register_data("c", 100);
  const RegionId a0 = rt.register_data("a0", 100);
  const RegionId a1 = rt.register_data("a1", 100);
  rt.submit(t_, {Access::in(a0), Access::inout(c)});
  rt.submit(t_, {Access::in(a1), Access::inout(c)});
  // Window limit is 4; with only 2 members parked, the barrier must
  // flush — otherwise this deadlocks.
  rt.taskwait();
  EXPECT_EQ(rt.granularity()->stats().fuses, 1u);
  EXPECT_EQ(rt.granularity()->stats().tasks_fused, 1u);
  EXPECT_NEAR(rt.elapsed(), 15e-6, 1e-12);
}

TEST_F(GranularityFuse, SingleMemberWindowRunsAsItself) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = sim_config("auto");
  config.hints_load_path = write_hints("hint t v 200 1e-5 3\n");
  Runtime rt(machine, config);
  setup_runtime(rt);
  const RegionId c = rt.register_data("c", 100);
  const RegionId a = rt.register_data("a", 100);
  const TaskId id = rt.submit(t_, {Access::in(a), Access::inout(c)});
  rt.taskwait();
  // A window of one fuses nothing: the member runs under its own type.
  EXPECT_EQ(rt.task_graph().task(id).type, t_);
  EXPECT_EQ(rt.granularity()->stats().fuses, 0u);
  EXPECT_NEAR(rt.elapsed(), 10e-6, 1e-12);
}

TEST_F(GranularityFuse, IncompatibleSubmissionFlushesTheOpenWindow) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config = sim_config("auto");
  config.hints_load_path = write_hints("hint t v 200 1e-5 3\n");
  Runtime rt(machine, config);
  setup_runtime(rt);
  const RegionId c0 = rt.register_data("c0", 100);
  const RegionId c1 = rt.register_data("c1", 100);
  const RegionId a0 = rt.register_data("a0", 100);
  const RegionId a1 = rt.register_data("a1", 100);
  const RegionId a2 = rt.register_data("a2", 100);
  // Two siblings open a window on c0; the third targets c1 and cannot
  // join — the open window must flush (in submission order) first.
  rt.submit(t_, {Access::in(a0), Access::inout(c0)});
  rt.submit(t_, {Access::in(a1), Access::inout(c0)});
  rt.submit(t_, {Access::in(a2), Access::inout(c1)});
  rt.taskwait();
  // Both windows fused: c0's pair, then c1's singleton (registered plain).
  EXPECT_EQ(rt.granularity()->stats().fuses, 1u);
  EXPECT_EQ(rt.granularity()->stats().tasks_fused, 1u);
}

// --- application-level exactness -------------------------------------------

TEST(GranularityApps, MatmulStaysExactUnderFixedSplit) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config("4"));
  apps::MatmulParams params;
  params.n = 128;
  params.tile = 32;
  params.hybrid = true;
  params.real_compute = true;
  apps::MatmulApp app(rt, params);
  ASSERT_NE(app.band_type(), kInvalidTaskType);
  app.run();
  EXPECT_LT(app.max_error(), 1e-9);
  // Every tile product (4^3) was re-tiled into 4 row bands.
  EXPECT_EQ(rt.granularity()->stats().splits, 64u);
  EXPECT_EQ(rt.granularity()->stats().children_created, 256u);
}

TEST(GranularityApps, MatmulStaysExactUnderAutoFusion) {
  const Machine machine = make_minotauro_node(2, 1);
  RuntimeConfig config = sim_config("auto");
  // Prime all three tile versions well under the fuse threshold so the
  // k-loop siblings coalesce from the first submission on. Group key =
  // 3 * 32 * 32 * 8 bytes = 24576.
  const std::string path = testing::TempDir() + "/matmul_fuse_hints.txt";
  {
    std::ofstream out(path);
    out << "# versa hints v1\n"
        << "hint matmul_tile cublas 24576 1e-5 3\n"
        << "hint matmul_tile cuda 24576 2e-5 3\n"
        << "hint matmul_tile cblas 24576 3e-5 3\n";
  }
  config.hints_load_path = path;
  Runtime rt(machine, config);
  apps::MatmulParams params;
  params.n = 128;
  params.tile = 32;
  params.hybrid = true;
  params.real_compute = true;
  apps::MatmulApp app(rt, params);
  ASSERT_NE(app.fused_type(), kInvalidTaskType);
  app.run();
  EXPECT_LT(app.max_error(), 1e-9);
  // 64 submissions in windows of 2: 32 fused pairs.
  EXPECT_EQ(rt.granularity()->stats().fuses, 32u);
  EXPECT_EQ(rt.granularity()->stats().tasks_fused, 32u);
}

TEST(GranularityApps, CholeskyStaysExactUnderFixedSplit) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config("4"));
  apps::CholeskyParams params;
  params.n = 128;
  params.block = 32;
  params.real_compute = true;
  apps::CholeskyApp app(rt, params);
  ASSERT_NE(app.gemm_band_type(), kInvalidTaskType);
  app.run();
  EXPECT_LT(app.max_error(), 1e-2);
  EXPECT_GT(rt.granularity()->stats().splits, 0u);
}

TEST(GranularityApps, SparseLuStaysExactUnderFixedSplit) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config("4"));
  apps::SparseLuParams params;
  params.blocks = 6;
  params.block_size = 32;
  params.real_compute = true;
  apps::SparseLuApp app(rt, params);
  ASSERT_NE(app.bmod_band_type(), kInvalidTaskType);
  app.run();
  EXPECT_LT(app.max_error(), 1e-4);
  EXPECT_GT(rt.granularity()->stats().splits, 0u);
}

TEST(GranularityApps, OffModeRunsAreByteIdenticalToPreControllerRuns) {
  // Same seed, same machine: a run with the feature compiled in but off
  // must produce the same virtual timeline as one that never heard of it.
  auto elapsed_with = [](const std::string& granularity) {
    const Machine machine = make_minotauro_node(4, 2);
    RuntimeConfig config;
    config.backend = Backend::kSim;
    config.scheduler = "versioning";
    config.seed = 42;
    if (granularity != "default") {
      EXPECT_TRUE(core::parse_granularity(granularity, config.granularity));
    }
    Runtime rt(machine, config);
    apps::MatmulParams params;
    params.n = 4096;
    params.tile = 1024;
    apps::MatmulApp app(rt, params);
    app.run();
    return rt.elapsed();
  };
  EXPECT_EQ(elapsed_with("default"), elapsed_with("off"));
}

}  // namespace
}  // namespace versa
