// Tests for the sufferage batch-mapping scheduler.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

namespace versa {
namespace {

RuntimeConfig sufferage_config() {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "sufferage";
  config.profile.lambda = 1;
  config.noise.kind = sim::NoiseKind::kNone;
  return config;
}

TEST(Sufferage, FactoryProducesIt) {
  const auto scheduler = make_scheduler("sufferage");
  ASSERT_NE(scheduler, nullptr);
  EXPECT_STREQ(scheduler->name(), "sufferage");
}

TEST(Sufferage, CompletesMixedWorkload) {
  const Machine machine = make_minotauro_node(2, 2);
  Runtime rt(machine, sufferage_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(3e-3));
  for (int i = 0; i < 40; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  EXPECT_EQ(rt.run_stats().total_tasks(), 40u);
}

TEST(Sufferage, PrioritizesTheTaskThatSuffersMost) {
  // Two task types. Type A runs at 1 ms on GPU / 50 ms on SMP: it suffers
  // enormously without the GPU. Type B runs 2 ms GPU / 2.5 ms SMP: barely
  // suffers. When one of each is ready and only one GPU slot is cheap,
  // sufferage must give the GPU to type A; B then finishes earlier on the
  // idle SMP worker (2.5 ms) than behind A on the GPU (1 + 2 ms).
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config = sufferage_config();
  Runtime rt(machine, config);

  const TaskTypeId a = rt.declare_task("a");
  const VersionId a_gpu =
      rt.add_version(a, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  rt.add_version(a, DeviceKind::kSmp, "c", nullptr, make_constant_cost(50e-3));
  const TaskTypeId b = rt.declare_task("b");
  rt.add_version(b, DeviceKind::kCuda, "g", nullptr, make_constant_cost(2e-3));
  const VersionId b_smp = rt.add_version(b, DeviceKind::kSmp, "c", nullptr,
                                         make_constant_cost(2.5e-3));

  // Learning warm-up (λ=1): run each version once per type, using the
  // same data-set size (gate + work region) as the batch below so the
  // profile group matches.
  const RegionId wa = rt.register_data("wa", 64);
  const RegionId wb = rt.register_data("wb", 64);
  const RegionId gate = rt.register_data("gate", 64);
  rt.submit(a, {Access::in(gate), Access::inout(wa)});
  rt.submit(a, {Access::in(gate), Access::inout(wa)});
  rt.submit(b, {Access::in(gate), Access::inout(wb)});
  rt.submit(b, {Access::in(gate), Access::inout(wb)});
  rt.taskwait();

  // One ready task of each type in a single batch (released together by a
  // common predecessor).
  const TaskTypeId opener = rt.declare_task("opener");
  rt.add_version(opener, DeviceKind::kSmp, "v", nullptr,
                 make_constant_cost(1e-3));
  rt.submit(opener, {Access::inout(gate)});
  const TaskId task_a = rt.submit(a, {Access::in(gate), Access::inout(wa)});
  const TaskId task_b = rt.submit(b, {Access::in(gate), Access::inout(wb)});
  rt.taskwait();

  // Type A got its GPU; type B yielded to SMP.
  EXPECT_EQ(rt.task_graph().task(task_a).chosen_version, a_gpu);
  EXPECT_EQ(rt.task_graph().task(task_b).chosen_version, b_smp);
}

TEST(Sufferage, DeterministicAndDependenceSafe) {
  auto run = [] {
    const Machine machine = make_minotauro_node(2, 1);
    Runtime rt(machine, sufferage_config());
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(4e-3));
    const RegionId r = rt.register_data("r", 64);
    std::vector<TaskId> ids;
    for (int i = 0; i < 20; ++i) {
      ids.push_back(rt.submit(t, {Access::inout(r)}));
    }
    rt.taskwait();
    // The inout chain serializes in submission order.
    for (std::size_t i = 1; i < ids.size(); ++i) {
      EXPECT_LE(rt.task_graph().task(ids[i - 1]).finish_time,
                rt.task_graph().task(ids[i]).start_time + 1e-12);
    }
    return rt.elapsed();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace versa
