// Granularity stress (run under TSan with VERSA_LOCK_ORDER=1 in CI):
// several client threads storm one shared runtime on the thread backend
// with --granularity=auto active, so the controller's decide/feedback
// path, the shell/child lineage and the fuse window all run concurrently
// with submission, dispatch, completion and graph retirement.
//
// The profile is primed through a hints file so the very first
// submissions already trigger both mechanisms: the coarse type's group
// mean (0.5 s) dwarfs any realistic busy spread and splits from the
// start, and the fine type sits well under the fuse threshold
// (4 x 20 us). The storm itself asserts reconciliation — every admitted
// graph completes and retires exactly — plus non-vacuity (splits
// happened); a single-threaded tail phase then fills one fuse window
// deterministically, since racing clients may legitimately flush each
// other's windows down to singletons.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "machine/presets.h"
#include "runtime/config.h"
#include "sched/core/granularity.h"
#include "service/versa_service.h"

namespace versa {
namespace {

using namespace versa::service;

constexpr std::uint64_t kCoarseBytes = 4096;
constexpr std::uint64_t kFineBytes = 256;

std::string write_hints() {
  const std::string path = testing::TempDir() + "/granularity_stress_hints.txt";
  std::ofstream out(path);
  out << "# versa hints v1\n"
      // Coarse type at its full-region group: half a second, splits.
      << "hint split_t smp " << kCoarseBytes << " 0.5 3\n"
      // Fine types at in(a) + inout(c): 10 us, fuses.
      << "hint fuse_t smp " << 2 * kFineBytes << " 1e-5 3\n"
      << "hint tail_t smp " << 2 * kFineBytes << " 1e-5 3\n";
  return path;
}

core::SplitRecipe chunk_recipe(TaskTypeId child_type) {
  core::SplitRecipe recipe;
  recipe.child_type = child_type;
  recipe.max_factor = 8;
  recipe.partition = [](const AccessList& parent, std::uint32_t factor,
                        std::vector<AccessList>& parts) {
    for (const Access& access : parent) {
      if (access.length % factor != 0) return false;
    }
    parts.assign(factor, parent);
    for (std::uint32_t r = 0; r < factor; ++r) {
      for (Access& access : parts[r]) {
        access.length /= factor;
        access.offset += static_cast<std::uint64_t>(r) * access.length;
      }
    }
    return true;
  };
  return recipe;
}

core::FuseRecipe shared_output_fuse(TaskTypeId fused_type) {
  core::FuseRecipe recipe;
  recipe.fused_type = fused_type;
  recipe.window = 4;
  recipe.can_fuse = [](const AccessList& last, const AccessList& next) {
    return last.back().region == next.back().region;
  };
  recipe.fuse = [](const std::vector<AccessList>& lists) {
    AccessList fused;
    for (const AccessList& list : lists) fused.push_back(list.front());
    fused.push_back(lists.front().back());
    return fused;
  };
  return recipe;
}

TEST(GranularityStress, ConcurrentSplitAndFuseReconcileExactly) {
  constexpr int kClients = 4;
  constexpr int kGraphsPerClient = 25;
  constexpr std::size_t kFinePerGraph = 4;
  constexpr std::size_t kCoarsePerGraph = 2;
  constexpr std::size_t kTasksPerGraph = kFinePerGraph + kCoarsePerGraph;

  const Machine machine = make_smp_machine(4);
  VersaServiceConfig config;
  config.runtime.backend = Backend::kThreads;
  config.runtime.scheduler = "versioning";
  config.runtime.hints_load_path = write_hints();
  ASSERT_TRUE(
      core::parse_granularity("auto", config.runtime.granularity));
  VersaService svc(machine, config);
  Runtime& rt = svc.runtime();

  std::atomic<std::uint64_t> executed{0};
  auto body = [&executed](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  };
  const TaskTypeId split_t = rt.declare_task("split_t");
  const TaskTypeId split_child = rt.declare_task("split_child");
  const TaskTypeId fuse_t = rt.declare_task("fuse_t");
  const TaskTypeId fuse_batch = rt.declare_task("fuse_batch");
  const TaskTypeId tail_t = rt.declare_task("tail_t");
  for (TaskTypeId type : {split_t, split_child, fuse_t, fuse_batch, tail_t}) {
    rt.add_version(type, DeviceKind::kSmp, "smp", body);
  }
  rt.set_split_recipe(split_t, chunk_recipe(split_child));
  rt.set_fuse_recipe(fuse_t, shared_output_fuse(fuse_batch));
  rt.set_fuse_recipe(tail_t, shared_output_fuse(fuse_batch));

  // Per graph: four fine siblings sharing one output region (fusable in
  // windows when submissions of the same graph land back to back), then
  // two coarse inout generations over one big region (always split; the
  // second generation's children chain onto the first's byte ranges).
  GraphSpec spec;
  spec.regions.push_back({"c", kFineBytes});
  for (std::size_t i = 0; i < kFinePerGraph; ++i) {
    spec.regions.push_back({"a" + std::to_string(i), kFineBytes});
  }
  spec.regions.push_back({"big", kCoarseBytes});
  for (std::size_t i = 0; i < kFinePerGraph; ++i) {
    TaskSpec task;
    task.type = fuse_t;
    task.accesses.push_back({1 + i, AccessMode::kIn});
    task.accesses.push_back({0, AccessMode::kInOut});
    spec.tasks.push_back(task);
  }
  for (std::size_t i = 0; i < kCoarsePerGraph; ++i) {
    TaskSpec task;
    task.type = split_t;
    task.accesses.push_back({1 + kFinePerGraph, AccessMode::kInOut});
    spec.tasks.push_back(task);
  }

  std::vector<Session> sessions;
  sessions.push_back(svc.open_session("left", {}));
  sessions.push_back(svc.open_session("right", {}));

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    Session session = sessions[static_cast<std::size_t>(c % 2)];
    clients.emplace_back([&spec, session]() mutable {
      for (int g = 0; g < kGraphsPerClient; ++g) {
        const SubmitResult result = session.submit(spec);
        ASSERT_TRUE(result.admitted()) << result.rejected.detail;
        session.wait(result.graph);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // Exact reconciliation per tenant, with re-tiling active throughout.
  for (std::size_t s = 0; s < sessions.size(); ++s) {
    const TenantStats stats = sessions[s].stats();
    EXPECT_EQ(stats.admitted_graphs,
              static_cast<std::uint64_t>(kClients / 2) * kGraphsPerClient);
    EXPECT_EQ(stats.rejected_graphs, 0u);
    EXPECT_EQ(stats.completed_graphs, stats.admitted_graphs);
    EXPECT_EQ(stats.completed_tasks, stats.admitted_graphs * kTasksPerGraph);
    EXPECT_EQ(stats.in_flight_tasks, 0u);
    EXPECT_EQ(stats.in_flight_bytes, 0u);
  }
  EXPECT_GT(executed.load(), 0u);

  // The coarse type's primed mean dominates any spread the tiny bodies
  // can build up: every coarse submission must have split.
  const core::GranularityController* controller = rt.granularity();
  ASSERT_NE(controller, nullptr);
  EXPECT_EQ(controller->stats().splits,
            static_cast<std::uint64_t>(kClients) * kGraphsPerClient *
                kCoarsePerGraph);
  EXPECT_GE(controller->stats().children_created,
            2 * controller->stats().splits);

  // Deterministic tail: with the storm quiet, four compatible siblings of
  // a type whose profile never drifted (tail_t was not used above) fill
  // one window to its limit and flush as a single fused task.
  const std::uint64_t fuses_before = controller->stats().fuses;
  GraphSpec tail;
  tail.regions.push_back({"c", kFineBytes});
  for (std::size_t i = 0; i < 4; ++i) {
    tail.regions.push_back({"a" + std::to_string(i), kFineBytes});
    TaskSpec task;
    task.type = tail_t;
    task.accesses.push_back({1 + i, AccessMode::kIn});
    task.accesses.push_back({0, AccessMode::kInOut});
    tail.tasks.push_back(task);
  }
  const SubmitResult result = sessions[0].submit(tail);
  ASSERT_TRUE(result.admitted()) << result.rejected.detail;
  sessions[0].wait(result.graph);
  EXPECT_EQ(controller->stats().fuses, fuses_before + 1);
  EXPECT_GE(controller->stats().tasks_fused, 3u);

  // Quiescent reads of the per-group breakdown must see every decision.
  std::uint64_t breakdown_splits = 0;
  for (const core::GranularityController::GroupRow& row :
       controller->breakdown()) {
    breakdown_splits += row.splits;
  }
  EXPECT_EQ(breakdown_splits, controller->stats().splits);
}

}  // namespace
}  // namespace versa
