// Miscellaneous runtime-surface tests: empty barriers, config validation,
// zero-work queries, and abort paths for API misuse.
#include <gtest/gtest.h>

#include "apps/cholesky.h"
#include "apps/pbpi.h"
#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(RuntimeMisc, TaskwaitWithNoTasksIsImmediate) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  rt.taskwait();
  rt.taskwait_noflush();
  EXPECT_DOUBLE_EQ(rt.elapsed(), 0.0);
  EXPECT_EQ(rt.run_stats().total_tasks(), 0u);
}

TEST(RuntimeMisc, ThreadBackendEmptyTaskwait) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  Runtime rt(machine, config);
  rt.taskwait();  // must not hang
  SUCCEED();
}

TEST(RuntimeMisc, TaskwaitOnUnwrittenRegionReturnsImmediately) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  Runtime rt(machine, config);
  const RegionId r = rt.register_data("r", 64);
  rt.taskwait_on(r);  // no writer submitted
  SUCCEED();
}

TEST(RuntimeMisc, TaskwaitOnWaitsForTheLatestWriterOnly) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "dep-aware";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId fast = rt.register_data("fast", 64);
  const RegionId slow = rt.register_data("slow", 64);
  rt.submit(t, {Access::inout(fast)});
  // A long independent chain on another region.
  for (int i = 0; i < 20; ++i) {
    rt.submit(t, {Access::inout(slow)});
  }
  rt.taskwait_on(fast);
  // The fast writer is done; the slow chain need not be.
  EXPECT_EQ(rt.task_graph().task(0).state, TaskState::kFinished);
  EXPECT_FALSE(rt.task_graph().all_finished());
  rt.taskwait();
  EXPECT_TRUE(rt.task_graph().all_finished());
}

TEST(RuntimeMiscDeath, UnknownSchedulerAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.scheduler = "definitely-not-a-scheduler";
  EXPECT_DEATH({ Runtime rt(machine, config); }, "unknown scheduler");
}

TEST(RuntimeMiscDeath, ZeroSizedRegionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  EXPECT_DEATH(
      {
        Runtime rt(machine, config);
        rt.register_data("empty", 0);
      },
      "zero-sized region");
}

TEST(RuntimeMiscDeath, OutOfRangeAccessAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  EXPECT_DEATH(
      {
        Runtime rt(machine, config);
        const TaskTypeId t = rt.declare_task("t");
        rt.add_version(t, DeviceKind::kSmp, "v");
        const RegionId r = rt.register_data("r", 64);
        rt.submit(t, {Access::in_range(r, 32, 64)});  // exceeds region
      },
      "exceeds region");
}

TEST(RuntimeMisc, ConfigAccessorsReflectInputs) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "affinity";
  config.profile.lambda = 9;
  Runtime rt(machine, config);
  EXPECT_EQ(rt.config().scheduler, "affinity");
  EXPECT_EQ(rt.config().profile.lambda, 9u);
  EXPECT_STREQ(rt.scheduler().name(), "affinity");
  EXPECT_EQ(&rt.machine(), &machine);
}

TEST(RuntimeMisc, VariantNamesAreStable) {
  EXPECT_STREQ(apps::to_string(apps::PotrfVariant::kSmp), "potrf-smp");
  EXPECT_STREQ(apps::to_string(apps::PotrfVariant::kGpu), "potrf-gpu");
  EXPECT_STREQ(apps::to_string(apps::PotrfVariant::kHybrid), "potrf-hyb");
  EXPECT_STREQ(apps::to_string(apps::PbpiVariant::kSmp), "pbpi-smp");
  EXPECT_STREQ(apps::to_string(apps::PbpiVariant::kGpu), "pbpi-gpu");
  EXPECT_STREQ(apps::to_string(apps::PbpiVariant::kHybrid), "pbpi-hyb");
}

}  // namespace
}  // namespace versa
