// Mutation-property suite for the dependence-spec sanitizer (DESIGN.md
// §12): over random correct programs the sanitizer must stay silent, and
// after mutating one declaration — dropping a declared access outright or
// shrinking its byte range — it must flag the program, on both backends.
//
// Every task body witnesses its ORIGINAL spans via touch_bytes (not via
// argument indices, which would shrink along with a mutated declaration),
// so the witness models what the code "actually does" while the mutation
// models a stale or typo'd pragma: exactly the bug class the checker
// exists for. Detection is guaranteed by construction — the generator
// gives each task at most one clause per region, so a dropped clause
// leaves its whole span undeclared and a shrunk clause leaves the tail
// undeclared, and either way the unchanged witness walks out of spec.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sanitizer/sanitizer.h"

namespace versa {
namespace {

constexpr std::uint64_t kRegionBytes = 4096;
constexpr std::uint64_t kAlign = 512;

struct ProgramTask {
  AccessList accesses;  ///< declared clauses; regions are indices
};

/// Random program: each task touches 1..3 distinct regions with random
/// aligned sub-ranges and random in/out/inout modes (same shape as the
/// granularity dependence property suite).
std::vector<ProgramTask> random_program(Rng& rng, std::size_t tasks,
                                        std::size_t regions) {
  std::vector<ProgramTask> program(tasks);
  for (ProgramTask& task : program) {
    const std::size_t clauses = 1 + rng.next_below(3);
    std::vector<RegionId> picked;
    while (picked.size() < clauses) {
      const RegionId r = static_cast<RegionId>(rng.next_below(regions));
      bool seen = false;
      for (RegionId p : picked) seen |= (p == r);
      if (!seen) picked.push_back(r);
    }
    for (RegionId region : picked) {
      const std::uint64_t slots = kRegionBytes / kAlign;
      const std::uint64_t offset = rng.next_below(slots) * kAlign;
      const std::uint64_t length =
          (1 + rng.next_below(slots - offset / kAlign)) * kAlign;
      Access access;
      access.region = region;
      access.offset = offset;
      access.length = length;
      const std::uint64_t mode = rng.next_below(4);
      access.mode = mode == 0   ? AccessMode::kIn
                    : mode == 1 ? AccessMode::kOut
                                : AccessMode::kInOut;
      task.accesses.push_back(access);
    }
  }
  return program;
}

enum class Mutation { kNone, kDropClause, kShrinkClause };

/// Pick a mutable (task, clause) target: any clause works for both
/// mutation kinds except that a task's only clause cannot be dropped
/// (submissions keep at least one access) and single-slot clauses cannot
/// shrink. Deterministic given the rng state.
bool pick_target(Rng& rng, const std::vector<ProgramTask>& program,
                 Mutation kind, std::size_t& task, std::size_t& clause) {
  for (int attempt = 0; attempt < 256; ++attempt) {
    task = rng.next_below(program.size());
    const AccessList& accesses = program[task].accesses;
    clause = rng.next_below(accesses.size());
    if (kind == Mutation::kDropClause && accesses.size() >= 2) return true;
    if (kind == Mutation::kShrinkClause &&
        accesses[clause].length > kAlign) {
      return true;
    }
  }
  return false;
}

/// Run `program` with per-task declarations possibly mutated; bodies
/// always witness the original spans. Returns the sanitizer error count.
std::uint64_t run_program(Backend backend,
                          const std::vector<ProgramTask>& program,
                          Mutation kind, std::size_t mutated_task,
                          std::size_t mutated_clause, std::string& report) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = backend;
  config.scheduler = "fifo";
  config.sanitize.mode = sanitize::SanitizeMode::kRace;
  Runtime rt(machine, config);

  std::vector<RegionId> ids;
  for (std::size_t r = 0; r < 4; ++r) {
    ids.push_back(rt.register_data("r" + std::to_string(r), kRegionBytes));
  }

  for (std::size_t i = 0; i < program.size(); ++i) {
    // One type per program task so each body can carry that task's
    // original witness plan.
    const TaskTypeId type = rt.declare_task("t" + std::to_string(i));
    std::vector<WitnessSpan> plan;
    for (const Access& access : program[i].accesses) {
      plan.push_back(WitnessSpan{ids[access.region], access.mode,
                                 access.offset, access.length});
    }
    rt.add_version(type, DeviceKind::kSmp, "smp",
                   [plan](TaskContext& ctx) {
                     AccessWitness witness(ctx);
                     for (const WitnessSpan& span : plan) {
                       witness.touch_bytes(span.region, span.mode,
                                           span.offset, span.length);
                     }
                   });

    AccessList declared = program[i].accesses;
    if (i == mutated_task) {
      if (kind == Mutation::kDropClause) {
        declared.erase(declared.begin() +
                       static_cast<std::ptrdiff_t>(mutated_clause));
      } else if (kind == Mutation::kShrinkClause) {
        declared[mutated_clause].length -= kAlign;
      }
    }
    for (Access& access : declared) access.region = ids[access.region];
    rt.submit(type, declared);
  }
  rt.taskwait();

  std::ostringstream os;
  rt.sanitizer()->render(os);
  report = os.str();
  return rt.sanitizer()->error_count();
}

class SanitizerMutationTest : public ::testing::TestWithParam<Backend> {};

TEST_P(SanitizerMutationTest, CorrectProgramsAreClean) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x5eedULL);
    const std::size_t tasks = 8 + rng.next_below(15);
    const std::vector<ProgramTask> program = random_program(rng, tasks, 4);
    std::string report;
    const std::uint64_t errors = run_program(
        GetParam(), program, Mutation::kNone, tasks, 0, report);
    EXPECT_EQ(errors, 0u) << report;
  }
}

TEST_P(SanitizerMutationTest, EveryMutantIsFlagged) {
  std::uint64_t detected = 0;
  std::uint64_t total = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed * 0x5eedULL);
    const std::size_t tasks = 8 + rng.next_below(15);
    const std::vector<ProgramTask> program = random_program(rng, tasks, 4);
    const Mutation kind =
        seed % 2 == 0 ? Mutation::kDropClause : Mutation::kShrinkClause;
    std::size_t task = 0;
    std::size_t clause = 0;
    // Fall back to the other mutation kind if this program offers no
    // valid target for the preferred one (never happens in practice at
    // these sizes, but keeps the property total).
    Mutation chosen = kind;
    if (!pick_target(rng, program, chosen, task, clause)) {
      chosen = kind == Mutation::kDropClause ? Mutation::kShrinkClause
                                             : Mutation::kDropClause;
      ASSERT_TRUE(pick_target(rng, program, chosen, task, clause));
    }
    std::string report;
    const std::uint64_t errors =
        run_program(GetParam(), program, chosen, task, clause, report);
    ++total;
    if (errors > 0) ++detected;
    EXPECT_GT(errors, 0u)
        << "undetected mutant (kind="
        << (chosen == Mutation::kDropClause ? "drop" : "shrink")
        << ", task=" << task << ", clause=" << clause << ")\n"
        << report;
  }
  // 100% mutation detection is the acceptance bar, not a ratio.
  EXPECT_EQ(detected, total);
}

INSTANTIATE_TEST_SUITE_P(Backends, SanitizerMutationTest,
                         ::testing::Values(Backend::kSim, Backend::kThreads),
                         [](const auto& info) {
                           return info.param == Backend::kSim ? "sim"
                                                              : "threads";
                         });

}  // namespace
}  // namespace versa
