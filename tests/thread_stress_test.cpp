// Concurrency stress for the ThreadExecutor lock split, written for the
// CI thread-sanitizer job: several producer threads submit through the
// runtime public API while worker threads pop and steal through the
// lock-free fast path (Scheduler::try_pop_queued). Beyond surviving TSan,
// every run asserts the completion counts and that the load account
// settled back to idle — a charge leaked by a racy pop/steal/settle
// interleaving shows up as a non-zero estimated_busy after the barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler.h"

namespace versa {
namespace {

struct StressOutcome {
  long executed = 0;
  std::uint64_t total_tasks = 0;
};

/// Drive `producers` external threads, each submitting `per_producer`
/// tasks, against a 4-worker SMP thread backend, then assert the runtime
/// and the scheduling core are fully drained.
void run_stress(const std::string& scheduler, int producers, int per_producer,
                bool independent_tasks) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = scheduler;
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("stress");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  // Chain mode: one region per producer, inout accesses serialize its
  // tasks into a chain — readiness trickles, so workers go idle and wake
  // repeatedly. Independent mode: one region per task — the whole burst
  // is ready at once, so queues fill and steals kick in.
  std::vector<RegionId> chain_regions;
  if (!independent_tasks) {
    for (int p = 0; p < producers; ++p) {
      chain_regions.push_back(
          rt.register_data("chain" + std::to_string(p), 64));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        if (independent_tasks) {
          const RegionId r = rt.register_data(
              "r" + std::to_string(p) + "_" + std::to_string(i), 64);
          // Vary priority so the concurrent priority insertion runs too.
          rt.submit(type, {Access::inout(r)}, "", i % 3);
        } else {
          rt.submit(type, {Access::inout(chain_regions[
              static_cast<std::size_t>(p)])});
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rt.taskwait();

  const long expected = static_cast<long>(producers) * per_producer;
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(rt.run_stats().total_tasks(),
            static_cast<std::uint64_t>(expected));

  // Quiescent consistency: nothing pending, queues empty, and the load
  // account released every charge it ever took. fifo is not a
  // QueueScheduler (central deque under the runtime lock), so the
  // per-worker checks apply to the push-style policies only.
  EXPECT_FALSE(rt.scheduler().has_pending());
  const WorkerId workers = static_cast<WorkerId>(machine.worker_count());
  if (auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler())) {
    for (WorkerId w = 0; w < workers; ++w) {
      EXPECT_EQ(qs->queue_length(w), 0u) << "worker " << w;
      EXPECT_TRUE(qs->queued_tasks(w).empty()) << "worker " << w;
    }
  }
  for (WorkerId w = 0; w < workers; ++w) {
    EXPECT_DOUBLE_EQ(rt.scheduler().estimated_busy(w), 0.0) << "worker " << w;
  }
}

/// Combined submit-storm + completion-burst: each producer submits an
/// independent burst (queues fill, steals kick in) followed by a private
/// chain (readiness trickles, so completions keep re-pricing while later
/// submissions land). On top of the drain checks this asserts the PR-4
/// re-price coalescing invariant: completion records only *defer* price
/// updates, and every flush consumes at least one deferred request, so
/// flushes can never exceed requests.
void run_storm_burst(const std::string& scheduler) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = scheduler;
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("storm");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kProducers = 4;
  constexpr int kBurst = 24;
  constexpr int kChain = 16;
  std::vector<RegionId> chain_regions;
  for (int p = 0; p < kProducers; ++p) {
    chain_regions.push_back(rt.register_data("chain" + std::to_string(p), 64));
  }

  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kBurst; ++i) {
        const RegionId r = rt.register_data(
            "s" + std::to_string(p) + "_" + std::to_string(i), 64);
        rt.submit(type, {Access::inout(r)}, "", i % 3);
      }
      for (int i = 0; i < kChain; ++i) {
        rt.submit(type,
                  {Access::inout(chain_regions[static_cast<std::size_t>(p)])});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rt.taskwait();

  const long expected = kProducers * (kBurst + kChain);
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(rt.run_stats().total_tasks(),
            static_cast<std::uint64_t>(expected));
  EXPECT_FALSE(rt.scheduler().has_pending());

  auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler());
  ASSERT_NE(qs, nullptr);
  EXPECT_LE(qs->reprice_flushes(), qs->reprice_requests());
  const WorkerId workers = static_cast<WorkerId>(machine.worker_count());
  for (WorkerId w = 0; w < workers; ++w) {
    EXPECT_EQ(qs->queue_length(w), 0u) << "worker " << w;
    EXPECT_DOUBLE_EQ(rt.scheduler().estimated_busy(w), 0.0) << "worker " << w;
  }
}

TEST(ThreadStress, StormBurstAllBusyTrackingPolicies) {
  for (const char* policy : {"dep-aware", "affinity", "versioning",
                             "versioning-locality", "sufferage"}) {
    SCOPED_TRACE(policy);
    run_storm_burst(policy);
  }
}

TEST(ThreadStress, VersioningChainsTrickleReadiness) {
  run_stress("versioning", 4, 40, /*independent_tasks=*/false);
}

TEST(ThreadStress, VersioningIndependentBurst) {
  run_stress("versioning", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, DepAwareBurstExercisesStealing) {
  // dep-aware enables same-kind work stealing, so the burst drains through
  // both pop_front and steal_back concurrently.
  run_stress("dep-aware", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, AffinityBurstExercisesStealing) {
  run_stress("affinity", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, FifoFallbackPathStaysCorrect) {
  // fifo pops under the runtime lock through the base try_pop_queued
  // fallback: the split must leave the slow path just as correct.
  run_stress("fifo", 2, 30, /*independent_tasks=*/true);
}

TEST(ThreadStress, RepeatedRoundsReuseOneRuntime) {
  // Several submit/taskwait rounds against one runtime: wake epochs,
  // account state and queues must come back to idle every round.
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("round");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  const RegionId r = rt.register_data("r", 64);

  long expected = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          rt.submit(type, {Access::inout(r)});
        }
      });
    }
    for (auto& t : producers) {
      t.join();
    }
    expected += 2 * 10;
    rt.taskwait();
    ASSERT_EQ(executed.load(), expected) << "round " << round;
    ASSERT_FALSE(rt.scheduler().has_pending()) << "round " << round;
  }
}

}  // namespace
}  // namespace versa
