// Concurrency stress for the ThreadExecutor lock split, written for the
// CI thread-sanitizer job: several producer threads submit through the
// runtime public API while worker threads pop and steal through the
// lock-free fast path (Scheduler::try_pop_queued). Beyond surviving TSan,
// every run asserts the completion counts and that the load account
// settled back to idle — a charge leaked by a racy pop/steal/settle
// interleaving shows up as a non-zero estimated_busy after the barrier.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler.h"
#include "util/lock_order.h"

namespace versa {
namespace {

struct StressOutcome {
  long executed = 0;
  std::uint64_t total_tasks = 0;
};

/// Drive `producers` external threads, each submitting `per_producer`
/// tasks, against a 4-worker SMP thread backend, then assert the runtime
/// and the scheduling core are fully drained.
void run_stress(const std::string& scheduler, int producers, int per_producer,
                bool independent_tasks) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = scheduler;
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("stress");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  // Chain mode: one region per producer, inout accesses serialize its
  // tasks into a chain — readiness trickles, so workers go idle and wake
  // repeatedly. Independent mode: one region per task — the whole burst
  // is ready at once, so queues fill and steals kick in.
  std::vector<RegionId> chain_regions;
  if (!independent_tasks) {
    for (int p = 0; p < producers; ++p) {
      chain_regions.push_back(
          rt.register_data("chain" + std::to_string(p), 64));
    }
  }

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(producers));
  for (int p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        if (independent_tasks) {
          const RegionId r = rt.register_data(
              "r" + std::to_string(p) + "_" + std::to_string(i), 64);
          // Vary priority so the concurrent priority insertion runs too.
          rt.submit(type, {Access::inout(r)}, "", i % 3);
        } else {
          rt.submit(type, {Access::inout(chain_regions[
              static_cast<std::size_t>(p)])});
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rt.taskwait();

  const long expected = static_cast<long>(producers) * per_producer;
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(rt.run_stats().total_tasks(),
            static_cast<std::uint64_t>(expected));

  // Quiescent consistency: nothing pending, queues empty, and the load
  // account released every charge it ever took. fifo is not a
  // QueueScheduler (central deque under the runtime lock), so the
  // per-worker checks apply to the push-style policies only.
  EXPECT_FALSE(rt.scheduler().has_pending());
  const WorkerId workers = static_cast<WorkerId>(machine.worker_count());
  if (auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler())) {
    for (WorkerId w = 0; w < workers; ++w) {
      EXPECT_EQ(qs->queue_length(w), 0u) << "worker " << w;
      EXPECT_TRUE(qs->queued_tasks(w).empty()) << "worker " << w;
    }
  }
  for (WorkerId w = 0; w < workers; ++w) {
    EXPECT_DOUBLE_EQ(rt.scheduler().estimated_busy(w), 0.0) << "worker " << w;
  }
}

/// Combined submit-storm + completion-burst: each producer submits an
/// independent burst (queues fill, steals kick in) followed by a private
/// chain (readiness trickles, so completions keep re-pricing while later
/// submissions land). On top of the drain checks this asserts the PR-4
/// re-price coalescing invariant: completion records only *defer* price
/// updates, and every flush consumes at least one deferred request, so
/// flushes can never exceed requests.
void run_storm_burst(const std::string& scheduler) {
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = scheduler;
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("storm");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr int kProducers = 4;
  constexpr int kBurst = 24;
  constexpr int kChain = 16;
  std::vector<RegionId> chain_regions;
  for (int p = 0; p < kProducers; ++p) {
    chain_regions.push_back(rt.register_data("chain" + std::to_string(p), 64));
  }

  std::vector<std::thread> threads;
  threads.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kBurst; ++i) {
        const RegionId r = rt.register_data(
            "s" + std::to_string(p) + "_" + std::to_string(i), 64);
        rt.submit(type, {Access::inout(r)}, "", i % 3);
      }
      for (int i = 0; i < kChain; ++i) {
        rt.submit(type,
                  {Access::inout(chain_regions[static_cast<std::size_t>(p)])});
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  rt.taskwait();

  const long expected = kProducers * (kBurst + kChain);
  EXPECT_EQ(executed.load(), expected);
  EXPECT_EQ(rt.run_stats().total_tasks(),
            static_cast<std::uint64_t>(expected));
  EXPECT_FALSE(rt.scheduler().has_pending());

  auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler());
  ASSERT_NE(qs, nullptr);
  EXPECT_LE(qs->reprice_flushes(), qs->reprice_requests());
  const WorkerId workers = static_cast<WorkerId>(machine.worker_count());
  for (WorkerId w = 0; w < workers; ++w) {
    EXPECT_EQ(qs->queue_length(w), 0u) << "worker " << w;
    EXPECT_DOUBLE_EQ(rt.scheduler().estimated_busy(w), 0.0) << "worker " << w;
  }
}

TEST(ThreadStress, StormBurstAllBusyTrackingPolicies) {
  for (const char* policy : {"dep-aware", "affinity", "versioning",
                             "versioning-locality", "sufferage"}) {
    SCOPED_TRACE(policy);
    run_storm_burst(policy);
  }
}

TEST(ThreadStress, VersioningChainsTrickleReadiness) {
  run_stress("versioning", 4, 40, /*independent_tasks=*/false);
}

TEST(ThreadStress, VersioningIndependentBurst) {
  run_stress("versioning", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, DepAwareBurstExercisesStealing) {
  // dep-aware enables same-kind work stealing, so the burst drains through
  // both pop_front and steal_back concurrently.
  run_stress("dep-aware", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, AffinityBurstExercisesStealing) {
  run_stress("affinity", 4, 40, /*independent_tasks=*/true);
}

TEST(ThreadStress, FifoFallbackPathStaysCorrect) {
  // fifo pops under the runtime lock through the base try_pop_queued
  // fallback: the split must leave the slow path just as correct.
  run_stress("fifo", 2, 30, /*independent_tasks=*/true);
}

std::atomic<int> g_lock_order_violations{0};

void count_violation(const char* /*report*/) {
  g_lock_order_violations.fetch_add(1, std::memory_order_relaxed);
}

/// Prefetch storm on a heterogeneous node: SMP + GPU workers, so queued
/// tasks trigger the executor's prefetch-intent path and the directory
/// stages real cross-space transfers off the runtime lock, concurrently
/// with the executing workers' own acquires (the Task::acquired_space
/// CAS arbitration). Run with the lock-order checker enforced: any
/// acquisition inverting the documented ranks fails the test, TSan or no
/// TSan.
void run_prefetch_storm(const std::string& scheduler) {
  const bool was_enforced = lock_order::enforced();
  lock_order::ViolationHandler previous =
      lock_order::set_violation_handler(count_violation);
  g_lock_order_violations.store(0, std::memory_order_relaxed);
  lock_order::set_enforced(true);
  {
    const Machine machine = make_minotauro_node(2, 2);
    RuntimeConfig config;
    config.backend = Backend::kThreads;
    config.scheduler = scheduler;
    Runtime rt(machine, config);

    std::atomic<long> executed{0};
    const TaskTypeId type = rt.declare_task("prefetch_storm");
    // SMP version first = main version, so the baseline policies (which
    // ignore `implements`) stay runnable; the versioning family also
    // samples the CUDA version, spreading the storm across both memory
    // spaces and keeping the prefetch drain staging device copies.
    rt.add_version(type, DeviceKind::kSmp, "smp", [&](TaskContext&) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });
    rt.add_version(type, DeviceKind::kCuda, "cuda", [&](TaskContext&) {
      executed.fetch_add(1, std::memory_order_relaxed);
    });

    constexpr int kProducers = 3;
    constexpr int kPerProducer = 40;
    constexpr int kRegionsPerProducer = 4;
    std::vector<RegionId> regions;
    for (int p = 0; p < kProducers; ++p) {
      for (int r = 0; r < kRegionsPerProducer; ++r) {
        regions.push_back(rt.register_data(
            "s" + std::to_string(p) + "_" + std::to_string(r), 4096));
      }
    }

    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < kPerProducer; ++i) {
          // Rotate over the producer's regions: short dependence chains,
          // so readiness trickles and the prefetch buffer drains while
          // later placements are still being recorded.
          const std::size_t base =
              static_cast<std::size_t>(p) * kRegionsPerProducer;
          const RegionId rw = regions[base + static_cast<std::size_t>(
                                                 i % kRegionsPerProducer)];
          const RegionId ro = regions[base + static_cast<std::size_t>(
                                                 (i + 1) % kRegionsPerProducer)];
          rt.submit(type, {Access::inout(rw), Access::in(ro)}, "", i % 3);
        }
      });
    }
    for (auto& t : producers) {
      t.join();
    }
    rt.taskwait();

    const long expected = static_cast<long>(kProducers) * kPerProducer;
    EXPECT_EQ(executed.load(), expected);
    EXPECT_EQ(rt.run_stats().total_tasks(),
              static_cast<std::uint64_t>(expected));
    EXPECT_FALSE(rt.scheduler().has_pending());

    // Idle settle: queues drained, every charge released, and (taskwait
    // semantics) nothing dirty off-host once the flush accounting landed.
    const WorkerId workers = static_cast<WorkerId>(machine.worker_count());
    for (WorkerId w = 0; w < workers; ++w) {
      EXPECT_DOUBLE_EQ(rt.scheduler().estimated_busy(w), 0.0)
          << "worker " << w;
    }
    if (auto* qs = dynamic_cast<QueueScheduler*>(&rt.scheduler())) {
      for (WorkerId w = 0; w < workers; ++w) {
        EXPECT_EQ(qs->queue_length(w), 0u) << "worker " << w;
      }
      // The batched producer side actually batched: every ready wave
      // published its per-shard runs through end_batch, and coalescing
      // means strictly fewer submit-mutex round trips than placements.
      EXPECT_GT(qs->buffer_push_batches(), 0u);
      EXPECT_LE(qs->buffer_push_batches(),
                static_cast<std::uint64_t>(expected));
    }
    for (const RegionId region : regions) {
      EXPECT_EQ(rt.data_directory().dirty_space(region), kInvalidSpace);
    }
  }
  EXPECT_EQ(g_lock_order_violations.load(std::memory_order_relaxed), 0)
      << "lock-order violation under the " << scheduler << " prefetch storm";
  lock_order::set_violation_handler(previous);
  lock_order::set_enforced(was_enforced);
}

TEST(ThreadStress, PrefetchStormAllBusyTrackingPoliciesWithTransfers) {
  for (const char* policy : {"dep-aware", "affinity", "versioning",
                             "versioning-locality", "sufferage"}) {
    SCOPED_TRACE(policy);
    run_prefetch_storm(policy);
  }
}

TEST(ThreadStress, PrefetchEmitsTraceEventsAndBudgetReconciles) {
  // End-to-end check that the thread backend's prefetch path emits the v4
  // trace kinds: with the decision trace on and a tight in-flight budget,
  // cross-space traffic must record prefetch claims (placement-time or
  // dequeue-fallback) and/or stale resolutions, and every claimed intent
  // must be accounted exactly once (claims + stale == intents staged).
  const Machine machine = make_minotauro_node(2, 2);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  config.sched_trace = true;
  config.prefetch_budget = 64 * 1024;  // tight: forces the deferral path too
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("prefetch_trace");
  rt.add_version(type, DeviceKind::kSmp, "smp", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  rt.add_version(type, DeviceKind::kCuda, "cuda", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });

  std::vector<RegionId> regions;
  for (int r = 0; r < 8; ++r) {
    regions.push_back(rt.register_data("t" + std::to_string(r), 16 * 1024));
  }
  constexpr int kTasks = 160;
  for (int i = 0; i < kTasks; ++i) {
    const RegionId rw = regions[static_cast<std::size_t>(i) % regions.size()];
    const RegionId ro =
        regions[static_cast<std::size_t>(i + 3) % regions.size()];
    rt.submit(type, {Access::inout(rw), Access::in(ro)});
  }
  rt.taskwait();
  EXPECT_EQ(executed.load(), kTasks);

  std::uint64_t placed = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t stale = 0;
  for (const core::TraceEvent& e : rt.scheduler().decision_trace().events()) {
    switch (e.kind) {
      case core::TraceEventKind::kPrefetchPlaced:
        ++placed;
        break;
      case core::TraceEventKind::kPrefetchDequeue:
        ++dequeued;
        break;
      case core::TraceEventKind::kPrefetchStale:
        ++stale;
        break;
      default:
        break;
    }
  }
  // The storm crosses memory spaces, so the intent path must have fired
  // and resolved every intent exactly one way.
  EXPECT_GT(placed + dequeued + stale, 0u)
      << "no prefetch trace events recorded";
}

TEST(ThreadStress, RepeatedRoundsReuseOneRuntime) {
  // Several submit/taskwait rounds against one runtime: wake epochs,
  // account state and queues must come back to idle every round.
  const Machine machine = make_smp_machine(4);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "versioning";
  Runtime rt(machine, config);

  std::atomic<long> executed{0};
  const TaskTypeId type = rt.declare_task("round");
  rt.add_version(type, DeviceKind::kSmp, "v", [&](TaskContext&) {
    executed.fetch_add(1, std::memory_order_relaxed);
  });
  const RegionId r = rt.register_data("r", 64);

  long expected = 0;
  for (int round = 0; round < 5; ++round) {
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&] {
        for (int i = 0; i < 10; ++i) {
          rt.submit(type, {Access::inout(r)});
        }
      });
    }
    for (auto& t : producers) {
      t.join();
    }
    expected += 2 * 10;
    rt.taskwait();
    ASSERT_EQ(executed.load(), expected) << "round " << round;
    ASSERT_FALSE(rt.scheduler().has_pending()) << "round " << round;
  }
}

}  // namespace
}  // namespace versa
