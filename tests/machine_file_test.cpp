// Unit tests for machine description files: quantity/time parsing, the
// statement grammar, error reporting, and serialize/parse round-trips.
#include <gtest/gtest.h>

#include <fstream>

#include "machine/machine_file.h"
#include "machine/presets.h"

namespace versa {
namespace {

TEST(ParseQuantity, SuffixesAndBases) {
  EXPECT_DOUBLE_EQ(*parse_quantity("512", false), 512.0);
  EXPECT_DOUBLE_EQ(*parse_quantity("6G", false), 6.0 * 1024 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(*parse_quantity("6G", true), 6e9);
  EXPECT_DOUBLE_EQ(*parse_quantity("1.5M", true), 1.5e6);
  EXPECT_DOUBLE_EQ(*parse_quantity("2K", false), 2048.0);
  EXPECT_DOUBLE_EQ(*parse_quantity("1T", true), 1e12);
}

TEST(ParseQuantity, RejectsGarbage) {
  EXPECT_FALSE(parse_quantity("abc", false).has_value());
  EXPECT_FALSE(parse_quantity("3X", false).has_value());
  EXPECT_FALSE(parse_quantity("-1", false).has_value());
  EXPECT_FALSE(parse_quantity("", false).has_value());
}

TEST(ParseTime, Suffixes) {
  EXPECT_DOUBLE_EQ(*parse_time("2s"), 2.0);
  EXPECT_DOUBLE_EQ(*parse_time("2"), 2.0);
  EXPECT_DOUBLE_EQ(*parse_time("1.5ms"), 1.5e-3);
  EXPECT_DOUBLE_EQ(*parse_time("15us"), 15e-6);
  EXPECT_DOUBLE_EQ(*parse_time("3ns"), 3e-9);
  EXPECT_FALSE(parse_time("3h").has_value());
  EXPECT_FALSE(parse_time("oops").has_value());
}

constexpr const char* kNodeText = R"(# versa machine v1
host capacity 24G
space gpu-mem capacity 6G
device core0 kind smp space host peak 10.1G
device gpu0 kind cuda space gpu-mem peak 665G
worker core0 smp-0
worker gpu0
link host gpu-mem bandwidth 6G latency 15us
)";

TEST(MachineFile, ParsesFullNode) {
  const MachineParseResult result = parse_machine(kNodeText);
  ASSERT_TRUE(result.machine.has_value()) << result.error;
  const Machine& machine = *result.machine;
  EXPECT_EQ(machine.space_count(), 2u);
  EXPECT_EQ(machine.worker_count(), 2u);
  EXPECT_EQ(machine.count_workers(DeviceKind::kCuda), 1u);
  EXPECT_EQ(machine.space(kHostSpace).capacity, 24ull << 30);
  EXPECT_EQ(machine.space(1).capacity, 6ull << 30);
  EXPECT_EQ(machine.worker(0).name, "smp-0");
  const LinkDesc* link = machine.interconnect().find(0, 1);
  ASSERT_NE(link, nullptr);
  EXPECT_DOUBLE_EQ(link->bandwidth, 6e9);
  EXPECT_DOUBLE_EQ(link->latency, 15e-6);
  // Bidirectional.
  EXPECT_NE(machine.interconnect().find(1, 0), nullptr);
}

TEST(MachineFile, CommentsAndBlankLinesIgnored) {
  const auto result = parse_machine(
      "# comment\n\n   \ndevice c kind smp space host peak 1G\nworker c\n");
  EXPECT_TRUE(result.machine.has_value()) << result.error;
}

TEST(MachineFile, ErrorsCarryLineNumbers) {
  const auto result =
      parse_machine("host capacity 24G\nspace g capacity oops\n");
  EXPECT_FALSE(result.machine.has_value());
  EXPECT_NE(result.error.find("line 2"), std::string::npos);
}

TEST(MachineFile, UnknownStatementFails) {
  const auto result = parse_machine("frobnicate all the things\n");
  EXPECT_FALSE(result.machine.has_value());
  EXPECT_NE(result.error.find("unknown statement"), std::string::npos);
}

TEST(MachineFile, UnknownSpaceInDeviceFails) {
  const auto result =
      parse_machine("device g kind cuda space nowhere peak 1G\n");
  EXPECT_FALSE(result.machine.has_value());
  EXPECT_NE(result.error.find("unknown space"), std::string::npos);
}

TEST(MachineFile, UnknownDeviceInWorkerFails) {
  const auto result = parse_machine("worker ghost\n");
  EXPECT_FALSE(result.machine.has_value());
}

TEST(MachineFile, DuplicateNamesFail) {
  EXPECT_FALSE(parse_machine("space g capacity 1G\nspace g capacity 1G\n"
                             "device c kind smp space host peak 1G\nworker c\n")
                   .machine.has_value());
  EXPECT_FALSE(parse_machine("device c kind smp space host peak 1G\n"
                             "device c kind smp space host peak 1G\nworker c\n")
                   .machine.has_value());
}

TEST(MachineFile, NoWorkersFails) {
  const auto result = parse_machine("device c kind smp space host peak 1G\n");
  EXPECT_FALSE(result.machine.has_value());
  EXPECT_NE(result.error.find("no workers"), std::string::npos);
}

TEST(MachineFile, BadDeviceKindFails) {
  const auto result = parse_machine("device f kind fpga space host peak 1G\n");
  EXPECT_FALSE(result.machine.has_value());
  EXPECT_NE(result.error.find("unknown device kind"), std::string::npos);
}

TEST(MachineFile, SerializeParseRoundTrip) {
  const Machine original = make_minotauro_node(3, 2);
  const std::string text = serialize_machine(original);
  const MachineParseResult result = parse_machine(text);
  ASSERT_TRUE(result.machine.has_value()) << result.error;
  const Machine& restored = *result.machine;
  EXPECT_EQ(restored.worker_count(), original.worker_count());
  EXPECT_EQ(restored.space_count(), original.space_count());
  EXPECT_EQ(restored.count_workers(DeviceKind::kCuda), 2u);
  EXPECT_EQ(restored.interconnect().link_count(),
            original.interconnect().link_count());
  for (SpaceId s = 0; s < original.space_count(); ++s) {
    EXPECT_EQ(restored.space(s).capacity, original.space(s).capacity) << s;
  }
}

TEST(MachineFile, ShippedDescriptionsLoad) {
  // The sample machine files in machines/ must stay parseable.
  const std::string root = VERSA_SOURCE_DIR;
  const auto node = load_machine(root + "/machines/minotauro-node.txt");
  ASSERT_TRUE(node.machine.has_value()) << node.error;
  EXPECT_EQ(node.machine->worker_count(), 10u);
  EXPECT_EQ(node.machine->count_workers(DeviceKind::kCuda), 2u);

  const auto asym = load_machine(root + "/machines/asymmetric-gpus.txt");
  ASSERT_TRUE(asym.machine.has_value()) << asym.error;
  EXPECT_EQ(asym.machine->count_workers(DeviceKind::kCuda), 2u);
  // The two GPUs really are asymmetric.
  double peaks[2] = {0, 0};
  int g = 0;
  for (const auto& device : asym.machine->devices()) {
    if (device.kind == DeviceKind::kCuda) peaks[g++] = device.peak_flops;
  }
  EXPECT_NE(peaks[0], peaks[1]);
}

TEST(MachineFile, LoadFromDiskAndMissingFile) {
  const std::string path = testing::TempDir() + "/versa_machine.txt";
  {
    std::ofstream out(path);
    out << kNodeText;
  }
  EXPECT_TRUE(load_machine(path).machine.has_value());
  const auto missing = load_machine("/no/such/file");
  EXPECT_FALSE(missing.machine.has_value());
  EXPECT_NE(missing.error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace versa
