// Integration tests for the runtime on the discrete-event backend:
// dependence-ordered execution in virtual time, overlap/prefetch effects,
// determinism, taskwait semantics, and multi-scheduler smoke coverage.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"
#include "sched/scheduler_factory.h"

namespace versa {
namespace {

RuntimeConfig sim_config(const std::string& scheduler = "versioning") {
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = scheduler;
  config.noise.kind = sim::NoiseKind::kNone;  // deterministic durations
  return config;
}

TEST(RuntimeSim, SingleTaskRunsForItsModelledDuration) {
  const Machine machine = make_smp_machine(1);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(5e-3));
  const RegionId r = rt.register_data("r", 100);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_NEAR(rt.elapsed(), 5e-3, 1e-9);
  EXPECT_EQ(rt.run_stats().total_tasks(), 1u);
}

TEST(RuntimeSim, ChainSerializesInVirtualTime) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 100);
  for (int i = 0; i < 10; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  // inout chain: no parallelism despite 4 workers.
  EXPECT_NEAR(rt.elapsed(), 10e-3, 1e-9);
}

TEST(RuntimeSim, IndependentTasksRunInParallel) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  std::vector<RegionId> regions;
  for (int i = 0; i < 8; ++i) {
    regions.push_back(rt.register_data("r" + std::to_string(i), 100));
    rt.submit(t, {Access::inout(regions.back())});
  }
  rt.taskwait();
  // 8 tasks, 4 workers, 1 ms each -> 2 ms.
  EXPECT_NEAR(rt.elapsed(), 2e-3, 1e-9);
}

TEST(RuntimeSim, DependenceOrderIsRespectedInTimestamps) {
  const Machine machine = make_smp_machine(4);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId a = rt.register_data("a", 100);
  const RegionId b = rt.register_data("b", 100);
  const TaskId writer = rt.submit(t, {Access::out(a)});
  const TaskId reader1 = rt.submit(t, {Access::in(a), Access::out(b)});
  const TaskId reader2 = rt.submit(t, {Access::in(a), Access::in(b)});
  rt.taskwait();
  const TaskGraph& graph = rt.task_graph();
  EXPECT_LE(graph.task(writer).finish_time, graph.task(reader1).start_time);
  EXPECT_LE(graph.task(reader1).finish_time, graph.task(reader2).start_time);
}

TEST(RuntimeSim, GpuTaskPaysTransferCosts) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config("fifo"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  // 6 MB in -> 1 ms transfer at 6 GB/s, then 1 ms compute, then flush out.
  const RegionId r = rt.register_data("r", 6'000'000);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_GT(rt.elapsed(), 2e-3);
  EXPECT_EQ(rt.transfer_stats().input_bytes, 6'000'000u);
  EXPECT_EQ(rt.transfer_stats().output_bytes, 6'000'000u);  // taskwait flush
}

TEST(RuntimeSim, NoflushSkipsTheFlushTraffic) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config("fifo"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 6'000'000);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait_noflush();
  EXPECT_EQ(rt.transfer_stats().output_bytes, 0u);
}

TEST(RuntimeSim, TaskwaitOnFlushesOnlyThatRegion) {
  const Machine machine = make_minotauro_node(1, 1);
  Runtime rt(machine, sim_config("fifo"));
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId a = rt.register_data("a", 1'000'000);
  const RegionId b = rt.register_data("b", 2'000'000);
  rt.submit(t, {Access::inout(a)});
  rt.submit(t, {Access::inout(b)});
  rt.taskwait_on(a);
  EXPECT_EQ(rt.transfer_stats().output_bytes, 1'000'000u);
  EXPECT_TRUE(rt.data_directory().is_valid_in(a, kHostSpace));
  rt.taskwait();
  EXPECT_EQ(rt.transfer_stats().output_bytes, 3'000'000u);
}

TEST(RuntimeSim, PrefetchOverlapShortensMakespan) {
  // Needs a push-style scheduler: pull policies (fifo) hand tasks out only
  // when a worker idles, so there is no assignment window to prefetch in.
  auto run = [&](bool prefetch) {
    const Machine machine = make_minotauro_node(1, 1);
    RuntimeConfig config = sim_config("affinity");
    config.prefetch = prefetch;
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "v", nullptr,
                   make_constant_cost(1e-3));
    // Distinct 6 MB inputs: with prefetch the next task's copy overlaps
    // the current task's compute.
    for (int i = 0; i < 8; ++i) {
      const RegionId r =
          rt.register_data("r" + std::to_string(i), 6'000'000);
      rt.submit(t, {Access::in(r)});
    }
    rt.taskwait_noflush();
    return rt.elapsed();
  };
  const Time with_prefetch = run(true);
  const Time without_prefetch = run(false);
  EXPECT_LT(with_prefetch, without_prefetch);
  // Perfect overlap: 8 transfers of ~1 ms pipelined with 1 ms computes.
  EXPECT_NEAR(with_prefetch, 9e-3, 1e-3);
  EXPECT_NEAR(without_prefetch, 16e-3, 1e-3);
}

TEST(RuntimeSim, SameSeedIsBitIdentical) {
  auto run = [&](std::uint64_t seed) {
    const Machine machine = make_minotauro_node(2, 1);
    RuntimeConfig config = sim_config();
    config.noise.kind = sim::NoiseKind::kLognormal;
    config.seed = seed;
    Runtime rt(machine, config);
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(5e-3));
    const RegionId r = rt.register_data("r", 1000);
    for (int i = 0; i < 50; ++i) {
      rt.submit(t, {Access::in(r)});
    }
    rt.taskwait();
    return rt.elapsed();
  };
  EXPECT_DOUBLE_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST(RuntimeSim, EverySchedulerCompletesADiamondGraph) {
  for (const std::string& name : scheduler_names()) {
    const Machine machine = make_minotauro_node(2, 2);
    Runtime rt(machine, sim_config(name));
    const TaskTypeId t = rt.declare_task("t");
    rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
    rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(2e-3));
    const RegionId a = rt.register_data("a", 1000);
    const RegionId b = rt.register_data("b", 1000);
    const RegionId c = rt.register_data("c", 1000);
    rt.submit(t, {Access::out(a)});
    rt.submit(t, {Access::in(a), Access::out(b)});
    rt.submit(t, {Access::in(a), Access::out(c)});
    rt.submit(t, {Access::in(b), Access::in(c)});
    rt.taskwait();
    EXPECT_EQ(rt.run_stats().total_tasks(), 4u) << name;
    EXPECT_GT(rt.elapsed(), 0.0) << name;
  }
}

TEST(RuntimeSim, SecondWaveAfterTaskwait) {
  const Machine machine = make_smp_machine(2);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r = rt.register_data("r", 100);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  const Time first = rt.elapsed();
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_GT(rt.elapsed(), first);
  EXPECT_EQ(rt.run_stats().total_tasks(), 2u);
}

TEST(RuntimeSim, VersioningUsesBothDeviceKindsUnderLoad) {
  const Machine machine = make_minotauro_node(4, 1);
  RuntimeConfig config = sim_config("versioning");
  config.profile.lambda = 2;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  const VersionId gpu =
      rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  const VersionId smp = rt.add_version(t, DeviceKind::kSmp, "c", nullptr,
                                       make_constant_cost(10e-3));
  // Ten independent chains of ten: readiness trickles in as tasks finish,
  // so the reliable phase (not the round-robin learning phase) places the
  // bulk of the work.
  for (int chain = 0; chain < 10; ++chain) {
    const RegionId r = rt.register_data("r" + std::to_string(chain), 1000);
    for (int i = 0; i < 10; ++i) {
      rt.submit(t, {Access::inout(r)});
    }
  }
  rt.taskwait();
  EXPECT_GT(rt.run_stats().count(gpu), 0u);
  EXPECT_GT(rt.run_stats().count(smp), 0u);
  EXPECT_EQ(rt.run_stats().count(gpu) + rt.run_stats().count(smp), 100u);
  // The GPU version is 10x faster and there is only one GPU queue; it
  // should still carry most of the work.
  EXPECT_GT(rt.run_stats().count(gpu), rt.run_stats().count(smp));
}

TEST(RuntimeSim, TimestampsAreConsistent) {
  const Machine machine = make_minotauro_node(2, 1);
  Runtime rt(machine, sim_config());
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "g", nullptr, make_constant_cost(1e-3));
  rt.add_version(t, DeviceKind::kSmp, "c", nullptr, make_constant_cost(2e-3));
  const RegionId r = rt.register_data("r", 10'000'000);
  for (int i = 0; i < 20; ++i) {
    rt.submit(t, {Access::in(r)});
  }
  rt.taskwait();
  for (const Task& task : rt.task_graph().tasks()) {
    EXPECT_EQ(task.state, TaskState::kFinished);
    EXPECT_LE(task.submit_time, task.ready_time);
    EXPECT_LE(task.ready_time, task.start_time + 1e-12);
    EXPECT_LT(task.start_time, task.finish_time);
    EXPECT_NEAR(task.finish_time - task.start_time, task.measured_duration,
                1e-12);
  }
}

TEST(RuntimeSimDeath, TaskWithNoRunnableVersionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const Machine machine = make_smp_machine(1);
  EXPECT_DEATH(
      {
        Runtime rt(machine, sim_config("fifo"));
        const TaskTypeId t = rt.declare_task("t");
        rt.add_version(t, DeviceKind::kCuda, "gpu-only", nullptr,
                       make_constant_cost(1e-3));
        const RegionId r = rt.register_data("r", 100);
        rt.submit(t, {Access::in(r)});
        rt.taskwait();
      },
      "deadlock|no compatible worker|no runnable version");
}

TEST(EnvOverrides, ApplyFromEnvironment) {
  setenv("VERSA_SCHEDULER", "affinity", 1);
  setenv("VERSA_LAMBDA", "7", 1);
  setenv("VERSA_PREFETCH", "0", 1);
  setenv("VERSA_SEED", "99", 1);
  RuntimeConfig config = apply_env_overrides({});
  EXPECT_EQ(config.scheduler, "affinity");
  EXPECT_EQ(config.profile.lambda, 7u);
  EXPECT_FALSE(config.prefetch);
  EXPECT_EQ(config.seed, 99u);
  unsetenv("VERSA_SCHEDULER");
  unsetenv("VERSA_LAMBDA");
  unsetenv("VERSA_PREFETCH");
  unsetenv("VERSA_SEED");

  config = apply_env_overrides({});
  EXPECT_EQ(config.scheduler, "versioning");
}

}  // namespace
}  // namespace versa
