// Reproduction regression tests: the qualitative claims of the paper's
// evaluation (§V) that EXPERIMENTS.md documents, asserted as invariants so
// refactors cannot silently break the reproduction. These run the same
// harness code as the bench/ binaries (bench_util) at the paper's scales.
#include <gtest/gtest.h>

#include "bench_util.h"

namespace versa::bench {
namespace {

RunOptions options_for(std::size_t smp, std::size_t gpus,
                       const std::string& scheduler) {
  RunOptions options;
  options.smp = smp;
  options.gpus = gpus;
  options.scheduler = scheduler;
  return options;
}

// --- Figure 6: matmul ---------------------------------------------------

TEST(PaperShape, MatmulGpuScalesLinearlyWithGpus) {
  const AppResult one = run_matmul(options_for(1, 1, "dep-aware"), false);
  const AppResult two = run_matmul(options_for(1, 2, "dep-aware"), false);
  EXPECT_NEAR(two.gflops / one.gflops, 2.0, 0.1);
}

TEST(PaperShape, MatmulGpuIsFlatInSmpThreads) {
  const AppResult few = run_matmul(options_for(1, 1, "dep-aware"), false);
  const AppResult many = run_matmul(options_for(8, 1, "dep-aware"), false);
  EXPECT_NEAR(many.gflops / few.gflops, 1.0, 0.05);
}

TEST(PaperShape, MatmulHybridGainsWithSmpWorkers) {
  const AppResult few = run_matmul(options_for(1, 1, "versioning"), true);
  const AppResult many = run_matmul(options_for(8, 1, "versioning"), true);
  EXPECT_GT(many.gflops, few.gflops * 1.05);
}

TEST(PaperShape, MatmulHybridBeatsGpuOnlyAtEightSmp) {
  const AppResult gpu = run_matmul(options_for(8, 2, "dep-aware"), false);
  const AppResult hyb = run_matmul(options_for(8, 2, "versioning"), true);
  EXPECT_GT(hyb.gflops, gpu.gflops);
}

// --- Figure 8: matmul version split ---------------------------------------

TEST(PaperShape, MatmulCublasDominatesAndCudaIsRare) {
  const AppResult result = run_matmul(options_for(8, 2, "versioning"), true);
  EXPECT_GT(result.shares[0].percent, 85.0);  // CUBLAS
  EXPECT_LT(result.shares[1].percent, 2.0);   // hand CUDA: learning only
}

TEST(PaperShape, MatmulSmpShareGrowsWithWorkersAndShrinksWithGpus) {
  const double smp1 =
      run_matmul(options_for(1, 1, "versioning"), true).shares[2].percent;
  const double smp8 =
      run_matmul(options_for(8, 1, "versioning"), true).shares[2].percent;
  const double smp8_2gpu =
      run_matmul(options_for(8, 2, "versioning"), true).shares[2].percent;
  EXPECT_GT(smp8, smp1);        // more SMP workers -> more SMP work
  EXPECT_GT(smp8, smp8_2gpu);   // second GPU leaves less for the SMPs
  EXPECT_NEAR(smp8, 10.0, 5.0); // "about 10 % of the work on average"
}

// --- Figures 9/11: Cholesky -----------------------------------------------

TEST(PaperShape, CholeskyPotrfSmpIsWorstVariant) {
  const AppResult smp =
      run_cholesky(options_for(8, 2, "dep-aware"), apps::PotrfVariant::kSmp);
  const AppResult gpu =
      run_cholesky(options_for(8, 2, "dep-aware"), apps::PotrfVariant::kGpu);
  const AppResult hyb = run_cholesky(options_for(8, 2, "versioning"),
                                     apps::PotrfVariant::kHybrid);
  EXPECT_LT(smp.gflops, gpu.gflops * 0.75);
  EXPECT_LT(smp.gflops, hyb.gflops * 0.75);
}

TEST(PaperShape, CholeskyVersioningSendsPotrfMostlyToGpus) {
  const AppResult result = run_cholesky(options_for(8, 2, "versioning"),
                                        apps::PotrfVariant::kHybrid);
  // shares[0] = GPU(MAGMA), shares[1] = SMP(CBLAS).
  EXPECT_GT(result.shares[0].percent, 60.0);
  // SMP executions are bounded by the learning phase plus a couple of
  // early overflows.
  EXPECT_LE(result.shares[1].count, 5u);
}

TEST(PaperShape, CholeskyHybridCloseToGpuOnly) {
  const AppResult gpu =
      run_cholesky(options_for(8, 2, "affinity"), apps::PotrfVariant::kGpu);
  const AppResult hyb = run_cholesky(options_for(8, 2, "versioning"),
                                     apps::PotrfVariant::kHybrid);
  // Learning on few task instances costs a little (§V-B2), but stays
  // within a few percent.
  EXPECT_GT(hyb.gflops, gpu.gflops * 0.95);
}

// --- Figures 12/13/14/15: PBPI ----------------------------------------------

TEST(PaperShape, PbpiSmpBeatsGpuWithEnoughWorkers) {
  const AppResult smp = run_pbpi(options_for(8, 1, "dep-aware"),
                                 apps::PbpiVariant::kSmp, 1, 20);
  const AppResult gpu = run_pbpi(options_for(8, 1, "dep-aware"),
                                 apps::PbpiVariant::kGpu, 1, 20);
  EXPECT_LT(smp.elapsed_seconds, gpu.elapsed_seconds);
}

TEST(PaperShape, PbpiHybridIsFastestSeries) {
  for (const std::size_t smp_workers : {1u, 8u}) {
    const auto base = options_for(smp_workers, 2, "dep-aware");
    const AppResult smp = run_pbpi(base, apps::PbpiVariant::kSmp, 1, 20);
    const AppResult gpu = run_pbpi(base, apps::PbpiVariant::kGpu, 1, 20);
    const AppResult hyb = run_pbpi(options_for(smp_workers, 2, "versioning"),
                                   apps::PbpiVariant::kHybrid, 1, 20);
    EXPECT_LT(hyb.elapsed_seconds, smp.elapsed_seconds) << smp_workers;
    EXPECT_LT(hyb.elapsed_seconds, gpu.elapsed_seconds) << smp_workers;
  }
}

TEST(PaperShape, PbpiSmpVariantMovesNoData) {
  const AppResult smp = run_pbpi(options_for(4, 2, "dep-aware"),
                                 apps::PbpiVariant::kSmp, 1, 10);
  EXPECT_EQ(smp.transfers.total_bytes(), 0u);
}

TEST(PaperShape, PbpiHybridTransfersMoreThanGpuButWins) {
  const AppResult gpu = run_pbpi(options_for(8, 2, "dep-aware"),
                                 apps::PbpiVariant::kGpu, 1, 20);
  const AppResult hyb = run_pbpi(options_for(8, 2, "versioning"),
                                 apps::PbpiVariant::kHybrid, 1, 20);
  EXPECT_GT(hyb.transfers.total_bytes(), gpu.transfers.total_bytes());
  EXPECT_LT(hyb.elapsed_seconds, gpu.elapsed_seconds);
}

TEST(PaperShape, PbpiLoop1MostlyGpuLoop2Shared) {
  const AppResult loop1 = run_pbpi(options_for(4, 2, "versioning"),
                                   apps::PbpiVariant::kHybrid, 1, 20);
  const AppResult loop2 = run_pbpi(options_for(4, 2, "versioning"),
                                   apps::PbpiVariant::kHybrid, 2, 20);
  EXPECT_GT(loop1.shares[0].percent, 60.0);   // loop 1 -> GPU mostly
  EXPECT_GT(loop2.shares[1].count, 1000u);    // loop 2 SMP runs: thousands
  EXPECT_GT(loop2.shares[0].percent, 20.0);   // ... genuinely shared
}

}  // namespace
}  // namespace versa::bench
