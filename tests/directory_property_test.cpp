// Model-checking property tests for the coherence directory: random
// acquire/flush sequences are replayed against an independent oracle that
// tracks per-region validity and dirtiness, and every invariant the rest
// of the runtime relies on is checked after each step:
//   I1  every region has at least one valid copy somewhere;
//   I2  a dirty region's dirty space holds a valid copy;
//   I3  a region is dirty in at most one space, never the host;
//   I4  used_bytes(space) equals the sum of valid copies there;
//   I5  transfer categories match the endpoints;
//   I6  after flush_all, no region is dirty and host copies are valid.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "common/random.h"
#include "data/directory.h"
#include "machine/presets.h"

namespace versa {
namespace {

class DirectoryOracle {
 public:
  explicit DirectoryOracle(std::size_t spaces) : spaces_(spaces) {}

  void add_region(RegionId id, std::uint64_t size) {
    regions_[id] = State{{kHostSpace}, kInvalidSpace, size};
  }

  void acquire(const AccessList& accesses, SpaceId space) {
    for (const Access& access : accesses) {
      State& state = regions_.at(access.region);
      if (reads(access.mode)) {
        state.valid.insert(space);
      } else if (state.valid.count(space) == 0) {
        state.valid.insert(space);
      }
      if (writes(access.mode)) {
        state.valid = {space};
        state.dirty = space == kHostSpace ? kInvalidSpace : space;
      }
    }
  }

  void flush_all() {
    for (auto& [id, state] : regions_) {
      if (state.dirty != kInvalidSpace) {
        state.valid.insert(kHostSpace);
        state.dirty = kInvalidSpace;
      }
    }
  }

  struct State {
    std::set<SpaceId> valid;
    SpaceId dirty = kInvalidSpace;
    std::uint64_t size = 0;
  };

  const State& state(RegionId id) const { return regions_.at(id); }
  const std::map<RegionId, State>& regions() const { return regions_; }

 private:
  std::size_t spaces_;
  std::map<RegionId, State> regions_;
};

class DirectoryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DirectoryPropertyTest, RandomOpsMatchOracleAndKeepInvariants) {
  // Capacities are unlimited here (capacity 0) so eviction never perturbs
  // the oracle; the eviction path has dedicated tests in data_test.
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", 0);
  const SpaceId g1 = builder.add_space("g1", 0);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  const DeviceId c0 = builder.add_device(DeviceKind::kSmp, kHostSpace, "c", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_worker(c0);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 0.0);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 0.0);
  builder.add_bidi_link(g0, g1, 1e9, 0.0);
  const Machine machine = builder.build();

  DataDirectory directory(machine);
  DirectoryOracle oracle(machine.space_count());
  Rng rng(GetParam());

  constexpr std::size_t kRegions = 6;
  std::vector<RegionId> regions;
  for (std::size_t r = 0; r < kRegions; ++r) {
    const std::uint64_t size = 128 * (1 + rng.next_below(8));
    regions.push_back(
        directory.register_region("r" + std::to_string(r), size));
    oracle.add_region(regions.back(), size);
  }

  auto check_invariants = [&] {
    std::vector<std::uint64_t> used(machine.space_count(), 0);
    for (const auto& [id, want] : oracle.regions()) {
      // Oracle agreement on validity and dirtiness.
      for (SpaceId s = 0; s < machine.space_count(); ++s) {
        ASSERT_EQ(directory.is_valid_in(id, s), want.valid.count(s) != 0)
            << "region " << id << " space " << s;
      }
      ASSERT_EQ(directory.dirty_space(id), want.dirty) << "region " << id;
      // I1-I3.
      ASSERT_FALSE(want.valid.empty());
      if (want.dirty != kInvalidSpace) {
        ASSERT_NE(want.dirty, kHostSpace);
        ASSERT_TRUE(want.valid.count(want.dirty));
      }
      for (const SpaceId s : want.valid) {
        used[s] += want.size;
      }
    }
    for (SpaceId s = 0; s < machine.space_count(); ++s) {
      ASSERT_EQ(directory.used_bytes(s), used[s]) << "space " << s;  // I4
    }
  };

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.next_below(10));
    if (op < 8) {
      // Random acquire of 1-2 regions at a random space.
      AccessList accesses;
      const std::size_t clauses = 1 + rng.next_below(2);
      std::set<RegionId> used_regions;
      for (std::size_t c = 0; c < clauses; ++c) {
        const RegionId region = regions[rng.next_below(kRegions)];
        if (!used_regions.insert(region).second) continue;
        const auto mode = static_cast<AccessMode>(rng.next_below(3));
        accesses.push_back(Access{region, mode, 0, 0});
      }
      const SpaceId space =
          static_cast<SpaceId>(rng.next_below(machine.space_count()));
      TransferList ops;
      directory.acquire(accesses, space, ops);
      oracle.acquire(accesses, space);
      for (const TransferOp& transfer : ops) {
        EXPECT_EQ(transfer.category,
                  classify_transfer(transfer.from, transfer.to));  // I5
        EXPECT_NE(transfer.from, transfer.to);
      }
    } else {
      TransferList ops;
      directory.flush_all(ops);
      oracle.flush_all();
      for (const auto& [id, state] : oracle.regions()) {
        EXPECT_EQ(directory.dirty_space(id), kInvalidSpace);  // I6
        EXPECT_TRUE(directory.is_valid_in(id, kHostSpace));
      }
    }
    check_invariants();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u,
                                           606u));

// Linearization property over randomized interleavings: a writer thread
// replays a random plan of paired acquires while reader threads sample
// pair aggregates. Every read must correspond to the directory state
// after some *prefix* of the plan — and because both pair members are
// acquired together, every prefix state prices the pair as 0 or its full
// size. Observing half the pair means a read linearized inside an
// acquire, which the epoch protocol forbids. The final state must equal
// the serial oracle replay of the full plan, pinning down that the
// concurrent run linearized to the plan order itself.
class DirectoryLinearizationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DirectoryLinearizationTest, ReadsLinearizeAgainstPairedAcquires) {
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", 0);
  const SpaceId g1 = builder.add_space("g1", 0);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 0.0);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 0.0);
  builder.add_bidi_link(g0, g1, 1e9, 0.0);
  const Machine machine = builder.build();

  DataDirectory directory(machine);
  DirectoryOracle oracle(machine.space_count());
  const std::uint64_t kBytesA = 128;
  const std::uint64_t kBytesB = 256;
  const std::uint64_t kPair = kBytesA + kBytesB;
  const RegionId a = directory.register_region("a", kBytesA);
  const RegionId b = directory.register_region("b", kBytesB);
  oracle.add_region(a, kBytesA);
  oracle.add_region(b, kBytesB);

  // Precompute the plan so the serial oracle replay is exact.
  struct Step {
    SpaceId space;
    AccessMode mode;
  };
  Rng rng(GetParam());
  std::vector<Step> plan;
  for (int i = 0; i < 500; ++i) {
    plan.push_back(Step{
        static_cast<SpaceId>(rng.next_below(machine.space_count())),
        rng.next_below(3) == 0 ? AccessMode::kIn : AccessMode::kInOut});
  }

  std::atomic<bool> stop{false};
  std::atomic<long> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng reader_rng(GetParam() ^ (0xabcu + static_cast<std::uint64_t>(r)));
      while (!stop.load(std::memory_order_acquire)) {
        const AccessList probe = {Access::in(a), Access::in(b)};
        const SpaceId s = static_cast<SpaceId>(
            reader_rng.next_below(machine.space_count()));
        const std::uint64_t valid = directory.bytes_valid(probe, s);
        if (valid != 0 && valid != kPair) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
        const std::uint64_t missing = directory.bytes_missing(probe, s);
        if (missing != 0 && missing != kPair) {
          torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  for (const Step& step : plan) {
    const AccessList accesses = {Access{a, step.mode, 0, 0},
                                 Access{b, step.mode, 0, 0}};
    TransferList ops;
    directory.acquire(accesses, step.space, ops);
    oracle.acquire(accesses, step.space);
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) {
    t.join();
  }

  EXPECT_EQ(torn.load(), 0);
  // Terminal state equals the serial replay: the concurrent history
  // linearized to the plan order.
  for (SpaceId s = 0; s < machine.space_count(); ++s) {
    EXPECT_EQ(directory.is_valid_in(a, s), oracle.state(a).valid.count(s) != 0)
        << "space " << s;
    EXPECT_EQ(directory.is_valid_in(b, s), oracle.state(b).valid.count(s) != 0)
        << "space " << s;
  }
  EXPECT_EQ(directory.dirty_space(a), oracle.state(a).dirty);
  EXPECT_EQ(directory.dirty_space(b), oracle.state(b).dirty);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryLinearizationTest,
                         ::testing::Values(11u, 22u, 33u));

// Per-shard epoch protocol: uncapped spaces route acquires through the
// parallel mutator path (shared directory lock + shard marks only), so
// two writers over disjoint cross-shard pairs commit truly concurrently.
// Readers must still never see half a pair, each writer's shard set must
// advance its shard_epoch() aggregate, and — the per-shard payoff — a
// mutator must NOT move the epochs of shards it never touched (the old
// global counter moved for everyone).
class DirectoryShardEpochTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(DirectoryShardEpochTest, ParallelMutatorsAdvanceOnlyTheirShards) {
  Machine::Builder builder;
  const SpaceId g0 = builder.add_space("g0", 0);  // capacity 0 = parallel path
  const SpaceId g1 = builder.add_space("g1", 0);
  const DeviceId d0 = builder.add_device(DeviceKind::kCuda, g0, "a", 1);
  const DeviceId d1 = builder.add_device(DeviceKind::kCuda, g1, "b", 1);
  builder.add_worker(d0);
  builder.add_worker(d1);
  builder.add_bidi_link(kHostSpace, g0, 1e9, 0.0);
  builder.add_bidi_link(kHostSpace, g1, 1e9, 0.0);
  builder.add_bidi_link(g0, g1, 1e9, 0.0);
  const Machine machine = builder.build();

  DataDirectory directory(machine);
  constexpr std::uint64_t kBytes = 512;
  // Sequential registration gives region ids 0..3, i.e. shards 0..3: each
  // writer's pair spans two shards and the two pairs' shard sets are
  // disjoint.
  const RegionId a0 = directory.register_region("a0", kBytes);
  const RegionId a1 = directory.register_region("a1", kBytes);
  const RegionId b0 = directory.register_region("b0", kBytes);
  const RegionId b1 = directory.register_region("b1", kBytes);
  const AccessList pair_a = {Access::inout(a0), Access::inout(b0)};
  const AccessList pair_b = {Access::inout(a1), Access::inout(b1)};
  const std::uint64_t mask_a = DataDirectory::shard_mask(pair_a);
  const std::uint64_t mask_b = DataDirectory::shard_mask(pair_b);
  ASSERT_EQ(mask_a & mask_b, 0u) << "pairs must live on disjoint shards";

  // Isolation: a serial acquire over pair A moves A's shard aggregate and
  // leaves B's untouched.
  {
    const std::uint64_t before_a = directory.shard_epoch(mask_a);
    const std::uint64_t before_b = directory.shard_epoch(mask_b);
    TransferList ops;
    directory.acquire(pair_a, g0, ops);
    EXPECT_GT(directory.shard_epoch(mask_a), before_a);
    EXPECT_EQ(directory.shard_epoch(mask_b), before_b);
  }

  const std::uint64_t epoch_a_start = directory.shard_epoch(mask_a);
  const std::uint64_t epoch_b_start = directory.shard_epoch(mask_b);
  const std::uint64_t folded_start = directory.mutation_epoch();

  constexpr int kSteps = 300;
  std::atomic<bool> stop{false};
  std::atomic<long> torn{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    const AccessList& accesses = w == 0 ? pair_a : pair_b;
    threads.emplace_back([&directory, &accesses, w, seed = GetParam()] {
      Rng writer_rng(seed * 7u + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kSteps; ++i) {
        const SpaceId space = writer_rng.next_below(2) == 0 ? 1 : 2;
        TransferList ops;
        directory.acquire(accesses, space, ops);
      }
    });
  }
  threads.emplace_back([&] {
    Rng reader_rng(GetParam() ^ 0x5a5au);
    while (!stop.load(std::memory_order_acquire)) {
      const AccessList& probe = reader_rng.next_below(2) == 0 ? pair_a
                                                              : pair_b;
      const SpaceId s =
          static_cast<SpaceId>(reader_rng.next_below(machine.space_count()));
      const std::uint64_t valid = directory.bytes_valid(probe, s);
      if (valid != 0 && valid != 2 * kBytes) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  threads[0].join();
  threads[1].join();
  stop.store(true, std::memory_order_release);
  threads[2].join();

  EXPECT_EQ(torn.load(), 0);
  // Both writers' shard sets moved; the folded legacy counter is the sum
  // of the per-shard movement (no exclusive mutator ran concurrently).
  const std::uint64_t delta_a = directory.shard_epoch(mask_a) - epoch_a_start;
  const std::uint64_t delta_b = directory.shard_epoch(mask_b) - epoch_b_start;
  EXPECT_GE(delta_a, 2u * kSteps);  // begin+end mark per acquire, at least
  EXPECT_GE(delta_b, 2u * kSteps);
  EXPECT_EQ(directory.mutation_epoch() - folded_start, delta_a + delta_b);
  // Every shard neither pair touches never moved.
  const std::uint64_t untouched = ~(mask_a | mask_b) &
                                  ((1u << DataDirectory::kShardCount) - 1u);
  EXPECT_EQ(directory.shard_epoch(untouched), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectoryShardEpochTest,
                         ::testing::Values(7u, 77u, 777u));

}  // namespace
}  // namespace versa
