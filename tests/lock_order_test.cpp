// Tests of the runtime lock-order checker — the dynamic half of the lock
// discipline (DESIGN.md §9). Covers rank validation through the annotated
// wrappers, recursive-class re-entry, assert_held, report contents (both
// lock classes must be named), and the abort-on-inversion default handler
// via gtest death tests.
#include <gtest/gtest.h>

#include <string>

#include "util/annotated_sync.h"
#include "util/lock_order.h"

namespace versa {
namespace {

// The violation hook is a plain function pointer, so the capturing handler
// stores into file-scope state.
std::string g_captured;
void capture_report(const char* report) { g_captured = report; }

// Private rank classes: the ordering rules are tested against these so the
// tests do not move when the repo hierarchy gains a class. Static storage,
// as the checker requires.
const lock_order::LockClass kLow{"test.low", 1};
const lock_order::LockClass kHigh{"test.high", 2};
const lock_order::LockClass kHighTwin{"test.high_twin", 2};
const lock_order::LockClass kNested{"test.nested", 3, /*reentrant=*/true};

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    was_enforced_ = lock_order::enforced();
    lock_order::set_enforced(true);
    previous_ = lock_order::set_violation_handler(&capture_report);
    g_captured.clear();
  }
  void TearDown() override {
    lock_order::set_violation_handler(previous_);
    lock_order::set_enforced(was_enforced_);
  }

 private:
  bool was_enforced_ = false;
  lock_order::ViolationHandler previous_ = nullptr;
};

TEST_F(LockOrderTest, IncreasingRankAcquisitionIsClean) {
  Mutex low(kLow);
  Mutex high(kHigh);
  {
    LockGuard outer(low);
    EXPECT_EQ(lock_order::held_depth(), 1u);
    LockGuard inner(high);
    EXPECT_EQ(lock_order::held_depth(), 2u);
    EXPECT_TRUE(g_captured.empty()) << g_captured;
  }
  EXPECT_EQ(lock_order::held_depth(), 0u);
}

TEST_F(LockOrderTest, InversionReportNamesBothClasses) {
  Mutex low(kLow);
  Mutex high(kHigh);
  {
    LockGuard outer(high);
    LockGuard inner(low);  // rank 1 under rank 2: inversion
    ASSERT_FALSE(g_captured.empty());
    EXPECT_NE(g_captured.find("lock-order inversion"), std::string::npos)
        << g_captured;
    // Both sides of the inversion are named, with their ranks.
    EXPECT_NE(g_captured.find("'test.low' (rank 1)"), std::string::npos)
        << g_captured;
    EXPECT_NE(g_captured.find("'test.high' (rank 2)"), std::string::npos)
        << g_captured;
  }
  // The capturing handler returned, so the acquisition proceeded and the
  // guards unwound: the held stack must be balanced again.
  EXPECT_EQ(lock_order::held_depth(), 0u);
}

TEST_F(LockOrderTest, ReportIncludesHeldStack) {
  Mutex low(kLow);
  Mutex high(kHigh);
  Mutex low_peer(kLow);  // distinct mutex, same class: class-level inversion
  LockGuard a(low);
  LockGuard b(high);
  LockGuard c(low_peer);  // inversion with the full stack held
  ASSERT_FALSE(g_captured.empty());
  EXPECT_NE(g_captured.find("held stack:"), std::string::npos) << g_captured;
  EXPECT_NE(g_captured.find("test.low(1) test.high(2)"), std::string::npos)
      << g_captured;
}

TEST_F(LockOrderTest, EqualRankAcrossClassesIsAnInversion) {
  // Two classes at one rank cannot order against each other; acquiring
  // either under the other is reported.
  Mutex a(kHigh);
  Mutex b(kHighTwin);
  LockGuard outer(a);
  LockGuard inner(b);
  EXPECT_NE(g_captured.find("lock-order inversion"), std::string::npos)
      << g_captured;
}

TEST_F(LockOrderTest, ReentrantClassMayNest) {
  RecursiveMutex m(kNested);
  m.lock();  // the manual lock/unlock path participates too
  m.unlock();
  RecursiveLockGuard outer(m);
  RecursiveLockGuard inner(m);
  EXPECT_TRUE(g_captured.empty()) << g_captured;
  EXPECT_EQ(lock_order::held_depth(), 2u);
}

TEST_F(LockOrderTest, NonReentrantSelfNestingIsReported) {
  // Same class, not marked reentrant: rank is not strictly increasing.
  const lock_order::LockClass& cls = kLow;
  lock_order::on_acquire(cls);
  lock_order::on_acquire(cls);
  EXPECT_NE(g_captured.find("lock-order inversion"), std::string::npos)
      << g_captured;
  lock_order::on_release(cls);
  lock_order::on_release(cls);
}

TEST_F(LockOrderTest, RepoHierarchyAcquiresInDocumentedOrder) {
  // The documented repo order: runtime -> account -> queue -> trace -> wake.
  RecursiveMutex runtime(lock_order::kLockRankRuntime);
  Mutex account(lock_order::kLockRankAccount);
  Mutex queue(lock_order::kLockRankQueue);
  Mutex trace(lock_order::kLockRankTrace);
  Mutex wake(lock_order::kLockRankExecWake);
  RecursiveLockGuard l0(runtime);
  RecursiveLockGuard l0again(runtime);  // the runtime lock is recursive
  LockGuard l1(account);
  LockGuard l2(queue);
  LockGuard l3(trace);
  LockGuard l4(wake);
  EXPECT_TRUE(g_captured.empty()) << g_captured;
}

TEST_F(LockOrderTest, AssertHeldPassesWhenHeldAnywhereInTheStack) {
  Mutex low(kLow);
  Mutex high(kHigh);
  LockGuard a(low);
  LockGuard b(high);
  low.assert_held();  // not the innermost entry — still held
  high.assert_held();
  EXPECT_TRUE(g_captured.empty()) << g_captured;
}

TEST_F(LockOrderTest, AssertHeldReportsWithoutCorruptingTheStack) {
  Mutex m(kLow);
  const std::size_t depth = lock_order::held_depth();
  m.assert_held();
  EXPECT_NE(g_captured.find("lock assertion failed"), std::string::npos)
      << g_captured;
  EXPECT_NE(g_captured.find("'test.low'"), std::string::npos) << g_captured;
  // A failed assertion must not push a phantom entry.
  EXPECT_EQ(lock_order::held_depth(), depth);
}

TEST_F(LockOrderTest, DisabledCheckerIsSilent) {
  lock_order::set_enforced(false);
  Mutex low(kLow);
  Mutex high(kHigh);
  LockGuard outer(high);
  LockGuard inner(low);  // would be an inversion
  low.assert_held();
  EXPECT_TRUE(g_captured.empty()) << g_captured;
  EXPECT_EQ(lock_order::held_depth(), 0u);
}

TEST_F(LockOrderTest, UniqueLockParticipatesInTheStack) {
  Mutex m(kLow);
  {
    UniqueLock lock(m);
    EXPECT_EQ(lock_order::held_depth(), 1u);
    EXPECT_TRUE(lock_order::holds(kLow));
  }
  EXPECT_EQ(lock_order::held_depth(), 0u);
}

// --- default handler: abort with the report on stderr -------------------

TEST(LockOrderDeathTest, InversionAbortsNamingBothClasses) {
  EXPECT_DEATH(
      {
        lock_order::set_enforced(true);
        lock_order::set_violation_handler(nullptr);  // default: abort
        // A realistic inversion against the repo hierarchy: taking the
        // account mutex while holding a queue shard.
        Mutex queue_shard(lock_order::kLockRankQueue);
        Mutex account(lock_order::kLockRankAccount);
        LockGuard outer(queue_shard);
        LockGuard inner(account);
      },
      "lock-order inversion: acquiring 'sched\\.account' \\(rank 20\\) while "
      "holding 'sched\\.queue' \\(rank 30\\)");
}

TEST(LockOrderDeathTest, FailedAssertHeldAbortsNamingTheClass) {
  EXPECT_DEATH(
      {
        lock_order::set_enforced(true);
        lock_order::set_violation_handler(nullptr);
        Mutex m(lock_order::kLockRankTrace);
        m.assert_held();
      },
      "lock assertion failed: 'trace' \\(rank 40\\) is not held");
}

}  // namespace
}  // namespace versa
