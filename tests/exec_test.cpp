// Edge-case tests for the execution backends: default cost fallback,
// horizon tracking, stolen-task re-acquisition, prefetch state machine,
// and per-worker noise stream independence.
#include <gtest/gtest.h>

#include "machine/presets.h"
#include "runtime/runtime.h"

namespace versa {
namespace {

TEST(SimExec, DefaultDurationCoversVersionsWithoutCostModel) {
  const Machine machine = make_smp_machine(1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  config.default_task_duration = 2.5e-3;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v");  // no body, no cost model
  const RegionId r = rt.register_data("r", 64);
  rt.submit(t, {Access::inout(r)});
  rt.taskwait();
  EXPECT_NEAR(rt.elapsed(), 2.5e-3, 1e-12);
}

TEST(SimExec, FlushExtendsElapsedBeyondLastTask) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "fifo";
  config.noise.kind = sim::NoiseKind::kNone;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  // 60 MB dirty on the GPU: the taskwait flush costs ~10 ms on PCIe,
  // dominating the 1 ms compute.
  const RegionId r = rt.register_data("r", 60'000'000);
  rt.submit(t, {Access::out(r)});
  rt.taskwait();
  EXPECT_GT(rt.elapsed(), 10e-3);
  const Time last_finish = rt.task_graph().task(0).finish_time;
  EXPECT_GT(rt.elapsed(), last_finish);
}

TEST(SimExec, StolenTaskReacquiresForTheThiefSpace) {
  // Two GPUs, affinity scheduler (stealing enabled). All tasks want data
  // living on GPU 0; the idle GPU 1 steals one and must move the data.
  const Machine machine = make_minotauro_node(1, 2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "affinity";
  config.noise.kind = sim::NoiseKind::kNone;
  config.prefetch = true;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(5e-3));

  const RegionId hot = rt.register_data("hot", 1 << 20);
  // Seed locality on GPU 0's space via a first task wave.
  rt.submit(t, {Access::inout(hot)});
  rt.taskwait_noflush();

  // Two independent readers of the hot region: affinity queues both on the
  // data holder; the other GPU steals the second one.
  const RegionId a = rt.register_data("a", 1 << 10);
  const RegionId b = rt.register_data("b", 1 << 10);
  rt.submit(t, {Access::in(hot), Access::inout(a)});
  rt.submit(t, {Access::in(hot), Access::inout(b)});
  rt.taskwait_noflush();

  // Both GPUs executed something, and the hot region was replicated to
  // the thief's space (device or host-mediated transfer happened).
  std::set<WorkerId> used;
  for (const Task& task : rt.task_graph().tasks()) {
    used.insert(task.assigned_worker);
  }
  EXPECT_EQ(used.size(), 2u);
  EXPECT_TRUE(rt.data_directory().is_valid_in(hot, machine.worker(1).space));
  EXPECT_TRUE(rt.data_directory().is_valid_in(hot, machine.worker(2).space));
}

TEST(SimExec, WorkerNoiseStreamsAreIndependent) {
  // With noise on, two workers executing the same version must not see
  // identical duration sequences (they own separate RNG streams).
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "dep-aware";
  config.noise.kind = sim::NoiseKind::kLognormal;
  config.noise.magnitude = 0.2;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", nullptr, make_constant_cost(1e-3));
  for (int i = 0; i < 20; ++i) {
    const RegionId r = rt.register_data("r" + std::to_string(i), 64);
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  std::vector<Duration> w0, w1;
  for (const Task& task : rt.task_graph().tasks()) {
    (task.assigned_worker == 0 ? w0 : w1).push_back(task.measured_duration);
  }
  ASSERT_GE(w0.size(), 3u);
  ASSERT_GE(w1.size(), 3u);
  int equal = 0;
  for (std::size_t i = 0; i < std::min(w0.size(), w1.size()); ++i) {
    if (w0[i] == w1[i]) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(SimExec, PrefetchStartsCopiesBeforeExecution) {
  const Machine machine = make_minotauro_node(1, 1);
  RuntimeConfig config;
  config.backend = Backend::kSim;
  config.scheduler = "affinity";  // push-style: assignment precedes pop
  config.noise.kind = sim::NoiseKind::kNone;
  config.prefetch = true;
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kCuda, "v", nullptr, make_constant_cost(1e-3));
  const RegionId r1 = rt.register_data("r1", 6'000'000);
  const RegionId r2 = rt.register_data("r2", 6'000'000);
  rt.submit(t, {Access::in(r1)});
  rt.submit(t, {Access::in(r2)});
  rt.taskwait_noflush();
  // Task 2's copy (1 ms) overlapped task 1's compute: total ~= 1 ms copy
  // + 1 ms compute + 1 ms compute, not 2 copies + 2 computes.
  EXPECT_NEAR(rt.elapsed(), 3e-3, 0.2e-3);
}

TEST(ThreadExec, ManyWorkersManyTinyTasks) {
  const Machine machine = make_smp_machine(8);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "fifo";
  Runtime rt(machine, config);
  std::atomic<int> count{0};
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", [&](TaskContext&) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  std::vector<RegionId> regions;
  for (int i = 0; i < 16; ++i) {
    regions.push_back(rt.register_data("r" + std::to_string(i), 64));
  }
  for (int i = 0; i < 500; ++i) {
    rt.submit(t, {Access::inout(regions[i % regions.size()])});
  }
  rt.taskwait();
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadExec, MeasuredDurationsArePositive) {
  const Machine machine = make_smp_machine(2);
  RuntimeConfig config;
  config.backend = Backend::kThreads;
  config.scheduler = "dep-aware";
  Runtime rt(machine, config);
  const TaskTypeId t = rt.declare_task("t");
  rt.add_version(t, DeviceKind::kSmp, "v", [](TaskContext&) {
    volatile int sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  });
  const RegionId r = rt.register_data("r", 64);
  for (int i = 0; i < 10; ++i) {
    rt.submit(t, {Access::inout(r)});
  }
  rt.taskwait();
  for (const Task& task : rt.task_graph().tasks()) {
    EXPECT_GT(task.measured_duration, 0.0);
    EXPECT_LE(task.start_time, task.finish_time);
  }
}

}  // namespace
}  // namespace versa
