#include "data/directory.h"

#include <thread>

#include "common/check.h"
#include "common/log.h"

namespace versa {
namespace {

constexpr std::uint64_t bit(SpaceId space) { return std::uint64_t{1} << space; }

constexpr std::uint64_t shard_bit(std::size_t index) {
  return std::uint64_t{1} << index;
}

}  // namespace

DataDirectory::DataDirectory(const Machine& machine)
    : machine_(machine), used_(machine.space_count()) {
  VERSA_CHECK_MSG(machine.space_count() <= 64,
                  "validity masks support up to 64 memory spaces");
  for (auto& bytes : used_) {
    bytes.store(0, std::memory_order_relaxed);
  }
}

// Exclusive mutators follow the legacy publication protocol: hold the
// writer mutex exclusively (rank 13), flip the global epoch to odd, mark
// the touched shards, mutate region state under the per-shard rank-14
// locks, retract the marks, flip the epoch back to even. Parallel
// acquires (unlimited-capacity target spaces) hold the writer mutex
// *shared* and publish through the shard marks alone. Readers that need
// cross-region consistency (read_consistent) retry around active writers
// or moved epochs of the shards they touch; per-region readers only need
// the shard lock.

std::uint64_t DataDirectory::shard_mask(const AccessList& accesses) {
  std::uint64_t mask = 0;
  for (const Access& access : accesses) {
    mask |= shard_bit(access.region % kShardCount);
  }
  return mask;
}

std::uint64_t DataDirectory::shard_epoch(std::uint64_t mask) const {
  std::uint64_t folded = 0;
  for (std::size_t i = 0; i < kShardCount; ++i) {
    if (mask & shard_bit(i)) {
      folded += shards_[i].epoch.load(std::memory_order_acquire);
    }
  }
  return folded;
}

void DataDirectory::mark_shards_begin(std::uint64_t mask) {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    if (mask & shard_bit(i)) {
      shards_[i].writers.fetch_add(1, std::memory_order_acq_rel);
      shards_[i].epoch.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

void DataDirectory::mark_shards_end(std::uint64_t mask) {
  for (std::size_t i = 0; i < kShardCount; ++i) {
    if (mask & shard_bit(i)) {
      shards_[i].epoch.fetch_add(1, std::memory_order_release);
      shards_[i].writers.fetch_sub(1, std::memory_order_release);
    }
  }
}

RegionId DataDirectory::register_region(std::string name, std::uint64_t size,
                                        void* host_ptr) {
  VERSA_CHECK_MSG(size > 0, "zero-sized region");
  versa::SharedMutexExclusiveGuard writer(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  const RegionId id =
      static_cast<RegionId>(region_limit_.load(std::memory_order_relaxed));
  const std::uint64_t mask = shard_bit(id % kShardCount);
  mark_shards_begin(mask);
  Shard& shard = shard_of(id);
  {
    versa::LockGuard lock(shard.mutex);
    VERSA_CHECK(slot_of(id) == shard.regions.size());
    RegionState rs;
    rs.desc.id = id;
    rs.desc.name = std::move(name);
    rs.desc.size = size;
    rs.desc.host_ptr = host_ptr;
    rs.valid_mask = bit(kHostSpace);
    shard.regions.push_back(std::move(rs));
  }
  used_[kHostSpace].fetch_add(size, std::memory_order_relaxed);
  live_regions_.fetch_add(1, std::memory_order_relaxed);
  region_limit_.store(id + 1, std::memory_order_release);
  mark_shards_end(mask);
  epoch_.fetch_add(1, std::memory_order_release);
  return id;
}

void DataDirectory::unregister_region(RegionId id) {
  versa::SharedMutexExclusiveGuard writer(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t mask = shard_bit(id % kShardCount);
  mark_shards_begin(mask);
  {
    Shard& shard = shard_of(id);
    versa::LockGuard lock(shard.mutex);
    RegionState& rs = state_at(shard, id);
    VERSA_CHECK_MSG(!rs.pinned, "cannot unregister a region mid-acquire");
    if (rs.dirty != kInvalidSpace) {
      VERSA_LOG(kWarn) << "unregistering region '" << rs.desc.name
                       << "' with unflushed device data";
    }
    for (SpaceId s = 0; s < machine_.space_count(); ++s) {
      drop_valid(rs, s);
    }
    rs.dirty = kInvalidSpace;
    rs.removed = true;
  }
  VERSA_CHECK(live_regions_.load(std::memory_order_relaxed) > 0);
  live_regions_.fetch_sub(1, std::memory_order_relaxed);
  mark_shards_end(mask);
  epoch_.fetch_add(1, std::memory_order_release);
}

bool DataDirectory::is_registered(RegionId id) const {
  if (id >= region_limit_.load(std::memory_order_acquire)) return false;
  const Shard& shard = shard_of(id);
  versa::LockGuard lock(shard.mutex);
  return !shard.regions[slot_of(id)].removed;
}

const RegionDesc& DataDirectory::region(RegionId id) const {
  // Ref-returning accessor: the shard guard orders the lookup; the
  // reference stays valid because descriptors are never moved (per-shard
  // deques, ids never reused).
  const Shard& shard = shard_of(id);
  versa::LockGuard lock(shard.mutex);
  return state_at(shard, id).desc;
}

DataDirectory::RegionState& DataDirectory::state_at(Shard& shard,
                                                    RegionId id) {
  VERSA_CHECK(id < region_limit_.load(std::memory_order_acquire));
  VERSA_CHECK(slot_of(id) < shard.regions.size());
  RegionState& rs = shard.regions[slot_of(id)];
  VERSA_CHECK_MSG(!rs.removed, "region was unregistered");
  return rs;
}

const DataDirectory::RegionState& DataDirectory::state_at(const Shard& shard,
                                                          RegionId id) const {
  VERSA_CHECK(id < region_limit_.load(std::memory_order_acquire));
  VERSA_CHECK(slot_of(id) < shard.regions.size());
  const RegionState& rs = shard.regions[slot_of(id)];
  VERSA_CHECK_MSG(!rs.removed, "region was unregistered");
  return rs;
}

SpaceId DataDirectory::choose_source(const RegionState& rs,
                                     [[maybe_unused]] SpaceId to) const {
  VERSA_DCHECK((rs.valid_mask & bit(to)) == 0);
  // Prefer the host copy when one exists: host->device links are dedicated
  // per device, so host sourcing spreads load. Otherwise take the first
  // valid device copy (device->device transfer, the paper's Device Tx).
  if (rs.valid_mask & bit(kHostSpace)) return kHostSpace;
  for (SpaceId s = 0; s < machine_.space_count(); ++s) {
    if (rs.valid_mask & bit(s)) return s;
  }
  VERSA_CHECK_MSG(false, "region has no valid copy anywhere");
  return kInvalidSpace;
}

void DataDirectory::add_valid(RegionState& rs, SpaceId space) {
  if ((rs.valid_mask & bit(space)) == 0) {
    rs.valid_mask |= bit(space);
    used_[space].fetch_add(rs.desc.size, std::memory_order_relaxed);
  }
}

void DataDirectory::drop_valid(RegionState& rs, SpaceId space) {
  if (rs.valid_mask & bit(space)) {
    rs.valid_mask &= ~bit(space);
    VERSA_DCHECK(used_[space].load(std::memory_order_relaxed) >=
                 rs.desc.size);
    used_[space].fetch_sub(rs.desc.size, std::memory_order_relaxed);
  }
}

void DataDirectory::emit_copy(RegionState& rs, SpaceId from, SpaceId to,
                              TransferList& out) {
  const TransferCategory category = classify_transfer(from, to);
  out.push_back(TransferOp{rs.desc.id, from, to, rs.desc.size, category});
  stats_.record(category, rs.desc.size);
}

void DataDirectory::make_room(SpaceId space, std::uint64_t needed,
                              TransferList& out) {
  const std::uint64_t capacity = machine_.space(space).capacity;
  if (capacity == 0) return;  // unlimited
  while (used_[space].load(std::memory_order_relaxed) + needed > capacity) {
    // Find the least recently used unpinned region valid in this space.
    // Per-shard scans under the shard locks, combined lexicographically by
    // (last_use, id) — identical to the historical single-vector scan,
    // which took the first id among the minimum-last_use candidates.
    bool found = false;
    std::uint64_t best_use = 0;
    RegionId best_id = 0;
    for (const Shard& shard : shards_) {
      versa::LockGuard lock(shard.mutex);
      for (const RegionState& rs : shard.regions) {
        if (rs.removed || rs.pinned) continue;
        if ((rs.valid_mask & bit(space)) == 0) continue;
        if (!found || rs.last_use < best_use ||
            (rs.last_use == best_use && rs.desc.id < best_id)) {
          found = true;
          best_use = rs.last_use;
          best_id = rs.desc.id;
        }
      }
    }
    if (!found) {
      VERSA_LOG(kWarn) << "memory space " << machine_.space(space).name
                       << " over-committed; cannot evict";
      return;
    }
    // The victim cannot change between the scan and here: the writer mutex
    // is held exclusively, and readers never mutate region state. The
    // victim's shard may lie outside the acquiring task's access mask, so
    // it gets its own mark.
    const std::uint64_t victim_mask = shard_bit(best_id % kShardCount);
    mark_shards_begin(victim_mask);
    {
      Shard& shard = shard_of(best_id);
      versa::LockGuard lock(shard.mutex);
      RegionState& victim = state_at(shard, best_id);
      if (victim.dirty == space) {
        // Write back before dropping the only modified copy.
        emit_copy(victim, space, kHostSpace, out);
        add_valid(victim, kHostSpace);
        victim.dirty = kInvalidSpace;
      }
      drop_valid(victim, space);
    }
    mark_shards_end(victim_mask);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void DataDirectory::acquire(const AccessList& accesses, SpaceId space,
                            TransferList& out) {
  VERSA_CHECK(space < machine_.space_count());
  if (machine_.space(space).capacity == 0) {
    // Unlimited space: no pinning, no eviction — the acquire only touches
    // the regions in its own access list, so it can share the directory
    // with every other such acquire.
    acquire_parallel(accesses, space, out);
  } else {
    acquire_exclusive(accesses, space, out);
  }
}

void DataDirectory::acquire_exclusive(const AccessList& accesses,
                                      SpaceId space, TransferList& out) {
  versa::SharedMutexExclusiveGuard writer(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t mask = shard_mask(accesses);
  mark_shards_begin(mask);
  // Pin the working set so evictions never victimize data this very task
  // is about to use.
  std::uint64_t incoming = 0;
  for (const Access& access : accesses) {
    Shard& shard = shard_of(access.region);
    versa::LockGuard lock(shard.mutex);
    RegionState& rs = state_at(shard, access.region);
    rs.pinned = true;
    if ((rs.valid_mask & bit(space)) == 0) incoming += rs.desc.size;
  }
  make_room(space, incoming, out);

  for (const Access& access : accesses) {
    Shard& shard = shard_of(access.region);
    versa::LockGuard lock(shard.mutex);
    RegionState& rs = state_at(shard, access.region);
    rs.last_use = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool valid_here = (rs.valid_mask & bit(space)) != 0;
    if (reads(access.mode) && !valid_here) {
      const SpaceId from = choose_source(rs, space);
      emit_copy(rs, from, space, out);
      add_valid(rs, space);
    } else if (!valid_here) {
      // Pure output: no copy-in, the space just gains the (about to be
      // overwritten) only copy.
      add_valid(rs, space);
    }
    if (writes(access.mode)) {
      // Single-writer: invalidate every other copy.
      for (SpaceId s = 0; s < machine_.space_count(); ++s) {
        if (s != space) drop_valid(rs, s);
      }
      rs.dirty = (space == kHostSpace) ? kInvalidSpace : space;
    }
  }
  for (const Access& access : accesses) {
    Shard& shard = shard_of(access.region);
    versa::LockGuard lock(shard.mutex);
    state_at(shard, access.region).pinned = false;
  }
  mark_shards_end(mask);
  epoch_.fetch_add(1, std::memory_order_release);
}

void DataDirectory::acquire_parallel(const AccessList& accesses,
                                     SpaceId space, TransferList& out) {
  // Shared hold: excludes exclusive mutators (whose pin/evict logic needs
  // the global view) but admits other parallel acquires — disjoint-region
  // acquires commit concurrently, same-shard acquires serialize only on
  // the shard mutexes. No pinning: nothing evicts from an unlimited
  // space, and capacity-limited evictions cannot run while we hold the
  // mutex shared.
  versa::SharedLockGuard reader(mutex_);
  const std::uint64_t mask = shard_mask(accesses);
  // All begin marks land before the first mutation so the acquire is
  // atomic as a whole to consistent readers of any subset of its shards.
  mark_shards_begin(mask);
  for (const Access& access : accesses) {
    Shard& shard = shard_of(access.region);
    versa::LockGuard lock(shard.mutex);
    RegionState& rs = state_at(shard, access.region);
    rs.last_use = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    const bool valid_here = (rs.valid_mask & bit(space)) != 0;
    if (reads(access.mode) && !valid_here) {
      const SpaceId from = choose_source(rs, space);
      emit_copy(rs, from, space, out);
      add_valid(rs, space);
    } else if (!valid_here) {
      add_valid(rs, space);
    }
    if (writes(access.mode)) {
      for (SpaceId s = 0; s < machine_.space_count(); ++s) {
        if (s != space) drop_valid(rs, s);
      }
      rs.dirty = (space == kHostSpace) ? kInvalidSpace : space;
    }
  }
  mark_shards_end(mask);
}

template <typename Fn>
auto DataDirectory::read_consistent(const AccessList& accesses,
                                    Fn&& fn) const {
  // Per-shard seqlock read path: run `fn` inside a window where the
  // global epoch is even and stable and every *touched* shard shows no
  // active writer and a stable epoch. Each region access inside `fn`
  // takes its shard lock, so there are no data races regardless — the
  // epochs only vouch for *cross-region* consistency. Mutations of
  // untouched shards no longer force a retry. Bounded retries (named
  // config, see kDefaultConsistentReadRetries), then exclude both mutator
  // paths via an exclusive hold of the writer mutex (rank 13 -> shard
  // rank 14 inside `fn` is in documented order). The fallback cannot
  // starve: it waits only for in-flight critical sections to drain, and
  // once the exclusive hold is granted `fn` runs mutation-free.
  const int retries = read_retries_.load(std::memory_order_relaxed);
  for (int attempt = 0; attempt < retries; ++attempt) {
    const std::uint64_t global_before = epoch_.load(std::memory_order_acquire);
    if (global_before & 1) {  // an exclusive mutator is publishing
      std::this_thread::yield();
      continue;
    }
    const std::uint64_t mask = shard_mask(accesses);
    std::array<std::uint64_t, kShardCount> before{};
    bool busy = false;
    for (std::size_t i = 0; i < kShardCount && !busy; ++i) {
      if ((mask & shard_bit(i)) == 0) continue;
      // Epoch first, writer count second: a writer arriving between the
      // two loads is caught by the count; one arriving after is caught by
      // the final epoch comparison.
      before[i] = shards_[i].epoch.load(std::memory_order_acquire);
      busy = shards_[i].writers.load(std::memory_order_acquire) != 0;
    }
    if (busy) {
      std::this_thread::yield();
      continue;
    }
    auto result = fn();
    bool stable = epoch_.load(std::memory_order_acquire) == global_before;
    for (std::size_t i = 0; i < kShardCount && stable; ++i) {
      if ((mask & shard_bit(i)) == 0) continue;
      stable = shards_[i].epoch.load(std::memory_order_acquire) == before[i];
    }
    if (stable) return result;
  }
  stats_.record_consistent_fallback();
  versa::SharedMutexExclusiveGuard writer(mutex_);
  return fn();
}

std::uint64_t DataDirectory::bytes_missing(const AccessList& accesses,
                                           SpaceId space) const {
  return read_consistent(accesses, [&]() {
    std::uint64_t missing = 0;
    for (const Access& access : accesses) {
      if (!reads(access.mode)) continue;
      const Shard& shard = shard_of(access.region);
      versa::LockGuard lock(shard.mutex);
      const RegionState& rs = state_at(shard, access.region);
      if ((rs.valid_mask & bit(space)) == 0) missing += rs.desc.size;
    }
    return missing;
  });
}

std::uint64_t DataDirectory::bytes_valid(const AccessList& accesses,
                                         SpaceId space) const {
  return read_consistent(accesses, [&]() {
    std::uint64_t valid = 0;
    for (const Access& access : accesses) {
      const Shard& shard = shard_of(access.region);
      versa::LockGuard lock(shard.mutex);
      const RegionState& rs = state_at(shard, access.region);
      if (rs.valid_mask & bit(space)) valid += rs.desc.size;
    }
    return valid;
  });
}

Duration DataDirectory::transfer_cost(const AccessList& accesses,
                                      SpaceId space) const {
  const std::uint64_t missing = bytes_missing(accesses, space);
  if (missing == 0) return 0.0;
  // Estimate with the host->space link when it exists (the dominant path);
  // same-space placements already returned zero above.
  const LinkDesc* link = machine_.interconnect().find(kHostSpace, space);
  if (link == nullptr) return 0.0;
  return link->latency + static_cast<double>(missing) / link->bandwidth;
}

void DataDirectory::flush_all(TransferList& out) {
  versa::SharedMutexExclusiveGuard writer(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  // Walk ids in registration order so the emitted TransferList is ordered
  // exactly as the historical single-vector walk (the sim replays it).
  const std::size_t limit = region_limit_.load(std::memory_order_relaxed);
  for (RegionId id = 0; id < limit; ++id) {
    Shard& shard = shard_of(id);
    std::uint64_t touched = 0;
    {
      versa::LockGuard lock(shard.mutex);
      RegionState& rs = shard.regions[slot_of(id)];
      if (rs.dirty != kInvalidSpace) {
        touched = shard_bit(id % kShardCount);
        mark_shards_begin(touched);
        emit_copy(rs, rs.dirty, kHostSpace, out);
        add_valid(rs, kHostSpace);
        rs.dirty = kInvalidSpace;
      }
    }
    if (touched != 0) mark_shards_end(touched);
  }
  epoch_.fetch_add(1, std::memory_order_release);
}

void DataDirectory::flush_region(RegionId id, TransferList& out) {
  versa::SharedMutexExclusiveGuard writer(mutex_);
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t mask = shard_bit(id % kShardCount);
  mark_shards_begin(mask);
  {
    Shard& shard = shard_of(id);
    versa::LockGuard lock(shard.mutex);
    RegionState& rs = state_at(shard, id);
    if (rs.dirty != kInvalidSpace) {
      emit_copy(rs, rs.dirty, kHostSpace, out);
      add_valid(rs, kHostSpace);
      rs.dirty = kInvalidSpace;
    }
  }
  mark_shards_end(mask);
  epoch_.fetch_add(1, std::memory_order_release);
}

bool DataDirectory::is_valid_in(RegionId id, SpaceId space) const {
  const Shard& shard = shard_of(id);
  versa::LockGuard lock(shard.mutex);
  return (state_at(shard, id).valid_mask & bit(space)) != 0;
}

SpaceId DataDirectory::dirty_space(RegionId id) const {
  const Shard& shard = shard_of(id);
  versa::LockGuard lock(shard.mutex);
  return state_at(shard, id).dirty;
}

std::uint64_t DataDirectory::used_bytes(SpaceId space) const {
  VERSA_CHECK(space < used_.size());
  return used_[space].load(std::memory_order_acquire);
}

}  // namespace versa
