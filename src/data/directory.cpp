#include "data/directory.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"

namespace versa {
namespace {

constexpr std::uint64_t bit(SpaceId space) { return std::uint64_t{1} << space; }

}  // namespace

DataDirectory::DataDirectory(const Machine& machine)
    : machine_(machine), used_(machine.space_count(), 0) {
  VERSA_CHECK_MSG(machine.space_count() <= 64,
                  "validity masks support up to 64 memory spaces");
}

RegionId DataDirectory::register_region(std::string name, std::uint64_t size,
                                        void* host_ptr) {
  VERSA_CHECK_MSG(size > 0, "zero-sized region");
  versa::LockGuard lock(mutex_);
  RegionState rs;
  rs.desc.id = static_cast<RegionId>(regions_.size());
  rs.desc.name = std::move(name);
  rs.desc.size = size;
  rs.desc.host_ptr = host_ptr;
  rs.valid_mask = bit(kHostSpace);
  used_[kHostSpace] += size;
  regions_.push_back(std::move(rs));
  ++live_regions_;
  return regions_.back().desc.id;
}

void DataDirectory::unregister_region(RegionId id) {
  versa::LockGuard lock(mutex_);
  RegionState& rs = state(id);
  VERSA_CHECK_MSG(!rs.pinned, "cannot unregister a region mid-acquire");
  if (rs.dirty != kInvalidSpace) {
    VERSA_LOG(kWarn) << "unregistering region '" << rs.desc.name
                     << "' with unflushed device data";
  }
  for (SpaceId s = 0; s < machine_.space_count(); ++s) {
    drop_valid(rs, s);
  }
  rs.dirty = kInvalidSpace;
  rs.removed = true;
  VERSA_CHECK(live_regions_ > 0);
  --live_regions_;
}

bool DataDirectory::is_registered(RegionId id) const {
  versa::LockGuard lock(mutex_);
  return id < regions_.size() && !regions_[id].removed;
}

const RegionDesc& DataDirectory::region(RegionId id) const {
  // Ref-returning accessor: the guard orders the lookup; the reference
  // stays valid because descriptors are never moved (ids never reused).
  versa::LockGuard lock(mutex_);
  return state(id).desc;
}

DataDirectory::RegionState& DataDirectory::state(RegionId id) {
  VERSA_CHECK(id < regions_.size());
  VERSA_CHECK_MSG(!regions_[id].removed, "region was unregistered");
  return regions_[id];
}

const DataDirectory::RegionState& DataDirectory::state(RegionId id) const {
  VERSA_CHECK(id < regions_.size());
  VERSA_CHECK_MSG(!regions_[id].removed, "region was unregistered");
  return regions_[id];
}

SpaceId DataDirectory::choose_source(const RegionState& rs,
                                     [[maybe_unused]] SpaceId to) const {
  VERSA_DCHECK((rs.valid_mask & bit(to)) == 0);
  // Prefer the host copy when one exists: host->device links are dedicated
  // per device, so host sourcing spreads load. Otherwise take the first
  // valid device copy (device->device transfer, the paper's Device Tx).
  if (rs.valid_mask & bit(kHostSpace)) return kHostSpace;
  for (SpaceId s = 0; s < machine_.space_count(); ++s) {
    if (rs.valid_mask & bit(s)) return s;
  }
  VERSA_CHECK_MSG(false, "region has no valid copy anywhere");
  return kInvalidSpace;
}

void DataDirectory::add_valid(RegionState& rs, SpaceId space) {
  if ((rs.valid_mask & bit(space)) == 0) {
    rs.valid_mask |= bit(space);
    used_[space] += rs.desc.size;
  }
}

void DataDirectory::drop_valid(RegionState& rs, SpaceId space) {
  if (rs.valid_mask & bit(space)) {
    rs.valid_mask &= ~bit(space);
    VERSA_DCHECK(used_[space] >= rs.desc.size);
    used_[space] -= rs.desc.size;
  }
}

void DataDirectory::emit_copy(RegionState& rs, SpaceId from, SpaceId to,
                              TransferList& out) {
  const TransferCategory category = classify_transfer(from, to);
  out.push_back(TransferOp{rs.desc.id, from, to, rs.desc.size, category});
  stats_.record(category, rs.desc.size);
}

void DataDirectory::make_room(SpaceId space, std::uint64_t needed,
                              TransferList& out) {
  const std::uint64_t capacity = machine_.space(space).capacity;
  if (capacity == 0) return;  // unlimited
  while (used_[space] + needed > capacity) {
    // Find the least recently used unpinned region valid in this space.
    RegionState* victim = nullptr;
    for (auto& rs : regions_) {
      if (rs.pinned || (rs.valid_mask & bit(space)) == 0) continue;
      if (victim == nullptr || rs.last_use < victim->last_use) victim = &rs;
    }
    if (victim == nullptr) {
      VERSA_LOG(kWarn) << "memory space " << machine_.space(space).name
                       << " over-committed; cannot evict";
      return;
    }
    if (victim->dirty == space) {
      // Write back before dropping the only modified copy.
      emit_copy(*victim, space, kHostSpace, out);
      add_valid(*victim, kHostSpace);
      victim->dirty = kInvalidSpace;
    }
    drop_valid(*victim, space);
    ++evictions_;
  }
}

void DataDirectory::acquire(const AccessList& accesses, SpaceId space,
                            TransferList& out) {
  VERSA_CHECK(space < machine_.space_count());
  versa::LockGuard lock(mutex_);
  // Pin the working set so evictions never victimize data this very task
  // is about to use.
  std::uint64_t incoming = 0;
  for (const Access& access : accesses) {
    RegionState& rs = state(access.region);
    rs.pinned = true;
    if ((rs.valid_mask & bit(space)) == 0) incoming += rs.desc.size;
  }
  make_room(space, incoming, out);

  for (const Access& access : accesses) {
    RegionState& rs = state(access.region);
    rs.last_use = ++tick_;
    const bool valid_here = (rs.valid_mask & bit(space)) != 0;
    if (reads(access.mode) && !valid_here) {
      const SpaceId from = choose_source(rs, space);
      emit_copy(rs, from, space, out);
      add_valid(rs, space);
    } else if (!valid_here) {
      // Pure output: no copy-in, the space just gains the (about to be
      // overwritten) only copy.
      add_valid(rs, space);
    }
    if (writes(access.mode)) {
      // Single-writer: invalidate every other copy.
      for (SpaceId s = 0; s < machine_.space_count(); ++s) {
        if (s != space) drop_valid(rs, s);
      }
      rs.dirty = (space == kHostSpace) ? kInvalidSpace : space;
    }
  }
  for (const Access& access : accesses) {
    state(access.region).pinned = false;
  }
}

std::uint64_t DataDirectory::bytes_missing(const AccessList& accesses,
                                           SpaceId space) const {
  versa::LockGuard lock(mutex_);
  std::uint64_t missing = 0;
  for (const Access& access : accesses) {
    if (!reads(access.mode)) continue;
    const RegionState& rs = state(access.region);
    if ((rs.valid_mask & bit(space)) == 0) missing += rs.desc.size;
  }
  return missing;
}

std::uint64_t DataDirectory::bytes_valid(const AccessList& accesses,
                                         SpaceId space) const {
  versa::LockGuard lock(mutex_);
  std::uint64_t valid = 0;
  for (const Access& access : accesses) {
    const RegionState& rs = state(access.region);
    if (rs.valid_mask & bit(space)) valid += rs.desc.size;
  }
  return valid;
}

void DataDirectory::flush_all(TransferList& out) {
  versa::LockGuard lock(mutex_);
  for (auto& rs : regions_) {
    if (rs.dirty != kInvalidSpace) {
      emit_copy(rs, rs.dirty, kHostSpace, out);
      add_valid(rs, kHostSpace);
      rs.dirty = kInvalidSpace;
    }
  }
}

void DataDirectory::flush_region(RegionId id, TransferList& out) {
  versa::LockGuard lock(mutex_);
  RegionState& rs = state(id);
  if (rs.dirty != kInvalidSpace) {
    emit_copy(rs, rs.dirty, kHostSpace, out);
    add_valid(rs, kHostSpace);
    rs.dirty = kInvalidSpace;
  }
}

bool DataDirectory::is_valid_in(RegionId id, SpaceId space) const {
  versa::LockGuard lock(mutex_);
  return (state(id).valid_mask & bit(space)) != 0;
}

SpaceId DataDirectory::dirty_space(RegionId id) const {
  versa::LockGuard lock(mutex_);
  return state(id).dirty;
}

std::uint64_t DataDirectory::used_bytes(SpaceId space) const {
  versa::LockGuard lock(mutex_);
  VERSA_CHECK(space < used_.size());
  return used_[space];
}

}  // namespace versa
