// Virtual-time transfer engine.
//
// Models each interconnect link as a serial resource: copies on the same
// link queue up; copies on different links proceed concurrently. This is
// what makes transfer/compute overlap and prefetching meaningful in the
// simulation — a prefetch issued early completes before the task needs it,
// exactly like the asynchronous CUDA copies the paper's runtime uses.
#pragma once

#include <cstdint>
#include <vector>

#include "data/directory.h"
#include "machine/machine.h"

namespace versa {

/// One modelled copy hop (staged transfers record one entry per hop).
struct TransferRecord {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  Time start = 0.0;
  Time end = 0.0;
};

class TransferEngine {
 public:
  explicit TransferEngine(const Machine& machine);

  /// Model the execution of `ops` starting no earlier than `start`.
  /// Each op occupies its link after the link's previous work; ops without
  /// a direct link are routed over the fewest-hop path through the link
  /// graph (e.g. GPU -> node host -> network -> node host -> GPU on a
  /// cluster), each hop serializing on its link.
  /// Returns the completion time of the whole batch.
  Time enqueue(const TransferList& ops, Time start);

  /// Completion time for a single op (used by tests).
  Time enqueue_one(const TransferOp& op, Time start);

  /// Earliest time the link from->to becomes free.
  Time link_free_at(SpaceId from, SpaceId to) const;

  /// Total bytes routed (including staging hops).
  std::uint64_t routed_bytes() const { return routed_bytes_; }

  /// Per-hop timeline of every modelled copy, in issue order (feeds the
  /// overlap analyzer and the trace exporter).
  const std::vector<TransferRecord>& records() const { return records_; }

  void reset();

 private:
  struct LinkState {
    SpaceId from;
    SpaceId to;
    Time busy_until = 0.0;
  };

  const Machine& machine_;
  std::vector<LinkState> links_;
  std::uint64_t routed_bytes_ = 0;
  std::vector<TransferRecord> records_;
  RegionId current_region_ = 0;  ///< region of the op being enqueued
  /// Memoized fewest-hop routes keyed by (from, to).
  std::vector<std::vector<std::vector<SpaceId>>> routes_;

  LinkState& link_state(SpaceId from, SpaceId to);
  Time occupy(SpaceId from, SpaceId to, std::uint64_t bytes, Time start);

  /// Space sequence from -> ... -> to (inclusive); computed by BFS over
  /// the link graph and cached. Aborts if no path exists.
  const std::vector<SpaceId>& route(SpaceId from, SpaceId to);
};

}  // namespace versa
