// Virtual-time transfer engine.
//
// Models each interconnect link as a serial resource: copies on the same
// link queue up; copies on different links proceed concurrently. This is
// what makes transfer/compute overlap and prefetching meaningful in the
// simulation — a prefetch issued early completes before the task needs it,
// exactly like the asynchronous CUDA copies the paper's runtime uses.
//
// Thread-safety: like DataDirectory, the engine state sits behind its own
// annotated mutex of lock class `data` (rank 13) and every public method
// is callable without the runtime lock. The hot aggregate (routed bytes,
// record count) is mirrored into relaxed atomics so monitoring reads never
// touch the mutex; the per-hop timeline borrow (records()) remains a
// sim-only, runtime-lock-serialized accessor (DESIGN.md §9).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "data/directory.h"
#include "machine/machine.h"
#include "util/annotated_sync.h"

namespace versa {

/// One modelled copy hop (staged transfers record one entry per hop).
struct TransferRecord {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  Time start = 0.0;
  Time end = 0.0;
};

class TransferEngine {
 public:
  explicit TransferEngine(const Machine& machine);

  /// Model the execution of `ops` starting no earlier than `start`.
  /// Each op occupies its link after the link's previous work; ops without
  /// a direct link are routed over the fewest-hop path through the link
  /// graph (e.g. GPU -> node host -> network -> node host -> GPU on a
  /// cluster), each hop serializing on its link.
  /// Returns the completion time of the whole batch.
  Time enqueue(const TransferList& ops, Time start);

  /// Completion time for a single op (used by tests).
  Time enqueue_one(const TransferOp& op, Time start);

  /// Earliest time the link from->to becomes free.
  Time link_free_at(SpaceId from, SpaceId to) const;

  /// Total bytes routed (including staging hops). Lock-free: reads the
  /// atomic mirror, exact once enqueuers quiesce.
  std::uint64_t routed_bytes() const {
    return routed_bytes_mirror_.load(std::memory_order_acquire);
  }

  /// Number of per-hop records accumulated so far (lock-free mirror of
  /// records().size() — the concurrency tests poll it while enqueuers
  /// are still running).
  std::uint64_t record_count() const {
    return record_count_.load(std::memory_order_acquire);
  }

  /// Per-hop timeline of every modelled copy, in issue order (feeds the
  /// overlap analyzer and the trace exporter). Borrowed reference into
  /// lock-guarded state: callers are runtime-lock serialized (sim-only
  /// engine); the guard inside orders the lookup itself.
  const std::vector<TransferRecord>& records() const {
    versa::LockGuard lock(mutex_);
    return records_;
  }

  void reset();

 private:
  struct LinkState {
    SpaceId from;
    SpaceId to;
    Time busy_until = 0.0;
  };

  const Machine& machine_;
  /// Engine state lock (class `data`, rank 13); serializes concurrent
  /// enqueuers — see the header comment.
  mutable versa::Mutex mutex_{lock_order::kLockRankData};
  std::vector<LinkState> links_ VERSA_GUARDED_BY(mutex_);
  std::uint64_t routed_bytes_ VERSA_GUARDED_BY(mutex_) = 0;
  std::vector<TransferRecord> records_ VERSA_GUARDED_BY(mutex_);
  /// Lock-free mirrors of routed_bytes_ / records_.size(), published by
  /// enqueuers under the mutex, read by monitoring threads without it.
  std::atomic<std::uint64_t> routed_bytes_mirror_{0};
  std::atomic<std::uint64_t> record_count_{0};
  /// Region of the op being enqueued.
  RegionId current_region_ VERSA_GUARDED_BY(mutex_) = 0;
  /// Memoized fewest-hop routes keyed by (from, to).
  std::vector<std::vector<std::vector<SpaceId>>> routes_
      VERSA_GUARDED_BY(mutex_);

  /// enqueue_one body, shared with enqueue's batch loop.
  Time enqueue_one_locked(const TransferOp& op, Time start)
      VERSA_REQUIRES(mutex_);

  LinkState& link_state(SpaceId from, SpaceId to) VERSA_REQUIRES(mutex_);
  Time occupy(SpaceId from, SpaceId to, std::uint64_t bytes, Time start)
      VERSA_REQUIRES(mutex_);

  /// Space sequence from -> ... -> to (inclusive); computed by BFS over
  /// the link graph and cached. Aborts if no path exists.
  const std::vector<SpaceId>& route(SpaceId from, SpaceId to)
      VERSA_REQUIRES(mutex_);
};

}  // namespace versa
