#include "data/data_region.h"

// RegionDesc is plain data; directory.cpp holds the region table logic.
