#include "data/transfer_stats.h"

#include "common/string_util.h"

namespace versa {

const char* to_string(TransferCategory category) {
  switch (category) {
    case TransferCategory::kInput:
      return "input";
    case TransferCategory::kOutput:
      return "output";
    case TransferCategory::kDevice:
      return "device";
    case TransferCategory::kLocal:
      return "local";
  }
  return "?";
}

TransferCategory classify_transfer(SpaceId from, SpaceId to) {
  if (from == to) return TransferCategory::kLocal;
  if (from == kHostSpace) return TransferCategory::kInput;
  if (to == kHostSpace) return TransferCategory::kOutput;
  return TransferCategory::kDevice;
}

void TransferStats::record(TransferCategory category, std::uint64_t bytes) {
  switch (category) {
    case TransferCategory::kInput:
      input_bytes += bytes;
      ++input_count;
      break;
    case TransferCategory::kOutput:
      output_bytes += bytes;
      ++output_count;
      break;
    case TransferCategory::kDevice:
      device_bytes += bytes;
      ++device_count;
      break;
    case TransferCategory::kLocal:
      break;
  }
}

TransferStats& TransferStats::operator+=(const TransferStats& other) {
  input_bytes += other.input_bytes;
  consistent_fallback_count += other.consistent_fallback_count;
  output_bytes += other.output_bytes;
  device_bytes += other.device_bytes;
  input_count += other.input_count;
  output_count += other.output_count;
  device_count += other.device_count;
  return *this;
}

void AtomicTransferStats::record(TransferCategory category,
                                 std::uint64_t bytes) {
  switch (category) {
    case TransferCategory::kInput:
      input_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      input_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TransferCategory::kOutput:
      output_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      output_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TransferCategory::kDevice:
      device_bytes_.fetch_add(bytes, std::memory_order_relaxed);
      device_count_.fetch_add(1, std::memory_order_relaxed);
      break;
    case TransferCategory::kLocal:
      break;
  }
}

TransferStats AtomicTransferStats::snapshot() const {
  TransferStats out;
  out.input_bytes = input_bytes_.load(std::memory_order_relaxed);
  out.output_bytes = output_bytes_.load(std::memory_order_relaxed);
  out.device_bytes = device_bytes_.load(std::memory_order_relaxed);
  out.input_count = input_count_.load(std::memory_order_relaxed);
  out.output_count = output_count_.load(std::memory_order_relaxed);
  out.device_count = device_count_.load(std::memory_order_relaxed);
  out.consistent_fallback_count =
      consistent_fallbacks_.load(std::memory_order_relaxed);
  return out;
}

void AtomicTransferStats::reset() {
  input_bytes_.store(0, std::memory_order_relaxed);
  output_bytes_.store(0, std::memory_order_relaxed);
  device_bytes_.store(0, std::memory_order_relaxed);
  input_count_.store(0, std::memory_order_relaxed);
  output_count_.store(0, std::memory_order_relaxed);
  device_count_.store(0, std::memory_order_relaxed);
  consistent_fallbacks_.store(0, std::memory_order_relaxed);
}

std::string TransferStats::summary() const {
  std::string out = "in=" + format_bytes(static_cast<double>(input_bytes));
  out += " out=" + format_bytes(static_cast<double>(output_bytes));
  out += " dev=" + format_bytes(static_cast<double>(device_bytes));
  return out;
}

}  // namespace versa
