// Transfer accounting in the three categories the paper reports (§V-A):
//   Input Tx  — host memory -> any GPU memory (each destination counted),
//   Output Tx — any GPU memory -> host memory,
//   Device Tx — GPU memory -> GPU memory (two-GPU runs).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace versa {

enum class TransferCategory : std::uint8_t {
  kInput,   ///< host -> device
  kOutput,  ///< device -> host
  kDevice,  ///< device -> device
  kLocal,   ///< same-space (no actual copy; kept for completeness)
};

const char* to_string(TransferCategory category);

/// Classify a copy by its endpoints.
TransferCategory classify_transfer(SpaceId from, SpaceId to);

struct TransferStats {
  std::uint64_t input_bytes = 0;
  std::uint64_t output_bytes = 0;
  std::uint64_t device_bytes = 0;
  std::uint64_t input_count = 0;
  std::uint64_t output_count = 0;
  std::uint64_t device_count = 0;
  /// Consistent reads that exhausted their bounded seqlock retries and fell
  /// back to the directory writer mutex (the non-starvation escape hatch;
  /// sustained values signal write pressure worth investigating).
  std::uint64_t consistent_fallback_count = 0;

  void record(TransferCategory category, std::uint64_t bytes);

  std::uint64_t total_bytes() const {
    return input_bytes + output_bytes + device_bytes;
  }
  std::uint64_t total_count() const {
    return input_count + output_count + device_count;
  }

  TransferStats& operator+=(const TransferStats& other);

  /// "in=1.50 GB out=340 MB dev=0 B" — for logs and reports.
  std::string summary() const;
};

/// Lock-free mirror of TransferStats for the concurrent data path: the
/// directory records transfers from any thread without a stats lock, and
/// readers snapshot a plain TransferStats at any time. Per-counter
/// relaxed atomics — a snapshot taken during a record() may see the byte
/// counter bumped before the count (or vice versa); totals are exact once
/// the writers quiesce, which is what the reports read.
class AtomicTransferStats {
 public:
  void record(TransferCategory category, std::uint64_t bytes);

  /// Count one writer-mutex fallback of the consistent-read path.
  void record_consistent_fallback() {
    consistent_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Plain-value snapshot for reporting (`Runtime::transfer_stats()`).
  TransferStats snapshot() const;

  void reset();

 private:
  std::atomic<std::uint64_t> input_bytes_{0};
  std::atomic<std::uint64_t> output_bytes_{0};
  std::atomic<std::uint64_t> device_bytes_{0};
  std::atomic<std::uint64_t> input_count_{0};
  std::atomic<std::uint64_t> output_count_{0};
  std::atomic<std::uint64_t> device_count_{0};
  std::atomic<std::uint64_t> consistent_fallbacks_{0};
};

}  // namespace versa
