// Registered data regions.
//
// A region is a contiguous object the runtime manages across memory spaces
// (a matrix tile, a vector slice, ...). Regions may be backed by real host
// storage (functional execution on the thread backend) or be purely virtual
// (paper-scale simulation, where allocating 4 GB matrices would be wasteful
// — only sizes matter for timing and transfer accounting).
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace versa {

struct RegionDesc {
  RegionId id = 0;
  std::string name;
  std::uint64_t size = 0;  ///< bytes
  /// Host backing storage; nullptr for virtual regions. The runtime never
  /// owns this memory — lifetime belongs to the application.
  void* host_ptr = nullptr;

  bool is_virtual() const { return host_ptr == nullptr; }
};

}  // namespace versa
