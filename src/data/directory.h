// Software cache-coherence directory across memory spaces.
//
// OmpSs semantics: shared data may be replicated in several memory spaces;
// the runtime keeps the copies coherent by tracking, per region, which
// spaces hold a valid copy (single-writer / multiple-reader). A task's
// copy_deps clauses are satisfied *before* it runs (acquire); writes
// invalidate remote copies; taskwait flushes dirty device data back to the
// host unless the noflush clause is used.
//
// The directory is a pure bookkeeping machine: it decides *which* copies
// must happen and accounts them (Input/Output/Device Tx, §V-A); executors
// decide *when* they happen (and, in simulation, how long they take).
//
// Thread-safety: the directory is internally synchronized and every public
// method is callable WITHOUT the runtime lock (DESIGN.md §9). Region state
// is sharded by region id across `kShardCount` shards, each behind its own
// `data.shard` (rank 14) mutex, and each carrying its own *mutation epoch*
// (plus an active-writer count). Two mutator paths publish through them:
//
//   * Exclusive mutators (register/unregister/flush/acquire into a
//     capacity-limited space — anything that needs the global view for
//     pinning and LRU eviction) hold the writer mutex (class `data`,
//     rank 13) exclusively and additionally flip the legacy global seqlock
//     epoch odd/even.
//   * Parallel acquires (into capacity-unlimited spaces, the common case
//     for the simulated-GPU and thread-backend staging paths) hold the
//     writer mutex *shared*, so disjoint-region acquires commit in
//     parallel; they announce themselves only on the shards they touch
//     (writer count up, epoch bump, mutate under the shard locks, epoch
//     bump, writer count down).
//
// Reads over a single region take only the shard lock. Reads that span
// regions (bytes_missing / bytes_valid / transfer_cost — the schedulers'
// pricing queries) revalidate ONLY the shards their access list touches:
// sample the touched shard epochs, run, and retry if a shard epoch moved
// or a writer was active. After `consistent_read_retries()` failed
// attempts they fall back to an exclusive hold of the writer mutex, which
// excludes both mutator paths outright — the fallback is what makes the
// read path non-starving, and each one is counted in the transfer stats
// (`consistent_fallback_count`). Concurrent placement decisions built on
// those answers re-validate against shard_epoch(shard_mask(accesses)) —
// the per-shard form of the DESIGN.md §9 re-validation rule —
// or mutation_epoch(), the folded legacy counter.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "data/data_region.h"
#include "data/transfer_stats.h"
#include "machine/machine.h"
#include "task/access.h"
#include "util/annotated_sync.h"

namespace versa {

/// One required copy, produced by acquire()/flush().
struct TransferOp {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  TransferCategory category = TransferCategory::kLocal;
};

using TransferList = std::vector<TransferOp>;

class DataDirectory {
 public:
  /// Region ids stripe across shards (`id % kShardCount`). Public so the
  /// DependencyAnalyzer mirrors the same striping and tests/benches can
  /// construct disjoint-shard workloads deliberately.
  static constexpr std::size_t kShardCount = 8;

  /// Default bounded-retry count of the consistent-read seqlock loop
  /// before it falls back to the writer mutex. Override per directory
  /// with set_consistent_read_retries() (RuntimeConfig plumbs
  /// VERSA_READ_RETRIES here).
  static constexpr int kDefaultConsistentReadRetries = 8;

  explicit DataDirectory(const Machine& machine);

  /// Register a managed region. `host_ptr` may be null (virtual region).
  /// The fresh region is valid in host memory only.
  RegionId register_region(std::string name, std::uint64_t size,
                           void* host_ptr = nullptr);

  /// Drop a region from management: every copy is released (dirty device
  /// data is discarded — flush first if it matters) and its id becomes
  /// invalid for future calls. Ids are never reused.
  void unregister_region(RegionId id);

  bool is_registered(RegionId id) const;

  /// Borrowed reference into shard-guarded state: valid because region
  /// descriptors live in per-shard deques and are never moved or erased
  /// (ids are never reused); the shard guard inside orders the lookup.
  const RegionDesc& region(RegionId id) const;
  std::size_t region_count() const {
    return region_limit_.load(std::memory_order_acquire);
  }
  std::size_t live_region_count() const {
    return live_regions_.load(std::memory_order_acquire);
  }

  /// Make every region accessed by `accesses` coherent for execution in
  /// `space`: appends the copies required to `out`, updates validity
  /// (writes invalidate other spaces) and evicts LRU copies if the space
  /// would overflow. Must be called in dependence order per task chain —
  /// the task graph orders conflicting acquires, so concurrent calls only
  /// ever touch disjoint or read-shared regions. Acquires into
  /// capacity-limited spaces serialize on the writer mutex; acquires into
  /// unlimited spaces run in parallel under a shared hold, publishing
  /// through their shards' epochs (each acquire is atomic as a whole to
  /// consistent readers).
  void acquire(const AccessList& accesses, SpaceId space, TransferList& out);

  /// Bytes that would need copying into `space` to run `accesses` there.
  /// Pure query — the affinity scheduler's cost function. Answers are
  /// consistent: computed from one epoch-stable directory state.
  std::uint64_t bytes_missing(const AccessList& accesses, SpaceId space) const;

  /// Bytes of `accesses` already valid in `space` (locality score).
  std::uint64_t bytes_valid(const AccessList& accesses, SpaceId space) const;

  /// Estimated seconds to stage the missing bytes of `accesses` into
  /// `space` over the host->space link (the dominant path): zero when
  /// nothing is missing or no such link exists, else
  /// latency + missing/bandwidth. The locality-versioning scheduler's
  /// placement penalty — callable without any runtime involvement.
  Duration transfer_cost(const AccessList& accesses, SpaceId space) const;

  /// Copy every dirty region back to host (taskwait flush semantics).
  void flush_all(TransferList& out);

  /// Flush one region (taskwait on(...) semantics).
  void flush_region(RegionId id, TransferList& out);

  bool is_valid_in(RegionId id, SpaceId space) const;

  /// Space holding the only modified copy, or kInvalidSpace if the host
  /// copy is current.
  SpaceId dirty_space(RegionId id) const;

  std::uint64_t used_bytes(SpaceId space) const;

  /// Bitmask (bit i = shard i) of the shards `accesses` touches — the key
  /// for shard_epoch() re-validation.
  static std::uint64_t shard_mask(const AccessList& accesses);

  /// Folded epoch of the shards selected by `mask`: equal samples around
  /// a computation prove none of those shards was mutated in between
  /// (every component is monotone). The schedulers' per-shard
  /// re-validation snapshot.
  std::uint64_t shard_epoch(std::uint64_t mask) const;

  /// Legacy whole-directory mutation counter: the global seqlock epoch
  /// folded with every shard epoch. Monotone; equal samples prove the
  /// whole directory is unchanged. Callers that know their access list
  /// should prefer shard_epoch(shard_mask(...)) so disjoint-shard
  /// mutations do not invalidate them.
  std::uint64_t mutation_epoch() const {
    std::uint64_t folded = epoch_.load(std::memory_order_acquire);
    for (const Shard& shard : shards_) {
      folded += shard.epoch.load(std::memory_order_acquire);
    }
    return folded;
  }

  /// Bounded retry count of the consistent-read loop (named config; see
  /// kDefaultConsistentReadRetries). 0 means "always fall back".
  int consistent_read_retries() const {
    return read_retries_.load(std::memory_order_relaxed);
  }
  void set_consistent_read_retries(int retries) {
    read_retries_.store(retries < 0 ? 0 : retries,
                        std::memory_order_relaxed);
  }

  /// Plain-value snapshot of the transfer accounting.
  TransferStats stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

  /// Number of evictions performed due to capacity pressure.
  std::uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_acquire);
  }

 private:
  struct RegionState {
    RegionDesc desc;
    std::uint64_t valid_mask = 1;  ///< bit per space; bit 0 = host
    SpaceId dirty = kInvalidSpace;
    std::uint64_t last_use = 0;
    bool pinned = false;   ///< set while part of an in-flight acquire
    bool removed = false;  ///< unregistered (tombstone; ids never reused)
  };

  struct Shard {
    mutable versa::Mutex mutex{lock_order::kLockRankDataShard};
    std::deque<RegionState> regions VERSA_GUARDED_BY(mutex);
    /// Per-shard mutation epoch: bumped once when a mutator announces
    /// itself on this shard and once when it finishes, so equal samples
    /// with no active writer bracket a mutation-free interval.
    std::atomic<std::uint64_t> epoch{0};
    /// Mutators currently announced on this shard (parallel acquires can
    /// overlap; consistent readers treat any active writer as "retry").
    std::atomic<std::uint32_t> writers{0};
  };

  const Machine& machine_;

  /// Writer mutex (class `data`, rank 13): exclusive mutators and the
  /// consistent-read fallback hold it exclusively; parallel acquires hold
  /// it shared. Shard mutexes (rank 14) nest inside either mode.
  mutable versa::SharedMutex mutex_{lock_order::kLockRankData};
  std::array<Shard, kShardCount> shards_;

  /// Legacy global seqlock epoch: odd while an *exclusive* mutator is
  /// publishing, even otherwise. Parallel acquires do not touch it —
  /// their footprint lives in the shard epochs.
  std::atomic<std::uint64_t> epoch_{0};
  /// Number of region ids handed out (tombstones included).
  std::atomic<std::size_t> region_limit_{0};
  /// Per-space bytes of valid copies (relaxed mirrors; mutated under the
  /// owning region's shard lock, read lock-free by used_bytes()).
  std::vector<std::atomic<std::uint64_t>> used_;
  /// Mutable: the const consistent-read path counts its writer-mutex
  /// fallbacks (accounting only, internally synchronized).
  mutable AtomicTransferStats stats_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> live_regions_{0};
  std::atomic<int> read_retries_{kDefaultConsistentReadRetries};

  Shard& shard_of(RegionId id) { return shards_[id % kShardCount]; }
  const Shard& shard_of(RegionId id) const { return shards_[id % kShardCount]; }
  static std::size_t slot_of(RegionId id) { return id / kShardCount; }

  RegionState& state_at(Shard& shard, RegionId id)
      VERSA_REQUIRES(shard.mutex);
  const RegionState& state_at(const Shard& shard, RegionId id) const
      VERSA_REQUIRES(shard.mutex);

  /// Pick the source space for a copy into `to` (prefers host).
  SpaceId choose_source(const RegionState& rs, SpaceId to) const;

  void add_valid(RegionState& rs, SpaceId space);
  void drop_valid(RegionState& rs, SpaceId space);
  void emit_copy(RegionState& rs, SpaceId from, SpaceId to, TransferList& out);

  /// Announce a mutation on every shard in `mask` / retract the
  /// announcement. Begin marks must all land before the first region is
  /// touched so multi-shard mutations stay atomic to consistent readers.
  void mark_shards_begin(std::uint64_t mask);
  void mark_shards_end(std::uint64_t mask);

  /// The two acquire paths (see class comment).
  void acquire_exclusive(const AccessList& accesses, SpaceId space,
                         TransferList& out);
  void acquire_parallel(const AccessList& accesses, SpaceId space,
                        TransferList& out);

  /// Evict LRU unpinned copies from `space` until `needed` bytes fit.
  /// Called with the writer mutex held exclusively; takes shard locks
  /// (and marks victim shards) internally.
  void make_room(SpaceId space, std::uint64_t needed, TransferList& out)
      VERSA_REQUIRES(mutex_);

  /// Run `fn` (which reads regions under their shard locks) against one
  /// consistent directory state: revalidate the global epoch plus the
  /// shards `accesses` touches, retrying up to consistent_read_retries()
  /// times, then exclude all mutators via an exclusive hold of the writer
  /// mutex (counted in consistent_fallback_count).
  template <typename Fn>
  auto read_consistent(const AccessList& accesses, Fn&& fn) const;
};

}  // namespace versa
