// Software cache-coherence directory across memory spaces.
//
// OmpSs semantics: shared data may be replicated in several memory spaces;
// the runtime keeps the copies coherent by tracking, per region, which
// spaces hold a valid copy (single-writer / multiple-reader). A task's
// copy_deps clauses are satisfied *before* it runs (acquire); writes
// invalidate remote copies; taskwait flushes dirty device data back to the
// host unless the noflush clause is used.
//
// The directory is a pure bookkeeping machine: it decides *which* copies
// must happen and accounts them (Input/Output/Device Tx, §V-A); executors
// decide *when* they happen (and, in simulation, how long they take).
//
// Thread-safety: the directory state lives behind its own annotated mutex
// of lock class `data` (rank 13, between the runtime lock and the
// scheduler's submission buffers). For now this is annotation + rank
// only: every caller still reaches the directory under the runtime lock,
// so the mutex is uncontended — but the GUARDED_BY/REQUIRES discipline is
// machine-checked today, and the rank slot is reserved for the future
// directory split (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/data_region.h"
#include "data/transfer_stats.h"
#include "machine/machine.h"
#include "task/access.h"
#include "util/annotated_sync.h"

namespace versa {

/// One required copy, produced by acquire()/flush().
struct TransferOp {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  TransferCategory category = TransferCategory::kLocal;
};

using TransferList = std::vector<TransferOp>;

class DataDirectory {
 public:
  explicit DataDirectory(const Machine& machine);

  /// Register a managed region. `host_ptr` may be null (virtual region).
  /// The fresh region is valid in host memory only.
  RegionId register_region(std::string name, std::uint64_t size,
                           void* host_ptr = nullptr);

  /// Drop a region from management: every copy is released (dirty device
  /// data is discarded — flush first if it matters) and its id becomes
  /// invalid for future calls. Ids are never reused.
  void unregister_region(RegionId id);

  bool is_registered(RegionId id) const;

  /// Borrowed reference into lock-guarded state: valid because region
  /// descriptors are never moved (ids are never reused) and callers are
  /// runtime-lock serialized; the guard inside orders the lookup itself.
  const RegionDesc& region(RegionId id) const;
  std::size_t region_count() const {
    versa::LockGuard lock(mutex_);
    return regions_.size();
  }
  std::size_t live_region_count() const {
    versa::LockGuard lock(mutex_);
    return live_regions_;
  }

  /// Make every region accessed by `accesses` coherent for execution in
  /// `space`: appends the copies required to `out`, updates validity
  /// (writes invalidate other spaces) and evicts LRU copies if the space
  /// would overflow. Must be called in dependence order.
  void acquire(const AccessList& accesses, SpaceId space, TransferList& out);

  /// Bytes that would need copying into `space` to run `accesses` there.
  /// Pure query — the affinity scheduler's cost function.
  std::uint64_t bytes_missing(const AccessList& accesses, SpaceId space) const;

  /// Bytes of `accesses` already valid in `space` (locality score).
  std::uint64_t bytes_valid(const AccessList& accesses, SpaceId space) const;

  /// Copy every dirty region back to host (taskwait flush semantics).
  void flush_all(TransferList& out);

  /// Flush one region (taskwait on(...) semantics).
  void flush_region(RegionId id, TransferList& out);

  bool is_valid_in(RegionId id, SpaceId space) const;

  /// Space holding the only modified copy, or kInvalidSpace if the host
  /// copy is current.
  SpaceId dirty_space(RegionId id) const;

  std::uint64_t used_bytes(SpaceId space) const;

  /// Borrowed reference into lock-guarded state (see region()).
  const TransferStats& stats() const {
    versa::LockGuard lock(mutex_);
    return stats_;
  }
  void reset_stats() {
    versa::LockGuard lock(mutex_);
    stats_ = TransferStats{};
  }

  /// Number of evictions performed due to capacity pressure.
  std::uint64_t eviction_count() const {
    versa::LockGuard lock(mutex_);
    return evictions_;
  }

 private:
  struct RegionState {
    RegionDesc desc;
    std::uint64_t valid_mask = 1;  ///< bit per space; bit 0 = host
    SpaceId dirty = kInvalidSpace;
    std::uint64_t last_use = 0;
    bool pinned = false;   ///< set while part of an in-flight acquire
    bool removed = false;  ///< unregistered (tombstone; ids never reused)
  };

  const Machine& machine_;
  /// Directory state lock (class `data`, rank 13). Uncontended today —
  /// see the header comment.
  mutable versa::Mutex mutex_{lock_order::kLockRankData};
  std::vector<RegionState> regions_ VERSA_GUARDED_BY(mutex_);
  /// Per-space bytes of valid copies.
  std::vector<std::uint64_t> used_ VERSA_GUARDED_BY(mutex_);
  TransferStats stats_ VERSA_GUARDED_BY(mutex_);
  std::uint64_t tick_ VERSA_GUARDED_BY(mutex_) = 0;
  std::uint64_t evictions_ VERSA_GUARDED_BY(mutex_) = 0;
  std::size_t live_regions_ VERSA_GUARDED_BY(mutex_) = 0;

  RegionState& state(RegionId id) VERSA_REQUIRES(mutex_);
  const RegionState& state(RegionId id) const VERSA_REQUIRES(mutex_);

  /// Pick the source space for a copy into `to` (prefers host).
  SpaceId choose_source(const RegionState& rs, SpaceId to) const
      VERSA_REQUIRES(mutex_);

  void add_valid(RegionState& rs, SpaceId space) VERSA_REQUIRES(mutex_);
  void drop_valid(RegionState& rs, SpaceId space) VERSA_REQUIRES(mutex_);
  void emit_copy(RegionState& rs, SpaceId from, SpaceId to, TransferList& out)
      VERSA_REQUIRES(mutex_);

  /// Evict LRU unpinned copies from `space` until `needed` bytes fit.
  void make_room(SpaceId space, std::uint64_t needed, TransferList& out)
      VERSA_REQUIRES(mutex_);
};

}  // namespace versa
