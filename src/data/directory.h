// Software cache-coherence directory across memory spaces.
//
// OmpSs semantics: shared data may be replicated in several memory spaces;
// the runtime keeps the copies coherent by tracking, per region, which
// spaces hold a valid copy (single-writer / multiple-reader). A task's
// copy_deps clauses are satisfied *before* it runs (acquire); writes
// invalidate remote copies; taskwait flushes dirty device data back to the
// host unless the noflush clause is used.
//
// The directory is a pure bookkeeping machine: it decides *which* copies
// must happen and accounts them (Input/Output/Device Tx, §V-A); executors
// decide *when* they happen (and, in simulation, how long they take).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/data_region.h"
#include "data/transfer_stats.h"
#include "machine/machine.h"
#include "task/access.h"

namespace versa {

/// One required copy, produced by acquire()/flush().
struct TransferOp {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  TransferCategory category = TransferCategory::kLocal;
};

using TransferList = std::vector<TransferOp>;

class DataDirectory {
 public:
  explicit DataDirectory(const Machine& machine);

  /// Register a managed region. `host_ptr` may be null (virtual region).
  /// The fresh region is valid in host memory only.
  RegionId register_region(std::string name, std::uint64_t size,
                           void* host_ptr = nullptr);

  /// Drop a region from management: every copy is released (dirty device
  /// data is discarded — flush first if it matters) and its id becomes
  /// invalid for future calls. Ids are never reused.
  void unregister_region(RegionId id);

  bool is_registered(RegionId id) const;

  const RegionDesc& region(RegionId id) const;
  std::size_t region_count() const { return regions_.size(); }
  std::size_t live_region_count() const { return live_regions_; }

  /// Make every region accessed by `accesses` coherent for execution in
  /// `space`: appends the copies required to `out`, updates validity
  /// (writes invalidate other spaces) and evicts LRU copies if the space
  /// would overflow. Must be called in dependence order.
  void acquire(const AccessList& accesses, SpaceId space, TransferList& out);

  /// Bytes that would need copying into `space` to run `accesses` there.
  /// Pure query — the affinity scheduler's cost function.
  std::uint64_t bytes_missing(const AccessList& accesses, SpaceId space) const;

  /// Bytes of `accesses` already valid in `space` (locality score).
  std::uint64_t bytes_valid(const AccessList& accesses, SpaceId space) const;

  /// Copy every dirty region back to host (taskwait flush semantics).
  void flush_all(TransferList& out);

  /// Flush one region (taskwait on(...) semantics).
  void flush_region(RegionId id, TransferList& out);

  bool is_valid_in(RegionId id, SpaceId space) const;

  /// Space holding the only modified copy, or kInvalidSpace if the host
  /// copy is current.
  SpaceId dirty_space(RegionId id) const;

  std::uint64_t used_bytes(SpaceId space) const;

  const TransferStats& stats() const { return stats_; }
  void reset_stats() { stats_ = TransferStats{}; }

  /// Number of evictions performed due to capacity pressure.
  std::uint64_t eviction_count() const { return evictions_; }

 private:
  struct RegionState {
    RegionDesc desc;
    std::uint64_t valid_mask = 1;  ///< bit per space; bit 0 = host
    SpaceId dirty = kInvalidSpace;
    std::uint64_t last_use = 0;
    bool pinned = false;   ///< set while part of an in-flight acquire
    bool removed = false;  ///< unregistered (tombstone; ids never reused)
  };

  const Machine& machine_;
  std::vector<RegionState> regions_;
  std::vector<std::uint64_t> used_;  ///< per-space bytes of valid copies
  TransferStats stats_;
  std::uint64_t tick_ = 0;
  std::uint64_t evictions_ = 0;
  std::size_t live_regions_ = 0;

  RegionState& state(RegionId id);
  const RegionState& state(RegionId id) const;

  /// Pick the source space for a copy into `to` (prefers host).
  SpaceId choose_source(const RegionState& rs, SpaceId to) const;

  void add_valid(RegionState& rs, SpaceId space);
  void drop_valid(RegionState& rs, SpaceId space);
  void emit_copy(RegionState& rs, SpaceId from, SpaceId to, TransferList& out);

  /// Evict LRU unpinned copies from `space` until `needed` bytes fit.
  void make_room(SpaceId space, std::uint64_t needed, TransferList& out);
};

}  // namespace versa
