// Software cache-coherence directory across memory spaces.
//
// OmpSs semantics: shared data may be replicated in several memory spaces;
// the runtime keeps the copies coherent by tracking, per region, which
// spaces hold a valid copy (single-writer / multiple-reader). A task's
// copy_deps clauses are satisfied *before* it runs (acquire); writes
// invalidate remote copies; taskwait flushes dirty device data back to the
// host unless the noflush clause is used.
//
// The directory is a pure bookkeeping machine: it decides *which* copies
// must happen and accounts them (Input/Output/Device Tx, §V-A); executors
// decide *when* they happen (and, in simulation, how long they take).
//
// Thread-safety: the directory is internally synchronized and every public
// method is callable WITHOUT the runtime lock (DESIGN.md §9). Region state
// is sharded by region id across `kShardCount` shards, each behind its own
// `data.shard` (rank 14) mutex; mutators additionally serialize on the
// writer mutex of class `data` (rank 13) and publish through a seqlock
// epoch. Reads over a single region take only the shard lock; reads that
// span regions (bytes_missing / bytes_valid / transfer_cost — the
// schedulers' pricing queries) retry under the epoch until they observe a
// mutation-free interval, falling back to the writer mutex under sustained
// write pressure, so every answer corresponds to one consistent directory
// state. Concurrent placement decisions built on those answers re-validate
// against mutation_epoch() (the schedulers' re-validation rule).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "data/data_region.h"
#include "data/transfer_stats.h"
#include "machine/machine.h"
#include "task/access.h"
#include "util/annotated_sync.h"

namespace versa {

/// One required copy, produced by acquire()/flush().
struct TransferOp {
  RegionId region = 0;
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  std::uint64_t bytes = 0;
  TransferCategory category = TransferCategory::kLocal;
};

using TransferList = std::vector<TransferOp>;

class DataDirectory {
 public:
  explicit DataDirectory(const Machine& machine);

  /// Register a managed region. `host_ptr` may be null (virtual region).
  /// The fresh region is valid in host memory only.
  RegionId register_region(std::string name, std::uint64_t size,
                           void* host_ptr = nullptr);

  /// Drop a region from management: every copy is released (dirty device
  /// data is discarded — flush first if it matters) and its id becomes
  /// invalid for future calls. Ids are never reused.
  void unregister_region(RegionId id);

  bool is_registered(RegionId id) const;

  /// Borrowed reference into shard-guarded state: valid because region
  /// descriptors live in per-shard deques and are never moved or erased
  /// (ids are never reused); the shard guard inside orders the lookup.
  const RegionDesc& region(RegionId id) const;
  std::size_t region_count() const {
    return region_limit_.load(std::memory_order_acquire);
  }
  std::size_t live_region_count() const {
    return live_regions_.load(std::memory_order_acquire);
  }

  /// Make every region accessed by `accesses` coherent for execution in
  /// `space`: appends the copies required to `out`, updates validity
  /// (writes invalidate other spaces) and evicts LRU copies if the space
  /// would overflow. Must be called in dependence order per task chain;
  /// concurrent acquires (prefetch threads vs workers) serialize on the
  /// writer mutex, so each acquire is atomic as a whole.
  void acquire(const AccessList& accesses, SpaceId space, TransferList& out);

  /// Bytes that would need copying into `space` to run `accesses` there.
  /// Pure query — the affinity scheduler's cost function. Answers are
  /// consistent: computed from one epoch-stable directory state.
  std::uint64_t bytes_missing(const AccessList& accesses, SpaceId space) const;

  /// Bytes of `accesses` already valid in `space` (locality score).
  std::uint64_t bytes_valid(const AccessList& accesses, SpaceId space) const;

  /// Estimated seconds to stage the missing bytes of `accesses` into
  /// `space` over the host->space link (the dominant path): zero when
  /// nothing is missing or no such link exists, else
  /// latency + missing/bandwidth. The locality-versioning scheduler's
  /// placement penalty — callable without any runtime involvement.
  Duration transfer_cost(const AccessList& accesses, SpaceId space) const;

  /// Copy every dirty region back to host (taskwait flush semantics).
  void flush_all(TransferList& out);

  /// Flush one region (taskwait on(...) semantics).
  void flush_region(RegionId id, TransferList& out);

  bool is_valid_in(RegionId id, SpaceId space) const;

  /// Space holding the only modified copy, or kInvalidSpace if the host
  /// copy is current.
  SpaceId dirty_space(RegionId id) const;

  std::uint64_t used_bytes(SpaceId space) const;

  /// Even mutation counter: bumped to odd when a mutator starts publishing
  /// and back to even when it finishes. Schedulers snapshot it before
  /// pricing placements off the runtime lock and re-evaluate if it moved
  /// (DESIGN.md §9 re-validation rule).
  std::uint64_t mutation_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  /// Plain-value snapshot of the transfer accounting.
  TransferStats stats() const { return stats_.snapshot(); }
  void reset_stats() { stats_.reset(); }

  /// Number of evictions performed due to capacity pressure.
  std::uint64_t eviction_count() const {
    return evictions_.load(std::memory_order_acquire);
  }

 private:
  struct RegionState {
    RegionDesc desc;
    std::uint64_t valid_mask = 1;  ///< bit per space; bit 0 = host
    SpaceId dirty = kInvalidSpace;
    std::uint64_t last_use = 0;
    bool pinned = false;   ///< set while part of an in-flight acquire
    bool removed = false;  ///< unregistered (tombstone; ids never reused)
  };

  /// Region ids stripe across shards (`id % kShardCount`); each shard owns
  /// a deque (stable references) guarded by its own rank-14 mutex.
  static constexpr std::size_t kShardCount = 8;

  struct Shard {
    mutable versa::Mutex mutex{lock_order::kLockRankDataShard};
    std::deque<RegionState> regions VERSA_GUARDED_BY(mutex);
  };

  const Machine& machine_;

  /// Writer mutex (class `data`, rank 13): serializes every mutator and
  /// the consistent-read fallback. Shard mutexes (rank 14) nest inside.
  mutable versa::Mutex mutex_{lock_order::kLockRankData};
  std::array<Shard, kShardCount> shards_;

  /// Seqlock epoch: odd while a mutator is publishing, even otherwise.
  std::atomic<std::uint64_t> epoch_{0};
  /// Number of region ids handed out (tombstones included).
  std::atomic<std::size_t> region_limit_{0};
  /// Per-space bytes of valid copies (relaxed mirrors; mutated only by
  /// writer-serialized code, read lock-free by used_bytes()).
  std::vector<std::atomic<std::uint64_t>> used_;
  AtomicTransferStats stats_;
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::size_t> live_regions_{0};

  Shard& shard_of(RegionId id) { return shards_[id % kShardCount]; }
  const Shard& shard_of(RegionId id) const { return shards_[id % kShardCount]; }
  static std::size_t slot_of(RegionId id) { return id / kShardCount; }

  RegionState& state_at(Shard& shard, RegionId id)
      VERSA_REQUIRES(shard.mutex);
  const RegionState& state_at(const Shard& shard, RegionId id) const
      VERSA_REQUIRES(shard.mutex);

  /// Pick the source space for a copy into `to` (prefers host).
  SpaceId choose_source(const RegionState& rs, SpaceId to) const;

  void add_valid(RegionState& rs, SpaceId space);
  void drop_valid(RegionState& rs, SpaceId space);
  void emit_copy(RegionState& rs, SpaceId from, SpaceId to, TransferList& out);

  /// Evict LRU unpinned copies from `space` until `needed` bytes fit.
  /// Called with the writer mutex held; takes shard locks internally.
  void make_room(SpaceId space, std::uint64_t needed, TransferList& out)
      VERSA_REQUIRES(mutex_);

  /// Run `fn` (which reads regions under their shard locks) against one
  /// consistent directory state: seqlock retries on the epoch, then a
  /// writer-mutex fallback that excludes mutators outright.
  template <typename Fn>
  auto read_consistent(Fn&& fn) const;
};

}  // namespace versa
