#include "data/transfer_engine.h"

#include <algorithm>

#include "common/check.h"

namespace versa {

TransferEngine::TransferEngine(const Machine& machine) : machine_(machine) {}

TransferEngine::LinkState& TransferEngine::link_state(SpaceId from,
                                                      SpaceId to) {
  for (auto& link : links_) {
    if (link.from == from && link.to == to) return link;
  }
  links_.push_back(LinkState{from, to, 0.0});
  return links_.back();
}

Time TransferEngine::occupy(SpaceId from, SpaceId to, std::uint64_t bytes,
                            Time start) {
  const Duration cost = machine_.interconnect().transfer_time(from, to, bytes);
  LinkState& link = link_state(from, to);
  const Time begin = std::max(start, link.busy_until);
  link.busy_until = begin + cost;
  routed_bytes_ += bytes;
  records_.push_back(
      TransferRecord{current_region_, from, to, bytes, begin, link.busy_until});
  routed_bytes_mirror_.store(routed_bytes_, std::memory_order_release);
  record_count_.store(records_.size(), std::memory_order_release);
  return link.busy_until;
}

const std::vector<SpaceId>& TransferEngine::route(SpaceId from, SpaceId to) {
  const std::size_t spaces = machine_.space_count();
  if (routes_.empty()) {
    routes_.assign(spaces, std::vector<std::vector<SpaceId>>(spaces));
  }
  std::vector<SpaceId>& cached = routes_[from][to];
  if (!cached.empty()) return cached;

  // BFS for the fewest-hop path over the directed link graph.
  std::vector<SpaceId> previous(spaces, kInvalidSpace);
  std::vector<bool> seen(spaces, false);
  std::vector<SpaceId> frontier{from};
  seen[from] = true;
  while (!frontier.empty() && !seen[to]) {
    std::vector<SpaceId> next;
    for (const SpaceId node : frontier) {
      for (SpaceId candidate = 0; candidate < spaces; ++candidate) {
        if (seen[candidate] ||
            machine_.interconnect().find(node, candidate) == nullptr) {
          continue;
        }
        seen[candidate] = true;
        previous[candidate] = node;
        next.push_back(candidate);
      }
    }
    frontier = std::move(next);
  }
  VERSA_CHECK_MSG(seen[to], "no route between memory spaces");
  std::vector<SpaceId> path{to};
  while (path.back() != from) {
    path.push_back(previous[path.back()]);
  }
  cached.assign(path.rbegin(), path.rend());
  return cached;
}

Time TransferEngine::enqueue_one(const TransferOp& op, Time start) {
  versa::LockGuard lock(mutex_);
  return enqueue_one_locked(op, start);
}

Time TransferEngine::enqueue_one_locked(const TransferOp& op, Time start) {
  if (op.from == op.to) return start;
  current_region_ = op.region;
  if (machine_.interconnect().find(op.from, op.to) != nullptr) {
    return occupy(op.from, op.to, op.bytes, start);
  }
  // No direct link: hop along the fewest-hop route, each hop serialized
  // after the previous one (store-and-forward staging).
  const std::vector<SpaceId>& path = route(op.from, op.to);
  Time done = start;
  for (std::size_t hop = 0; hop + 1 < path.size(); ++hop) {
    done = occupy(path[hop], path[hop + 1], op.bytes, done);
  }
  return done;
}

Time TransferEngine::enqueue(const TransferList& ops, Time start) {
  versa::LockGuard lock(mutex_);
  Time done = start;
  for (const TransferOp& op : ops) {
    done = std::max(done, enqueue_one_locked(op, start));
  }
  return done;
}

Time TransferEngine::link_free_at(SpaceId from, SpaceId to) const {
  versa::LockGuard lock(mutex_);
  for (const auto& link : links_) {
    if (link.from == from && link.to == to) return link.busy_until;
  }
  return 0.0;
}

void TransferEngine::reset() {
  versa::LockGuard lock(mutex_);
  links_.clear();
  routed_bytes_ = 0;
  records_.clear();
  routed_bytes_mirror_.store(0, std::memory_order_release);
  record_count_.store(0, std::memory_order_release);
}

}  // namespace versa
