// Chrome-trace (about://tracing, Perfetto) export of a run's task timeline:
// one lane per worker, one complete event per task. Handy for eyeballing
// how the versioning scheduler interleaves SMP and GPU work.
#pragma once

#include <string>

#include "data/transfer_engine.h"
#include "machine/machine.h"
#include "task/task_graph.h"
#include "task/version_registry.h"

namespace versa {

/// Serialize the finished tasks of `graph` as a Chrome trace JSON string.
/// When `transfers` is non-null, each interconnect link gets its own lane
/// (pid 1) with one event per modelled copy hop, so transfer/compute
/// overlap is visible at a glance.
std::string trace_json(const TaskGraph& graph, const Machine& machine,
                       const VersionRegistry& registry,
                       const std::vector<TransferRecord>* transfers = nullptr);

/// Write trace_json() to a file. Returns false on I/O failure.
bool write_trace(const std::string& path, const TaskGraph& graph,
                 const Machine& machine, const VersionRegistry& registry,
                 const std::vector<TransferRecord>* transfers = nullptr);

}  // namespace versa
