// Reporting for the profile-persistence subsystem: how the warm-start load
// went (store hits/misses, signature or corruption fallbacks) and which
// size groups the drift detector sent back into the learning phase.
#pragma once

#include <string>
#include <vector>

#include "profile/profile_store.h"
#include "sched/profile_table.h"
#include "task/version_registry.h"

namespace versa {

/// One-line summary of a load outcome, e.g.
/// "profile load: ok — 6 applied (hits), 1 skipped (misses)".
std::string profile_load_summary(const ProfileLoadResult& result);

/// Table of drift/relearn events (empty string when none fired):
/// task | group | version | stale mean | observed | samples.
std::string drift_event_table(const VersionRegistry& registry,
                              const std::vector<ProfileTable::DriftEvent>& events);

}  // namespace versa
