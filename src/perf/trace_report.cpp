#include "perf/trace_report.h"

#include <cstdio>
#include <cstdlib>
#include <istream>
#include <set>
#include <sstream>
#include <utility>

#include "perf/report.h"

namespace versa {
namespace {

/// Split one CSV row on commas (the dump never quotes fields).
std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::string::size_type start = 0;
  while (true) {
    const std::string::size_type comma = line.find(',', start);
    if (comma == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

bool parse_kind(const std::string& text, core::TraceEventKind& kind) {
  for (const core::TraceEventKind candidate :
       {core::TraceEventKind::kPlacement,
        core::TraceEventKind::kLearningPlacement,
        core::TraceEventKind::kSteal, core::TraceEventKind::kFailure,
        core::TraceEventKind::kComplete, core::TraceEventKind::kSplit,
        core::TraceEventKind::kFuse, core::TraceEventKind::kReversal,
        core::TraceEventKind::kPrefetchPlaced,
        core::TraceEventKind::kPrefetchDequeue,
        core::TraceEventKind::kPrefetchStale}) {
    if (text == core::to_string(candidate)) {
      kind = candidate;
      return true;
    }
  }
  return false;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(text.c_str(), &end, 10);
  return end != nullptr && *end == '\0' && !text.empty();
}

bool parse_double(const std::string& text, double& out) {
  char* end = nullptr;
  out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && !text.empty();
}

/// "# key=value key=value" metadata after the leading "# ".
void parse_metadata(const std::string& line, SchedTraceDump& dump) {
  std::istringstream words(line.substr(1));
  std::string word;
  while (words >> word) {
    const std::string::size_type eq = word.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    std::uint64_t number = 0;
    if (key == "policy") {
      dump.policy = value;
    } else if (key == "recorded" && parse_u64(value, number)) {
      dump.recorded = number;
    } else if (key == "dropped" && parse_u64(value, number)) {
      dump.dropped = number;
    } else if (key == "capacity" && parse_u64(value, number)) {
      dump.capacity = static_cast<std::size_t>(number);
    }
    // Unknown keys (and the format-version line) are ignored.
  }
}

}  // namespace

bool parse_sched_trace_csv(std::istream& in, SchedTraceDump& dump,
                           std::string& error) {
  dump = SchedTraceDump{};
  std::string line;
  bool saw_header = false;
  std::size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '#') {
      parse_metadata(line, dump);
      continue;
    }
    if (!saw_header) {
      // The column header row. Require the leading column so arbitrary
      // text files fail loudly instead of parsing as zero events.
      if (line.compare(0, 5, "time,") != 0) {
        error = "line " + std::to_string(line_number) +
                ": expected the sched-trace column header";
        return false;
      }
      saw_header = true;
      continue;
    }
    const std::vector<std::string> fields = split_fields(line);
    // 10 fields = v1 (no tenant column), 11 = v2 (tenant appended),
    // 13 = v3 (granularity group + children appended).
    if (fields.size() != 10 && fields.size() != 11 && fields.size() != 13) {
      error = "line " + std::to_string(line_number) +
              ": expected 10, 11 or 13 fields, got " +
              std::to_string(fields.size());
      return false;
    }
    core::TraceEvent event;
    std::uint64_t task = 0;
    std::uint64_t type = 0;
    std::uint64_t version = 0;
    std::uint64_t worker = 0;
    std::uint64_t candidates = 0;
    std::uint64_t tenant = kDefaultTenant;
    std::uint64_t group = 0;
    std::uint64_t children = 0;
    if (!parse_double(fields[0], event.time) ||
        !parse_kind(fields[1], event.kind) || !parse_u64(fields[2], task) ||
        !parse_u64(fields[3], type) || !parse_u64(fields[4], version) ||
        !parse_u64(fields[5], worker) ||
        !parse_double(fields[6], event.busy_term) ||
        !parse_double(fields[7], event.mean_term) ||
        !parse_double(fields[8], event.penalty_term) ||
        !parse_u64(fields[9], candidates) ||
        (fields.size() >= 11 && !parse_u64(fields[10], tenant)) ||
        (fields.size() == 13 && (!parse_u64(fields[11], group) ||
                                 !parse_u64(fields[12], children)))) {
      error = "line " + std::to_string(line_number) + ": malformed field";
      return false;
    }
    if (fields.size() >= 11) dump.has_tenant_column = true;
    if (fields.size() == 13) dump.has_granularity_columns = true;
    event.task = task;
    event.type = static_cast<TaskTypeId>(type);
    event.version = static_cast<VersionId>(version);
    event.worker = static_cast<WorkerId>(worker);
    event.candidates = static_cast<std::uint32_t>(candidates);
    event.tenant = static_cast<TenantId>(tenant);
    event.group = group;
    event.children = static_cast<std::uint32_t>(children);
    dump.events.push_back(event);
  }
  if (!saw_header) {
    error = "no sched-trace column header found";
    return false;
  }
  return true;
}

TraceReport analyze_sched_trace(const SchedTraceDump& dump) {
  TraceReport report;
  std::set<std::pair<TaskTypeId, VersionId>> placed;
  std::set<std::pair<TaskTypeId, VersionId>> sampled;
  for (const core::TraceEvent& e : dump.events) {
    TraceReport::TenantBreakdown& tenant = report.per_tenant[e.tenant];
    switch (e.kind) {
      case core::TraceEventKind::kPlacement:
        ++report.placements;
        placed.insert({e.type, e.version});
        ++report.per_worker[e.worker].first;
        ++tenant.placements;
        ++report.per_type[e.type].placements;
        break;
      case core::TraceEventKind::kLearningPlacement:
        ++report.learning_placements;
        placed.insert({e.type, e.version});
        sampled.insert({e.type, e.version});
        ++report.per_worker[e.worker].first;
        ++tenant.placements;
        ++report.per_type[e.type].placements;
        ++report.per_type[e.type].learning;
        break;
      case core::TraceEventKind::kSteal:
        ++report.steals;
        ++report.per_worker[e.worker].second;
        ++tenant.steals;
        ++report.per_type[e.type].steals;
        break;
      case core::TraceEventKind::kFailure:
        ++report.failures;
        ++tenant.failures;
        break;
      case core::TraceEventKind::kComplete:
        ++report.completions;
        ++tenant.completions;
        ++report.per_type[e.type].completions;
        break;
      case core::TraceEventKind::kSplit:
        ++report.splits;
        ++report.per_group[{e.type, e.group}].splits;
        report.per_group[{e.type, e.group}].children_created += e.children;
        break;
      case core::TraceEventKind::kFuse:
        ++report.fuses;
        ++report.per_group[{e.type, e.group}].fuses;
        report.per_group[{e.type, e.group}].tasks_fused += e.children;
        break;
      case core::TraceEventKind::kReversal:
        ++report.reversals;
        ++report.per_group[{e.type, e.group}].reversals;
        break;
      case core::TraceEventKind::kPrefetchPlaced:
        ++report.prefetch_placed;
        report.prefetch_bytes += e.group;
        break;
      case core::TraceEventKind::kPrefetchDequeue:
        ++report.prefetch_dequeue;
        report.prefetch_bytes += e.group;
        break;
      case core::TraceEventKind::kPrefetchStale:
        ++report.prefetch_stale;
        break;
    }
  }
  const std::uint64_t prefetch_total =
      report.prefetch_placed + report.prefetch_dequeue + report.prefetch_stale;
  if (prefetch_total > 0) {
    report.prefetch_placement_share =
        static_cast<double>(report.prefetch_placed) /
        static_cast<double>(prefetch_total);
    report.prefetch_claim_share =
        static_cast<double>(report.prefetch_placed + report.prefetch_dequeue) /
        static_cast<double>(prefetch_total);
  }
  // Per-tenant churn and completion throughput over the retained window.
  const double span = dump.events.empty()
                          ? 0.0
                          : dump.events.back().time - dump.events.front().time;
  for (auto& [id, tenant] : report.per_tenant) {
    (void)id;
    if (tenant.placements > 0) {
      tenant.steal_churn = static_cast<double>(tenant.steals) /
                           static_cast<double>(tenant.placements);
    }
    if (span > 0.0) {
      tenant.throughput = static_cast<double>(tenant.completions) / span;
    }
  }
  for (auto& [type, counts] : report.per_type) {
    (void)type;
    if (counts.placements > 0) {
      counts.steal_churn = static_cast<double>(counts.steals) /
                           static_cast<double>(counts.placements);
    }
  }
  const std::uint64_t total_placements =
      report.placements + report.learning_placements;
  if (total_placements > 0) {
    report.steal_churn =
        static_cast<double>(report.steals) / static_cast<double>(total_placements);
    report.learning_share = static_cast<double>(report.learning_placements) /
                            static_cast<double>(total_placements);
  }
  report.versions_placed = placed.size();
  report.versions_sampled = sampled.size();
  return report;
}

std::string render_trace_report(const SchedTraceDump& dump,
                                const TraceReport& report) {
  char buffer[256];
  std::string out = "policy: " + dump.policy + "\n";
  std::snprintf(buffer, sizeof(buffer),
                "events: %llu recorded, %zu retained, %llu dropped (ring "
                "capacity %zu)%s\n",
                static_cast<unsigned long long>(dump.recorded),
                dump.events.size(),
                static_cast<unsigned long long>(dump.dropped), dump.capacity,
                dump.dropped > 0 ? " — stats cover the trailing window" : "");
  out += buffer;
  std::snprintf(
      buffer, sizeof(buffer),
      "placements: %llu reliable + %llu learning, completions %llu, "
      "failures %llu\n",
      static_cast<unsigned long long>(report.placements),
      static_cast<unsigned long long>(report.learning_placements),
      static_cast<unsigned long long>(report.completions),
      static_cast<unsigned long long>(report.failures));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "steal churn: %.1f%% (%llu steals / %llu placements)\n",
                report.steal_churn * 100.0,
                static_cast<unsigned long long>(report.steals),
                static_cast<unsigned long long>(report.placements +
                                                report.learning_placements));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "learning coverage: %.1f%% of placements; %zu of %zu placed "
                "(type, version) pairs sampled\n",
                report.learning_share * 100.0, report.versions_sampled,
                report.versions_placed);
  out += buffer;
  if (!report.per_worker.empty()) {
    TablePrinter table({"worker", "placements", "steals-by"});
    for (const auto& [worker, counts] : report.per_worker) {
      table.add_row({std::to_string(worker), std::to_string(counts.first),
                     std::to_string(counts.second)});
    }
    out += table.to_string();
  }
  // Per-tenant breakdown: shown when the dump carried the tenant column or
  // any event is attributed beyond the default tenant (old v1 CSVs with
  // only tenant 0 render exactly as before).
  const bool multi_tenant =
      dump.has_tenant_column ||
      report.per_tenant.size() > 1 ||
      (report.per_tenant.size() == 1 &&
       report.per_tenant.begin()->first != kDefaultTenant);
  if (multi_tenant && !report.per_tenant.empty()) {
    out += "per-tenant breakdown (completion throughput over the retained "
           "window):\n";
    TablePrinter table({"tenant", "placements", "steals", "completions",
                        "churn", "tasks/s"});
    for (const auto& [tenant, counts] : report.per_tenant) {
      std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                    counts.steal_churn * 100.0);
      std::string churn = buffer;
      std::snprintf(buffer, sizeof(buffer), "%.3g", counts.throughput);
      table.add_row({std::to_string(tenant),
                     std::to_string(counts.placements),
                     std::to_string(counts.steals),
                     std::to_string(counts.completions), churn, buffer});
    }
    out += table.to_string();
  }
  // Per-type breakdown: rendered only when the placements span at least
  // two distinct task types (versa_taskbench's one-type-per-family runs;
  // single-type dumps render exactly as before).
  std::size_t types_placed = 0;
  for (const auto& [type, counts] : report.per_type) {
    (void)type;
    if (counts.placements > 0) ++types_placed;
  }
  if (types_placed >= 2) {
    out += "per-type breakdown:\n";
    TablePrinter table({"type", "placements", "learning", "steals",
                        "completions", "churn"});
    for (const auto& [type, counts] : report.per_type) {
      if (counts.placements == 0 && counts.completions == 0 &&
          counts.steals == 0) {
        continue;
      }
      std::snprintf(buffer, sizeof(buffer), "%.1f%%",
                    counts.steal_churn * 100.0);
      table.add_row({std::to_string(type), std::to_string(counts.placements),
                     std::to_string(counts.learning),
                     std::to_string(counts.steals),
                     std::to_string(counts.completions), buffer});
    }
    out += table.to_string();
  }
  // Per-group granularity breakdown: rendered only when the controller
  // actually did something (v1/v2 CSVs and controller-off runs render
  // exactly as before).
  if (!report.per_group.empty()) {
    std::snprintf(buffer, sizeof(buffer),
                  "granularity: %llu splits, %llu fuses, %llu reversals\n",
                  static_cast<unsigned long long>(report.splits),
                  static_cast<unsigned long long>(report.fuses),
                  static_cast<unsigned long long>(report.reversals));
    out += buffer;
    TablePrinter table({"type", "group", "splits", "fuses", "reversals",
                        "children", "fused"});
    for (const auto& [key, counts] : report.per_group) {
      table.add_row({std::to_string(key.first), std::to_string(key.second),
                     std::to_string(counts.splits),
                     std::to_string(counts.fuses),
                     std::to_string(counts.reversals),
                     std::to_string(counts.children_created),
                     std::to_string(counts.tasks_fused)});
    }
    out += table.to_string();
  }
  // Prefetch effectiveness: rendered only when the run emitted prefetch
  // events (v1-v3 CSVs and sim-backend runs render exactly as before).
  const std::uint64_t prefetch_total =
      report.prefetch_placed + report.prefetch_dequeue + report.prefetch_stale;
  if (prefetch_total > 0) {
    std::snprintf(
        buffer, sizeof(buffer),
        "prefetch: %llu placement-time + %llu dequeue-fallback claims, "
        "%llu stale (%.1f%% placed at placement, %.1f%% claimed overall)\n",
        static_cast<unsigned long long>(report.prefetch_placed),
        static_cast<unsigned long long>(report.prefetch_dequeue),
        static_cast<unsigned long long>(report.prefetch_stale),
        report.prefetch_placement_share * 100.0,
        report.prefetch_claim_share * 100.0);
    out += buffer;
    std::snprintf(buffer, sizeof(buffer),
                  "prefetch bytes overlapped: %llu staged ahead of dispatch\n",
                  static_cast<unsigned long long>(report.prefetch_bytes));
    out += buffer;
  }
  return out;
}

}  // namespace versa
