// Host calibration: measure the real machine's kernel throughput and
// derive cost models from it, so simulations can be re-based on whatever
// host runs this code instead of the paper's MinoTauro node. This is the
// bridge between the two backends — thread-measured reality feeding the
// virtual-time models — and doubles as the "profile written by a previous
// execution" idea of §VII in calibrated-constant form.
#pragma once

#include <cstddef>

#include "machine/cost_model.h"

namespace versa {

struct HostCalibration {
  double dgemm_flops_per_second = 0.0;   ///< blocked double GEMM
  double stencil_bytes_per_second = 0.0; ///< streaming 1D stencil
  double spotrf_flops_per_second = 0.0;  ///< single-precision Cholesky
};

/// Measure this host's single-core throughput. `tile` is the GEMM tile
/// edge (keep modest: the measurement runs 2*tile^3 flops per repetition);
/// `repetitions` are averaged. Deterministic inputs, wall-clock timed.
HostCalibration calibrate_host(std::size_t tile = 96, int repetitions = 3);

/// Cost model for an n x n double GEMM tile at the calibrated rate.
CostModelPtr calibrated_gemm_cost(const HostCalibration& calibration,
                                  std::size_t n);

/// Cost model for a byte-streaming kernel at the calibrated rate.
CostModelPtr calibrated_stream_cost(const HostCalibration& calibration);

}  // namespace versa
