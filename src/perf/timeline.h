// Timeline analysis: how much of the modelled run was compute, how much
// was data movement, and how much of the movement hid behind compute —
// the quantitative form of the paper's §V-A claim that transfers "still
// represent a significant amount of execution time" unless overlapped.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "data/transfer_engine.h"
#include "task/task_graph.h"

namespace versa {

/// Half-open time interval [begin, end).
struct Interval {
  Time begin = 0.0;
  Time end = 0.0;
};

/// Sort + merge overlapping/adjacent intervals. Empty intervals dropped.
std::vector<Interval> merge_intervals(std::vector<Interval> intervals);

/// Total length of a merged interval set.
Duration total_length(const std::vector<Interval>& merged);

/// Total length of the intersection of two merged interval sets.
Duration intersection_length(const std::vector<Interval>& a,
                             const std::vector<Interval>& b);

struct TimelineStats {
  Time makespan = 0.0;
  /// Wall-clock union of task execution (any worker computing).
  Duration compute_wall = 0.0;
  /// Wall-clock union of data movement (any link busy).
  Duration transfer_wall = 0.0;
  /// Wall-clock during which movement coincided with compute.
  Duration overlapped_wall = 0.0;
  /// overlapped / transfer_wall in [0, 1]; 1 = all movement hidden.
  double overlap_fraction = 0.0;
  /// transfer_wall - overlapped: time the run was *only* moving data.
  Duration exposed_transfer = 0.0;
};

/// Analyze a finished run. `makespan` is the runtime's elapsed().
TimelineStats analyze_timeline(const TaskGraph& graph,
                               const std::vector<TransferRecord>& transfers,
                               Time makespan);

/// Small human-readable report.
std::string timeline_report(const TimelineStats& stats);

}  // namespace versa
