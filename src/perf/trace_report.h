// Offline decision-trace analyzer (versa_trace_report).
//
// Replays a --sched-trace CSV dump (sched_trace_csv, perf/sched_trace.h)
// without the run that produced it and reports the two things a policy
// comparison needs first: steal churn (how much placed work was re-homed
// by idle workers — high churn means the placement rule and the actual
// load disagree) and learning-phase coverage (how much of the placement
// volume was forced sampling, and how many distinct versions the sampling
// actually reached — a warm-started run shows zero). Everything is
// computed from the retained ring, so a saturated ring reports on the
// trailing window and says so.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sched/core/decision_trace.h"

namespace versa {

/// A parsed --sched-trace CSV dump: the `#` metadata plus the event rows.
struct SchedTraceDump {
  std::string policy;            ///< "# policy=..." metadata line
  std::uint64_t recorded = 0;    ///< events recorded (incl. overwritten)
  std::uint64_t dropped = 0;     ///< events overwritten by the ring
  std::size_t capacity = 0;      ///< ring capacity during the run
  /// True when the file carried the v2 per-tenant column; v1 files parse
  /// with every event attributed to kDefaultTenant.
  bool has_tenant_column = false;
  /// True when the file carried the v3 granularity columns (group,
  /// children); v1/v2 files parse with both fields zero.
  bool has_granularity_columns = false;
  std::vector<core::TraceEvent> events;  ///< retained rows, oldest first
};

/// Parse one CSV dump. Returns false (with a message in `error`) on a
/// malformed header, a malformed row, or an unknown event kind; metadata
/// lines it does not understand are ignored (forward compatibility).
bool parse_sched_trace_csv(std::istream& in, SchedTraceDump& dump,
                           std::string& error);

/// Aggregates derived from one dump.
struct TraceReport {
  std::uint64_t placements = 0;           ///< reliable-phase placements
  std::uint64_t learning_placements = 0;  ///< forced-sampling placements
  std::uint64_t steals = 0;
  std::uint64_t failures = 0;
  std::uint64_t completions = 0;

  /// steals / (placements + learning_placements); 0 when nothing placed.
  double steal_churn = 0.0;
  /// learning_placements / (placements + learning_placements).
  double learning_share = 0.0;

  /// Distinct (type, version) pairs that appear in any placement.
  std::size_t versions_placed = 0;
  /// Distinct (type, version) pairs that appear in a learning placement.
  std::size_t versions_sampled = 0;

  /// Per-worker (placements incl. learning, steals *by* that worker).
  std::map<WorkerId, std::pair<std::uint64_t, std::uint64_t>> per_worker;

  /// Per-tenant breakdown (service mode). Populated for every tenant that
  /// appears in the dump; rendered only when a non-default tenant shows up
  /// or the dump carried the tenant column.
  struct TenantBreakdown {
    std::uint64_t placements = 0;  ///< reliable + learning
    std::uint64_t steals = 0;      ///< this tenant's tasks re-homed
    std::uint64_t completions = 0;
    std::uint64_t failures = 0;
    double steal_churn = 0.0;      ///< steals / placements
    /// completions / retained-window span (0 when the span is zero).
    double throughput = 0.0;
  };
  std::map<TenantId, TenantBreakdown> per_tenant;

  /// Per-task-type breakdown. Multi-type runs — notably versa_taskbench,
  /// which declares one type per graph family — get their placement and
  /// completion volume separated by type; rendered only when at least two
  /// distinct types appear among the placements, so single-type dumps
  /// render exactly as before.
  struct TypeBreakdown {
    std::uint64_t placements = 0;  ///< reliable + learning
    std::uint64_t learning = 0;
    std::uint64_t steals = 0;
    std::uint64_t completions = 0;
    double steal_churn = 0.0;  ///< steals / placements
  };
  std::map<TaskTypeId, TypeBreakdown> per_type;

  /// Granularity-controller totals (v3 dumps; all zero before PR 7 CSVs).
  std::uint64_t splits = 0;
  std::uint64_t fuses = 0;
  std::uint64_t reversals = 0;

  /// Per-(type, data-set-size-group) granularity breakdown: how often the
  /// controller re-tiled or coalesced that group, how many child tasks the
  /// splits created, how many original submissions the fuses absorbed, and
  /// whether the CUSUM ever reversed the group's decision. Rendered only
  /// when any granularity event appears in the dump.
  struct GranularityBreakdown {
    std::uint64_t splits = 0;
    std::uint64_t fuses = 0;
    std::uint64_t reversals = 0;
    std::uint64_t children_created = 0;
    std::uint64_t tasks_fused = 0;
  };
  std::map<std::pair<TaskTypeId, std::uint64_t>, GranularityBreakdown>
      per_group;

  /// Prefetch effectiveness (v4 dumps; all zero on earlier CSVs). An
  /// intent is *placed* when the dedicated prefetch thread claimed it at
  /// placement time, *dequeue* when a worker's fallback drain claimed it,
  /// and *stale* when the executing worker won the staging race first —
  /// the share of placed intents is what the placement-time path buys.
  std::uint64_t prefetch_placed = 0;
  std::uint64_t prefetch_dequeue = 0;
  std::uint64_t prefetch_stale = 0;
  /// Bytes the claimed prefetch acquires actually copied — data staged
  /// ahead of (and overlapped with) the consuming task's dispatch.
  std::uint64_t prefetch_bytes = 0;
  /// placed / (placed + dequeue + stale); 0 when no prefetch events.
  double prefetch_placement_share = 0.0;
  /// (placed + dequeue) / (placed + dequeue + stale).
  double prefetch_claim_share = 0.0;
};

TraceReport analyze_sched_trace(const SchedTraceDump& dump);

/// Human-readable report section for one dump (policy-named header,
/// totals, churn/coverage lines, per-worker table).
std::string render_trace_report(const SchedTraceDump& dump,
                                const TraceReport& report);

}  // namespace versa
