#include "perf/calibrate.h"

#include <chrono>
#include <vector>

#include "apps/kernels.h"
#include "common/check.h"
#include "common/random.h"
#include "machine/kernel_models.h"

namespace versa {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

HostCalibration calibrate_host(std::size_t tile, int repetitions) {
  VERSA_CHECK(tile >= 16 && repetitions >= 1);
  HostCalibration result;
  Rng rng(2024);

  // --- GEMM ---------------------------------------------------------------
  {
    std::vector<double> a(tile * tile), b(tile * tile), c(tile * tile, 0.0);
    for (auto& v : a) v = rng.uniform(-1.0, 1.0);
    for (auto& v : b) v = rng.uniform(-1.0, 1.0);
    double best = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      const auto start = std::chrono::steady_clock::now();
      kernels::dgemm_blocked(a.data(), b.data(), c.data(), tile);
      const double elapsed = seconds_since(start);
      const double rate =
          static_cast<double>(kernels::gemm_flops(tile)) / elapsed;
      best = std::max(best, rate);
    }
    result.dgemm_flops_per_second = best;
  }

  // --- streaming stencil ----------------------------------------------------
  {
    const std::size_t cells = 1 << 20;
    std::vector<float> src(cells, 1.0f), dst(cells, 0.0f);
    double best = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      const auto start = std::chrono::steady_clock::now();
      kernels::pbpi_partial_likelihood(src.data(), dst.data(), cells);
      const double elapsed = seconds_since(start);
      best = std::max(best, static_cast<double>(cells * sizeof(float) * 2) /
                                elapsed);
    }
    result.stencil_bytes_per_second = best;
  }

  // --- SPOTRF ----------------------------------------------------------------
  {
    std::vector<float> block(tile * tile, 0.0f);
    double best = 0.0;
    for (int r = 0; r < repetitions; ++r) {
      for (std::size_t i = 0; i < tile; ++i) {
        for (std::size_t j = 0; j < tile; ++j) {
          block[i * tile + j] =
              i == j ? static_cast<float>(tile) : 0.01f * ((i + j) % 7);
        }
      }
      const auto start = std::chrono::steady_clock::now();
      VERSA_CHECK(kernels::spotrf_block(block.data(), tile));
      const double elapsed = seconds_since(start);
      best = std::max(best, static_cast<double>(kernels::potrf_flops(tile)) /
                                elapsed);
    }
    result.spotrf_flops_per_second = best;
  }
  return result;
}

CostModelPtr calibrated_gemm_cost(const HostCalibration& calibration,
                                  std::size_t n) {
  VERSA_CHECK(calibration.dgemm_flops_per_second > 0.0);
  return make_constant_cost(static_cast<double>(kernels::gemm_flops(n)) /
                            calibration.dgemm_flops_per_second);
}

CostModelPtr calibrated_stream_cost(const HostCalibration& calibration) {
  VERSA_CHECK(calibration.stencil_bytes_per_second > 0.0);
  const double rate = calibration.stencil_bytes_per_second;
  return make_callable_cost([rate](std::uint64_t bytes) {
    return static_cast<double>(bytes) / rate;
  });
}

}  // namespace versa
