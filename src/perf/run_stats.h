// Per-run execution statistics: how many times each task version ran and
// for how long — the data behind the paper's "task statistics" figures
// (8, 11, 14, 15) — plus makespan and GFLOP/s helpers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "task/version_registry.h"

namespace versa {

class RunStatsCollector {
 public:
  void on_complete(TaskTypeId type, VersionId version, Duration measured);

  std::uint64_t count(VersionId version) const;
  Duration total_time(VersionId version) const;

  /// Total executions of all versions of `type`.
  std::uint64_t type_count(TaskTypeId type) const;

  /// Share of `type`'s executions that used `version`, in [0, 100].
  double percent(TaskTypeId type, VersionId version) const;

  std::uint64_t total_tasks() const { return total_tasks_; }

  void reset();

 private:
  struct Key {
    TaskTypeId type;
    VersionId version;
    bool operator<(const Key& other) const {
      return type != other.type ? type < other.type : version < other.version;
    }
  };
  struct Value {
    std::uint64_t count = 0;
    Duration total = 0.0;
  };
  std::map<Key, Value> stats_;
  std::uint64_t total_tasks_ = 0;
};

/// GFLOP/s given total floating-point operations and elapsed seconds.
double gflops(double flops, Duration elapsed);

}  // namespace versa
