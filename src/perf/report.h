// Plain-text table and CSV emitters for the benchmark harnesses, so every
// bench prints the same rows/series the corresponding paper artifact shows.
#pragma once

#include <string>
#include <vector>

namespace versa {

/// Column-aligned ASCII table.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Render with a header rule. Missing cells render empty.
  std::string to_string() const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Minimal CSV writer (quotes fields containing separators/quotes).
class CsvWriter {
 public:
  void add_row(const std::vector<std::string>& cells);
  const std::string& str() const { return out_; }
  bool write_file(const std::string& path) const;

 private:
  std::string out_;
};

}  // namespace versa
