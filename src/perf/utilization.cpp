#include "perf/utilization.h"

#include "common/check.h"
#include "common/string_util.h"
#include "perf/report.h"

namespace versa {

std::vector<WorkerUtilization> compute_utilization(const TaskGraph& graph,
                                                   const Machine& machine,
                                                   Time makespan) {
  VERSA_CHECK(makespan > 0.0);
  std::vector<WorkerUtilization> rows(machine.worker_count());
  for (WorkerId w = 0; w < machine.worker_count(); ++w) {
    rows[w].worker = w;
    rows[w].name = machine.worker(w).name;
  }
  for (const Task& task : graph.tasks()) {
    if (task.state != TaskState::kFinished) continue;
    VERSA_CHECK(task.assigned_worker < rows.size());
    WorkerUtilization& row = rows[task.assigned_worker];
    row.busy += task.finish_time - task.start_time;
    ++row.tasks;
  }
  for (WorkerUtilization& row : rows) {
    row.fraction = row.busy / makespan;
  }
  return rows;
}

double mean_utilization(const std::vector<WorkerUtilization>& rows) {
  if (rows.empty()) return 0.0;
  double total = 0.0;
  for (const WorkerUtilization& row : rows) {
    total += row.fraction;
  }
  return total / static_cast<double>(rows.size());
}

std::string utilization_table(const std::vector<WorkerUtilization>& rows) {
  TablePrinter table({"worker", "tasks", "busy", "utilization"});
  for (const WorkerUtilization& row : rows) {
    table.add_row({row.name, std::to_string(row.tasks),
                   format_duration(row.busy),
                   format_double(row.fraction * 100.0, 1) + " %"});
  }
  return table.to_string();
}

}  // namespace versa
