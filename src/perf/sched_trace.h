// Rendering for the scheduling core's decision trace (versa_run
// --sched-trace): a column-aligned table of the most recent decisions with
// the terms that drove them, and a Chrome-trace export with one counter
// track per worker showing the estimated busy time each placement saw —
// so "why did this task land there" is answerable after the run without
// instrumenting a policy.
#pragma once

#include <string>

#include "machine/machine.h"
#include "sched/core/decision_trace.h"
#include "task/version_registry.h"

namespace versa {

/// ASCII table of the last `max_rows` retained events (0 = all retained),
/// oldest first, with a totals line (recorded / retained / dropped).
std::string sched_trace_table(const core::DecisionTrace& trace,
                              const VersionRegistry& registry,
                              const Machine& machine,
                              std::size_t max_rows = 0);

/// Chrome-trace JSON: per-worker counter tracks of the busy estimate at
/// each decision, plus instant events for steals and failures.
std::string sched_trace_counters_json(const core::DecisionTrace& trace,
                                      const Machine& machine);

/// Write sched_trace_counters_json() to `path`. False on I/O failure.
bool write_sched_trace(const std::string& path,
                       const core::DecisionTrace& trace,
                       const Machine& machine);

/// Full-fidelity CSV dump of the retained events, oldest first: `#`
/// metadata lines (format version, policy name, ring totals), a header
/// row, then one row per TraceEvent with every field round-tripped (%.9e
/// doubles). The Chrome-trace export above collapses placements into
/// counter samples; this dump is what the offline analyzer
/// (versa_trace_report, src/perf/trace_report.h) replays.
std::string sched_trace_csv(const core::DecisionTrace& trace,
                            const std::string& policy);

/// Write sched_trace_csv() to `path`. False on I/O failure.
bool write_sched_trace_csv(const std::string& path,
                           const core::DecisionTrace& trace,
                           const std::string& policy);

}  // namespace versa
