#include "perf/trace.h"

#include <cstdio>
#include <fstream>

namespace versa {
namespace {

void append_escaped(std::string& out, const std::string& text) {
  for (char ch : text) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
}

}  // namespace

std::string trace_json(const TaskGraph& graph, const Machine& machine,
                       const VersionRegistry& registry,
                       const std::vector<TransferRecord>* transfers) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[192];
  for (const Task& task : graph.tasks()) {
    if (task.state != TaskState::kFinished) continue;
    if (!first) out += ',';
    first = false;
    const TaskVersion& version = registry.version(task.chosen_version);
    out += "{\"name\":\"";
    append_escaped(out, registry.task_name(task.type) + "/" + version.name);
    out += "\",\"cat\":\"task\",\"ph\":\"X\"";
    // Times in microseconds, as the trace format expects.
    std::snprintf(buffer, sizeof(buffer),
                  ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%u",
                  task.start_time * 1e6,
                  (task.finish_time - task.start_time) * 1e6,
                  task.assigned_worker);
    out += buffer;
    out += "}";
  }
  // Transfer lanes: one per (from, to) link pair, under pid 1.
  if (transfers != nullptr) {
    for (const TransferRecord& record : *transfers) {
      out += first ? "" : ",";
      first = false;
      out += "{\"name\":\"";
      append_escaped(out, machine.space(record.from).name + "->" +
                              machine.space(record.to).name);
      out += "\",\"cat\":\"transfer\",\"ph\":\"X\"";
      std::snprintf(buffer, sizeof(buffer),
                    ",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u,"
                    "\"args\":{\"bytes\":%llu}",
                    record.start * 1e6, (record.end - record.start) * 1e6,
                    static_cast<unsigned>(record.from * 64 + record.to),
                    static_cast<unsigned long long>(record.bytes));
      out += buffer;
      out += "}";
    }
  }
  // Name the worker lanes.
  for (const WorkerDesc& w : machine.workers()) {
    out += first ? "" : ",";
    first = false;
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
    out += std::to_string(w.id);
    out += ",\"args\":{\"name\":\"";
    append_escaped(out, w.name);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

bool write_trace(const std::string& path, const TaskGraph& graph,
                 const Machine& machine, const VersionRegistry& registry,
                 const std::vector<TransferRecord>* transfers) {
  std::ofstream file(path);
  if (!file) return false;
  file << trace_json(graph, machine, registry, transfers);
  return static_cast<bool>(file);
}

}  // namespace versa
