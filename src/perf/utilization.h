// Per-worker utilization derived from the executed task timeline: how busy
// each worker was, how many tasks it ran, and the machine-wide average.
// Useful for diagnosing why a scheduler wins (e.g. the versioning
// scheduler's gain in Figure 6 is exactly the SMP workers' non-zero
// utilization).
#pragma once

#include <string>
#include <vector>

#include "machine/machine.h"
#include "task/task_graph.h"

namespace versa {

struct WorkerUtilization {
  WorkerId worker = kInvalidWorker;
  std::string name;
  Duration busy = 0.0;        ///< sum of task durations executed
  std::uint64_t tasks = 0;
  double fraction = 0.0;      ///< busy / makespan, in [0, 1]
};

/// Compute per-worker utilization over [0, makespan]. Unfinished tasks are
/// ignored. makespan must be > 0.
std::vector<WorkerUtilization> compute_utilization(const TaskGraph& graph,
                                                   const Machine& machine,
                                                   Time makespan);

/// Machine-wide mean utilization fraction (unweighted across workers).
double mean_utilization(const std::vector<WorkerUtilization>& rows);

/// Column-aligned summary table.
std::string utilization_table(const std::vector<WorkerUtilization>& rows);

}  // namespace versa
