#include "perf/timeline.h"

#include <algorithm>

#include "common/string_util.h"

namespace versa {

std::vector<Interval> merge_intervals(std::vector<Interval> intervals) {
  intervals.erase(std::remove_if(intervals.begin(), intervals.end(),
                                 [](const Interval& i) {
                                   return i.end <= i.begin;
                                 }),
                  intervals.end());
  std::sort(intervals.begin(), intervals.end(),
            [](const Interval& a, const Interval& b) {
              return a.begin < b.begin;
            });
  std::vector<Interval> merged;
  for (const Interval& interval : intervals) {
    if (!merged.empty() && interval.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, interval.end);
    } else {
      merged.push_back(interval);
    }
  }
  return merged;
}

Duration total_length(const std::vector<Interval>& merged) {
  Duration total = 0.0;
  for (const Interval& interval : merged) {
    total += interval.end - interval.begin;
  }
  return total;
}

Duration intersection_length(const std::vector<Interval>& a,
                             const std::vector<Interval>& b) {
  Duration total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Time lo = std::max(a[i].begin, b[j].begin);
    const Time hi = std::min(a[i].end, b[j].end);
    if (hi > lo) total += hi - lo;
    if (a[i].end < b[j].end) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

TimelineStats analyze_timeline(const TaskGraph& graph,
                               const std::vector<TransferRecord>& transfers,
                               Time makespan) {
  std::vector<Interval> compute;
  for (const Task& task : graph.tasks()) {
    if (task.state != TaskState::kFinished) continue;
    compute.push_back(Interval{task.start_time, task.finish_time});
  }
  std::vector<Interval> movement;
  movement.reserve(transfers.size());
  for (const TransferRecord& record : transfers) {
    movement.push_back(Interval{record.start, record.end});
  }

  TimelineStats stats;
  stats.makespan = makespan;
  const std::vector<Interval> compute_merged = merge_intervals(std::move(compute));
  const std::vector<Interval> movement_merged =
      merge_intervals(std::move(movement));
  stats.compute_wall = total_length(compute_merged);
  stats.transfer_wall = total_length(movement_merged);
  stats.overlapped_wall = intersection_length(compute_merged, movement_merged);
  stats.exposed_transfer = stats.transfer_wall - stats.overlapped_wall;
  stats.overlap_fraction =
      stats.transfer_wall > 0.0 ? stats.overlapped_wall / stats.transfer_wall
                                : 0.0;
  return stats;
}

std::string timeline_report(const TimelineStats& stats) {
  std::string out;
  out += "makespan:          " + format_duration(stats.makespan) + "\n";
  out += "compute (wall):    " + format_duration(stats.compute_wall) + "\n";
  out += "transfers (wall):  " + format_duration(stats.transfer_wall) + "\n";
  out += "  hidden behind compute: " +
         format_double(stats.overlap_fraction * 100.0, 1) + " %\n";
  out += "  exposed:         " + format_duration(stats.exposed_transfer) + "\n";
  return out;
}

}  // namespace versa
