#include "perf/report.h"

#include <algorithm>
#include <fstream>

namespace versa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      out.append(widths[c] - cell.size(), ' ');
      out += (c + 1 < widths.size()) ? "  " : "";
    }
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) {
    emit_row(row, out);
  }
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t c = 0; c < cells.size(); ++c) {
    const std::string& cell = cells[c];
    const bool quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (quote) {
      out_ += '"';
      for (char ch : cell) {
        if (ch == '"') out_ += '"';
        out_ += ch;
      }
      out_ += '"';
    } else {
      out_ += cell;
    }
    out_ += (c + 1 < cells.size()) ? "," : "";
  }
  out_ += '\n';
}

bool CsvWriter::write_file(const std::string& path) const {
  std::ofstream file(path);
  if (!file) return false;
  file << out_;
  return static_cast<bool>(file);
}

}  // namespace versa
