// versa_trace_report — offline analyzer for --sched-trace CSV dumps.
//
//   versa_run --scheduler versioning --sched-trace run.csv ...
//   versa_trace_report run.csv [more.csv ...]
//
// Prints, per dump, the totals plus steal churn and learning-phase
// coverage; with several dumps a final comparison table lines the
// policies up side by side.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <iostream>

#include "perf/report.h"
#include "perf/trace_report.h"
#include "sanitizer/sanitize_report.h"

namespace {

void print_usage() {
  std::fprintf(
      stderr,
      "usage: versa_trace_report <trace.csv> [more.csv ...]\n"
      "       versa_trace_report --sanitize-report <sanitize.csv> [...]\n"
      "\n"
      "Analyzes decision-trace CSV dumps written by versa_run\n"
      "--sched-trace <path>.csv (a .json suffix selects the Chrome-trace\n"
      "export instead, which this tool does not read). Reports steal churn\n"
      "and learning-phase coverage per policy.\n"
      "\n"
      "--sanitize-report replays dependence-spec sanitizer findings\n"
      "written by versa_run --sanitize-csv <path>; exits non-zero when\n"
      "the replayed report contains race or out-of-spec records.\n");
}

// Replays one or more sanitizer CSV dumps; returns the process exit code
// (non-zero iff any dump holds error-class findings or fails to parse).
int sanitize_report_main(int argc, char** argv) {
  if (argc < 1) {
    print_usage();
    return 1;
  }
  std::uint64_t errors = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string path = argv[i];
    std::vector<versa::sanitize::Violation> records;
    versa::sanitize::SanitizeStats stats;
    std::string error;
    if (!versa::sanitize::read_csv(path, records, stats, error)) {
      std::fprintf(stderr, "versa_trace_report: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    std::printf("== %s ==\n", path.c_str());
    versa::sanitize::render_report(std::cout, records, stats);
    errors += stats.races + stats.out_of_spec;
  }
  return errors > 0 ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "--help") == 0 ||
      std::strcmp(argv[1], "-h") == 0) {
    print_usage();
    return argc < 2 ? 1 : 0;
  }

  if (std::strcmp(argv[1], "--sanitize-report") == 0) {
    return sanitize_report_main(argc - 2, argv + 2);
  }

  struct Analyzed {
    std::string path;
    versa::SchedTraceDump dump;
    versa::TraceReport report;
  };
  std::vector<Analyzed> analyzed;
  for (int i = 1; i < argc; ++i) {
    const std::string path = argv[i];
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "versa_trace_report: cannot open %s\n",
                   path.c_str());
      return 1;
    }
    versa::SchedTraceDump dump;
    std::string error;
    if (!versa::parse_sched_trace_csv(file, dump, error)) {
      std::fprintf(stderr, "versa_trace_report: %s: %s\n", path.c_str(),
                   error.c_str());
      return 1;
    }
    analyzed.push_back({path, std::move(dump), {}});
    analyzed.back().report = versa::analyze_sched_trace(analyzed.back().dump);
  }

  for (const Analyzed& a : analyzed) {
    std::printf("== %s ==\n%s\n", a.path.c_str(),
                versa::render_trace_report(a.dump, a.report).c_str());
  }

  if (analyzed.size() > 1) {
    versa::TablePrinter table({"policy", "placements", "learning", "steals",
                               "churn%", "coverage%"});
    for (const Analyzed& a : analyzed) {
      char churn[32];
      char coverage[32];
      std::snprintf(churn, sizeof(churn), "%.1f", a.report.steal_churn * 100.0);
      std::snprintf(coverage, sizeof(coverage), "%.1f",
                    a.report.learning_share * 100.0);
      table.add_row({a.dump.policy,
                     std::to_string(a.report.placements +
                                    a.report.learning_placements),
                     std::to_string(a.report.learning_placements),
                     std::to_string(a.report.steals), churn, coverage});
    }
    std::printf("== comparison ==\n%s", table.to_string().c_str());
  }
  return 0;
}
