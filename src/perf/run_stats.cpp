#include "perf/run_stats.h"

#include "common/check.h"

namespace versa {

void RunStatsCollector::on_complete(TaskTypeId type, VersionId version,
                                    Duration measured) {
  Value& value = stats_[Key{type, version}];
  ++value.count;
  value.total += measured;
  ++total_tasks_;
}

std::uint64_t RunStatsCollector::count(VersionId version) const {
  std::uint64_t total = 0;
  for (const auto& [key, value] : stats_) {
    if (key.version == version) total += value.count;
  }
  return total;
}

Duration RunStatsCollector::total_time(VersionId version) const {
  Duration total = 0.0;
  for (const auto& [key, value] : stats_) {
    if (key.version == version) total += value.total;
  }
  return total;
}

std::uint64_t RunStatsCollector::type_count(TaskTypeId type) const {
  std::uint64_t total = 0;
  for (const auto& [key, value] : stats_) {
    if (key.type == type) total += value.count;
  }
  return total;
}

double RunStatsCollector::percent(TaskTypeId type, VersionId version) const {
  const std::uint64_t all = type_count(type);
  if (all == 0) return 0.0;
  auto it = stats_.find(Key{type, version});
  const std::uint64_t mine = it == stats_.end() ? 0 : it->second.count;
  return 100.0 * static_cast<double>(mine) / static_cast<double>(all);
}

void RunStatsCollector::reset() {
  stats_.clear();
  total_tasks_ = 0;
}

double gflops(double flops, Duration elapsed) {
  VERSA_CHECK(elapsed > 0.0);
  return flops / elapsed / 1e9;
}

}  // namespace versa
