#include "perf/profile_report.h"

#include <sstream>

#include "common/string_util.h"
#include "perf/report.h"

namespace versa {

std::string profile_load_summary(const ProfileLoadResult& result) {
  std::ostringstream out;
  out << "profile load: " << to_string(result.status);
  if (result.status == ProfileLoadStatus::kOk) {
    out << " — " << result.applied << " applied (hits), " << result.skipped
        << " skipped (misses)";
  } else if (!result.message.empty()) {
    out << " — " << result.message;
  }
  return out.str();
}

std::string drift_event_table(
    const VersionRegistry& registry,
    const std::vector<ProfileTable::DriftEvent>& events) {
  if (events.empty()) return {};
  TablePrinter table(
      {"task", "group", "version", "stale mean", "observed", "samples"});
  for (const ProfileTable::DriftEvent& event : events) {
    table.add_row({registry.task_name(event.type),
                   std::to_string(event.group_key),
                   registry.version(event.version).name,
                   format_duration(event.stale_mean),
                   format_duration(event.observed),
                   std::to_string(event.at_count)});
  }
  return table.to_string();
}

}  // namespace versa
