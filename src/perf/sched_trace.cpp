#include "perf/sched_trace.h"

#include <cstdio>
#include <fstream>

#include "common/string_util.h"
#include "perf/report.h"

namespace versa {

std::string sched_trace_table(const core::DecisionTrace& trace,
                              const VersionRegistry& registry,
                              const Machine& machine, std::size_t max_rows) {
  TablePrinter table({"time", "event", "task", "type/version", "worker",
                      "busy", "estimate", "penalty", "cands", "tenant"});
  std::vector<core::TraceEvent> events = trace.events();
  std::size_t start = 0;
  if (max_rows != 0 && events.size() > max_rows) {
    start = events.size() - max_rows;
  }
  for (std::size_t i = start; i < events.size(); ++i) {
    const core::TraceEvent& e = events[i];
    std::string name = e.type != kInvalidTaskType
                           ? registry.task_name(e.type)
                           : std::string("-");
    if (e.version != kInvalidVersion) {
      name += "/" + registry.version(e.version).name;
    }
    table.add_row({format_duration(e.time), to_string(e.kind),
                   std::to_string(e.task), name,
                   e.worker != kInvalidWorker ? machine.worker(e.worker).name
                                              : std::string("-"),
                   format_duration(e.busy_term), format_duration(e.mean_term),
                   format_duration(e.penalty_term),
                   std::to_string(e.candidates), std::to_string(e.tenant)});
  }
  std::string out = table.to_string();
  out += "events: " + std::to_string(trace.total()) + " recorded, " +
         std::to_string(trace.events().size()) + " retained, " +
         std::to_string(trace.dropped()) + " dropped (ring capacity " +
         std::to_string(trace.capacity()) + ")\n";
  return out;
}

std::string sched_trace_counters_json(const core::DecisionTrace& trace,
                                      const Machine& machine) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buffer[224];
  for (const core::TraceEvent& e : trace.events()) {
    if (e.worker == kInvalidWorker) continue;
    if (!first) out += ',';
    first = false;
    switch (e.kind) {
      case core::TraceEventKind::kPlacement:
      case core::TraceEventKind::kLearningPlacement:
      case core::TraceEventKind::kComplete:
        // Counter sample: the busy estimate the decision saw (placements:
        // before the push; completions: after the release).
        std::snprintf(buffer, sizeof(buffer),
                      "{\"name\":\"busy %s\",\"cat\":\"sched\",\"ph\":\"C\","
                      "\"ts\":%.3f,\"pid\":2,\"tid\":%u,"
                      "\"args\":{\"seconds\":%.9f}}",
                      machine.worker(e.worker).name.c_str(), e.time * 1e6,
                      e.worker, e.busy_term);
        break;
      case core::TraceEventKind::kSteal:
      case core::TraceEventKind::kFailure:
      case core::TraceEventKind::kSplit:
      case core::TraceEventKind::kFuse:
      case core::TraceEventKind::kReversal:
      case core::TraceEventKind::kPrefetchPlaced:
      case core::TraceEventKind::kPrefetchDequeue:
      case core::TraceEventKind::kPrefetchStale:
        std::snprintf(buffer, sizeof(buffer),
                      "{\"name\":\"%s\",\"cat\":\"sched\",\"ph\":\"i\","
                      "\"s\":\"t\",\"ts\":%.3f,\"pid\":2,\"tid\":%u,"
                      "\"args\":{\"task\":%llu}}",
                      to_string(e.kind), e.time * 1e6, e.worker,
                      static_cast<unsigned long long>(e.task));
        break;
    }
    out += buffer;
  }
  out += "]}";
  return out;
}

bool write_sched_trace(const std::string& path,
                       const core::DecisionTrace& trace,
                       const Machine& machine) {
  std::ofstream file(path);
  if (!file) return false;
  file << sched_trace_counters_json(trace, machine);
  return static_cast<bool>(file);
}

std::string sched_trace_csv(const core::DecisionTrace& trace,
                            const std::string& policy) {
  // v4 keeps the v3 column set but adds the prefetch event kinds
  // (prefetch / prefetch-pop / prefetch-stale, with `group` carrying the
  // staged bytes). versa_trace_report still accepts v1/v2/v3 files.
  std::string out = "# versa-sched-trace v4\n";
  out += "# policy=" + policy + "\n";
  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "# recorded=%llu dropped=%llu capacity=%zu\n",
                static_cast<unsigned long long>(trace.total()),
                static_cast<unsigned long long>(trace.dropped()),
                trace.capacity());
  out += buffer;
  out += "time,kind,task,type,version,worker,busy,estimate,penalty,"
         "candidates,tenant,group,children\n";
  for (const core::TraceEvent& e : trace.events()) {
    std::snprintf(buffer, sizeof(buffer),
                  "%.9e,%s,%llu,%u,%u,%u,%.9e,%.9e,%.9e,%u,%u,%llu,%u\n",
                  e.time, to_string(e.kind),
                  static_cast<unsigned long long>(e.task), e.type, e.version,
                  e.worker, e.busy_term, e.mean_term, e.penalty_term,
                  e.candidates, e.tenant,
                  static_cast<unsigned long long>(e.group), e.children);
    out += buffer;
  }
  return out;
}

bool write_sched_trace_csv(const std::string& path,
                           const core::DecisionTrace& trace,
                           const std::string& policy) {
  std::ofstream file(path);
  if (!file) return false;
  file << sched_trace_csv(trace, policy);
  return static_cast<bool>(file);
}

}  // namespace versa
