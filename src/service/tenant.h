// Service-mode tenant model (DESIGN.md §10).
//
// A tenant is one client of the shared runtime: it owns graphs, carries a
// fair-share weight, and is bounded by admission quotas. Quotas are
// enforced at submit time, before any task or region reaches the runtime —
// an over-quota submission is *rejected* with a typed reason (never an
// abort), so a storm from one tenant degrades into rejections for that
// tenant instead of failures for everyone.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.h"

namespace versa::service {

/// Per-tenant admission limits. The defaults are effectively unlimited;
/// a registry entry tightens them per tenant.
struct TenantQuota {
  /// Maximum tasks admitted but not yet retired with their graph.
  std::uint64_t max_in_flight_tasks = UINT64_MAX;
  /// Maximum bytes of regions registered in the DataDirectory on behalf
  /// of this tenant's live graphs.
  std::uint64_t max_bytes = UINT64_MAX;
  /// Fair-share weight (>= 1): relative completed-task share this tenant
  /// receives while backlogged against other tenants.
  std::uint32_t weight = 1;
};

enum class RejectReason : std::uint8_t {
  kNone,           ///< not rejected
  kUnknownTenant,  ///< tenant id was never registered
  kTaskQuota,      ///< graph would exceed max_in_flight_tasks
  kByteQuota,      ///< graph would exceed max_bytes
  kShutdown,       ///< service no longer accepts submissions
};

const char* to_string(RejectReason reason);

/// Typed graceful-rejection result. `reason == kNone` means admitted.
struct Rejected {
  RejectReason reason = RejectReason::kNone;
  std::string detail;

  explicit operator bool() const { return reason != RejectReason::kNone; }
};

/// Lock-free snapshot of a tenant's accounting.
struct TenantStats {
  std::uint64_t in_flight_tasks = 0;
  std::uint64_t in_flight_bytes = 0;
  std::uint64_t admitted_graphs = 0;
  std::uint64_t rejected_graphs = 0;
  std::uint64_t completed_graphs = 0;
  std::uint64_t completed_tasks = 0;
};

}  // namespace versa::service
