#include "service/profile_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace versa::service {

SharedProfileCache::SharedProfileCache(std::string path)
    : path_(std::move(path)) {}

std::string SharedProfileCache::snapshot() const {
  versa::LockGuard lock(mutex_);
  if (!loaded_) {
    loaded_ = true;
    if (!path_.empty()) {
      std::ifstream in(path_);
      if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        text_ = buffer.str();
      }
    }
  }
  return text_;
}

bool SharedProfileCache::publish(const std::string& text) {
  if (text.empty()) return true;
  versa::LockGuard lock(mutex_);
  loaded_ = true;
  text_ = text;
  if (path_.empty()) return true;
  // Atomic replace: a concurrent snapshot() of another service instance
  // reading the same path sees either the old or the new file, never a
  // torn mix.
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) return false;
    out << text;
    if (!out) return false;
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace versa::service
