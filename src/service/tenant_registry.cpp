#include "service/tenant_registry.h"

#include <cinttypes>
#include <cstdio>

#include "common/check.h"

namespace versa::service {

const char* to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kUnknownTenant:
      return "unknown-tenant";
    case RejectReason::kTaskQuota:
      return "task-quota";
    case RejectReason::kByteQuota:
      return "byte-quota";
    case RejectReason::kShutdown:
      return "shutdown";
  }
  return "?";
}

TenantId TenantRegistry::register_tenant(std::string name, TenantQuota quota) {
  VERSA_CHECK_MSG(quota.weight >= 1, "tenant weight must be at least 1");
  versa::LockGuard lock(mutex_);
  Entry entry;
  entry.name = std::move(name);
  entry.quota = quota;
  entries_.push_back(std::move(entry));
  // Ids start at 1: tenant 0 is the implicit non-service default.
  return static_cast<TenantId>(entries_.size());
}

TenantRegistry::Entry* TenantRegistry::find(TenantId tenant) {
  if (tenant == kDefaultTenant || tenant > entries_.size()) return nullptr;
  return &entries_[tenant - 1];
}

const TenantRegistry::Entry* TenantRegistry::find(TenantId tenant) const {
  if (tenant == kDefaultTenant || tenant > entries_.size()) return nullptr;
  return &entries_[tenant - 1];
}

std::size_t TenantRegistry::tenant_count() const {
  versa::LockGuard lock(mutex_);
  return entries_.size();
}

bool TenantRegistry::known(TenantId tenant) const {
  versa::LockGuard lock(mutex_);
  return find(tenant) != nullptr;
}

std::string TenantRegistry::tenant_name(TenantId tenant) const {
  versa::LockGuard lock(mutex_);
  const Entry* entry = find(tenant);
  return entry == nullptr ? std::string() : entry->name;
}

TenantQuota TenantRegistry::quota(TenantId tenant) const {
  versa::LockGuard lock(mutex_);
  const Entry* entry = find(tenant);
  return entry == nullptr ? TenantQuota{} : entry->quota;
}

Rejected TenantRegistry::admit(TenantId tenant, std::uint64_t tasks,
                               std::uint64_t bytes) {
  versa::LockGuard lock(mutex_);
  Entry* entry = find(tenant);
  Rejected rejected;
  if (entry == nullptr) {
    rejected.reason = RejectReason::kUnknownTenant;
    rejected.detail = "tenant id " + std::to_string(tenant) +
                      " was never registered with the service";
    return rejected;
  }
  // Subtraction form: the additive check (`in_flight + tasks > quota`)
  // wraps for near-UINT64_MAX graph sizes and would admit instead of
  // reject.
  char detail[160];
  if (entry->stats.in_flight_tasks > entry->quota.max_in_flight_tasks ||
      tasks > entry->quota.max_in_flight_tasks -
                  entry->stats.in_flight_tasks) {
    rejected.reason = RejectReason::kTaskQuota;
    std::snprintf(detail, sizeof(detail),
                  "graph of %" PRIu64 " tasks would exceed quota: %" PRIu64
                  " in flight, limit %" PRIu64,
                  tasks, entry->stats.in_flight_tasks,
                  entry->quota.max_in_flight_tasks);
    rejected.detail = detail;
    ++entry->stats.rejected_graphs;
    return rejected;
  }
  if (entry->stats.in_flight_bytes > entry->quota.max_bytes ||
      bytes > entry->quota.max_bytes - entry->stats.in_flight_bytes) {
    rejected.reason = RejectReason::kByteQuota;
    std::snprintf(detail, sizeof(detail),
                  "graph of %" PRIu64 " bytes would exceed quota: %" PRIu64
                  " in flight, limit %" PRIu64,
                  bytes, entry->stats.in_flight_bytes,
                  entry->quota.max_bytes);
    rejected.detail = detail;
    ++entry->stats.rejected_graphs;
    return rejected;
  }
  entry->stats.in_flight_tasks += tasks;
  entry->stats.in_flight_bytes += bytes;
  ++entry->stats.admitted_graphs;
  return rejected;
}

void TenantRegistry::credit(TenantId tenant, std::uint64_t tasks,
                            std::uint64_t bytes) {
  versa::LockGuard lock(mutex_);
  Entry* entry = find(tenant);
  VERSA_CHECK_MSG(entry != nullptr, "crediting an unknown tenant");
  VERSA_CHECK(entry->stats.in_flight_tasks >= tasks);
  VERSA_CHECK(entry->stats.in_flight_bytes >= bytes);
  entry->stats.in_flight_tasks -= tasks;
  entry->stats.in_flight_bytes -= bytes;
}

void TenantRegistry::on_graph_complete(TenantId tenant, std::uint64_t tasks,
                                       std::uint64_t bytes) {
  versa::LockGuard lock(mutex_);
  Entry* entry = find(tenant);
  VERSA_CHECK_MSG(entry != nullptr, "completing a graph of an unknown tenant");
  VERSA_CHECK(entry->stats.in_flight_tasks >= tasks);
  VERSA_CHECK(entry->stats.in_flight_bytes >= bytes);
  entry->stats.in_flight_tasks -= tasks;
  entry->stats.in_flight_bytes -= bytes;
  ++entry->stats.completed_graphs;
  entry->stats.completed_tasks += tasks;
}

TenantStats TenantRegistry::stats(TenantId tenant) const {
  versa::LockGuard lock(mutex_);
  const Entry* entry = find(tenant);
  return entry == nullptr ? TenantStats{} : entry->stats;
}

}  // namespace versa::service
