#include "service/versa_service.h"

#include <utility>

#include "common/check.h"
#include "common/log.h"

namespace versa::service {

SubmitResult Session::submit(const GraphSpec& spec) {
  return service_->submit_graph(tenant_, spec);
}

void Session::wait(GraphId graph) { service_->wait_graph(graph); }

TenantStats Session::stats() const { return service_->stats(tenant_); }

VersaService::VersaService(const Machine& machine, VersaServiceConfig config)
    : runtime_(machine, std::move(config.runtime)),
      cache_(std::move(config.profile_cache_path)) {
  gate_.set_window(config.fair_share_window != 0
                       ? config.fair_share_window
                       : 4 * machine.worker_count());
  runtime_.set_fair_share(&gate_);
}

VersaService::~VersaService() {
  shutdown();
#ifndef NDEBUG
  versa::LockGuard lock(graphs_mutex_);
  for (const auto& [id, record] : graphs_) {
    VERSA_CHECK_MSG(record.retired,
                    "service destroyed with an un-waited graph");
  }
#endif
}

Session VersaService::open_session(std::string name, TenantQuota quota) {
  const TenantId tenant = registry_.register_tenant(std::move(name), quota);
  // The gate's lanes are runtime-lock serialized (fair_share.h), so the
  // weight write takes the runtime lock like every other gate mutation.
  versa::RecursiveLockGuard lock(runtime_.port_mutex());
  gate_.set_weight(tenant, quota.weight);
  return Session(this, tenant);
}

SubmitResult VersaService::submit_graph(TenantId tenant,
                                        const GraphSpec& spec) {
  SubmitResult result;
  if (shutdown_.load(std::memory_order_acquire)) {
    result.rejected.reason = RejectReason::kShutdown;
    result.rejected.detail = "service is shutting down";
    return result;
  }
  for (const TaskSpec& task : spec.tasks) {
    for (const AccessSpec& access : task.accesses) {
      VERSA_CHECK_MSG(access.region < spec.regions.size(),
                      "graph spec access names an out-of-range region");
    }
  }
  const std::uint64_t task_count = spec.tasks.size();
  const std::uint64_t byte_count = spec.total_bytes();

  // 1. Admission: check-and-charge both quotas (service.tenant lock only).
  result.rejected = registry_.admit(tenant, task_count, byte_count);
  if (result.rejected) return result;

  // 2. Open the graph root and register its private, namespaced regions
  // (each Runtime call takes and releases the runtime lock).
  const GraphId graph = runtime_.open_graph(tenant);
  GraphRecord record;
  record.tenant = tenant;
  record.tasks = task_count;
  record.bytes = byte_count;
  record.regions.reserve(spec.regions.size());
  const std::string prefix =
      "t" + std::to_string(tenant) + "/g" + std::to_string(graph) + "/";
  for (const RegionSpec& region : spec.regions) {
    record.regions.push_back(
        runtime_.register_data(prefix + region.name, region.bytes));
  }

  // 3. Submit the tasks, tagged with the graph (and through it the
  // tenant). Dependences derive from the access clauses as usual.
  for (const TaskSpec& task : spec.tasks) {
    AccessList accesses;
    accesses.reserve(task.accesses.size());
    for (const AccessSpec& access : task.accesses) {
      accesses.push_back(
          Access{record.regions[access.region], access.mode, 0, 0});
    }
    Runtime::SubmitOptions options;
    options.graph = graph;
    options.priority = task.priority;
    options.label = task.label;
    runtime_.submit(task.type, std::move(accesses), std::move(options));
  }

  // 4. Record the graph for retirement (service.graph lock, nothing else
  // held).
  {
    versa::LockGuard lock(graphs_mutex_);
    graphs_.emplace(graph, std::move(record));
  }
  result.graph = graph;
  return result;
}

void VersaService::wait_graph(GraphId graph) {
  runtime_.wait_graph(graph);
  // Retire exactly once: claim the record under the graph-table lock,
  // then unregister/credit with nothing held (each step takes its own
  // higher- or lower-ranked lock in a fresh acquisition).
  GraphRecord record;
  {
    versa::LockGuard lock(graphs_mutex_);
    auto it = graphs_.find(graph);
    VERSA_CHECK_MSG(it != graphs_.end(), "waiting on an unknown graph");
    if (it->second.retired) return;
    record = std::move(it->second);
    it->second.retired = true;
    it->second.regions.clear();
  }
  for (RegionId region : record.regions) {
    runtime_.unregister_data(region);
  }
  registry_.on_graph_complete(record.tenant, record.tasks, record.bytes);
}

void VersaService::shutdown() {
  if (shutdown_.exchange(true, std::memory_order_acq_rel)) return;
  publish_profile();
}

ProfileLoadResult VersaService::warm_start() {
  // Cache lock (rank 8) is taken and released inside snapshot(); the
  // import then takes the runtime lock (rank 10) with nothing held.
  return runtime_.import_profile_text(cache_.snapshot());
}

bool VersaService::publish_profile() {
  const std::string text = runtime_.export_profile_text();
  return cache_.publish(text);
}

}  // namespace versa::service
