// Shared cross-tenant warm-start cache.
//
// Every tenant of one service benefits from the same learned profile: the
// machine signature keys the ProfileStore text, so a profile published by
// any runtime on this machine warm-starts the next service instance for
// all tenants at once. The cache holds the serialized native-store text in
// memory behind a mutex of class kLockRankProfileCache (rank 8, below the
// runtime lock) and mirrors it to an optional file path.
//
// Lock discipline: snapshot()/publish() take only the cache mutex and are
// never called with the runtime lock held — VersaService snapshots first,
// then imports under the runtime lock (rank 8 fully released before rank
// 10 is taken), and exports under the runtime lock before publishing. The
// file write is atomic (temp + rename) so a concurrent reader of the same
// path never observes a torn file — ProfileStore's checksum turns any
// remaining race into a clean cold start, never a crash.
#pragma once

#include <string>

#include "util/annotated_sync.h"

namespace versa::service {

class SharedProfileCache {
 public:
  /// `path` may be empty for a memory-only cache.
  explicit SharedProfileCache(std::string path = {});

  SharedProfileCache(const SharedProfileCache&) = delete;
  SharedProfileCache& operator=(const SharedProfileCache&) = delete;

  /// The current cached serialized-profile text (empty when cold). Reads
  /// the backing file on first call when a path is configured.
  std::string snapshot() const;

  /// Publish newer serialized text: replaces the in-memory cache and, when
  /// a path is configured, atomically rewrites the file. Empty text is
  /// ignored (a scheduler without a profile table has nothing to share).
  /// Returns false when the file write failed (memory cache still updated).
  bool publish(const std::string& text);

  const std::string& path() const { return path_; }

 private:
  const std::string path_;
  mutable versa::Mutex mutex_{lock_order::kLockRankProfileCache};
  mutable std::string text_ VERSA_GUARDED_BY(mutex_);
  mutable bool loaded_ VERSA_GUARDED_BY(mutex_) = false;
};

}  // namespace versa::service
