// Tenant registration and quota admission control.
//
// The registry owns the tenant table and the check-and-charge admission
// step: admit() atomically (under the registry mutex) verifies both quotas
// against a graph's task count and byte footprint, then charges them.
// credit() / on_graph_complete() return the charge when the graph retires.
//
// The mutex belongs to lock class kLockRankTenant (rank 4) — *below* the
// runtime lock (rank 10). Every registry call happens on a client thread
// outside the runtime lock (admission before submit takes rank 10, retire
// accounting after wait_graph returns), so rank 4 is always acquired with
// no higher rank held and the checker stays quiet. Nothing inside the
// runtime's completion path touches the registry; per-task fair-share
// accounting lives in FairShareInterleaver's atomics instead.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "service/tenant.h"
#include "util/annotated_sync.h"

namespace versa::service {

class TenantRegistry {
 public:
  TenantRegistry() = default;
  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Register a tenant and return its id (dense, starting at 1 — tenant 0
  /// is the implicit default owner of non-service graphs and is never
  /// handed out here).
  TenantId register_tenant(std::string name, TenantQuota quota);

  std::size_t tenant_count() const;
  bool known(TenantId tenant) const;
  std::string tenant_name(TenantId tenant) const;
  TenantQuota quota(TenantId tenant) const;

  /// Check-and-charge: admit a graph of `tasks` tasks and `bytes` region
  /// bytes for `tenant`. On success the quotas are charged and the
  /// returned Rejected converts to false; on failure nothing is charged
  /// and the reason/detail describe the violated quota.
  Rejected admit(TenantId tenant, std::uint64_t tasks, std::uint64_t bytes);

  /// Return a graph's admission charge without completing it (submission
  /// aborted after admission).
  void credit(TenantId tenant, std::uint64_t tasks, std::uint64_t bytes);

  /// A graph retired cleanly: return its charge and count its tasks.
  void on_graph_complete(TenantId tenant, std::uint64_t tasks,
                         std::uint64_t bytes);

  TenantStats stats(TenantId tenant) const;

 private:
  struct Entry {
    std::string name;
    TenantQuota quota;
    TenantStats stats;
  };

  /// nullptr for unknown ids (including tenant 0).
  Entry* find(TenantId tenant) VERSA_REQUIRES(mutex_);
  const Entry* find(TenantId tenant) const VERSA_REQUIRES(mutex_);

  mutable versa::Mutex mutex_{lock_order::kLockRankTenant};
  std::deque<Entry> entries_ VERSA_GUARDED_BY(mutex_);
};

}  // namespace versa::service
