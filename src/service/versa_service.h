// VersaService — the multi-tenant front end over one shared Runtime
// (DESIGN.md §10).
//
// The service turns the single-program runtime into a server: N client
// threads (one per tenant connection, typically) submit *graph specs* —
// self-contained descriptions of regions and tasks — and wait on the
// returned GraphId. Internally each admitted spec becomes an independent
// graph root (Runtime::open_graph), its regions are registered under a
// tenant/graph-namespaced name, and its tasks flow through the ordinary
// submission path tagged with the graph and tenant. Admission control
// (TenantRegistry quotas) runs before anything touches the runtime, and
// the weighted FairShareInterleaver keeps one tenant's storm from
// starving the others' dispatch.
//
// Thread-safety: every public method may be called from any client thread.
// Lock order per call, always strictly increasing and never nested the
// wrong way: registry (service.tenant, 4) → released → graph table
// (service.graph, 6) → released → runtime (10) inside Runtime calls; the
// profile cache (service.profile, 8) is only touched with nothing held.
//
// Graph lifecycle: submit_graph() → wait_graph() → retired (regions
// unregistered, quotas credited). wait_graph is idempotent; every admitted
// graph must be waited on before the service is destroyed.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "runtime/runtime.h"
#include "sched/core/fair_share.h"
#include "service/profile_cache.h"
#include "service/tenant.h"
#include "service/tenant_registry.h"
#include "task/access.h"

namespace versa::service {

/// One virtual region of a graph spec. Regions are private to the graph
/// (registered at admission, unregistered at retire) and virtual — no
/// host storage; the service workload model is dependence- and
/// transfer-shaped, like the sim-backend figures.
struct RegionSpec {
  std::string name;
  std::uint64_t bytes = 0;
};

/// One access clause of a task spec: an index into GraphSpec::regions.
struct AccessSpec {
  std::size_t region = 0;
  AccessMode mode = AccessMode::kIn;
};

/// One task of a graph spec. `type` must be declared (with at least one
/// version) on the service's runtime before submission. Dependences derive
/// from the access clauses, exactly as in the single-graph API.
struct TaskSpec {
  TaskTypeId type = kInvalidTaskType;
  std::vector<AccessSpec> accesses;
  int priority = 0;
  std::string label;
};

struct GraphSpec {
  std::vector<RegionSpec> regions;
  std::vector<TaskSpec> tasks;

  std::uint64_t total_bytes() const {
    std::uint64_t sum = 0;
    for (const RegionSpec& r : regions) sum += r.bytes;
    return sum;
  }
};

/// Outcome of submit_graph: either an admitted graph id or a typed
/// rejection (never both, never an abort).
struct SubmitResult {
  GraphId graph = kInvalidGraph;
  Rejected rejected;

  bool admitted() const { return !rejected; }
};

struct VersaServiceConfig {
  /// Runtime configuration for the shared runtime (backend, scheduler...).
  RuntimeConfig runtime;
  /// Fair-share dispatch window; 0 = 4 × worker count.
  std::size_t fair_share_window = 0;
  /// Shared warm-start cache file ("" = memory-only cache).
  std::string profile_cache_path;
};

class VersaService;

/// A tenant's handle on the service: submissions and waits made through a
/// session are attributed (and quota-checked) against its tenant. Copyable
/// value — all state lives in the service.
class Session {
 public:
  SubmitResult submit(const GraphSpec& spec);
  void wait(GraphId graph);
  TenantStats stats() const;
  TenantId tenant() const { return tenant_; }

 private:
  friend class VersaService;
  Session(VersaService* svc, TenantId tenant) : service_(svc), tenant_(tenant) {}

  VersaService* service_;
  TenantId tenant_;
};

class VersaService {
 public:
  /// The machine is borrowed and must outlive the service.
  explicit VersaService(const Machine& machine, VersaServiceConfig config = {});
  ~VersaService();

  VersaService(const VersaService&) = delete;
  VersaService& operator=(const VersaService&) = delete;

  /// The shared runtime — declare task types and versions here before
  /// opening sessions (the usual declare_task/add_version surface).
  Runtime& runtime() { return runtime_; }

  /// Register a tenant and hand back its session.
  Session open_session(std::string name, TenantQuota quota);

  /// Admission-checked graph submission (see the class comment).
  SubmitResult submit_graph(TenantId tenant, const GraphSpec& spec);

  /// Block until `graph` finished, then retire it: unregister its regions
  /// and credit its tenant's quotas. Idempotent per graph.
  void wait_graph(GraphId graph);

  /// Stop admitting: subsequent submissions are rejected with kShutdown
  /// (in-flight graphs keep running — wait_graph them as usual), then the
  /// learned profile is published to the shared cache.
  void shutdown();

  /// Seed the scheduler's profile table from the shared cache. Call after
  /// declaring task types/versions on runtime().
  ProfileLoadResult warm_start();

  /// Export the learned profile and publish it to the shared cache.
  bool publish_profile();

  TenantStats stats(TenantId tenant) const { return registry_.stats(tenant); }
  const TenantRegistry& tenants() const { return registry_; }
  const core::FairShareInterleaver& fair_share() const { return gate_; }
  SharedProfileCache& profile_cache() { return cache_; }

 private:
  struct GraphRecord {
    TenantId tenant = kInvalidTenant;
    std::uint64_t tasks = 0;
    std::uint64_t bytes = 0;
    std::vector<RegionId> regions;
    bool retired = false;
  };

  Runtime runtime_;
  TenantRegistry registry_;
  core::FairShareInterleaver gate_;
  SharedProfileCache cache_;
  std::atomic<bool> shutdown_{false};

  mutable versa::Mutex graphs_mutex_{lock_order::kLockRankServiceGraph};
  std::unordered_map<GraphId, GraphRecord> graphs_
      VERSA_GUARDED_BY(graphs_mutex_);
};

}  // namespace versa::service
