// Execution-time noise models for the simulated machine.
//
// Real kernels never take exactly their mean time: measured durations jitter
// with cache state, DVFS, and transfer contention. The versioning scheduler
// must learn through that jitter, so the simulator perturbs every modelled
// duration with a configurable multiplicative noise source.
#pragma once

#include "common/random.h"
#include "common/types.h"

namespace versa::sim {

enum class NoiseKind {
  kNone,       ///< Durations are exactly the model mean (unit tests).
  kLognormal,  ///< Multiplicative lognormal jitter (default).
  kUniform,    ///< Uniform in [1-a, 1+a] — stress-tests the profiler.
};

struct NoiseConfig {
  NoiseKind kind = NoiseKind::kLognormal;
  /// Coefficient of variation for lognormal / half-width for uniform.
  double magnitude = 0.03;
};

/// Stateful noise source; one per simulated worker so event interleaving
/// does not perturb the random streams of other workers.
class NoiseModel {
 public:
  NoiseModel(NoiseConfig config, Rng rng);

  /// Perturb a mean duration. Always returns a strictly positive value.
  Duration apply(Duration mean_duration);

  const NoiseConfig& config() const { return config_; }

 private:
  NoiseConfig config_;
  Rng rng_;
  double lognormal_mu_ = 0.0;
  double lognormal_sigma_ = 0.0;
};

}  // namespace versa::sim
