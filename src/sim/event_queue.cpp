#include "sim/event_queue.h"

#include <algorithm>

#include "common/check.h"

namespace versa::sim {

EventFn* EventQueue::find_callback(EventHandle handle) {
  for (auto& [h, fn] : callbacks_) {
    if (h == handle) return &fn;
  }
  return nullptr;
}

EventHandle EventQueue::schedule_at(Time when, EventFn fn) {
  VERSA_CHECK_MSG(when >= now_, "event scheduled in the past");
  VERSA_CHECK(fn != nullptr);
  const EventHandle handle = next_handle_++;
  heap_.push(Entry{when, next_seq_++, handle});
  callbacks_.emplace_back(handle, std::move(fn));
  ++live_;
  return handle;
}

EventHandle EventQueue::schedule_after(Duration delay, EventFn fn) {
  VERSA_CHECK_MSG(delay >= 0.0, "negative event delay");
  return schedule_at(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(EventHandle handle) {
  auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                         [&](const auto& p) { return p.first == handle; });
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_;
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry top = heap_.top();
    heap_.pop();
    auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                           [&](const auto& p) { return p.first == top.handle; });
    if (it == callbacks_.end()) continue;  // cancelled
    EventFn fn = std::move(it->second);
    callbacks_.erase(it);
    --live_;
    now_ = top.when;
    fn();
    return true;
  }
  return false;
}

std::uint64_t EventQueue::run() {
  std::uint64_t executed = 0;
  while (step()) {
    ++executed;
  }
  return executed;
}

std::uint64_t EventQueue::run_until(Time limit) {
  std::uint64_t executed = 0;
  while (!heap_.empty()) {
    if (heap_.top().when > limit) break;
    if (step()) ++executed;
  }
  return executed;
}

bool EventQueue::empty() const { return live_ == 0; }

std::size_t EventQueue::pending() const { return live_; }

}  // namespace versa::sim
