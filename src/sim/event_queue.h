// Discrete-event core: a virtual clock plus a time-ordered event queue.
//
// Ties are broken by insertion order so that simulations are deterministic
// regardless of the container's internal layout. The queue owns the event
// callbacks; cancelling is supported through handles because the transfer
// engine reschedules in-flight copies when links free up.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace versa::sim {

using EventFn = std::function<void()>;
using EventHandle = std::uint64_t;

constexpr EventHandle kInvalidEvent = 0;

class EventQueue {
 public:
  /// Schedule `fn` to run at absolute virtual time `when`.
  /// `when` must not precede the current clock.
  EventHandle schedule_at(Time when, EventFn fn);

  /// Schedule `fn` to run `delay` seconds after the current clock.
  EventHandle schedule_after(Duration delay, EventFn fn);

  /// Cancel a pending event. Returns false if it already ran or was
  /// cancelled before.
  bool cancel(EventHandle handle);

  /// Pop and run the next event, advancing the clock. Returns false when
  /// the queue is empty (cancelled entries are skipped transparently).
  bool step();

  /// Run until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Run events until the clock would pass `limit`; events at exactly
  /// `limit` are executed. Returns events executed.
  std::uint64_t run_until(Time limit);

  Time now() const { return now_; }
  bool empty() const;
  std::size_t pending() const;

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    EventHandle handle;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Callbacks are kept out of the heap entries so that cancel() is O(1):
  // a cancelled handle simply loses its callback and is skipped on pop.
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::vector<std::pair<EventHandle, EventFn>> callbacks_;
  std::uint64_t next_seq_ = 1;
  EventHandle next_handle_ = 1;
  Time now_ = 0.0;
  std::size_t live_ = 0;

  EventFn* find_callback(EventHandle handle);
};

}  // namespace versa::sim
