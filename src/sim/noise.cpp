#include "sim/noise.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace versa::sim {

NoiseModel::NoiseModel(NoiseConfig config, Rng rng)
    : config_(config), rng_(rng) {
  VERSA_CHECK(config.magnitude >= 0.0 && config.magnitude < 1.0);
  if (config_.kind == NoiseKind::kLognormal) {
    // Choose (mu, sigma) so that the multiplicative factor has mean 1 and
    // coefficient of variation `magnitude`: for lognormal,
    // cv^2 = exp(sigma^2) - 1 and mean = exp(mu + sigma^2/2).
    const double cv = config_.magnitude;
    const double sigma2 = std::log(1.0 + cv * cv);
    lognormal_sigma_ = std::sqrt(sigma2);
    lognormal_mu_ = -0.5 * sigma2;
  }
}

Duration NoiseModel::apply(Duration mean_duration) {
  VERSA_CHECK(mean_duration >= 0.0);
  if (mean_duration == 0.0) return 0.0;
  double factor = 1.0;
  switch (config_.kind) {
    case NoiseKind::kNone:
      break;
    case NoiseKind::kLognormal:
      factor = rng_.next_lognormal(lognormal_mu_, lognormal_sigma_);
      break;
    case NoiseKind::kUniform:
      factor = rng_.uniform(1.0 - config_.magnitude, 1.0 + config_.magnitude);
      break;
  }
  return std::max(mean_duration * factor, 1e-12);
}

}  // namespace versa::sim
