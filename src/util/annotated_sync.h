// Annotated synchronization primitives — the static half of the lock
// discipline.
//
// versa::Mutex / versa::RecursiveMutex wrap the std primitives and carry
// Clang Thread Safety Analysis capability attributes, so a Clang build
// with -Wthread-safety -Werror=thread-safety machine-checks that every
// GUARDED_BY field is only touched with its lock held and every REQUIRES
// method is only called under the right capability. Under GCC the
// attribute macros expand to nothing and the wrappers degrade to plain
// std mutexes. Both compilers keep the runtime lock-order checker
// (src/util/lock_order.h): each wrapper names its LockClass and every
// acquisition is rank-validated in debug builds, so dynamic tests
// corroborate what the static analysis proves.
//
// Usage:
//   versa::Mutex mu_{lock_order::kLockRankAccount};
//   int shared_ VERSA_GUARDED_BY(mu_);
//   void poke() { versa::LockGuard lock(mu_); ++shared_; }
//   Duration busy() const VERSA_REQUIRES(mu_);
//
// Condition variables: std::condition_variable_any waits take
// UniqueLock::native(); from the analysis' point of view the capability
// stays held across the wait (it is released and re-acquired inside),
// which matches how every caller reasons about predicates.
#pragma once

#include <mutex>
#include <optional>
#include <shared_mutex>

#include "util/lock_order.h"

// --- Clang Thread Safety Analysis attribute macros ----------------------
#if defined(__clang__) && !defined(SWIG)
#define VERSA_TSA_ATTR__(x) __attribute__((x))
#else
#define VERSA_TSA_ATTR__(x)
#endif

#define VERSA_CAPABILITY(x) VERSA_TSA_ATTR__(capability(x))
#define VERSA_SCOPED_CAPABILITY VERSA_TSA_ATTR__(scoped_lockable)
#define VERSA_GUARDED_BY(x) VERSA_TSA_ATTR__(guarded_by(x))
#define VERSA_PT_GUARDED_BY(x) VERSA_TSA_ATTR__(pt_guarded_by(x))
#define VERSA_ACQUIRE(...) VERSA_TSA_ATTR__(acquire_capability(__VA_ARGS__))
#define VERSA_RELEASE(...) VERSA_TSA_ATTR__(release_capability(__VA_ARGS__))
#define VERSA_ACQUIRE_SHARED(...) \
  VERSA_TSA_ATTR__(acquire_shared_capability(__VA_ARGS__))
#define VERSA_RELEASE_SHARED(...) \
  VERSA_TSA_ATTR__(release_shared_capability(__VA_ARGS__))
#define VERSA_TRY_ACQUIRE(...) \
  VERSA_TSA_ATTR__(try_acquire_capability(__VA_ARGS__))
#define VERSA_REQUIRES(...) VERSA_TSA_ATTR__(requires_capability(__VA_ARGS__))
#define VERSA_EXCLUDES(...) VERSA_TSA_ATTR__(locks_excluded(__VA_ARGS__))
#define VERSA_ASSERT_CAPABILITY(x) VERSA_TSA_ATTR__(assert_capability(x))
#define VERSA_RETURN_CAPABILITY(x) VERSA_TSA_ATTR__(lock_returned(x))
#define VERSA_NO_THREAD_SAFETY_ANALYSIS \
  VERSA_TSA_ATTR__(no_thread_safety_analysis)

namespace versa {

/// Non-recursive mutex with a named lock class.
class VERSA_CAPABILITY("mutex") Mutex {
 public:
  using native_type = std::mutex;

  explicit Mutex(const lock_order::LockClass& cls) : cls_(&cls) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() VERSA_ACQUIRE() {
    lock_order::on_acquire(*cls_);
    m_.lock();
  }
  void unlock() VERSA_RELEASE() {
    m_.unlock();
    lock_order::on_release(*cls_);
  }

  /// Dynamic stand-in where the static analysis loses track (callback
  /// boundaries): validates against the calling thread's held-lock stack
  /// in enforced builds and tells the analysis the capability is held
  /// from here on.
  void assert_held() const VERSA_ASSERT_CAPABILITY(this) {
    lock_order::assert_holds(*cls_);
  }

  const lock_order::LockClass& lock_class() const { return *cls_; }
  native_type& native_handle() { return m_; }

 private:
  native_type m_;
  const lock_order::LockClass* cls_;
};

/// Recursive mutex with a named (reentrant) lock class. Kept for the one
/// place re-entrancy is inherent: task bodies calling back into the
/// runtime's public API while the sim event loop holds the runtime lock.
class VERSA_CAPABILITY("mutex") RecursiveMutex {
 public:
  using native_type = std::recursive_mutex;

  explicit RecursiveMutex(const lock_order::LockClass& cls) : cls_(&cls) {}
  RecursiveMutex(const RecursiveMutex&) = delete;
  RecursiveMutex& operator=(const RecursiveMutex&) = delete;

  void lock() VERSA_ACQUIRE() {
    lock_order::on_acquire(*cls_);
    m_.lock();
  }
  void unlock() VERSA_RELEASE() {
    m_.unlock();
    lock_order::on_release(*cls_);
  }

  void assert_held() const VERSA_ASSERT_CAPABILITY(this) {
    lock_order::assert_holds(*cls_);
  }

  const lock_order::LockClass& lock_class() const { return *cls_; }
  native_type& native_handle() { return m_; }

 private:
  native_type m_;
  const lock_order::LockClass* cls_;
};

/// Reader-writer mutex with a named lock class. Exclusive holders get the
/// full capability; shared holders get the read-side capability (the
/// analysis permits only const access to fields GUARDED_BY it). The
/// lock-order checker records shared and exclusive acquisitions alike —
/// rank discipline is about *what a thread waits on*, which is identical
/// for both modes.
class VERSA_CAPABILITY("mutex") SharedMutex {
 public:
  using native_type = std::shared_mutex;

  explicit SharedMutex(const lock_order::LockClass& cls) : cls_(&cls) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() VERSA_ACQUIRE() {
    lock_order::on_acquire(*cls_);
    m_.lock();
  }
  void unlock() VERSA_RELEASE() {
    m_.unlock();
    lock_order::on_release(*cls_);
  }
  void lock_shared() VERSA_ACQUIRE_SHARED() {
    lock_order::on_acquire(*cls_);
    m_.lock_shared();
  }
  void unlock_shared() VERSA_RELEASE_SHARED() {
    m_.unlock_shared();
    lock_order::on_release(*cls_);
  }

  void assert_held() const VERSA_ASSERT_CAPABILITY(this) {
    lock_order::assert_holds(*cls_);
  }

  const lock_order::LockClass& lock_class() const { return *cls_; }
  native_type& native_handle() { return m_; }

 private:
  native_type m_;
  const lock_order::LockClass* cls_;
};

/// Scoped shared (reader) lock on a SharedMutex.
class VERSA_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& m) VERSA_ACQUIRE_SHARED(m) : m_(m) {
    m_.lock_shared();
  }
  ~SharedLockGuard() VERSA_RELEASE() { m_.unlock_shared(); }

  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;

 private:
  SharedMutex& m_;
};

/// Scoped lock (std::lock_guard analogue) for either wrapper.
template <typename MutexT>
class VERSA_SCOPED_CAPABILITY BasicLockGuard {
 public:
  explicit BasicLockGuard(MutexT& m) VERSA_ACQUIRE(m) : m_(m) { m_.lock(); }
  ~BasicLockGuard() VERSA_RELEASE() { m_.unlock(); }

  BasicLockGuard(const BasicLockGuard&) = delete;
  BasicLockGuard& operator=(const BasicLockGuard&) = delete;

 private:
  MutexT& m_;
};

/// Scoped lock that exposes the underlying std::unique_lock for condition
/// variable waits. The wait releases and re-acquires the native mutex
/// below the analysis' radar — the capability is held again by the time
/// the wait returns, so treating it as continuously held is sound for
/// every caller-visible program point. The lock-order checker likewise
/// keeps the entry on the held stack across the wait (nothing else is
/// acquired by a blocked thread).
template <typename MutexT>
class VERSA_SCOPED_CAPABILITY BasicUniqueLock {
 public:
  explicit BasicUniqueLock(MutexT& m) VERSA_ACQUIRE(m) : m_(m) {
    lock_order::on_acquire(m_.lock_class());
    native_.emplace(m_.native_handle());
  }
  ~BasicUniqueLock() VERSA_RELEASE() {
    native_.reset();
    lock_order::on_release(m_.lock_class());
  }

  BasicUniqueLock(const BasicUniqueLock&) = delete;
  BasicUniqueLock& operator=(const BasicUniqueLock&) = delete;

  std::unique_lock<typename MutexT::native_type>& native() { return *native_; }

 private:
  MutexT& m_;
  std::optional<std::unique_lock<typename MutexT::native_type>> native_;
};

using LockGuard = BasicLockGuard<Mutex>;
using RecursiveLockGuard = BasicLockGuard<RecursiveMutex>;
using SharedMutexExclusiveGuard = BasicLockGuard<SharedMutex>;
using UniqueLock = BasicUniqueLock<Mutex>;
using RecursiveUniqueLock = BasicUniqueLock<RecursiveMutex>;

}  // namespace versa
