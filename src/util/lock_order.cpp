#include "util/lock_order.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

namespace versa::lock_order {

const LockClass kLockRankTenant = {"service.tenant", 4};
const LockClass kLockRankServiceGraph = {"service.graph", 6};
const LockClass kLockRankProfileCache = {"service.profile", 8};
const LockClass kLockRankRuntime = {"runtime", 10, /*reentrant=*/true};
const LockClass kLockRankSanitizerShard = {"sanitizer.shard", 11};
const LockClass kLockRankSanitizerClock = {"sanitizer.clock", 12};
const LockClass kLockRankData = {"data", 13};
const LockClass kLockRankDataShard = {"data.shard", 14};
const LockClass kLockRankSanitizerState = {"sanitizer.state", 15};
// Reentrant: a task spanning several analyzer shards acquires them in
// ascending shard-index order; the checker sees same-class nesting.
const LockClass kLockRankAnalyzerShard = {"analyzer.shard", 16,
                                          /*reentrant=*/true};
const LockClass kLockRankSubmit = {"sched.submit", 17};
const LockClass kLockRankAccount = {"sched.account", 20};
const LockClass kLockRankQueue = {"sched.queue", 30};
const LockClass kLockRankTrace = {"trace", 40};
const LockClass kLockRankExecPrefetch = {"exec.prefetch", 44};
const LockClass kLockRankExecWake = {"exec.wake", 50};

namespace {

/// Held-lock stack of the calling thread, innermost last.
thread_local std::vector<const LockClass*> tls_held;

bool default_enforced() {
  if (const char* env = std::getenv("VERSA_LOCK_ORDER")) {
    return env[0] != '0';
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

std::atomic<bool> g_enforced{default_enforced()};

void abort_handler(const char* report) {
  std::fprintf(stderr, "%s\n", report);
  std::abort();
}

std::atomic<ViolationHandler> g_handler{&abort_handler};

void report_violation(const LockClass& acquiring, const LockClass& held) {
  char report[512];
  int n = std::snprintf(
      report, sizeof(report),
      "versa: lock-order inversion: acquiring '%s' (rank %d) while holding "
      "'%s' (rank %d); documented order is strictly increasing rank. held "
      "stack:",
      acquiring.name, acquiring.rank, held.name, held.rank);
  for (const LockClass* cls : tls_held) {
    if (n < 0 || static_cast<std::size_t>(n) >= sizeof(report)) break;
    n += std::snprintf(report + n, sizeof(report) - static_cast<std::size_t>(n),
                       " %s(%d)", cls->name, cls->rank);
  }
  g_handler.load(std::memory_order_acquire)(report);
}

}  // namespace

void on_acquire(const LockClass& cls) {
  if (!g_enforced.load(std::memory_order_relaxed)) return;
  if (!tls_held.empty()) {
    const LockClass& top = *tls_held.back();
    const bool reentry = &top == &cls && cls.reentrant;
    if (!reentry && top.rank >= cls.rank) {
      report_violation(cls, top);
    }
  }
  tls_held.push_back(&cls);
}

void on_release(const LockClass& cls) {
  if (!g_enforced.load(std::memory_order_relaxed)) return;
  // Pop the innermost entry of this class. Out-of-order releases are legal
  // with scoped guards of different classes, hence the backwards search.
  for (auto it = tls_held.rbegin(); it != tls_held.rend(); ++it) {
    if (*it == &cls) {
      tls_held.erase(std::next(it).base());
      return;
    }
  }
  // Releasing a lock the stack never saw: the checker was toggled on
  // mid-flight. Ignore rather than misreport.
}

std::size_t held_depth() { return tls_held.size(); }

bool holds(const LockClass& cls) {
  for (const LockClass* held : tls_held) {
    if (held == &cls) return true;
  }
  return false;
}

void assert_holds(const LockClass& cls) {
  if (!g_enforced.load(std::memory_order_relaxed)) return;
  if (holds(cls)) return;
  char report[256];
  std::snprintf(report, sizeof(report),
                "versa: lock assertion failed: '%s' (rank %d) is not held by "
                "the calling thread (held depth %zu)",
                cls.name, cls.rank, tls_held.size());
  g_handler.load(std::memory_order_acquire)(report);
}

bool enforced() { return g_enforced.load(std::memory_order_relaxed); }

void set_enforced(bool on) {
  g_enforced.store(on, std::memory_order_relaxed);
}

ViolationHandler set_violation_handler(ViolationHandler handler) {
  return g_handler.exchange(handler ? handler : &abort_handler,
                            std::memory_order_acq_rel);
}

}  // namespace versa::lock_order
