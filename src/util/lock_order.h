// Runtime lock-order validation — the dynamic half of the lock discipline
// (the static half is the Clang Thread Safety Analysis wired up through
// src/util/annotated_sync.h; DESIGN.md §9 documents both).
//
// Every versa::Mutex / versa::RecursiveMutex belongs to a LockClass with a
// documented rank. Acquisitions must happen in strictly increasing rank
// order within a thread; the checker keeps a thread-local stack of held
// classes and reports an inversion the moment a thread acquires a lock
// whose rank is not above the rank it already holds (re-entry of the same
// class is allowed only for classes marked reentrant, i.e. recursive
// mutexes). A would-be deadlock is therefore reported on the *first*
// inverted acquisition, with both lock classes named — it does not need
// the second thread of the cycle to actually block.
//
// The checker is enabled by default in debug builds (NDEBUG unset),
// disabled in release builds, and either default can be overridden with
// the VERSA_LOCK_ORDER environment variable ("1"/"0") or set_enforced().
// When disabled, the per-acquisition cost is one relaxed atomic load.
#pragma once

#include <cstddef>

namespace versa::lock_order {

/// One rank class of locks. Instances are expected to be static-storage
/// (the checker keeps raw pointers). `reentrant` permits nested
/// re-acquisition of the same class by one thread (recursive mutexes).
struct LockClass {
  const char* name;
  int rank;
  bool reentrant = false;
};

// --- the repo's lock hierarchy, outermost (lowest rank) first ----------
// See DESIGN.md §9 for what each class guards. Keep ranks spaced so a new
// class can slot in between without renumbering.
extern const LockClass kLockRankTenant;       ///< rank 4: service TenantRegistry
extern const LockClass kLockRankServiceGraph; ///< rank 6: VersaService graph table
extern const LockClass kLockRankProfileCache; ///< rank 8: SharedProfileCache
extern const LockClass kLockRankRuntime;      ///< rank 10: Runtime::mutex_
extern const LockClass kLockRankSanitizerShard; ///< rank 11: AccessSanitizer shadow-map shards
extern const LockClass kLockRankSanitizerClock; ///< rank 12: AccessSanitizer clock table
extern const LockClass kLockRankData;         ///< rank 13: DataDirectory writer / TransferEngine state
extern const LockClass kLockRankDataShard;    ///< rank 14: DataDirectory region shards
extern const LockClass kLockRankSanitizerState; ///< rank 15: AccessSanitizer witness/violation state
extern const LockClass kLockRankAnalyzerShard; ///< rank 16: DependencyAnalyzer region shards (reentrant: multi-shard tasks lock ascending shard index)
extern const LockClass kLockRankSubmit;       ///< rank 17: per-worker submission buffers
extern const LockClass kLockRankAccount;      ///< rank 20: QueueScheduler account/index
extern const LockClass kLockRankQueue;        ///< rank 30: per-worker queue shards
extern const LockClass kLockRankTrace;        ///< rank 40: DecisionTrace ring
extern const LockClass kLockRankExecPrefetch; ///< rank 44: ThreadExecutor prefetch intents
extern const LockClass kLockRankExecWake;     ///< rank 50: ThreadExecutor wake epoch

/// Record an acquisition of `cls` by the calling thread, reporting a
/// violation first if it inverts the documented order. Called by the
/// annotated_sync wrappers immediately before the underlying lock.
void on_acquire(const LockClass& cls);

/// Record a release (pops the innermost held entry of `cls`).
void on_release(const LockClass& cls);

/// Depth of the calling thread's held-lock stack (tests).
std::size_t held_depth();

/// True if the calling thread's stack contains `cls` (assert_held support).
bool holds(const LockClass& cls);

/// Report (through the violation handler) if the calling thread does not
/// hold `cls`. Dynamic backing for the wrappers' assert_held(): used where
/// the static analysis cannot follow a capability across a callback
/// boundary. No-op when the checker is disabled.
void assert_holds(const LockClass& cls);

bool enforced();
void set_enforced(bool on);

/// Violation hook. The default handler prints the report to stderr and
/// aborts. Tests install a capturing handler (which may return — the
/// acquisition then proceeds; an inverted order is only a *potential*
/// deadlock, so execution can continue in a single-threaded test).
using ViolationHandler = void (*)(const char* report);
ViolationHandler set_violation_handler(ViolationHandler handler);

}  // namespace versa::lock_order
