// Real-thread execution backend: one std::thread per modelled worker.
//
// Task bodies execute for real (simulated accelerator workers run the same
// host code — the directory still accounts the transfers their memory
// spaces would need) and durations are measured with the steady clock, so
// the versioning scheduler learns from genuine measurements. This backend
// validates functional correctness and the concurrency of the runtime; the
// timing figures come from SimExecutor.
#pragma once

#include <chrono>
#include <condition_variable>
#include <thread>
#include <vector>

#include "exec/executor.h"

namespace versa {

struct ThreadExecutorConfig {
  /// Sleep each task to cost_model * time_scale (device-speed emulation);
  /// tasks without a cost model run at native speed either way.
  bool emulate_costs = false;
  double time_scale = 1.0;
};

class ThreadExecutor final : public Executor {
 public:
  explicit ThreadExecutor(const Machine& machine,
                          ThreadExecutorConfig config = {});
  ~ThreadExecutor() override;

  void attach(ExecutorPort& port) override;
  void task_assigned(TaskId task, WorkerId worker) override;
  void work_available() override;
  void wait_all() override;
  void wait_task(TaskId task) override;
  TaskId current_task() const override;
  void wait_children(TaskId parent) override;
  Time now() const override;
  Time flush(const TransferList& ops) override;

 private:
  const Machine& machine_;
  ThreadExecutorConfig config_;
  std::vector<std::thread> threads_;
  std::condition_variable_any work_cv_;
  std::condition_variable_any done_cv_;
  bool stop_ = false;
  std::chrono::steady_clock::time_point epoch_;

  void worker_loop(WorkerId worker);

  /// Pop and execute one task for `worker`. `lock` must hold the port
  /// mutex; it is released around the body and re-acquired. Returns false
  /// if no task was available.
  bool run_one(WorkerId worker, std::unique_lock<std::recursive_mutex>& lock);
};

}  // namespace versa
