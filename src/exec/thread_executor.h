// Real-thread execution backend: one std::thread per modelled worker.
//
// Task bodies execute for real (simulated accelerator workers run the same
// host code — the directory still accounts the transfers their memory
// spaces would need) and durations are measured with the steady clock, so
// the versioning scheduler learns from genuine measurements. This backend
// validates functional correctness and the concurrency of the runtime; the
// timing figures come from SimExecutor.
//
// Locking (DESIGN.md §9): since the lock split, the dequeue fast path —
// Scheduler::try_pop_queued, i.e. popping the worker's own shard or
// stealing — runs WITHOUT the runtime lock; workers take it only for the
// graph transitions around a task (state flip, completion report) and
// for the pop_task fallback of policies with no lock-free path. The data
// path is off the runtime lock too: directory acquires (both the
// prefetch-intent drain and the executing worker's staging) and argument
// resolution run on the directory's own data/data.shard classes, with
// Task::acquired_space CAS-arbitrating which side stages each task.
// Sleeping and waking go through a dedicated wake mutex (class
// kLockRankExecWake, the innermost lock) and an epoch counter: a worker
// samples the epoch before it tries to pop and sleeps only if the epoch
// is unchanged, and every push/completion bumps the epoch after
// publishing its work — so a wakeup between the failed pop and the wait
// can never be lost.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

#include "exec/executor.h"
#include "sched/core/decision_trace.h"
#include "util/annotated_sync.h"

namespace versa {

struct ThreadExecutorConfig {
  /// Sleep each task to cost_model * time_scale (device-speed emulation);
  /// tasks without a cost model run at native speed either way.
  bool emulate_costs = false;
  double time_scale = 1.0;
  /// Bytes of placement-time prefetch allowed in flight per memory space
  /// (0 = unlimited). Intents over budget stay buffered until a charged
  /// task starts running; a single intent larger than the whole budget is
  /// admitted when the space is otherwise idle, so it cannot wedge.
  std::uint64_t prefetch_budget = 0;
};

class ThreadExecutor final : public Executor {
 public:
  explicit ThreadExecutor(const Machine& machine,
                          ThreadExecutorConfig config = {});
  ~ThreadExecutor() override;

  void attach(ExecutorPort& port) override;
  void task_queued(Task& task, WorkerId worker) override;
  void work_available() override;
  void wait_all() override;
  void wait_task(TaskId task) override;
  void wait_graph(GraphId graph) override;
  TaskId current_task() const override;
  void wait_children(TaskId parent) override;
  Time now() const override;
  Time flush(const TransferList& ops) override;

 private:
  const Machine& machine_;
  ThreadExecutorConfig config_;
  std::vector<std::thread> threads_;
  std::chrono::steady_clock::time_point epoch_;

  /// Wake protocol: wake_epoch_ counts "something changed" events (task
  /// pushed, work available, task completed). Workers and waiters sample
  /// it, re-check their condition, and sleep on wake_cv_ only while the
  /// epoch is unchanged.
  versa::Mutex wake_mutex_{lock_order::kLockRankExecWake};
  std::uint64_t wake_epoch_ VERSA_GUARDED_BY(wake_mutex_) = 0;
  std::condition_variable_any wake_cv_;
  std::atomic<bool> stop_{false};

  /// Prefetch intents: the scheduler's push (under the runtime lock)
  /// records "stage task T's data for worker W" here. A dedicated
  /// prefetch thread drains the buffer the moment a placement lands
  /// (woken by the same wake epoch the workers use), so staging starts at
  /// *placement* time and overlaps the predecessor task; workers still
  /// drain at the top of run_one as the dequeue-time fallback. Either
  /// drain performs the directory acquires with NO runtime involvement —
  /// the directory is internally synchronized and Task::acquired_space
  /// CAS-arbitrates against the executing worker (the concurrent data
  /// path, DESIGN.md §9 and §13).
  struct PrefetchIntent {
    Task* task = nullptr;  ///< stable: the graph stores tasks in a deque
    WorkerId worker = kInvalidWorker;
  };
  versa::Mutex prefetch_mutex_{lock_order::kLockRankExecPrefetch};
  std::vector<PrefetchIntent> prefetch_ VERSA_GUARDED_BY(prefetch_mutex_);
  /// Fast "anything buffered?" flag so idle run_one calls skip the lock.
  std::atomic<bool> prefetch_pending_{false};
  /// Intents enqueued but not yet fully staged; wait_all settles on zero
  /// so transfer accounting is complete when a taskwait returns.
  std::atomic<std::uint64_t> prefetch_inflight_{0};

  /// Budget accounting (config_.prefetch_budget != 0): bytes charged per
  /// space for claims issued by a drain, released when the charged task
  /// starts running (or immediately, if the claim was lost). The charge
  /// is keyed by task so the releasing worker need not know which drain
  /// charged it; insertion happens *before* the claim attempt so a won
  /// claim is always covered, and erasure is idempotent because both the
  /// claim-loser and the task-starting worker may try it.
  struct PrefetchCharge {
    SpaceId space = kInvalidSpace;
    std::uint64_t bytes = 0;
  };
  std::unordered_map<TaskId, PrefetchCharge> prefetch_charges_
      VERSA_GUARDED_BY(prefetch_mutex_);
  /// Per-space bytes currently charged (indexed by SpaceId).
  std::vector<std::uint64_t> prefetch_inflight_bytes_
      VERSA_GUARDED_BY(prefetch_mutex_);

  /// Which drain path claimed an intent (trace attribution).
  enum class DrainSite : std::uint8_t { kPlacement, kDequeue };

  /// Swap the intent buffer out and stage each claimed task's data;
  /// over-budget intents are re-buffered for a later drain. Called
  /// lock-free from the prefetch thread and from worker threads.
  void drain_prefetch(DrainSite site);

  /// Release the budget charge of `task` if one is outstanding (idempotent)
  /// and wake the prefetch thread so deferred intents retry.
  void release_prefetch_charge(TaskId task);

  /// Record a prefetch trace event (free when tracing is off).
  void record_prefetch_event(core::TraceEventKind kind, const Task& task,
                             WorkerId worker, std::uint64_t bytes);

  /// Placement-time drain loop of the dedicated prefetch thread.
  void prefetch_loop();

  std::uint64_t wake_snapshot();
  void bump_wake();
  /// Sleep until the epoch moves past `seen` (or stop).
  void wait_wake(std::uint64_t seen);

  void worker_loop(WorkerId worker);

  /// Pop (fast path first, then the locked fallback) and execute one task
  /// for `worker`. Takes the runtime lock only around the graph
  /// transitions — the directory acquire, argument resolution, and the
  /// body all run outside it. Returns false if no task was available.
  bool run_one(WorkerId worker);
};

}  // namespace versa
