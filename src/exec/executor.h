// Execution backends.
//
// An Executor realizes the scheduler's decisions: it pops tasks from worker
// queues, satisfies their copy clauses (through the directory), runs or
// models their bodies, and reports completions. Two implementations:
//
//  * SimExecutor    — discrete-event virtual time; task durations come from
//                     version cost models perturbed by a noise model, and
//                     transfers occupy modelled interconnect links. This is
//                     the backend every paper figure is produced with.
//  * ThreadExecutor — one std::thread per worker; bodies really execute and
//                     durations are wall-clock. Functional/concurrency
//                     backend (the CI host has a single core, so wall-clock
//                     speedups are not meaningful there).
//
// The runtime implements ExecutorPort; all port calls happen under the
// runtime lock (a recursive mutex exposed via port_mutex()).
#pragma once

#include <mutex>

#include "data/directory.h"
#include "data/transfer_engine.h"
#include "machine/machine.h"
#include "sched/scheduler.h"
#include "task/task_graph.h"
#include "task/version_registry.h"

namespace versa {

class ExecutorPort {
 public:
  virtual ~ExecutorPort() = default;
  virtual Scheduler& port_scheduler() = 0;
  virtual TaskGraph& port_graph() = 0;
  virtual DataDirectory& port_directory() = 0;
  virtual const VersionRegistry& port_registry() = 0;
  virtual const Machine& port_machine() = 0;
  /// Report a finished task; the runtime releases successors, notifies the
  /// scheduler, and re-pokes the executor.
  virtual void port_complete(TaskId task, WorkerId worker, Time start,
                             Time finish) = 0;

  /// Report a transiently failed attempt; the runtime notifies the
  /// scheduler and makes the task ready again for another attempt.
  virtual void port_failed(TaskId task, WorkerId worker, Time start,
                           Time finish) = 0;
  virtual std::recursive_mutex& port_mutex() = 0;
};

class Executor {
 public:
  virtual ~Executor() = default;

  virtual void attach(ExecutorPort& port) { port_ = &port; }

  /// A scheduler placed `task` on `worker`'s queue (prefetch hook).
  virtual void task_assigned(TaskId task, WorkerId worker) = 0;

  /// Ready work may exist for idle workers (pull-style schedulers).
  virtual void work_available() = 0;

  /// Block until every submitted task finished. Must be called from the
  /// master thread without holding the runtime lock.
  virtual void wait_all() = 0;

  /// Block until one task finished (taskwait on(...)).
  virtual void wait_task(TaskId task) = 0;

  /// Task currently executing on the calling context (kInvalidTask when
  /// called from the master thread). Used to attribute nested submissions.
  virtual TaskId current_task() const { return kInvalidTask; }

  /// Children-scoped taskwait: block until `parent`'s live_children hits
  /// zero. Called from inside `parent`'s body; implementations keep the
  /// worker productive (or the simulation progressing) meanwhile.
  virtual void wait_children(TaskId parent) = 0;

  /// Current time: virtual (sim) or wall seconds since construction.
  virtual Time now() const = 0;

  /// Realize taskwait flush copies; returns their completion time.
  virtual Time flush(const TransferList& ops) = 0;

 protected:
  ExecutorPort* port_ = nullptr;
};

}  // namespace versa
