// Execution backends.
//
// An Executor realizes the scheduler's decisions: it pops tasks from worker
// queues, satisfies their copy clauses (through the directory), runs or
// models their bodies, and reports completions. Two implementations:
//
//  * SimExecutor    — discrete-event virtual time; task durations come from
//                     version cost models perturbed by a noise model, and
//                     transfers occupy modelled interconnect links. This is
//                     the backend every paper figure is produced with.
//  * ThreadExecutor — one std::thread per worker; bodies really execute and
//                     durations are wall-clock. Functional/concurrency
//                     backend (the CI host has a single core, so wall-clock
//                     speedups are not meaningful there).
//
// The runtime implements ExecutorPort. The port exposes its lock as an
// annotated versa::RecursiveMutex (lock class kLockRankRuntime) so the
// thread-safety analysis checks executors hold it where required: the
// graph/directory accessors and the completion/failure reports carry
// REQUIRES(port_mutex()). Dequeuing already-placed work is the one port
// interaction that does NOT need it — Scheduler::try_pop_queued
// synchronizes itself (DESIGN.md §9).
#pragma once

#include "data/directory.h"
#include "data/transfer_engine.h"
#include "machine/machine.h"
#include "sched/scheduler.h"
#include "task/task_graph.h"
#include "task/version_registry.h"
#include "util/annotated_sync.h"

namespace versa {

namespace sanitize {
class AccessSanitizer;
}

class ExecutorPort {
 public:
  virtual ~ExecutorPort() = default;
  /// The scheduler itself may be grabbed without the lock; which of its
  /// methods need the runtime lock is part of the Scheduler contract.
  virtual Scheduler& port_scheduler() = 0;
  virtual TaskGraph& port_graph() VERSA_REQUIRES(port_mutex()) = 0;
  /// The directory is internally synchronized (sharded `data`/`data.shard`
  /// locks) — deliberately NOT annotated with the runtime capability, so
  /// lookups, transfer_cost pricing, and prefetch acquires compile without
  /// the runtime lock (the concurrent data path, DESIGN.md §9).
  virtual DataDirectory& port_directory() = 0;
  virtual const VersionRegistry& port_registry() = 0;
  virtual const Machine& port_machine() = 0;
  /// Report a finished task; the runtime releases successors, notifies the
  /// scheduler, and re-pokes the executor.
  virtual void port_complete(TaskId task, WorkerId worker, Time start,
                             Time finish) VERSA_REQUIRES(port_mutex()) = 0;

  /// Report a transiently failed attempt; the runtime notifies the
  /// scheduler and makes the task ready again for another attempt.
  virtual void port_failed(TaskId task, WorkerId worker, Time start,
                           Time finish) VERSA_REQUIRES(port_mutex()) = 0;

  /// The dependence-spec sanitizer, or nullptr (the default — sanitizing
  /// off). Executors that run task bodies attach a WitnessLog to the
  /// TaskContext iff this is non-null and hand the collected spans to
  /// AccessSanitizer::record_witness before reporting port_complete. The
  /// sanitizer synchronizes itself; no runtime capability required.
  virtual sanitize::AccessSanitizer* port_sanitizer() { return nullptr; }

  /// The runtime lock (annotated, rank kLockRankRuntime). Recursive for
  /// one reason only: task bodies run while an executor holds it (sim
  /// event loop) and may re-enter the public runtime API (nested submit,
  /// taskwait). Executors lock it with versa::RecursiveLockGuard — never
  /// around a scheduler dequeue fast path.
  virtual versa::RecursiveMutex& port_mutex() = 0;
};

class Executor {
 public:
  virtual ~Executor() = default;

  virtual void attach(ExecutorPort& port) { port_ = &port; }

  /// A scheduler placed `task` on `worker`'s queue (prefetch hook).
  /// Called with the runtime lock held; `task` is a stable reference into
  /// the task graph (deque storage, never moved). Implementations must not
  /// block: the sim backend acquires synchronously (deterministic virtual
  /// time), the thread backend records a prefetch intent and stages the
  /// data off the runtime lock later.
  virtual void task_queued(Task& task, WorkerId worker) = 0;

  /// Ready work may exist for idle workers (pull-style schedulers).
  /// Called with the runtime lock held.
  virtual void work_available() = 0;

  /// Block until every submitted task finished. Must be called from the
  /// master thread without holding the runtime lock.
  virtual void wait_all() = 0;

  /// Block until one task finished (taskwait on(...)).
  virtual void wait_task(TaskId task) = 0;

  /// Block until every task of `graph` finished (service mode). The
  /// default is the whole-runtime barrier — always correct, merely
  /// coarser; the real backends override with per-graph tracking.
  virtual void wait_graph(GraphId graph) {
    (void)graph;
    wait_all();
  }

  /// Task currently executing on the calling context (kInvalidTask when
  /// called from the master thread). Used to attribute nested submissions.
  virtual TaskId current_task() const { return kInvalidTask; }

  /// Children-scoped taskwait: block until `parent`'s live_children hits
  /// zero. Called from inside `parent`'s body; implementations keep the
  /// worker productive (or the simulation progressing) meanwhile.
  virtual void wait_children(TaskId parent) = 0;

  /// Current time: virtual (sim) or wall seconds since construction.
  virtual Time now() const = 0;

  /// Realize taskwait flush copies; returns their completion time.
  /// Called with the runtime lock held.
  virtual Time flush(const TransferList& ops) = 0;

 protected:
  ExecutorPort* port_ = nullptr;
};

}  // namespace versa
