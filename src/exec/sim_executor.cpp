#include "exec/sim_executor.h"

#include <algorithm>

#include "common/check.h"
#include "common/log.h"
#include "sanitizer/sanitizer.h"

namespace versa {

SimExecutor::SimExecutor(const Machine& machine, SimExecutorConfig config)
    : machine_(machine),
      config_(config),
      engine_(machine),
      busy_(machine.worker_count(), false),
      failure_rng_(config.seed ^ 0xfa11u) {
  VERSA_CHECK(config_.failure_rate >= 0.0 && config_.failure_rate < 1.0);
  VERSA_CHECK(config_.max_attempts >= 1);
  Rng root(config_.seed);
  noise_.reserve(machine.worker_count());
  for (std::size_t i = 0; i < machine.worker_count(); ++i) {
    noise_.emplace_back(config_.noise, root.split());
  }
}

void SimExecutor::attach(ExecutorPort& port) { Executor::attach(port); }

void SimExecutor::acquire_for(Task& task, SpaceId space) {
  if (task.acquired_space.load() == space) return;
  TransferList ops;
  port_->port_directory().acquire(task.accesses, space, ops);
  task.transfers_ready_time = engine_.enqueue(ops, queue_.now());
  task.acquired_space.store(space);
  horizon_ = std::max(horizon_, task.transfers_ready_time);
}

void SimExecutor::task_queued(Task& task, WorkerId worker) {
  // Called from the scheduler's push, under the runtime lock (contract);
  // the assertion bridges the analysis and is checked dynamically against
  // the held-lock stack. The sim backend acquires synchronously — the
  // event loop is single-threaded, so prefetch stays deterministic.
  port_->port_mutex().assert_held();
  if (config_.prefetch) {
    // Overlap: start this task's copies now, while workers compute.
    acquire_for(task, machine_.worker(worker).space);
  }
  // Actual dispatch happens in pump(), driven by the wait loops.
}

void SimExecutor::work_available() {}

void SimExecutor::start_task(WorkerId worker, TaskId id, bool occupy_worker) {
  Task& task = port_->port_graph().task(id);
  VERSA_CHECK(task.state == TaskState::kQueued);
  // Re-home stolen tasks: the steal path no longer writes the graph, so
  // the executor records the actual worker here.
  task.assigned_worker = worker;
  const TaskVersion& version =
      port_->port_registry().version(task.chosen_version);
  const SpaceId space = machine_.worker(worker).space;
  acquire_for(task, space);

  const Time start = std::max(queue_.now(), task.transfers_ready_time);
  const Duration mean = version.cost != nullptr
                            ? version.cost->mean_duration(task.data_set_size)
                            : config_.default_task_duration;
  Duration duration = noise_[worker].apply(mean);

  // Failure injection: decide the attempt's fate up front so the real
  // body only ever runs on the successful attempt (a repeated `C += A*B`
  // would corrupt the numerics). Attempt max_attempts is forced to
  // succeed, bounding retries.
  ++task.attempts;
  const bool fails = config_.failure_rate > 0.0 &&
                     task.attempts < config_.max_attempts &&
                     failure_rng_.next_double() < config_.failure_rate;
  if (fails) {
    // The device burns part of the task before the error surfaces.
    duration *= failure_rng_.uniform(0.1, 0.9);
  }

  // Mark the worker busy *before* the body runs: the body may submit
  // nested tasks and re-enter the event loop via a nested taskwait, and
  // nothing else must be dispatched onto this worker meanwhile.
  task.state = TaskState::kRunning;
  task.start_time = start;
  if (occupy_worker) {
    busy_[worker] = true;
  }

  // Run the real body, if any, so functional results are exact; its wall
  // time is irrelevant — virtual time charges `duration`. The body runs
  // under the (recursive) runtime lock, which is what lets it re-enter
  // submit/taskwait.
  if (!fails && version.fn) {
    const TaskId previous = current_task_;
    current_task_ = id;
    TaskContext ctx(task.accesses, port_->port_directory(), worker,
                    version.device);
    // Sanitizing: collect the spans the body reports and hand them to the
    // checker before the completion event can process this task.
    sanitize::AccessSanitizer* sanitizer = port_->port_sanitizer();
    WitnessLog witness;
    if (sanitizer != nullptr) ctx.set_witness_log(&witness);
    version.fn(ctx);
    if (sanitizer != nullptr) sanitizer->record_witness(id, std::move(witness));
    current_task_ = previous;
  }

  // A nested taskwait inside the body advances virtual time; the parent
  // cannot complete before the clock it observed when its wait returned.
  const Time finish = std::max(start + duration, queue_.now());
  horizon_ = std::max(horizon_, finish);
  queue_.schedule_at(
      finish, [this, id, worker, start, finish, occupy_worker, fails] {
        // Completion events fire from queue_.step() inside run_until_done,
        // with the runtime lock held by the enclosing wait entry point;
        // re-assert it for the analysis (a lambda is a separate function)
        // and, dynamically, against the held-lock stack.
        port_->port_mutex().assert_held();
        if (occupy_worker) {
          busy_[worker] = false;
        }
        if (fails) {
          port_->port_failed(id, worker, start, finish);
        } else {
          port_->port_complete(id, worker, start, finish);
        }
        pump();
      });
}

void SimExecutor::pump() {
  bool progress = true;
  while (progress) {
    progress = false;
    for (WorkerId w = 0; w < machine_.worker_count(); ++w) {
      if (busy_[w]) continue;
      const TaskId id = port_->port_scheduler().pop_task(w);
      if (id == kInvalidTask) continue;
      start_task(w, id);
      progress = true;
    }
  }
}

void SimExecutor::run_until_done(TaskId awaited) {
  TaskGraph& graph = port_->port_graph();
  run_until([&] {
    if (awaited != kInvalidTask) {
      return graph.task(awaited).state == TaskState::kFinished;
    }
    return graph.all_finished();
  });
}

void SimExecutor::run_until_graph_done(GraphId awaited) {
  TaskGraph& graph = port_->port_graph();
  run_until([&] { return graph.graph_finished(awaited); });
}

template <typename DonePredicate>
void SimExecutor::run_until(DonePredicate done) {
  pump();
  while (!done()) {
    if (queue_.step()) {
      pump();
      continue;
    }
    pump();
    if (queue_.empty() && !done()) {
      VERSA_CHECK_MSG(false,
                      "simulation deadlock: unfinished tasks but no events "
                      "(task with no runnable version, or scheduler bug)");
    }
  }
}

void SimExecutor::wait_all() {
  versa::RecursiveLockGuard lock(port_->port_mutex());
  run_until_done(kInvalidTask);
}

void SimExecutor::wait_task(TaskId task) {
  versa::RecursiveLockGuard lock(port_->port_mutex());
  run_until_done(task);
}

void SimExecutor::wait_graph(GraphId graph) {
  versa::RecursiveLockGuard lock(port_->port_mutex());
  run_until_graph_done(graph);
}

void SimExecutor::wait_children(TaskId parent) {
  // Entered from inside a task body, which runs under the (recursive)
  // runtime lock — this acquisition nests.
  versa::RecursiveLockGuard lock(port_->port_mutex());
  TaskGraph& graph = port_->port_graph();
  const WorkerId worker = graph.task(parent).assigned_worker;
  while (graph.task(parent).live_children > 0) {
    pump();  // children may be queued on idle workers with no event yet
    if (graph.task(parent).live_children == 0) break;
    if (queue_.step()) continue;
    // No events left but children remain: they can only be sitting on
    // this very worker's queue (it is busy with the waiting parent).
    // Inline-execute them — the OmpSs "task switching at a taskwait"
    // behaviour. Their virtual time overlaps the parent's, a documented
    // approximation.
    const TaskId next = port_->port_scheduler().pop_task(worker);
    VERSA_CHECK_MSG(next != kInvalidTask,
                    "nested taskwait deadlock: children pending but no "
                    "events and no queued work");
    start_task(worker, next, /*occupy_worker=*/false);
  }
}

Time SimExecutor::now() const { return queue_.now(); }

Time SimExecutor::flush(const TransferList& ops) {
  // Called with the runtime lock held (taskwait flush path).
  port_->port_mutex().assert_held();
  const Time done = engine_.enqueue(ops, queue_.now());
  horizon_ = std::max(horizon_, done);
  return done;
}

}  // namespace versa
