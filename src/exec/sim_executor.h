// Discrete-event (virtual time) execution backend.
//
// Single-threaded by design: events fire in deterministic order, durations
// come from version cost models through per-worker noise streams, and
// transfers occupy modelled interconnect links via the TransferEngine. Task
// bodies, when present, really execute (virtually instantaneous) so
// functional results remain correct under simulation.
//
// Locking: the simulation itself needs no concurrency, but its state is
// reached through the same ExecutorPort as the thread backend, so the
// annotated lock discipline applies. Each blocking entry point (wait_all,
// wait_task, wait_children) takes the runtime lock once and holds it for
// the whole event loop — the annotations are then truthful rather than
// waived, and the recursive runtime mutex covers task bodies that re-enter
// the public runtime API (nested submit / taskwait) from under the loop.
// Completion callbacks scheduled on the event queue run inside that same
// loop; they re-assert the capability (the analysis treats a lambda as a
// separate function) and the assertion is corroborated at runtime by the
// lock-order checker's held-lock stack.
#pragma once

#include <vector>

#include "exec/executor.h"
#include "sim/event_queue.h"
#include "sim/noise.h"
#include "util/annotated_sync.h"

namespace versa {

struct SimExecutorConfig {
  sim::NoiseConfig noise;
  std::uint64_t seed = 42;
  /// Acquire and launch a task's copies the moment it lands on a worker
  /// queue (transfer/compute overlap + prefetch, as enabled in §V-A).
  /// When false, copies start only when the worker picks the task up.
  bool prefetch = true;
  /// Virtual duration of versions lacking a cost model.
  Duration default_task_duration = 1e-3;
  /// Failure injection: probability that a task attempt fails transiently
  /// (device hiccup). Failed attempts burn part of the task's time on the
  /// worker, then the task is rescheduled — possibly to another version.
  double failure_rate = 0.0;
  /// Attempts after which an attempt is forced to succeed, bounding
  /// worst-case retries. Must be >= 1.
  std::uint32_t max_attempts = 4;
};

class SimExecutor final : public Executor {
 public:
  SimExecutor(const Machine& machine, SimExecutorConfig config);

  void attach(ExecutorPort& port) override;
  void task_queued(Task& task, WorkerId worker) override;
  void work_available() override;
  void wait_all() override;
  void wait_task(TaskId task) override;
  void wait_graph(GraphId graph) override;
  TaskId current_task() const override { return current_task_; }
  void wait_children(TaskId parent) override;
  Time now() const override;
  Time flush(const TransferList& ops) override;

  /// Completion time of everything modelled so far, including flush
  /// copies that finish after the last task.
  Time horizon() const { return horizon_; }

  const TransferEngine& transfer_engine() const { return engine_; }

 private:
  const Machine& machine_;
  SimExecutorConfig config_;
  // Simulation state below is reached only with the runtime lock held
  // (entry points acquire it; task_assigned/flush arrive with it held by
  // contract and re-assert it).
  sim::EventQueue queue_;
  TransferEngine engine_;
  std::vector<sim::NoiseModel> noise_;
  std::vector<bool> busy_;
  Time horizon_ = 0.0;
  TaskId current_task_ = kInvalidTask;
  Rng failure_rng_;

  /// Acquire `task`'s data for `space` and record its transfer-done time.
  void acquire_for(Task& task, SpaceId space)
      VERSA_REQUIRES(port_->port_mutex());

  /// Pop work for every idle worker until nothing moves.
  void pump() VERSA_REQUIRES(port_->port_mutex());

  /// Launch `id` on `worker`. `occupy_worker` is false when a worker
  /// blocked in a nested taskwait inline-executes its own queued children
  /// (it is already marked busy by the waiting parent).
  void start_task(WorkerId worker, TaskId id, bool occupy_worker = true)
      VERSA_REQUIRES(port_->port_mutex());
  void run_until_done(TaskId task_or_invalid)
      VERSA_REQUIRES(port_->port_mutex());
  void run_until_graph_done(GraphId graph)
      VERSA_REQUIRES(port_->port_mutex());
  /// Drive the event loop until `done()` holds (shared body of the
  /// run_until_* entry points).
  template <typename DonePredicate>
  void run_until(DonePredicate done) VERSA_REQUIRES(port_->port_mutex());
};

}  // namespace versa
