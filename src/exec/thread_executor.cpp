#include "exec/thread_executor.h"

#include <thread>

#include "common/check.h"

namespace versa {

ThreadExecutor::ThreadExecutor(const Machine& machine,
                               ThreadExecutorConfig config)
    : machine_(machine),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  VERSA_CHECK(config.time_scale > 0.0);
}

ThreadExecutor::~ThreadExecutor() {
  if (port_ != nullptr) {
    {
      std::lock_guard lock(port_->port_mutex());
      stop_ = true;
    }
    work_cv_.notify_all();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadExecutor::attach(ExecutorPort& port) {
  Executor::attach(port);
  threads_.reserve(machine_.worker_count());
  for (WorkerId w = 0; w < machine_.worker_count(); ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Time ThreadExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

void ThreadExecutor::task_assigned(TaskId, WorkerId) {
  // Queues live in the scheduler; just wake sleepers. notify with the port
  // lock held by the caller is correct (and keeps wakeups orderly).
  work_cv_.notify_all();
}

void ThreadExecutor::work_available() { work_cv_.notify_all(); }

namespace {

/// Task identity of the calling thread's in-flight body (nested-submission
/// attribution); kInvalidTask on the master and on idle workers.
thread_local TaskId tls_current_task = kInvalidTask;

}  // namespace

TaskId ThreadExecutor::current_task() const { return tls_current_task; }

bool ThreadExecutor::run_one(WorkerId worker,
                             std::unique_lock<std::recursive_mutex>& lock) {
  const TaskId id = port_->port_scheduler().pop_task(worker);
  if (id == kInvalidTask) return false;

  const SpaceId space = machine_.worker(worker).space;
  Task& task = port_->port_graph().task(id);
  VERSA_CHECK(task.state == TaskState::kQueued);
  if (task.acquired_space != space) {
    TransferList ops;  // accounting only — data lives in host storage
    port_->port_directory().acquire(task.accesses, space, ops);
    task.acquired_space = space;
  }
  const TaskVersion& version =
      port_->port_registry().version(task.chosen_version);
  task.state = TaskState::kRunning;
  // Resolve argument pointers while still holding the lock; the body then
  // runs without touching shared runtime structures.
  TaskContext ctx(task.accesses, port_->port_directory(), worker,
                  version.device);
  const Time start = now();

  lock.unlock();
  const TaskId previous = tls_current_task;
  tls_current_task = id;
  if (version.fn) {
    version.fn(ctx);
  }
  tls_current_task = previous;
  if (config_.emulate_costs && version.cost != nullptr) {
    // Device-speed emulation: pad the attempt out to the modelled
    // duration so wall-clock measurements carry the modelled ratios.
    const Duration modelled = version.cost->mean_duration(task.data_set_size) *
                              config_.time_scale;
    const Duration spent = now() - start;
    if (modelled > spent) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modelled - spent));
    }
  }
  const Time finish = now();
  lock.lock();

  port_->port_complete(id, worker, start, finish);
  done_cv_.notify_all();
  return true;
}

void ThreadExecutor::worker_loop(WorkerId worker) {
  std::unique_lock lock(port_->port_mutex());
  while (!stop_) {
    if (!run_one(worker, lock)) {
      work_cv_.wait(lock);
    }
  }
}

void ThreadExecutor::wait_children(TaskId parent) {
  // Called from inside `parent`'s body on its worker thread. Work while
  // waiting (the OmpSs task-switching behaviour): execute queued tasks —
  // children included — instead of blocking the worker.
  const WorkerId worker = port_->port_graph().task(parent).assigned_worker;
  std::unique_lock lock(port_->port_mutex());
  while (port_->port_graph().task(parent).live_children > 0) {
    if (!run_one(worker, lock)) {
      done_cv_.wait(lock);
    }
  }
}

void ThreadExecutor::wait_all() {
  std::unique_lock lock(port_->port_mutex());
  done_cv_.wait(lock, [this] { return port_->port_graph().all_finished(); });
}

void ThreadExecutor::wait_task(TaskId task) {
  std::unique_lock lock(port_->port_mutex());
  done_cv_.wait(lock, [this, task] {
    return port_->port_graph().task(task).state == TaskState::kFinished;
  });
}

Time ThreadExecutor::flush(const TransferList&) {
  // Host storage is authoritative in this backend; flushes are pure
  // accounting (already recorded by the directory).
  return now();
}

}  // namespace versa
