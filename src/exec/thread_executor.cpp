#include "exec/thread_executor.h"

#include <thread>

#include "common/check.h"
#include "sanitizer/sanitizer.h"

namespace versa {

ThreadExecutor::ThreadExecutor(const Machine& machine,
                               ThreadExecutorConfig config)
    : machine_(machine),
      config_(config),
      epoch_(std::chrono::steady_clock::now()) {
  VERSA_CHECK(config.time_scale > 0.0);
  prefetch_inflight_bytes_.resize(machine.space_count(), 0);
}

ThreadExecutor::~ThreadExecutor() {
  stop_.store(true, std::memory_order_release);
  bump_wake();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ThreadExecutor::attach(ExecutorPort& port) {
  Executor::attach(port);
  threads_.reserve(machine_.worker_count() + 1);
  for (WorkerId w = 0; w < machine_.worker_count(); ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
  // Dedicated prefetch thread: drains intents the moment a placement
  // lands instead of waiting for a worker to reach the top of run_one, so
  // staging overlaps the predecessor's execution (DESIGN.md §13).
  threads_.emplace_back([this] { prefetch_loop(); });
}

Time ThreadExecutor::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(elapsed).count();
}

std::uint64_t ThreadExecutor::wake_snapshot() {
  versa::LockGuard lock(wake_mutex_);
  return wake_epoch_;
}

void ThreadExecutor::bump_wake() {
  {
    versa::LockGuard lock(wake_mutex_);
    ++wake_epoch_;
  }
  wake_cv_.notify_all();
}

void ThreadExecutor::wait_wake(std::uint64_t seen) {
  versa::UniqueLock lock(wake_mutex_);
  while (!stop_.load(std::memory_order_acquire) && wake_epoch_ == seen) {
    wake_cv_.wait(lock.native());
  }
}

void ThreadExecutor::task_queued(Task& task, WorkerId worker) {
  // Called under the runtime lock. Do NOT touch the directory here — that
  // would serialize every transfer behind the producer path. Record the
  // intent (rank 10 -> 44 nests in documented order) and let the prefetch
  // thread (or a worker's dequeue fallback) stage the data off the
  // runtime lock in drain_prefetch().
  prefetch_inflight_.fetch_add(1, std::memory_order_acq_rel);
  {
    versa::LockGuard lock(prefetch_mutex_);
    prefetch_.push_back(PrefetchIntent{&task, worker});
    prefetch_pending_.store(true, std::memory_order_release);
  }
  // Queues live in the scheduler; the push is already visible, so bumping
  // the epoch here closes the pop-then-sleep race (and wakes the prefetch
  // thread to drain the intent at placement time).
  bump_wake();
}

void ThreadExecutor::record_prefetch_event(core::TraceEventKind kind,
                                           const Task& task, WorkerId worker,
                                           std::uint64_t bytes) {
  core::DecisionTrace& trace = port_->port_scheduler().decision_trace();
  if (!trace.enabled()) return;
  core::TraceEvent event;
  event.time = now();
  event.task = task.id;
  event.type = task.type;
  event.version = task.chosen_version;
  event.worker = worker;
  event.kind = kind;
  event.tenant = task.tenant;
  event.group = bytes;
  trace.record(event);
}

void ThreadExecutor::release_prefetch_charge(TaskId task) {
  bool released = false;
  {
    versa::LockGuard lock(prefetch_mutex_);
    auto it = prefetch_charges_.find(task);
    if (it != prefetch_charges_.end()) {
      prefetch_inflight_bytes_[it->second.space] -= it->second.bytes;
      prefetch_charges_.erase(it);
      released = true;
    }
  }
  // Freed budget: wake the prefetch thread so deferred intents retry.
  if (released) bump_wake();
}

void ThreadExecutor::drain_prefetch(DrainSite site) {
  if (!prefetch_pending_.load(std::memory_order_acquire)) return;
  std::vector<PrefetchIntent> intents;
  {
    versa::LockGuard lock(prefetch_mutex_);
    intents.swap(prefetch_);
    prefetch_pending_.store(false, std::memory_order_release);
  }
  if (intents.empty()) return;
  std::vector<PrefetchIntent> deferred;
  std::size_t resolved = 0;
  for (const PrefetchIntent& intent : intents) {
    Task* task = intent.task;
    const SpaceId space = machine_.worker(intent.worker).space;
    // Stale first (covers deferred intents whose task meanwhile started):
    // someone already staged this task — never prefetch over it.
    if (task->acquired_space.load() != kInvalidSpace) {
      record_prefetch_event(core::TraceEventKind::kPrefetchStale, *task,
                            intent.worker, 0);
      ++resolved;
      continue;
    }
    const std::uint64_t bytes = task->data_set_size;
    if (config_.prefetch_budget != 0) {
      versa::LockGuard lock(prefetch_mutex_);
      const std::uint64_t inflight = prefetch_inflight_bytes_[space];
      // Defer while over budget; an oversized intent is admitted when the
      // space is otherwise idle so one huge task cannot wedge the drain.
      if (inflight != 0 && inflight + bytes > config_.prefetch_budget) {
        deferred.push_back(intent);
        continue;
      }
      prefetch_inflight_bytes_[space] += bytes;
      prefetch_charges_.emplace(task->id, PrefetchCharge{space, bytes});
    }
    SpaceId expected = kInvalidSpace;
    if (task->acquired_space.claim(expected, space)) {
      // Won the claim: stage the data with no lock held but the
      // directory's own (internally synchronized) classes.
      TransferList ops;  // accounting only — data lives in host storage
      port_->port_directory().acquire(task->accesses, space, ops);
      std::uint64_t staged = 0;
      for (const TransferOp& op : ops) staged += op.bytes;
      record_prefetch_event(site == DrainSite::kPlacement
                                ? core::TraceEventKind::kPrefetchPlaced
                                : core::TraceEventKind::kPrefetchDequeue,
                            *task, intent.worker, staged);
    } else {
      // Lost the claim to the executing worker between the checks: the
      // charge never covered in-flight data, return it immediately.
      release_prefetch_charge(task->id);
      record_prefetch_event(core::TraceEventKind::kPrefetchStale, *task,
                            intent.worker, 0);
    }
    ++resolved;
  }
  if (!deferred.empty()) {
    // Keep prefetch_inflight_ elevated for deferred intents — wait_all
    // must not return while a placement-time stage is still possible. The
    // next drain (woken by release_prefetch_charge or a completion)
    // re-evaluates them; once the task has started they resolve as stale.
    versa::LockGuard lock(prefetch_mutex_);
    for (const PrefetchIntent& intent : deferred) {
      prefetch_.push_back(intent);
    }
    prefetch_pending_.store(true, std::memory_order_release);
  }
  if (resolved != 0) {
    prefetch_inflight_.fetch_sub(resolved, std::memory_order_acq_rel);
    // Waiters (wait_all) also settle on prefetch_inflight_ == 0.
    bump_wake();
  }
}

void ThreadExecutor::prefetch_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t seen = wake_snapshot();
    drain_prefetch(DrainSite::kPlacement);
    // Intents buffered after the snapshot bump the epoch past `seen`, so
    // this wait cannot miss them; deferred re-buffering above does not
    // bump, so an over-budget backlog does not busy-spin.
    wait_wake(seen);
  }
}

void ThreadExecutor::work_available() { bump_wake(); }

namespace {

/// Task identity of the calling thread's in-flight body (nested-submission
/// attribution); kInvalidTask on the master and on idle workers.
thread_local TaskId tls_current_task = kInvalidTask;

}  // namespace

TaskId ThreadExecutor::current_task() const { return tls_current_task; }

bool ThreadExecutor::run_one(WorkerId worker) {
  // Stage any buffered prefetch intents first (dequeue-time fallback for
  // the prefetch thread) — lock-free, so the data path makes progress
  // even while another worker holds the runtime lock.
  drain_prefetch(DrainSite::kDequeue);

  // Fast path: dequeue already-placed work (own queue, then steals)
  // without the runtime lock.
  TaskId id = port_->port_scheduler().try_pop_queued(worker);

  const TaskVersion* version = nullptr;
  Task* task = nullptr;
  std::uint64_t data_set_size = 0;
  {
    versa::RecursiveLockGuard lock(port_->port_mutex());
    if (id == kInvalidTask) {
      // Fallback for policies whose dispatch needs the runtime lock
      // (fifo's graph scan, versioning's learning pool).
      id = port_->port_scheduler().pop_task(worker);
    }
    if (id == kInvalidTask) return false;

    task = &port_->port_graph().task(id);  // stable ref (deque storage)
    VERSA_CHECK(task->state == TaskState::kQueued);
    // Re-home stolen tasks: the steal fast path cannot touch the graph,
    // so the thief records itself here, under the runtime lock.
    task->assigned_worker = worker;
    version = &port_->port_registry().version(task->chosen_version);
    task->state = TaskState::kRunning;
    data_set_size = task->data_set_size;
  }

  // Off the runtime lock: stage the data. The CAS on acquired_space
  // arbitrates against the prefetch path — exactly one side performs the
  // acquire for a given space.
  const SpaceId space = machine_.worker(worker).space;
  SpaceId expected = kInvalidSpace;
  if (task->acquired_space.claim(expected, space)) {
    TransferList ops;  // accounting only — data lives in host storage
    port_->port_directory().acquire(task->accesses, space, ops);
  } else if (expected != space) {
    // A steal re-homed the task after its data was staged for the
    // originally assigned worker's space: re-acquire for ours. No
    // concurrent acquirer exists any more (the prefetch side only ever
    // claims from kInvalidSpace), so a plain store publishes it.
    TransferList ops;
    port_->port_directory().acquire(task->accesses, space, ops);
    task->acquired_space.store(space);
  }
  // The task is now staged and about to run: its prefetch budget charge
  // (if a drain issued one) no longer represents in-flight data.
  release_prefetch_charge(id);
  // Resolve argument pointers (region descriptors are immutable, the
  // directory lookup synchronizes itself); the body then runs without
  // touching shared runtime structures.
  TaskContext ctx(task->accesses, port_->port_directory(), worker,
                  version->device);
  // Sanitizing: the witness log collects off-lock alongside the body; the
  // spans reach the checker before the locked completion report below.
  sanitize::AccessSanitizer* sanitizer = port_->port_sanitizer();
  WitnessLog witness;
  if (sanitizer != nullptr) ctx.set_witness_log(&witness);
  const Time start = now();

  const TaskId previous = tls_current_task;
  tls_current_task = id;
  if (version->fn) {
    version->fn(ctx);
  }
  tls_current_task = previous;
  if (sanitizer != nullptr) sanitizer->record_witness(id, std::move(witness));
  if (config_.emulate_costs && version->cost != nullptr) {
    // Device-speed emulation: pad the attempt out to the modelled
    // duration so wall-clock measurements carry the modelled ratios.
    const Duration modelled =
        version->cost->mean_duration(data_set_size) * config_.time_scale;
    const Duration spent = now() - start;
    if (modelled > spent) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(modelled - spent));
    }
  }
  const Time finish = now();

  {
    versa::RecursiveLockGuard lock(port_->port_mutex());
    port_->port_complete(id, worker, start, finish);
  }
  // After the completion is visible: wake workers (successors may have
  // been released) and waiters (all_finished / live_children moved).
  bump_wake();
  return true;
}

void ThreadExecutor::worker_loop(WorkerId worker) {
  while (!stop_.load(std::memory_order_acquire)) {
    const std::uint64_t seen = wake_snapshot();
    if (run_one(worker)) continue;
    // The pop failed after the snapshot; any push after the pop bumps the
    // epoch past `seen`, so this wait cannot miss it.
    wait_wake(seen);
  }
}

void ThreadExecutor::wait_children(TaskId parent) {
  // Called from inside `parent`'s body on its worker thread. Work while
  // waiting (the OmpSs task-switching behaviour): execute queued tasks —
  // children included — instead of blocking the worker.
  WorkerId worker;
  {
    versa::RecursiveLockGuard lock(port_->port_mutex());
    Task& task = port_->port_graph().task(parent);
    if (task.live_children == 0) return;
    worker = task.assigned_worker;
  }
  for (;;) {
    const std::uint64_t seen = wake_snapshot();
    {
      versa::RecursiveLockGuard lock(port_->port_mutex());
      if (port_->port_graph().task(parent).live_children == 0) return;
    }
    if (run_one(worker)) continue;
    wait_wake(seen);
  }
}

void ThreadExecutor::wait_all() {
  for (;;) {
    const std::uint64_t seen = wake_snapshot();
    {
      versa::RecursiveLockGuard lock(port_->port_mutex());
      // Settle on zero in-flight prefetch intents too: a taskwait's
      // transfer accounting (and the flush that follows it) must observe
      // every staged copy.
      if (port_->port_graph().all_finished() &&
          prefetch_inflight_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }
    wait_wake(seen);
  }
}

void ThreadExecutor::wait_task(TaskId task) {
  for (;;) {
    const std::uint64_t seen = wake_snapshot();
    {
      versa::RecursiveLockGuard lock(port_->port_mutex());
      if (port_->port_graph().task(task).state == TaskState::kFinished) {
        return;
      }
    }
    wait_wake(seen);
  }
}

void ThreadExecutor::wait_graph(GraphId graph) {
  // Same wake-epoch protocol as wait_all, settling on one graph root; many
  // client threads can block here concurrently, each on its own graph.
  for (;;) {
    const std::uint64_t seen = wake_snapshot();
    {
      versa::RecursiveLockGuard lock(port_->port_mutex());
      if (port_->port_graph().graph_finished(graph)) return;
    }
    wait_wake(seen);
  }
}

Time ThreadExecutor::flush(const TransferList&) {
  // Host storage is authoritative in this backend; flushes are pure
  // accounting (already recorded by the directory).
  return now();
}

}  // namespace versa
