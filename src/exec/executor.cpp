#include "exec/executor.h"

// Interface-only translation unit; concrete backends live in
// sim_executor.cpp and thread_executor.cpp.
