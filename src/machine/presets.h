// Machine presets, most importantly the MinoTauro node the paper evaluated
// on: 2x Intel Xeon E5649 6-core 2.53 GHz (24 GB) + 2x NVIDIA M2090 (6 GB),
// PCIe 2.0 x16 (~6 GB/s effective per direction).
#pragma once

#include <cstddef>

#include "machine/machine.h"

namespace versa {

/// Build a MinoTauro-like node with `smp_workers` SMP worker threads
/// (1..12) and `gpus` CUDA workers (0..2). One worker per GPU, as in the
/// paper. The master thread is not modelled as a worker.
Machine make_minotauro_node(std::size_t smp_workers, std::size_t gpus);

/// A small homogeneous SMP machine (unit tests).
Machine make_smp_machine(std::size_t smp_workers);

/// A cluster of MinoTauro-like nodes (the paper's intro points at OmpSs on
/// GPU clusters as the same programming model at larger scale). Each node
/// contributes its own "host" memory space (node 0's host is the global
/// home space data flushes to), `smp_per_node` SMP workers and
/// `gpus_per_node` GPUs; node host spaces are linked by an
/// InfiniBand-class network, GPU spaces hang off their node's host.
Machine make_gpu_cluster(std::size_t nodes, std::size_t smp_per_node,
                         std::size_t gpus_per_node);

}  // namespace versa
