// Cost models: the expected execution time of a task version as a function
// of its data-set size.
//
// In simulation mode every task version carries a CostModel; the sim
// executor samples the modelled mean through the worker's noise model to
// produce a "measured" duration. The scheduler never sees the model — it
// only sees measured durations, exactly as on real hardware.
#pragma once

#include <functional>
#include <memory>

#include "common/types.h"

namespace versa {

class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Expected (mean) duration for a task instance whose data-set size is
  /// `data_bytes` (sum of parameter sizes, each counted once — matching the
  /// paper's definition of a data-set-size group).
  virtual Duration mean_duration(std::uint64_t data_bytes) const = 0;
};

/// Fixed duration regardless of data size.
class ConstantCost final : public CostModel {
 public:
  explicit ConstantCost(Duration duration);
  Duration mean_duration(std::uint64_t data_bytes) const override;

 private:
  Duration duration_;
};

/// base + bytes * per_byte — models memory-bound kernels.
class LinearCost final : public CostModel {
 public:
  LinearCost(Duration base, Duration per_byte);
  Duration mean_duration(std::uint64_t data_bytes) const override;

 private:
  Duration base_;
  Duration per_byte_;
};

/// Arbitrary callable — used by the application workload generators whose
/// analytic models (GEMM, POTRF, ...) depend on tile geometry, not only on
/// total bytes.
class CallableCost final : public CostModel {
 public:
  using Fn = std::function<Duration(std::uint64_t)>;
  explicit CallableCost(Fn fn);
  Duration mean_duration(std::uint64_t data_bytes) const override;

 private:
  Fn fn_;
};

using CostModelPtr = std::shared_ptr<const CostModel>;

CostModelPtr make_constant_cost(Duration duration);
CostModelPtr make_linear_cost(Duration base, Duration per_byte);
CostModelPtr make_callable_cost(CallableCost::Fn fn);

}  // namespace versa
