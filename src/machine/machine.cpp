#include "machine/machine.h"

#include <numeric>

#include "common/check.h"
#include "common/string_util.h"

namespace versa {

const DeviceDesc& Machine::device(DeviceId id) const {
  VERSA_CHECK(id < devices_.size());
  return devices_[id];
}

const MemorySpaceDesc& Machine::space(SpaceId id) const {
  VERSA_CHECK(id < spaces_.size());
  return spaces_[id];
}

const WorkerDesc& Machine::worker(WorkerId id) const {
  VERSA_CHECK(id < workers_.size());
  return workers_[id];
}

std::size_t Machine::count_workers(DeviceKind kind) const {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    if (w.kind == kind) ++n;
  }
  return n;
}

double Machine::total_peak_flops() const {
  return std::accumulate(devices_.begin(), devices_.end(), 0.0,
                         [](double acc, const DeviceDesc& d) {
                           return acc + d.peak_flops;
                         });
}

std::string Machine::summary() const {
  std::string out;
  out += std::to_string(count_workers(DeviceKind::kSmp));
  out += " smp + ";
  out += std::to_string(count_workers(DeviceKind::kCuda));
  out += " cuda";
  return out;
}

Machine::Builder::Builder() {
  MemorySpaceDesc host;
  host.id = kHostSpace;
  host.name = "host";
  host.capacity = 24ull << 30;
  host.is_host = true;
  machine_.spaces_.push_back(host);
}

SpaceId Machine::Builder::add_space(std::string name, std::uint64_t capacity) {
  MemorySpaceDesc desc;
  desc.id = static_cast<SpaceId>(machine_.spaces_.size());
  desc.name = std::move(name);
  desc.capacity = capacity;
  desc.is_host = false;
  machine_.spaces_.push_back(desc);
  return desc.id;
}

DeviceId Machine::Builder::add_device(DeviceKind kind, SpaceId space,
                                      std::string name, double peak_flops) {
  VERSA_CHECK(space < machine_.spaces_.size());
  DeviceDesc desc;
  desc.id = static_cast<DeviceId>(machine_.devices_.size());
  desc.kind = kind;
  desc.space = space;
  desc.name = std::move(name);
  desc.peak_flops = peak_flops;
  machine_.devices_.push_back(desc);
  return desc.id;
}

WorkerId Machine::Builder::add_worker(DeviceId device, std::string name) {
  VERSA_CHECK(device < machine_.devices_.size());
  const DeviceDesc& dev = machine_.devices_[device];
  WorkerDesc desc;
  desc.id = static_cast<WorkerId>(machine_.workers_.size());
  desc.device = device;
  desc.kind = dev.kind;
  desc.space = dev.space;
  desc.name = name.empty()
                  ? std::string(to_string(dev.kind)) + "-worker-" +
                        std::to_string(desc.id)
                  : std::move(name);
  machine_.workers_.push_back(desc);
  return desc.id;
}

void Machine::Builder::add_bidi_link(SpaceId a, SpaceId b, double bandwidth,
                                     Duration latency) {
  VERSA_CHECK(a < machine_.spaces_.size() && b < machine_.spaces_.size());
  machine_.interconnect_.add_bidi_link(a, b, bandwidth, latency);
}

void Machine::Builder::set_host_capacity(std::uint64_t capacity) {
  machine_.spaces_[kHostSpace].capacity = capacity;
}

Machine Machine::Builder::build() {
  VERSA_CHECK_MSG(!machine_.workers_.empty(), "machine has no workers");
  return std::move(machine_);
}

}  // namespace versa
