// Point-to-point link model between memory spaces.
//
// A transfer of S bytes over a link costs latency + S / bandwidth and the
// link is occupied for that whole span (transfers on the same link
// serialize; transfers on different links overlap — this is what lets the
// runtime hide copies behind compute, as the paper's evaluation enables).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace versa {

struct LinkDesc {
  SpaceId from = kInvalidSpace;
  SpaceId to = kInvalidSpace;
  double bandwidth = 0.0;  ///< bytes per second
  Duration latency = 0.0;  ///< per-transfer fixed cost, seconds
};

class Interconnect {
 public:
  /// Register a unidirectional link. Adding a duplicate (same from/to)
  /// replaces the previous description.
  void add_link(const LinkDesc& link);

  /// Convenience: register both directions with identical parameters.
  void add_bidi_link(SpaceId a, SpaceId b, double bandwidth, Duration latency);

  /// Look up the direct link from -> to. Returns nullptr if none exists
  /// (the transfer engine then stages the copy through the host space).
  const LinkDesc* find(SpaceId from, SpaceId to) const;

  /// Pure cost of moving `bytes` over the direct link (no queueing).
  /// Checks that the link exists.
  Duration transfer_time(SpaceId from, SpaceId to, std::uint64_t bytes) const;

  std::size_t link_count() const { return links_.size(); }

 private:
  std::vector<LinkDesc> links_;
};

}  // namespace versa
