#include "machine/machine_file.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace versa {
namespace {

std::optional<double> parse_double_prefix(std::string_view text,
                                          std::size_t* consumed) {
  try {
    std::size_t pos = 0;
    const double value = std::stod(std::string(text), &pos);
    *consumed = pos;
    return value;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::optional<double> parse_quantity(std::string_view text, bool decimal) {
  std::size_t consumed = 0;
  const auto value = parse_double_prefix(text, &consumed);
  if (!value || *value < 0.0) return std::nullopt;
  const std::string_view suffix = trim(text.substr(consumed));
  const double unit = decimal ? 1000.0 : 1024.0;
  if (suffix.empty()) return *value;
  if (suffix == "K" || suffix == "k") return *value * unit;
  if (suffix == "M") return *value * unit * unit;
  if (suffix == "G") return *value * unit * unit * unit;
  if (suffix == "T") return *value * unit * unit * unit * unit;
  return std::nullopt;
}

std::optional<double> parse_time(std::string_view text) {
  std::size_t consumed = 0;
  const auto value = parse_double_prefix(text, &consumed);
  if (!value || *value < 0.0) return std::nullopt;
  const std::string_view suffix = trim(text.substr(consumed));
  if (suffix.empty() || suffix == "s") return *value;
  if (suffix == "ms") return *value * 1e-3;
  if (suffix == "us") return *value * 1e-6;
  if (suffix == "ns") return *value * 1e-9;
  return std::nullopt;
}

MachineParseResult parse_machine(std::string_view text) {
  Machine::Builder builder;
  std::map<std::string, SpaceId, std::less<>> spaces{{"host", kHostSpace}};
  std::map<std::string, DeviceId, std::less<>> devices;
  bool has_worker = false;

  int line_number = 0;
  for (const std::string& raw : split(text, '\n')) {
    ++line_number;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    auto fail = [&](const std::string& message) {
      MachineParseResult result;
      result.error =
          "line " + std::to_string(line_number) + ": " + message;
      return result;
    };

    std::istringstream in{std::string(line)};
    std::string keyword;
    in >> keyword;

    if (keyword == "host") {
      std::string field, quantity;
      in >> field >> quantity;
      if (in.fail() || field != "capacity") {
        return fail("expected: host capacity <bytes>");
      }
      const auto bytes = parse_quantity(quantity, /*decimal=*/false);
      if (!bytes) return fail("bad capacity '" + quantity + "'");
      builder.set_host_capacity(static_cast<std::uint64_t>(*bytes));
    } else if (keyword == "space") {
      std::string name, field, quantity;
      in >> name >> field >> quantity;
      if (in.fail() || field != "capacity") {
        return fail("expected: space <name> capacity <bytes>");
      }
      if (spaces.count(name) != 0) return fail("duplicate space '" + name + "'");
      const auto bytes = parse_quantity(quantity, /*decimal=*/false);
      if (!bytes) return fail("bad capacity '" + quantity + "'");
      spaces[name] =
          builder.add_space(name, static_cast<std::uint64_t>(*bytes));
    } else if (keyword == "device") {
      std::string name, kind_kw, kind, space_kw, space, peak_kw, peak;
      in >> name >> kind_kw >> kind >> space_kw >> space >> peak_kw >> peak;
      if (in.fail() || kind_kw != "kind" || space_kw != "space" ||
          peak_kw != "peak") {
        return fail(
            "expected: device <name> kind <smp|cuda> space <name> peak <flops>");
      }
      if (devices.count(name) != 0) {
        return fail("duplicate device '" + name + "'");
      }
      DeviceKind device_kind;
      if (kind == "smp") {
        device_kind = DeviceKind::kSmp;
      } else if (kind == "cuda") {
        device_kind = DeviceKind::kCuda;
      } else {
        return fail("unknown device kind '" + kind + "'");
      }
      const auto space_it = spaces.find(space);
      if (space_it == spaces.end()) return fail("unknown space '" + space + "'");
      const auto flops = parse_quantity(peak, /*decimal=*/true);
      if (!flops) return fail("bad peak '" + peak + "'");
      devices[name] =
          builder.add_device(device_kind, space_it->second, name, *flops);
    } else if (keyword == "worker") {
      std::string device, worker_name;
      in >> device;
      if (in.fail()) return fail("expected: worker <device> [name]");
      in >> worker_name;  // optional
      const auto device_it = devices.find(device);
      if (device_it == devices.end()) {
        return fail("unknown device '" + device + "'");
      }
      builder.add_worker(device_it->second, worker_name);
      has_worker = true;
    } else if (keyword == "link") {
      std::string a, b, bw_kw, bw, lat_kw, lat;
      in >> a >> b >> bw_kw >> bw >> lat_kw >> lat;
      if (in.fail() || bw_kw != "bandwidth" || lat_kw != "latency") {
        return fail(
            "expected: link <space> <space> bandwidth <B/s> latency <time>");
      }
      const auto a_it = spaces.find(a);
      const auto b_it = spaces.find(b);
      if (a_it == spaces.end()) return fail("unknown space '" + a + "'");
      if (b_it == spaces.end()) return fail("unknown space '" + b + "'");
      const auto bandwidth = parse_quantity(bw, /*decimal=*/true);
      if (!bandwidth || *bandwidth <= 0.0) return fail("bad bandwidth '" + bw + "'");
      const auto latency = parse_time(lat);
      if (!latency) return fail("bad latency '" + lat + "'");
      builder.add_bidi_link(a_it->second, b_it->second, *bandwidth, *latency);
    } else {
      return fail("unknown statement '" + keyword + "'");
    }
  }

  if (!has_worker) {
    MachineParseResult result;
    result.error = "machine has no workers";
    return result;
  }
  MachineParseResult result;
  result.machine = builder.build();
  return result;
}

MachineParseResult load_machine(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    MachineParseResult result;
    result.error = "cannot open '" + path + "'";
    return result;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_machine(buffer.str());
}

std::string serialize_machine(const Machine& machine) {
  std::string out = "# versa machine v1\n";
  char line[256];
  std::snprintf(line, sizeof(line), "host capacity %llu\n",
                static_cast<unsigned long long>(
                    machine.space(kHostSpace).capacity));
  out += line;
  for (const MemorySpaceDesc& space : machine.spaces()) {
    if (space.is_host) continue;
    std::snprintf(line, sizeof(line), "space %s capacity %llu\n",
                  space.name.c_str(),
                  static_cast<unsigned long long>(space.capacity));
    out += line;
  }
  for (const DeviceDesc& device : machine.devices()) {
    std::snprintf(line, sizeof(line), "device %s kind %s space %s peak %g\n",
                  device.name.c_str(), to_string(device.kind),
                  machine.space(device.space).name.c_str(), device.peak_flops);
    out += line;
  }
  for (const WorkerDesc& worker : machine.workers()) {
    std::snprintf(line, sizeof(line), "worker %s %s\n",
                  machine.device(worker.device).name.c_str(),
                  worker.name.c_str());
    out += line;
  }
  // Links: emit each unordered pair once (they were added bidirectionally;
  // emit the a<b direction).
  for (SpaceId a = 0; a < machine.space_count(); ++a) {
    for (SpaceId b = a + 1; b < machine.space_count(); ++b) {
      const LinkDesc* link = machine.interconnect().find(a, b);
      if (link == nullptr) continue;
      std::snprintf(line, sizeof(line),
                    "link %s %s bandwidth %g latency %g\n",
                    machine.space(a).name.c_str(),
                    machine.space(b).name.c_str(), link->bandwidth,
                    link->latency);
      out += line;
    }
  }
  return out;
}

}  // namespace versa
