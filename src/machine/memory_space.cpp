#include "machine/memory_space.h"

// Descriptors are plain data; implementation lives in data/directory.cpp.
