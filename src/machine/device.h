// Device and worker descriptors for the modelled machine.
//
// As in Nanos++, every runtime worker thread is devoted to exactly one
// device: an SMP worker drives one CPU core, a CUDA worker drives one GPU
// (issuing kernels and transfers for it). Workers, not devices, own task
// queues.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace versa {

struct DeviceDesc {
  DeviceId id = kInvalidDevice;
  DeviceKind kind = DeviceKind::kSmp;
  /// Memory space the device computes from. All SMP cores share the host
  /// space; each GPU has a private space.
  SpaceId space = kHostSpace;
  std::string name;
  /// Peak floating-point rate in FLOP/s (double precision); used only for
  /// reporting "percent of machine peak" figures, never for scheduling.
  double peak_flops = 0.0;
};

struct WorkerDesc {
  WorkerId id = kInvalidWorker;
  DeviceId device = kInvalidDevice;
  DeviceKind kind = DeviceKind::kSmp;
  SpaceId space = kHostSpace;
  std::string name;
};

}  // namespace versa
