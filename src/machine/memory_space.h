// Memory space descriptors. Space 0 is always host main memory; every GPU
// contributes one private space. The data directory tracks which spaces
// hold valid copies of each region.
#pragma once

#include <string>

#include "common/types.h"

namespace versa {

struct MemorySpaceDesc {
  SpaceId id = kInvalidSpace;
  std::string name;
  /// Capacity in bytes (the M2090 has 6 GB). The directory refuses to
  /// over-commit a space and evicts clean copies when pressed.
  std::uint64_t capacity = 0;
  bool is_host = false;
};

}  // namespace versa
