// Machine description files: build a Machine from a line-oriented text
// format instead of code, so benchmark nodes can be described externally
// (the same spirit as Nanos++'s runtime configuration arguments).
//
// Format (one statement per line; '#' starts a comment):
//
//   # versa machine v1
//   host capacity 24G
//   space  <name> capacity <bytes>
//   device <name> kind <smp|cuda> space <host|space-name> peak <flops>
//   worker <device-name> [worker-name]
//   link   <space-a> <space-b> bandwidth <bytes/s> latency <seconds>
//
// Quantities accept K/M/G/T suffixes (powers of 1024 for capacities,
// powers of 1000 for rates) and us/ms/s time suffixes.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "machine/machine.h"

namespace versa {

struct MachineParseResult {
  std::optional<Machine> machine;  ///< empty on error
  std::string error;               ///< first error, with line number
};

/// Parse a machine description from text.
MachineParseResult parse_machine(std::string_view text);

/// Load from a file; error mentions the path on I/O failure.
MachineParseResult load_machine(const std::string& path);

/// Serialize a Machine back to the file format (round-trips through
/// parse_machine up to formatting).
std::string serialize_machine(const Machine& machine);

/// Parse "6G", "512M", "1.5G" into bytes (powers of 1024); also used for
/// FLOP rates and bandwidths with powers of 1000 when `decimal` is true.
/// Returns nullopt on malformed input.
std::optional<double> parse_quantity(std::string_view text, bool decimal);

/// Parse "15us", "1.5ms", "2s" into seconds.
std::optional<double> parse_time(std::string_view text);

}  // namespace versa
