// The modelled machine: devices, memory spaces, workers and interconnect.
//
// A Machine is immutable once built. The runtime instantiates its directory
// and executor against a Machine; schedulers query it for worker/device
// topology.
#pragma once

#include <string>
#include <vector>

#include "machine/device.h"
#include "machine/interconnect.h"
#include "machine/memory_space.h"

namespace versa {

class Machine {
 public:
  const std::vector<DeviceDesc>& devices() const { return devices_; }
  const std::vector<MemorySpaceDesc>& spaces() const { return spaces_; }
  const std::vector<WorkerDesc>& workers() const { return workers_; }
  const Interconnect& interconnect() const { return interconnect_; }

  const DeviceDesc& device(DeviceId id) const;
  const MemorySpaceDesc& space(SpaceId id) const;
  const WorkerDesc& worker(WorkerId id) const;

  std::size_t worker_count() const { return workers_.size(); }
  std::size_t space_count() const { return spaces_.size(); }

  /// Number of workers whose device kind matches.
  std::size_t count_workers(DeviceKind kind) const;

  /// Sum of device peak FLOP rates (reporting only).
  double total_peak_flops() const;

  /// One-line human description, e.g. "8 smp + 2 cuda".
  std::string summary() const;

  class Builder;

 private:
  std::vector<DeviceDesc> devices_;
  std::vector<MemorySpaceDesc> spaces_;
  std::vector<WorkerDesc> workers_;
  Interconnect interconnect_;
};

/// Builder enforcing the id invariants (dense ids, host space first).
class Machine::Builder {
 public:
  Builder();

  /// Add a memory space; returns its id. The host space (id 0) exists
  /// from construction.
  SpaceId add_space(std::string name, std::uint64_t capacity);

  /// Add a device computing from `space`; returns its id.
  DeviceId add_device(DeviceKind kind, SpaceId space, std::string name,
                      double peak_flops);

  /// Add a worker thread devoted to `device`; returns its id.
  WorkerId add_worker(DeviceId device, std::string name = {});

  /// Register links (forwards to Interconnect).
  void add_bidi_link(SpaceId a, SpaceId b, double bandwidth, Duration latency);

  /// Set host space capacity (defaults to 24 GB).
  void set_host_capacity(std::uint64_t capacity);

  Machine build();

 private:
  Machine machine_;
};

}  // namespace versa
