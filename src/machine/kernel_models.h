// Calibrated kernel timing models for the paper's evaluation platform
// (MinoTauro node: 2x Xeon E5649 6-core 2.53 GHz + 2x NVIDIA M2090).
//
// Effective throughputs are chosen so the paper's reported ratios hold:
//  * SMP DGEMM tile takes ~60x the CUBLAS tile (§V-B1),
//  * one SMP core is <1 % of machine peak, one M2090 ~45 % (§V-B1),
//  * PBPI SMP loop tasks are 3-4x slower than their GPU versions (§V-B3).
// Absolute values are realistic for the hardware but the reproduced figures
// depend only on the ratios.
#pragma once

#include <cstdint>

#include "machine/cost_model.h"

namespace versa::kernels {

/// Effective sustained throughputs, FLOP/s.
struct Throughput {
  // Double precision GEMM (matmul benchmark).
  static constexpr double kCublasDgemm = 430e9;    // CUBLAS on M2090
  static constexpr double kHandCudaDgemm = 190e9;  // naive hand-coded kernel
  static constexpr double kCblasDgemmCore = 7.0e9; // CBLAS, one Xeon core

  // Single precision BLAS-3 (Cholesky benchmark). The SMP potrf calls a
  // reference (unblocked) CBLAS/LAPACK path on one core — slow enough that
  // a loaded GPU still finishes a potrf earlier, which is what makes the
  // versioning scheduler route (almost) all potrf work to the GPUs in the
  // paper's Figure 11.
  static constexpr double kMagmaSpotrf = 120e9;
  static constexpr double kCblasSpotrfCore = 2.5e9;
  static constexpr double kMagmaSgemm = 550e9;
  static constexpr double kCublasSsyrk = 450e9;
  static constexpr double kCublasStrsm = 410e9;
};

/// Peak rates used only for "percent of peak" reporting.
struct Peak {
  static constexpr double kXeonE5649Core = 10.12e9;  // 2.53 GHz x 4 DP flops
  static constexpr double kM2090 = 665e9;            // DP peak
};

/// FLOP counts of the dense kernels (n = tile/block edge).
std::uint64_t gemm_flops(std::uint64_t n);
std::uint64_t potrf_flops(std::uint64_t n);
std::uint64_t trsm_flops(std::uint64_t n);
std::uint64_t syrk_flops(std::uint64_t n);

/// Cost models for a square GEMM tile of edge `n` (double precision).
CostModelPtr cublas_dgemm_tile(std::uint64_t n);
CostModelPtr hand_cuda_dgemm_tile(std::uint64_t n);
CostModelPtr cblas_dgemm_tile(std::uint64_t n);

/// Cost model for a row-band GEMM sub-kernel (adaptive granularity
/// splits): the band's row count is recovered from the task's data-set
/// size — a band task accesses rows*n elements of A, the full n*n of B and
/// rows*n of C, so bytes = elem_size * n * (2*rows + n). The modelled time
/// is launch_overhead + 2*rows*n^2 / flops_per_second, i.e. the same
/// effective rate as the full tile plus the per-launch cost that makes
/// over-decomposition genuinely expensive in simulation.
CostModelPtr gemm_band_cost(std::uint64_t n, std::uint64_t elem_size,
                            double flops_per_second,
                            Duration launch_overhead);

/// Cost model for a fused GEMM task standing for several tile products
/// into one C tile (adaptive granularity fuses): the pair count is
/// recovered from the data-set size — bytes = elem_size * n^2 * (2*pairs
/// + 1) — and the fused task pays the launch overhead once instead of
/// once per original submission.
CostModelPtr gemm_fused_cost(std::uint64_t n, std::uint64_t elem_size,
                             double flops_per_second,
                             Duration launch_overhead);

/// Wrap `inner` with a constant per-launch overhead. Returns `inner`
/// unchanged when overhead <= 0 so default-configured apps keep their
/// original (byte-identical) models.
CostModelPtr add_launch_overhead(CostModelPtr inner, Duration overhead);

/// Cost models for the Cholesky block kernels (single precision, edge `n`).
CostModelPtr magma_spotrf_block(std::uint64_t n);
CostModelPtr cblas_spotrf_block(std::uint64_t n);
CostModelPtr magma_sgemm_block(std::uint64_t n);
CostModelPtr cublas_ssyrk_block(std::uint64_t n);
CostModelPtr cublas_strsm_block(std::uint64_t n);

/// PBPI per-task costs (§V-B3). The paper states the loop-2 SMP version is
/// 3-4x its GPU version; loop 1 is more GPU-friendly (Figure 14 shows the
/// versioning scheduler sends loop 1 to the GPU most of the time, so its
/// SMP/GPU ratio must be markedly higher).
struct PbpiCosts {
  static constexpr Duration kLoop1Gpu = 2.0e-3;
  static constexpr Duration kLoop1Smp = 16.0e-3;
  static constexpr Duration kLoop2Gpu = 0.5e-3;
  static constexpr Duration kLoop2Smp = 1.8e-3;
  static constexpr Duration kLoop3Smp = 1.0e-3;
};

}  // namespace versa::kernels
