#include "machine/presets.h"

#include "common/check.h"
#include "machine/kernel_models.h"

namespace versa {
namespace {

// PCIe 2.0 x16 effective rates measured on MinoTauro-class nodes.
constexpr double kPcieBandwidth = 6.0e9;    // bytes/s, per direction
constexpr Duration kPcieLatency = 15e-6;    // per transfer
// GPU<->GPU copies on Fermi stage through the host; slightly lower rate.
constexpr double kPeerBandwidth = 5.0e9;
constexpr Duration kPeerLatency = 25e-6;

}  // namespace

Machine make_minotauro_node(std::size_t smp_workers, std::size_t gpus) {
  VERSA_CHECK_MSG(smp_workers >= 1 && smp_workers <= 12,
                  "MinoTauro node has 12 cores");
  VERSA_CHECK_MSG(gpus <= 2, "MinoTauro node has 2 GPUs");

  Machine::Builder builder;
  builder.set_host_capacity(24ull << 30);

  for (std::size_t i = 0; i < smp_workers; ++i) {
    const DeviceId core =
        builder.add_device(DeviceKind::kSmp, kHostSpace,
                           "xeon-core-" + std::to_string(i),
                           kernels::Peak::kXeonE5649Core);
    builder.add_worker(core, "smp-" + std::to_string(i));
  }

  std::vector<SpaceId> gpu_spaces;
  for (std::size_t g = 0; g < gpus; ++g) {
    const SpaceId space =
        builder.add_space("gpu-mem-" + std::to_string(g), 6ull << 30);
    const DeviceId dev =
        builder.add_device(DeviceKind::kCuda, space,
                           "m2090-" + std::to_string(g), kernels::Peak::kM2090);
    builder.add_worker(dev, "gpu-" + std::to_string(g));
    builder.add_bidi_link(kHostSpace, space, kPcieBandwidth, kPcieLatency);
    gpu_spaces.push_back(space);
  }
  for (std::size_t a = 0; a < gpu_spaces.size(); ++a) {
    for (std::size_t b = a + 1; b < gpu_spaces.size(); ++b) {
      builder.add_bidi_link(gpu_spaces[a], gpu_spaces[b], kPeerBandwidth,
                            kPeerLatency);
    }
  }
  return builder.build();
}

Machine make_gpu_cluster(std::size_t nodes, std::size_t smp_per_node,
                         std::size_t gpus_per_node) {
  VERSA_CHECK(nodes >= 1 && smp_per_node >= 1);
  // QDR InfiniBand-class network between node host spaces.
  constexpr double kNetBandwidth = 3.2e9;  // bytes/s effective
  constexpr Duration kNetLatency = 2e-6;

  Machine::Builder builder;
  builder.set_host_capacity(24ull << 30);
  std::vector<SpaceId> node_hosts;

  for (std::size_t n = 0; n < nodes; ++n) {
    const SpaceId node_host =
        n == 0 ? kHostSpace
               : builder.add_space("node" + std::to_string(n) + "-mem",
                                   24ull << 30);
    node_hosts.push_back(node_host);
    for (std::size_t c = 0; c < smp_per_node; ++c) {
      const DeviceId core = builder.add_device(
          DeviceKind::kSmp, node_host,
          "n" + std::to_string(n) + "-core-" + std::to_string(c),
          kernels::Peak::kXeonE5649Core);
      builder.add_worker(core,
                         "n" + std::to_string(n) + "-smp-" + std::to_string(c));
    }
    for (std::size_t g = 0; g < gpus_per_node; ++g) {
      const SpaceId gpu_mem = builder.add_space(
          "n" + std::to_string(n) + "-gpu-mem-" + std::to_string(g),
          6ull << 30);
      const DeviceId gpu = builder.add_device(
          DeviceKind::kCuda, gpu_mem,
          "n" + std::to_string(n) + "-m2090-" + std::to_string(g),
          kernels::Peak::kM2090);
      builder.add_worker(gpu,
                         "n" + std::to_string(n) + "-gpu-" + std::to_string(g));
      builder.add_bidi_link(node_host, gpu_mem, kPcieBandwidth, kPcieLatency);
    }
  }
  // Full network mesh between node host spaces. GPU spaces on different
  // nodes have no direct link: the transfer engine stages those copies
  // through space 0, modelling GPU -> host -> network -> host -> GPU.
  for (std::size_t a = 0; a < node_hosts.size(); ++a) {
    for (std::size_t b = a + 1; b < node_hosts.size(); ++b) {
      builder.add_bidi_link(node_hosts[a], node_hosts[b], kNetBandwidth,
                            kNetLatency);
    }
  }
  return builder.build();
}

Machine make_smp_machine(std::size_t smp_workers) {
  VERSA_CHECK(smp_workers >= 1);
  Machine::Builder builder;
  for (std::size_t i = 0; i < smp_workers; ++i) {
    const DeviceId core = builder.add_device(
        DeviceKind::kSmp, kHostSpace, "core-" + std::to_string(i),
        kernels::Peak::kXeonE5649Core);
    builder.add_worker(core, "smp-" + std::to_string(i));
  }
  return builder.build();
}

}  // namespace versa
