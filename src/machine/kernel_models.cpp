#include "machine/kernel_models.h"

namespace versa::kernels {
namespace {

CostModelPtr rate_model(std::uint64_t flops, double flops_per_second) {
  return make_constant_cost(static_cast<double>(flops) / flops_per_second);
}

}  // namespace

std::uint64_t gemm_flops(std::uint64_t n) { return 2 * n * n * n; }

std::uint64_t potrf_flops(std::uint64_t n) { return n * n * n / 3; }

std::uint64_t trsm_flops(std::uint64_t n) { return n * n * n; }

std::uint64_t syrk_flops(std::uint64_t n) { return n * n * n; }

CostModelPtr cublas_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kCublasDgemm);
}

CostModelPtr hand_cuda_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kHandCudaDgemm);
}

CostModelPtr cblas_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kCblasDgemmCore);
}

CostModelPtr gemm_band_cost(std::uint64_t n, std::uint64_t elem_size,
                            double flops_per_second,
                            Duration launch_overhead) {
  return make_callable_cost([n, elem_size, flops_per_second,
                             launch_overhead](std::uint64_t bytes) -> Duration {
    // bytes = elem_size * n * (2*rows + n): a band touches rows*n of A,
    // the full n*n of B and rows*n of C.
    const std::uint64_t per_row = n * elem_size;
    std::uint64_t rows = n;  // degenerate sizes fall back to the full tile
    if (per_row > 0) {
      const std::uint64_t cols = bytes / per_row;
      rows = cols > n ? (cols - n) / 2 : 1;
      if (rows == 0) rows = 1;
    }
    const double flops = 2.0 * static_cast<double>(rows) *
                         static_cast<double>(n) * static_cast<double>(n);
    return launch_overhead + flops / flops_per_second;
  });
}

CostModelPtr gemm_fused_cost(std::uint64_t n, std::uint64_t elem_size,
                             double flops_per_second,
                             Duration launch_overhead) {
  return make_callable_cost([n, elem_size, flops_per_second,
                             launch_overhead](std::uint64_t bytes) -> Duration {
    // bytes = elem_size * n^2 * (2*pairs + 1): each fused pair brings its
    // own A and B tiles; the shared C tile is counted once.
    const std::uint64_t tile_bytes = n * n * elem_size;
    std::uint64_t pairs = 1;
    if (tile_bytes > 0 && bytes > tile_bytes) {
      pairs = (bytes / tile_bytes - 1) / 2;
      if (pairs == 0) pairs = 1;
    }
    const double flops = static_cast<double>(pairs) *
                         static_cast<double>(gemm_flops(n));
    return launch_overhead + flops / flops_per_second;
  });
}

CostModelPtr add_launch_overhead(CostModelPtr inner, Duration overhead) {
  if (overhead <= 0.0) return inner;
  return make_callable_cost(
      [inner = std::move(inner), overhead](std::uint64_t bytes) -> Duration {
        return overhead + inner->mean_duration(bytes);
      });
}

CostModelPtr magma_spotrf_block(std::uint64_t n) {
  return rate_model(potrf_flops(n), Throughput::kMagmaSpotrf);
}

CostModelPtr cblas_spotrf_block(std::uint64_t n) {
  return rate_model(potrf_flops(n), Throughput::kCblasSpotrfCore);
}

CostModelPtr magma_sgemm_block(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kMagmaSgemm);
}

CostModelPtr cublas_ssyrk_block(std::uint64_t n) {
  return rate_model(syrk_flops(n), Throughput::kCublasSsyrk);
}

CostModelPtr cublas_strsm_block(std::uint64_t n) {
  return rate_model(trsm_flops(n), Throughput::kCublasStrsm);
}

}  // namespace versa::kernels
