#include "machine/kernel_models.h"

namespace versa::kernels {
namespace {

CostModelPtr rate_model(std::uint64_t flops, double flops_per_second) {
  return make_constant_cost(static_cast<double>(flops) / flops_per_second);
}

}  // namespace

std::uint64_t gemm_flops(std::uint64_t n) { return 2 * n * n * n; }

std::uint64_t potrf_flops(std::uint64_t n) { return n * n * n / 3; }

std::uint64_t trsm_flops(std::uint64_t n) { return n * n * n; }

std::uint64_t syrk_flops(std::uint64_t n) { return n * n * n; }

CostModelPtr cublas_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kCublasDgemm);
}

CostModelPtr hand_cuda_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kHandCudaDgemm);
}

CostModelPtr cblas_dgemm_tile(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kCblasDgemmCore);
}

CostModelPtr magma_spotrf_block(std::uint64_t n) {
  return rate_model(potrf_flops(n), Throughput::kMagmaSpotrf);
}

CostModelPtr cblas_spotrf_block(std::uint64_t n) {
  return rate_model(potrf_flops(n), Throughput::kCblasSpotrfCore);
}

CostModelPtr magma_sgemm_block(std::uint64_t n) {
  return rate_model(gemm_flops(n), Throughput::kMagmaSgemm);
}

CostModelPtr cublas_ssyrk_block(std::uint64_t n) {
  return rate_model(syrk_flops(n), Throughput::kCublasSsyrk);
}

CostModelPtr cublas_strsm_block(std::uint64_t n) {
  return rate_model(trsm_flops(n), Throughput::kCublasStrsm);
}

}  // namespace versa::kernels
