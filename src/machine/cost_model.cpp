#include "machine/cost_model.h"

#include "common/check.h"

namespace versa {

ConstantCost::ConstantCost(Duration duration) : duration_(duration) {
  VERSA_CHECK(duration >= 0.0);
}

Duration ConstantCost::mean_duration(std::uint64_t) const { return duration_; }

LinearCost::LinearCost(Duration base, Duration per_byte)
    : base_(base), per_byte_(per_byte) {
  VERSA_CHECK(base >= 0.0 && per_byte >= 0.0);
}

Duration LinearCost::mean_duration(std::uint64_t data_bytes) const {
  return base_ + per_byte_ * static_cast<double>(data_bytes);
}

CallableCost::CallableCost(Fn fn) : fn_(std::move(fn)) {
  VERSA_CHECK(fn_ != nullptr);
}

Duration CallableCost::mean_duration(std::uint64_t data_bytes) const {
  return fn_(data_bytes);
}

CostModelPtr make_constant_cost(Duration duration) {
  return std::make_shared<ConstantCost>(duration);
}

CostModelPtr make_linear_cost(Duration base, Duration per_byte) {
  return std::make_shared<LinearCost>(base, per_byte);
}

CostModelPtr make_callable_cost(CallableCost::Fn fn) {
  return std::make_shared<CallableCost>(std::move(fn));
}

}  // namespace versa
