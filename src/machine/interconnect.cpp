#include "machine/interconnect.h"

#include <algorithm>

#include "common/check.h"

namespace versa {

void Interconnect::add_link(const LinkDesc& link) {
  VERSA_CHECK(link.from != link.to);
  VERSA_CHECK(link.bandwidth > 0.0);
  VERSA_CHECK(link.latency >= 0.0);
  auto it = std::find_if(links_.begin(), links_.end(), [&](const LinkDesc& l) {
    return l.from == link.from && l.to == link.to;
  });
  if (it != links_.end()) {
    *it = link;
  } else {
    links_.push_back(link);
  }
}

void Interconnect::add_bidi_link(SpaceId a, SpaceId b, double bandwidth,
                                 Duration latency) {
  add_link(LinkDesc{a, b, bandwidth, latency});
  add_link(LinkDesc{b, a, bandwidth, latency});
}

const LinkDesc* Interconnect::find(SpaceId from, SpaceId to) const {
  auto it = std::find_if(links_.begin(), links_.end(), [&](const LinkDesc& l) {
    return l.from == from && l.to == to;
  });
  return it == links_.end() ? nullptr : &*it;
}

Duration Interconnect::transfer_time(SpaceId from, SpaceId to,
                                     std::uint64_t bytes) const {
  const LinkDesc* link = find(from, to);
  VERSA_CHECK_MSG(link != nullptr, "no direct link between spaces");
  return link->latency + static_cast<double>(bytes) / link->bandwidth;
}

}  // namespace versa
