#include "machine/device.h"

// Descriptors are plain data; this TU exists so the module has a stable
// object file even if inline definitions move.
