// Running statistics used by the profiling tables and the reporters.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace versa {

/// How a task-version profile averages observed execution times.
/// The paper uses the plain arithmetic mean (§IV-B); footnote 3 suggests a
/// weighted mean favouring recent observations, which we expose as an
/// exponential moving average.
enum class MeanKind : std::uint8_t {
  kArithmetic,
  kExponential,
};

/// Running mean of a stream of durations. Supports both averaging policies;
/// the count is tracked either way (the learning phase needs it). Also
/// tracks a second moment so the profile store can persist variance:
/// Welford M2 under the arithmetic policy, the exponentially-weighted
/// variance itself under the EMA policy.
class RunningMean {
 public:
  explicit RunningMean(MeanKind kind = MeanKind::kArithmetic,
                       double ema_alpha = 0.25);

  void add(double value);

  /// Mean of all observations (or EMA). Zero if no observations yet.
  double mean() const { return mean_; }
  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }

  /// Sample variance of the stream (n-1 denominator for arithmetic, the
  /// exponentially-weighted variance for EMA). Zero below two samples.
  double variance() const;

  /// Raw second-moment accumulator, for exact serialization round-trips.
  double m2() const { return m2_; }

  /// Overwrite the accumulator state (profile-store warm start). The mean
  /// kind and EMA weight are unchanged; `m2` must be the value a previous
  /// `m2()` call returned (or 0 when unknown).
  void restore(double mean, std::uint64_t count, double m2);

  /// Forget all observations (drift relearning).
  void reset();

  MeanKind kind() const { return kind_; }

 private:
  MeanKind kind_;
  double ema_alpha_;
  double mean_ = 0.0;
  double m2_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Welford online mean/variance accumulator, for reporting jitter and for
/// the property tests that validate the noise model.
class Welford {
 public:
  void add(double value);

  std::uint64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 with fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace versa
