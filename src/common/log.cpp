#include "common/log.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace versa {
namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kWarn;
  if (std::strcmp(text, "error") == 0) return LogLevel::kError;
  if (std::strcmp(text, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(text, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(text, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(text, "trace") == 0) return LogLevel::kTrace;
  return LogLevel::kWarn;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError:
      return "E";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kTrace:
      return "T";
  }
  return "?";
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> value{
      static_cast<int>(parse_level(std::getenv("VERSA_LOG")))};
  return value;
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_line(LogLevel level, const std::string& message) {
  std::string line = "[versa:";
  line += level_tag(level);
  line += "] ";
  line += message;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace versa
