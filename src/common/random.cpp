#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace versa {
namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// splitmix64: used to expand a single seed into the xoshiro state, as
// recommended by the xoshiro authors.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

std::uint64_t Rng::next_below(std::uint64_t n) {
  VERSA_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t value = next_u64();
  while (value >= limit) {
    value = next_u64();
  }
  return value % n;
}

double Rng::next_gaussian() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::next_lognormal(double mu, double sigma) {
  return std::exp(mu + sigma * next_gaussian());
}

Rng Rng::split() { return Rng(next_u64()); }

}  // namespace versa
