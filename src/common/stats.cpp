#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace versa {

RunningMean::RunningMean(MeanKind kind, double ema_alpha)
    : kind_(kind), ema_alpha_(ema_alpha) {
  VERSA_CHECK(ema_alpha > 0.0 && ema_alpha <= 1.0);
}

void RunningMean::add(double value) {
  ++count_;
  if (kind_ == MeanKind::kArithmetic) {
    mean_ += (value - mean_) / static_cast<double>(count_);
  } else {
    mean_ = (count_ == 1) ? value : mean_ + ema_alpha_ * (value - mean_);
  }
}

void Welford::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Welford::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace versa
