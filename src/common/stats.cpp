#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace versa {

RunningMean::RunningMean(MeanKind kind, double ema_alpha)
    : kind_(kind), ema_alpha_(ema_alpha) {
  VERSA_CHECK(ema_alpha > 0.0 && ema_alpha <= 1.0);
}

void RunningMean::add(double value) {
  ++count_;
  if (kind_ == MeanKind::kArithmetic) {
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
  } else if (count_ == 1) {
    mean_ = value;
    m2_ = 0.0;
  } else {
    // West's exponentially-weighted mean/variance update.
    const double delta = value - mean_;
    const double incr = ema_alpha_ * delta;
    mean_ += incr;
    m2_ = (1.0 - ema_alpha_) * (m2_ + delta * incr);
  }
}

double RunningMean::variance() const {
  if (count_ < 2) return 0.0;
  if (kind_ == MeanKind::kArithmetic) {
    return m2_ / static_cast<double>(count_ - 1);
  }
  return m2_;
}

void RunningMean::restore(double mean, std::uint64_t count, double m2) {
  VERSA_CHECK(m2 >= 0.0);
  mean_ = mean;
  count_ = count;
  m2_ = m2;
}

void RunningMean::reset() {
  mean_ = 0.0;
  m2_ = 0.0;
  count_ = 0;
}

void Welford::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double Welford::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Welford::stddev() const { return std::sqrt(variance()); }

}  // namespace versa
