// Lightweight invariant checking used across the runtime.
//
// VERSA_CHECK aborts with a message on violation in every build type;
// VERSA_DCHECK compiles out in NDEBUG builds. Both print file:line and the
// failed expression so that test logs point straight at the broken invariant.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace versa::detail {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr, const char* msg) {
  std::fprintf(stderr, "versa: CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace versa::detail

#define VERSA_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::versa::detail::check_failed(__FILE__, __LINE__, #expr, "");    \
    }                                                                  \
  } while (0)

#define VERSA_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::versa::detail::check_failed(__FILE__, __LINE__, #expr, (msg)); \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define VERSA_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define VERSA_DCHECK(expr) VERSA_CHECK(expr)
#endif
