// Fundamental identifier and time types shared by every versa module.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace versa {

/// Virtual or wall-clock time, in seconds. All scheduling and simulation
/// arithmetic is performed in double-precision seconds; the worst-case
/// resolution over a multi-hour run is still well under a nanosecond.
using Time = double;

/// A span of time in seconds.
using Duration = double;

constexpr Time kTimeInfinity = std::numeric_limits<Time>::infinity();

/// Identifier types. They are distinct aliases (not strong types) because
/// they cross module boundaries constantly; debug checks guard misuse.
using TaskId = std::uint64_t;
using VersionId = std::uint32_t;
using TaskTypeId = std::uint32_t;
using WorkerId = std::uint32_t;
using DeviceId = std::uint32_t;
using SpaceId = std::uint32_t;
using RegionId = std::uint64_t;

/// Service mode (DESIGN.md §10): one runtime serves many independent task
/// graphs, each owned by a tenant. Graph 0 / tenant 0 are the implicit
/// defaults used by every single-graph program, so code that never opens a
/// second graph behaves exactly as before.
using GraphId = std::uint32_t;
using TenantId = std::uint32_t;

constexpr TaskId kInvalidTask = std::numeric_limits<TaskId>::max();
constexpr VersionId kInvalidVersion = std::numeric_limits<VersionId>::max();
constexpr TaskTypeId kInvalidTaskType = std::numeric_limits<TaskTypeId>::max();
constexpr WorkerId kInvalidWorker = std::numeric_limits<WorkerId>::max();
constexpr DeviceId kInvalidDevice = std::numeric_limits<DeviceId>::max();
constexpr SpaceId kInvalidSpace = std::numeric_limits<SpaceId>::max();
constexpr GraphId kInvalidGraph = std::numeric_limits<GraphId>::max();
constexpr TenantId kInvalidTenant = std::numeric_limits<TenantId>::max();

/// The implicit graph root / tenant every task belongs to unless a service
/// session says otherwise.
constexpr GraphId kDefaultGraph = 0;
constexpr TenantId kDefaultTenant = 0;

/// Memory space 0 is always the host (SMP main memory), as in Nanos++.
constexpr SpaceId kHostSpace = 0;

/// Device classes understood by the `target device(...)` clause analogue.
enum class DeviceKind : std::uint8_t {
  kSmp,   ///< General-purpose CPU core.
  kCuda,  ///< GPU-like accelerator with its own memory space.
};

const char* to_string(DeviceKind kind);

}  // namespace versa
