#include "common/string_util.h"

#include <cctype>
#include <cstdio>

#include "common/types.h"

namespace versa {

const char* to_string(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kSmp:
      return "smp";
    case DeviceKind::kCuda:
      return "cuda";
  }
  return "unknown";
}

std::vector<std::string> split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

namespace {

std::string printf_to_string(const char* fmt, double value, const char* unit) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), fmt, value, unit);
  return buffer;
}

}  // namespace

std::string format_bytes(double bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  int unit = 0;
  while (bytes >= 1024.0 && unit < 4) {
    bytes /= 1024.0;
    ++unit;
  }
  return printf_to_string(unit == 0 ? "%.0f %s" : "%.2f %s", bytes,
                          kUnits[unit]);
}

std::string format_duration(double seconds) {
  if (seconds >= 1.0) return printf_to_string("%.3f %s", seconds, "s");
  if (seconds >= 1e-3) return printf_to_string("%.3f %s", seconds * 1e3, "ms");
  if (seconds >= 1e-6) return printf_to_string("%.3f %s", seconds * 1e6, "us");
  return printf_to_string("%.1f %s", seconds * 1e9, "ns");
}

std::string format_double(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

}  // namespace versa
