// Deterministic, fast pseudo-random generator (xoshiro256++) plus the
// distributions the simulator needs. Seeded runs reproduce bit-identically,
// which the benchmark harnesses rely on.
#pragma once

#include <cstdint>

namespace versa {

/// xoshiro256++ by Blackman & Vigna (public domain reference algorithm),
/// implemented from the published description.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n);

  /// Standard normal variate (polar Box–Muller, cached spare).
  double next_gaussian();

  /// Lognormal variate with the given parameters of the underlying normal.
  double next_lognormal(double mu, double sigma);

  /// Split off an independently-seeded child generator (for per-worker
  /// streams that stay deterministic regardless of interleaving).
  Rng split();

 private:
  std::uint64_t state_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace versa
