// Small string helpers shared by the hints-file parser and the reporters.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace versa {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view text, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// "1.50 GB", "8.00 MB", "512 B" — used by the transfer reports.
std::string format_bytes(double bytes);

/// "12.3 ms", "1.20 s", "45.0 us" — used by the profile dumps.
std::string format_duration(double seconds);

/// Fixed-precision double ("%.*f").
std::string format_double(double value, int precision);

}  // namespace versa
