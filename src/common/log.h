// Minimal leveled logger. Controlled by the VERSA_LOG environment variable
// (error|warn|info|debug|trace); defaults to warn so tests stay quiet.
#pragma once

#include <sstream>
#include <string>

namespace versa {

enum class LogLevel : int {
  kError = 0,
  kWarn = 1,
  kInfo = 2,
  kDebug = 3,
  kTrace = 4,
};

/// Global log threshold, initialized once from $VERSA_LOG.
LogLevel log_threshold();

/// Override the threshold programmatically (tests use this).
void set_log_threshold(LogLevel level);

/// Emit one formatted line to stderr. Thread-safe (single write call).
void log_line(LogLevel level, const std::string& message);

namespace detail {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace versa

#define VERSA_LOG(level)                                 \
  if (::versa::LogLevel::level > ::versa::log_threshold()) { \
  } else                                                 \
    ::versa::detail::LogMessage(::versa::LogLevel::level)
