// Tiled dense matrix multiplication — the paper's first evaluation
// application (§V-B1): C = A * B on square matrices of `n` x `n` doubles
// stored as `tile` x `tile` tiles; each tile product is one task.
//
// Two application variants, as evaluated in the paper:
//  * mm-gpu (hybrid=false): single CUBLAS (GPU) task version.
//  * mm-hyb (hybrid=true):  CUBLAS (GPU, main) + hand-coded CUDA (GPU) +
//                           CBLAS (SMP) versions of the same task.
//
// In real-compute mode (small n) the tiles are backed by actual storage,
// the bodies execute, and the result can be checked against a reference.
// At paper scale the tiles are virtual and only cost models drive timing.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace versa::apps {

struct MatmulParams {
  std::size_t n = 16384;    ///< matrix edge, elements (paper: 16384)
  std::size_t tile = 1024;  ///< tile edge, elements (paper: 1024)
  bool hybrid = true;       ///< mm-hyb when true, mm-gpu otherwise
  bool real_compute = false;
  std::uint64_t data_seed = 7;  ///< real-compute initialization

  /// Per-launch overhead added to every cost model (seconds). Zero (the
  /// default) leaves the original models untouched so figure runs stay
  /// byte-identical; bench_granularity sets it so over-decomposition has
  /// a real price in simulation.
  double launch_overhead = 0.0;
};

class MatmulApp {
 public:
  MatmulApp(Runtime& rt, MatmulParams params);

  /// Submit every tile task (t^3 tasks for t = n / tile).
  void submit_all();

  /// submit_all + taskwait.
  void run();

  /// 2 n^3 — FLOPs of the whole multiplication.
  double total_flops() const;

  std::size_t tiles_per_edge() const { return tiles_; }
  std::size_t task_count() const { return tiles_ * tiles_ * tiles_; }

  TaskTypeId task_type() const { return task_type_; }
  VersionId cublas_version() const { return v_cublas_; }
  VersionId cuda_version() const { return v_cuda_; }
  VersionId cblas_version() const { return v_cblas_; }  ///< kInvalidVersion for mm-gpu

  /// Adaptive-granularity sub-kernel types (DESIGN.md §11); only declared
  /// when the runtime's granularity controller is on, kInvalidTaskType
  /// otherwise.
  TaskTypeId band_type() const { return band_type_; }
  TaskTypeId fused_type() const { return fused_type_; }

  /// Real-compute mode: max |C - C_ref| over a deterministic sample of
  /// tiles. Requires run() to have completed.
  double max_error() const;

 private:
  Runtime& rt_;
  MatmulParams params_;
  std::size_t tiles_;
  TaskTypeId task_type_ = kInvalidTaskType;
  TaskTypeId band_type_ = kInvalidTaskType;
  TaskTypeId fused_type_ = kInvalidTaskType;
  VersionId v_cublas_ = kInvalidVersion;
  VersionId v_cuda_ = kInvalidVersion;
  VersionId v_cblas_ = kInvalidVersion;

  std::vector<RegionId> a_regions_, b_regions_, c_regions_;
  // Real-compute backing storage, one vector per tile (empty otherwise).
  std::vector<std::vector<double>> a_data_, b_data_, c_data_;

  void register_versions();
  void register_granularity();
  void register_tiles();
};

}  // namespace versa::apps
