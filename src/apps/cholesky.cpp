#include "apps/cholesky.h"

#include <cmath>

#include "apps/kernels.h"
#include "common/check.h"
#include "common/random.h"
#include "machine/kernel_models.h"

namespace versa::apps {

const char* to_string(PotrfVariant variant) {
  switch (variant) {
    case PotrfVariant::kSmp:
      return "potrf-smp";
    case PotrfVariant::kGpu:
      return "potrf-gpu";
    case PotrfVariant::kHybrid:
      return "potrf-hyb";
  }
  return "?";
}

CholeskyApp::CholeskyApp(Runtime& rt, CholeskyParams params)
    : rt_(rt), params_(params) {
  VERSA_CHECK_MSG(params_.block > 0 && params_.n % params_.block == 0,
                  "matrix edge must be a multiple of the block edge");
  blocks_ = params_.n / params_.block;
  register_versions();
  register_granularity();
  register_blocks();
}

std::size_t CholeskyApp::block_index(std::size_t i, std::size_t j) const {
  VERSA_DCHECK(j <= i && i < blocks_);
  return i * (i + 1) / 2 + j;
}

void CholeskyApp::register_versions() {
  const std::size_t nb = params_.block;

  t_potrf_ = rt_.declare_task("potrf");
  const TaskFn potrf_body = [nb](TaskContext& ctx) {
    auto* a = static_cast<float*>(ctx.arg(0));
    if (a == nullptr) return;
    AccessWitness(ctx).read_write(0);
    VERSA_CHECK_MSG(kernels::spotrf_block(a, nb),
                    "matrix block is not positive definite");
  };
  if (params_.potrf != PotrfVariant::kSmp) {
    v_potrf_gpu_ = rt_.add_version(t_potrf_, DeviceKind::kCuda, "magma",
                                   potrf_body, kernels::magma_spotrf_block(nb));
  }
  if (params_.potrf != PotrfVariant::kGpu) {
    v_potrf_smp_ = rt_.add_version(t_potrf_, DeviceKind::kSmp, "cblas",
                                   potrf_body, kernels::cblas_spotrf_block(nb));
  }

  t_trsm_ = rt_.declare_task("trsm");
  rt_.add_version(
      t_trsm_, DeviceKind::kCuda, "cublas",
      [nb](TaskContext& ctx) {
        auto* l = static_cast<const float*>(ctx.arg(0));
        auto* b = static_cast<float*>(ctx.arg(1));
        if (l == nullptr) return;
        AccessWitness witness(ctx);
        witness.read(0);
        witness.read_write(1);
        kernels::strsm_block(l, b, nb);
      },
      kernels::cublas_strsm_block(nb));

  t_syrk_ = rt_.declare_task("syrk");
  rt_.add_version(
      t_syrk_, DeviceKind::kCuda, "cublas",
      [nb](TaskContext& ctx) {
        auto* a = static_cast<const float*>(ctx.arg(0));
        auto* c = static_cast<float*>(ctx.arg(1));
        if (a == nullptr) return;
        AccessWitness witness(ctx);
        witness.read(0);
        witness.read_write(1);
        kernels::ssyrk_block(a, c, nb);
      },
      kernels::cublas_ssyrk_block(nb));

  t_gemm_ = rt_.declare_task("gemm");
  rt_.add_version(
      t_gemm_, DeviceKind::kCuda, "magma",
      [nb](TaskContext& ctx) {
        auto* a = static_cast<const float*>(ctx.arg(0));
        auto* b = static_cast<const float*>(ctx.arg(1));
        auto* c = static_cast<float*>(ctx.arg(2));
        if (a == nullptr) return;
        AccessWitness witness(ctx);
        witness.read(0);
        witness.read(1);
        witness.read_write(2);
        kernels::sgemm_nt_block(a, b, c, nb);
      },
      kernels::magma_sgemm_block(nb));
}

void CholeskyApp::register_granularity() {
  if (rt_.granularity() == nullptr) return;
  const std::size_t nb = params_.block;

  // gemm is the dominant task of the trailing update and the only one
  // whose C block depends row-wise on exactly one input (C_ij row r needs
  // A_ik row r and all of A_jk), so it is the one worth re-tiling.
  t_gemm_band_ = rt_.declare_task("gemm_band");
  rt_.add_version(
      t_gemm_band_, DeviceKind::kCuda, "magma",
      [nb](TaskContext& ctx) {
        auto* a = static_cast<const float*>(ctx.arg(0));
        auto* b = static_cast<const float*>(ctx.arg(1));
        auto* c = static_cast<float*>(ctx.arg(2));
        if (a == nullptr) return;
        AccessWitness witness(ctx);
        witness.read(0);
        witness.read(1);
        witness.read_write(2);
        const std::size_t rows = ctx.arg_size(0) / (nb * sizeof(float));
        kernels::sgemm_nt_band(a, b, c, nb, rows);
      },
      kernels::gemm_band_cost(nb, sizeof(float),
                              kernels::Throughput::kMagmaSgemm, 0.0));

  core::SplitRecipe split;
  split.child_type = t_gemm_band_;
  split.max_factor = 8;
  split.partition = core::row_band_partition(nb * sizeof(float));
  rt_.set_split_recipe(t_gemm_, std::move(split));
}

void CholeskyApp::register_blocks() {
  const std::size_t elems = params_.block * params_.block;
  const std::uint64_t bytes = elems * sizeof(float);
  Rng rng(params_.data_seed);

  regions_.reserve(blocks_ * (blocks_ + 1) / 2);
  for (std::size_t i = 0; i < blocks_; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      void* ptr = nullptr;
      if (params_.real_compute) {
        data_.emplace_back(elems);
        std::vector<float>& block = data_.back();
        for (std::size_t e = 0; e < elems; ++e) {
          block[e] = static_cast<float>(rng.uniform(-0.5, 0.5));
        }
        if (i == j) {
          // Symmetrize the diagonal block and make the whole matrix
          // diagonally dominant, hence positive definite.
          const std::size_t nb = params_.block;
          for (std::size_t r = 0; r < nb; ++r) {
            for (std::size_t c = 0; c < r; ++c) {
              block[c * nb + r] = block[r * nb + c];
            }
            block[r * nb + r] += static_cast<float>(params_.n);
          }
        }
        ptr = block.data();
      }
      regions_.push_back(rt_.register_data(
          "A[" + std::to_string(i) + "," + std::to_string(j) + "]", bytes,
          ptr));
    }
  }
  if (params_.real_compute) {
    original_ = data_;  // keep A for verification
  }
}

void CholeskyApp::submit_all() {
  for (std::size_t k = 0; k < blocks_; ++k) {
    rt_.submit(t_potrf_, {Access::inout(regions_[block_index(k, k)])},
               "potrf", params_.potrf_priority);
    for (std::size_t i = k + 1; i < blocks_; ++i) {
      rt_.submit(t_trsm_, {Access::in(regions_[block_index(k, k)]),
                           Access::inout(regions_[block_index(i, k)])});
    }
    for (std::size_t i = k + 1; i < blocks_; ++i) {
      rt_.submit(t_syrk_, {Access::in(regions_[block_index(i, k)]),
                           Access::inout(regions_[block_index(i, i)])});
      for (std::size_t j = k + 1; j < i; ++j) {
        rt_.submit(t_gemm_, {Access::in(regions_[block_index(i, k)]),
                             Access::in(regions_[block_index(j, k)]),
                             Access::inout(regions_[block_index(i, j)])});
      }
    }
  }
}

void CholeskyApp::run() {
  submit_all();
  rt_.taskwait();
}

double CholeskyApp::total_flops() const {
  const double n = static_cast<double>(params_.n);
  return n * n * n / 3.0;
}

std::size_t CholeskyApp::task_count() const {
  std::size_t count = 0;
  for (std::size_t k = 0; k < blocks_; ++k) {
    const std::size_t below = blocks_ - k - 1;
    count += 1 + below + below + below * (below - 1) / 2;
  }
  return count;
}

double CholeskyApp::max_error() const {
  VERSA_CHECK_MSG(params_.real_compute, "max_error needs real compute");
  const std::size_t nb = params_.block;

  // L with the strict upper triangle of diagonal blocks zeroed.
  auto l_entry = [&](std::size_t bi, std::size_t bj, std::size_t r,
                     std::size_t c) -> double {
    const std::vector<float>& block = data_[block_index(bi, bj)];
    if (bi == bj && c > r) return 0.0;
    return block[r * nb + c];
  };

  double worst = 0.0;
  for (std::size_t bi = 0; bi < blocks_; ++bi) {
    for (std::size_t bj = 0; bj <= bi; ++bj) {
      const std::vector<float>& a = original_[block_index(bi, bj)];
      for (std::size_t r = 0; r < nb; ++r) {
        // Only the lower triangle of A is meaningful.
        const std::size_t c_end = (bi == bj) ? r + 1 : nb;
        for (std::size_t c = 0; c < c_end; ++c) {
          double acc = 0.0;
          for (std::size_t bk = 0; bk <= bj; ++bk) {
            for (std::size_t e = 0; e < nb; ++e) {
              acc += l_entry(bi, bk, r, e) * l_entry(bj, bk, c, e);
            }
          }
          worst = std::max(worst, std::fabs(acc - a[r * nb + c]));
        }
      }
    }
  }
  return worst;
}

}  // namespace versa::apps
