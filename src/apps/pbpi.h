// PBPI-shaped workload — the paper's third evaluation application (§V-B3):
// Bayesian phylogenetic inference by MCMC sampling. Each generation of the
// Markov chain runs three computational loops, taskified as in the paper:
//
//   loop1 — per-slice partial-likelihood update  (GPU and/or SMP versions)
//   loop2 — per-chunk refinement, the bulk of the tasks (GPU and/or SMP)
//   loop3 — likelihood accumulation + normalization, SMP-only; it both
//           reads and rewrites every chunk, so chunks must travel back to
//           the host every generation and out again if loop2 runs on GPUs
//           — the "back and forth" that makes pbpi-gpu lose to pbpi-smp.
//
// The real phylogenetic arithmetic is replaced by an elementwise
// likelihood-like transform (apps/kernels.h) with the paper's data volume
// (500 MB dataset) and relative task costs (SMP 3-4x the GPU versions).
// Generation count is scaled down; per-generation structure is preserved,
// and the figures report percentages/relative times, which scaling leaves
// unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace versa::apps {

enum class PbpiVariant : std::uint8_t { kSmp, kGpu, kHybrid };

const char* to_string(PbpiVariant variant);

struct PbpiParams {
  std::uint64_t sites_bytes = 500ull << 20;   ///< dataset (paper: 500 MB)
  std::uint64_t chunks_bytes = 200ull << 20;  ///< loop2 working set
  std::size_t slices = 40;                    ///< loop1/loop3 granularity
  std::size_t chunks = 200;                   ///< loop2 tasks per generation
  std::size_t generations = 50;
  PbpiVariant variant = PbpiVariant::kHybrid;
  bool real_compute = false;
  std::uint64_t data_seed = 13;
};

class PbpiApp {
 public:
  PbpiApp(Runtime& rt, PbpiParams params);

  void submit_all();
  void run();

  std::size_t task_count() const {
    return params_.generations * (params_.slices + params_.chunks + 1);
  }

  TaskTypeId loop1_type() const { return t_loop1_; }
  TaskTypeId loop2_type() const { return t_loop2_; }
  TaskTypeId loop3_type() const { return t_loop3_; }
  VersionId loop1_gpu() const { return v_loop1_gpu_; }
  VersionId loop1_smp() const { return v_loop1_smp_; }
  VersionId loop2_gpu() const { return v_loop2_gpu_; }
  VersionId loop2_smp() const { return v_loop2_smp_; }

  /// Final accumulated log-likelihood (real-compute mode, after run()).
  double likelihood() const;

  /// Sequential re-execution of the whole pipeline; must equal
  /// likelihood() exactly (same elementwise operations, same order).
  double reference_likelihood() const;

 private:
  Runtime& rt_;
  PbpiParams params_;
  std::size_t slice_elems_;
  std::size_t chunk_elems_;

  TaskTypeId t_loop1_ = kInvalidTaskType;
  TaskTypeId t_loop2_ = kInvalidTaskType;
  TaskTypeId t_loop3_ = kInvalidTaskType;
  VersionId v_loop1_gpu_ = kInvalidVersion;
  VersionId v_loop1_smp_ = kInvalidVersion;
  VersionId v_loop2_gpu_ = kInvalidVersion;
  VersionId v_loop2_smp_ = kInvalidVersion;

  std::vector<RegionId> site_regions_, partial_regions_, chunk_regions_;
  RegionId acc_region_ = 0;

  std::vector<std::vector<float>> sites_, partials_, chunks_;
  double acc_ = 0.0;

  void register_versions();
  void register_data();
};

}  // namespace versa::apps
