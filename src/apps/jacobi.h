// Jacobi heat-diffusion stencil — a fourth workload beyond the paper's
// three, exercising what the others do not: *array-section* dependences.
// Each slab task reads its own slab plus one-cell halo strips of its
// neighbours (Access::in_range on the neighbouring regions), so the
// byte-range dependence analyzer — not whole-region tracking — decides
// which tasks of consecutive sweeps may overlap.
//
// Domain: `cells` floats, ping-pong arrays A/B, split into `slabs` slab
// regions each. Every sweep submits one task per slab; hybrid mode gives
// each task a GPU and an SMP version, so the versioning scheduler can
// split sweeps across devices. Coherence remains slab-granular (a halo
// read moves the whole neighbouring slab), matching the object-granularity
// copies of the modelled runtime.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace versa::apps {

struct JacobiParams {
  std::size_t cells = 1 << 22;  ///< total domain cells (floats)
  std::size_t slabs = 16;
  std::size_t sweeps = 10;
  bool hybrid = true;           ///< GPU+SMP versions vs GPU-only
  bool real_compute = false;
  std::uint64_t data_seed = 17;
};

class JacobiApp {
 public:
  JacobiApp(Runtime& rt, JacobiParams params);

  void submit_all();
  void run();

  std::size_t task_count() const { return params_.sweeps * params_.slabs; }

  TaskTypeId task_type() const { return task_type_; }
  VersionId gpu_version() const { return v_gpu_; }
  VersionId smp_version() const { return v_smp_; }

  /// Real-compute mode: max |cell - reference| after run() (reference is a
  /// sequential sweep of the same update rule).
  double max_error() const;

  /// Real-compute mode: checksum of the final field (quick regression).
  double checksum() const;

 private:
  Runtime& rt_;
  JacobiParams params_;
  std::size_t slab_cells_;

  TaskTypeId task_type_ = kInvalidTaskType;
  VersionId v_gpu_ = kInvalidVersion;
  VersionId v_smp_ = kInvalidVersion;

  /// regions_[buffer][slab]; buffer 0 = A, 1 = B.
  std::vector<RegionId> regions_[2];
  std::vector<std::vector<float>> data_[2];
  std::vector<float> initial_;  ///< real mode: copy for the reference

  void register_versions();
  void register_slabs();

  /// Access list of the task updating `slab` from buffer `src` into
  /// buffer 1-src: in own slab + neighbour halo strips, out own dst slab.
  AccessList slab_accesses(std::size_t slab, int src) const;
};

}  // namespace versa::apps
