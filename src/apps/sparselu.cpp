#include "apps/sparselu.h"

#include <cmath>

#include "apps/kernels.h"
#include "common/check.h"
#include "common/random.h"
#include "machine/kernel_models.h"

namespace versa::apps {

SparseLuApp::SparseLuApp(Runtime& rt, SparseLuParams params)
    : rt_(rt), params_(params) {
  VERSA_CHECK(params_.blocks >= 2);
  VERSA_CHECK(params_.block_size >= 4);
  VERSA_CHECK(params_.density > 0.0 && params_.density <= 1.0);
  present_.assign(params_.blocks * params_.blocks, false);
  regions_.assign(params_.blocks * params_.blocks, 0);
  if (params_.real_compute) {
    data_.resize(params_.blocks * params_.blocks);
  }
  register_versions();
  register_granularity();
  build_pattern();
}

std::size_t SparseLuApp::index(std::size_t i, std::size_t j) const {
  VERSA_DCHECK(i < params_.blocks && j < params_.blocks);
  return i * params_.blocks + j;
}

bool SparseLuApp::exists(std::size_t i, std::size_t j) const {
  return present_[index(i, j)];
}

void SparseLuApp::materialize(std::size_t i, std::size_t j, bool randomize) {
  VERSA_CHECK(!exists(i, j));
  const std::size_t bs = params_.block_size;
  void* ptr = nullptr;
  if (params_.real_compute) {
    std::vector<float>& block = data_[index(i, j)];
    block.assign(bs * bs, 0.0f);
    if (randomize) {
      // Deterministic per-block stream so the pattern seed and the data
      // seed fully define the matrix.
      Rng rng(params_.data_seed ^ (index(i, j) * 0x9e3779b97f4a7c15ull));
      for (float& value : block) {
        value = static_cast<float>(rng.uniform(-0.5, 0.5));
      }
      if (i == j) {
        for (std::size_t d = 0; d < bs; ++d) {
          block[d * bs + d] += static_cast<float>(bs) * 2.0f;
        }
      }
    }
    ptr = block.data();
  }
  regions_[index(i, j)] = rt_.register_data(
      "A[" + std::to_string(i) + "," + std::to_string(j) + "]",
      bs * bs * sizeof(float), ptr);
  present_[index(i, j)] = true;
  ++live_blocks_;
}

void SparseLuApp::build_pattern() {
  Rng rng(params_.pattern_seed);
  for (std::size_t i = 0; i < params_.blocks; ++i) {
    for (std::size_t j = 0; j < params_.blocks; ++j) {
      const bool wanted =
          i == j || rng.next_double() < params_.density;
      if (wanted) {
        materialize(i, j, /*randomize=*/true);
      }
    }
  }
  initial_blocks_ = live_blocks_;
}

void SparseLuApp::register_versions() {
  const std::size_t bs = params_.block_size;
  const double flops_lu0 = 2.0 / 3.0 * bs * bs * bs;
  const double flops_panel = 1.0 * bs * bs * bs;
  const double flops_bmod = 2.0 * bs * bs * bs;

  // Effective rates: GPU panels at CUBLAS-class speed, SMP at one-core
  // CBLAS speed; lu0 is latency-bound on GPU so its advantage is smaller.
  const auto gpu_cost = [](double flops, double rate) {
    return make_constant_cost(flops / rate);
  };

  t_lu0_ = rt_.declare_task("lu0");
  const TaskFn lu0_body = [bs](TaskContext& ctx) {
    auto* a = static_cast<float*>(ctx.arg(0));
    if (a == nullptr) return;
    AccessWitness(ctx).read_write(0);
    kernels::lu0_block(a, bs);
  };
  rt_.add_version(t_lu0_, DeviceKind::kCuda, "gpu", lu0_body,
                  gpu_cost(flops_lu0, 40e9));
  if (params_.hybrid) {
    rt_.add_version(t_lu0_, DeviceKind::kSmp, "smp", lu0_body,
                    gpu_cost(flops_lu0, 6e9));
  }

  t_fwd_ = rt_.declare_task("fwd");
  const TaskFn fwd_body = [bs](TaskContext& ctx) {
    auto* diag = static_cast<const float*>(ctx.arg(0));
    auto* b = static_cast<float*>(ctx.arg(1));
    if (diag == nullptr) return;
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read_write(1);
    kernels::fwd_block(diag, b, bs);
  };
  rt_.add_version(t_fwd_, DeviceKind::kCuda, "gpu", fwd_body,
                  gpu_cost(flops_panel, 300e9));
  if (params_.hybrid) {
    rt_.add_version(t_fwd_, DeviceKind::kSmp, "smp", fwd_body,
                    gpu_cost(flops_panel, 7e9));
  }

  t_bdiv_ = rt_.declare_task("bdiv");
  const TaskFn bdiv_body = [bs](TaskContext& ctx) {
    auto* diag = static_cast<const float*>(ctx.arg(0));
    auto* b = static_cast<float*>(ctx.arg(1));
    if (diag == nullptr) return;
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read_write(1);
    kernels::bdiv_block(diag, b, bs);
  };
  rt_.add_version(t_bdiv_, DeviceKind::kCuda, "gpu", bdiv_body,
                  gpu_cost(flops_panel, 300e9));
  if (params_.hybrid) {
    rt_.add_version(t_bdiv_, DeviceKind::kSmp, "smp", bdiv_body,
                    gpu_cost(flops_panel, 7e9));
  }

  t_bmod_ = rt_.declare_task("bmod");
  const TaskFn bmod_body = [bs](TaskContext& ctx) {
    auto* a = static_cast<const float*>(ctx.arg(0));
    auto* b = static_cast<const float*>(ctx.arg(1));
    auto* c = static_cast<float*>(ctx.arg(2));
    if (a == nullptr) return;
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read(1);
    witness.read_write(2);
    kernels::bmod_block(a, b, c, bs);
  };
  rt_.add_version(t_bmod_, DeviceKind::kCuda, "gpu", bmod_body,
                  gpu_cost(flops_bmod, 500e9));
  if (params_.hybrid) {
    rt_.add_version(t_bmod_, DeviceKind::kSmp, "smp", bmod_body,
                    gpu_cost(flops_bmod, 7e9));
  }
}

void SparseLuApp::register_granularity() {
  if (rt_.granularity() == nullptr) return;
  const std::size_t bs = params_.block_size;

  // bmod dominates the factorization (one task per (i, k, j) triple) and
  // C row r depends only on A row r plus the full B block, so row-band
  // re-tiling is exact.
  t_bmod_band_ = rt_.declare_task("bmod_band");
  const TaskFn band_body = [bs](TaskContext& ctx) {
    auto* a = static_cast<const float*>(ctx.arg(0));
    auto* b = static_cast<const float*>(ctx.arg(1));
    auto* c = static_cast<float*>(ctx.arg(2));
    if (a == nullptr) return;
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read(1);
    witness.read_write(2);
    const std::size_t rows = ctx.arg_size(0) / (bs * sizeof(float));
    kernels::bmod_band(a, b, c, bs, rows);
  };
  rt_.add_version(t_bmod_band_, DeviceKind::kCuda, "gpu", band_body,
                  kernels::gemm_band_cost(bs, sizeof(float), 500e9, 0.0));
  if (params_.hybrid) {
    rt_.add_version(t_bmod_band_, DeviceKind::kSmp, "smp", band_body,
                    kernels::gemm_band_cost(bs, sizeof(float), 7e9, 0.0));
  }

  core::SplitRecipe split;
  split.child_type = t_bmod_band_;
  split.max_factor = 8;
  split.partition = core::row_band_partition(bs * sizeof(float));
  rt_.set_split_recipe(t_bmod_, std::move(split));
}

void SparseLuApp::submit_all() {
  if (params_.real_compute && original_.empty()) {
    original_ = data_;  // snapshot for the sequential reference
  }
  const std::size_t blocks = params_.blocks;
  for (std::size_t k = 0; k < blocks; ++k) {
    rt_.submit(t_lu0_, {Access::inout(regions_[index(k, k)])}, "lu0");
    ++submitted_tasks_;
    for (std::size_t j = k + 1; j < blocks; ++j) {
      if (!exists(k, j)) continue;
      rt_.submit(t_fwd_, {Access::in(regions_[index(k, k)]),
                          Access::inout(regions_[index(k, j)])},
                 "fwd");
      ++submitted_tasks_;
    }
    for (std::size_t i = k + 1; i < blocks; ++i) {
      if (!exists(i, k)) continue;
      rt_.submit(t_bdiv_, {Access::in(regions_[index(k, k)]),
                           Access::inout(regions_[index(i, k)])},
                 "bdiv");
      ++submitted_tasks_;
      for (std::size_t j = k + 1; j < blocks; ++j) {
        if (!exists(k, j)) continue;
        if (!exists(i, j)) {
          materialize(i, j, /*randomize=*/false);  // fill-in
        }
        rt_.submit(t_bmod_, {Access::in(regions_[index(i, k)]),
                             Access::in(regions_[index(k, j)]),
                             Access::inout(regions_[index(i, j)])},
                   "bmod");
        ++submitted_tasks_;
      }
    }
  }
}

void SparseLuApp::run() {
  submit_all();
  rt_.taskwait();
}

double SparseLuApp::max_error() const {
  VERSA_CHECK_MSG(params_.real_compute, "max_error needs real compute");
  const std::size_t blocks = params_.blocks;
  const std::size_t bs = params_.block_size;

  // Sequential replay on the snapshot with the identical block pattern
  // (fill-in re-derived the same way since submission order is fixed).
  std::vector<std::vector<float>> ref = original_;
  std::vector<bool> live(blocks * blocks, false);
  for (std::size_t i = 0; i < blocks * blocks; ++i) {
    live[i] = !ref[i].empty();
  }
  auto at = [&](std::size_t i, std::size_t j) -> std::vector<float>& {
    return ref[i * blocks + j];
  };
  for (std::size_t k = 0; k < blocks; ++k) {
    kernels::lu0_block(at(k, k).data(), bs);
    for (std::size_t j = k + 1; j < blocks; ++j) {
      if (live[k * blocks + j]) {
        kernels::fwd_block(at(k, k).data(), at(k, j).data(), bs);
      }
    }
    for (std::size_t i = k + 1; i < blocks; ++i) {
      if (!live[i * blocks + k]) continue;
      kernels::bdiv_block(at(k, k).data(), at(i, k).data(), bs);
      for (std::size_t j = k + 1; j < blocks; ++j) {
        if (!live[k * blocks + j]) continue;
        if (!live[i * blocks + j]) {
          at(i, j).assign(bs * bs, 0.0f);
          live[i * blocks + j] = true;
        }
        kernels::bmod_block(at(i, k).data(), at(k, j).data(),
                            at(i, j).data(), bs);
      }
    }
  }

  double worst = 0.0;
  for (std::size_t b = 0; b < blocks * blocks; ++b) {
    if (!present_[b]) continue;
    VERSA_CHECK(live[b]);
    const std::vector<float>& got = data_[b];
    const std::vector<float>& want = ref[b];
    for (std::size_t e = 0; e < got.size(); ++e) {
      worst = std::max(
          worst, std::fabs(static_cast<double>(got[e]) - want[e]));
    }
  }
  return worst;
}

}  // namespace versa::apps
