// Real (host) computational kernels used by the examples and the
// functional tests. Every "device version" of a task computes the same
// mathematical result with a different loop structure, standing in for
// CBLAS / CUBLAS / hand-written CUDA implementations: versions must be
// interchangeable, exactly as the paper requires of `implements` sets.
#pragma once

#include <cstddef>

namespace versa::kernels {

// --- double-precision GEMM tile: C += A * B (n x n, row-major) ----------
void dgemm_naive(const double* a, const double* b, double* c, std::size_t n);
/// Cache-blocked variant (the "optimized library" stand-in).
void dgemm_blocked(const double* a, const double* b, double* c,
                   std::size_t n);
/// Row-band sub-kernel (adaptive granularity splits): `a` and `c` point at
/// a band of `rows` consecutive rows of the tile, `b` is the full n x n
/// operand. C_band += A_band * B.
void dgemm_band(const double* a, const double* b, double* c, std::size_t n,
                std::size_t rows);

// --- single-precision tiled Cholesky block kernels (row-major, lower) ---
/// In-place Cholesky of a diagonal block: A = L * L^T, L kept in the lower
/// triangle (upper triangle is left untouched). Returns false if the block
/// is not positive definite.
bool spotrf_block(float* a, std::size_t n);

/// Off-diagonal panel solve: B <- B * L^-T, with L the lower-triangular
/// result of spotrf_block on the diagonal block.
void strsm_block(const float* l, float* b, std::size_t n);

/// Symmetric rank-k update of a diagonal block: C <- C - A * A^T
/// (full block updated; symmetry keeps the math simple).
void ssyrk_block(const float* a, float* c, std::size_t n);

/// General update: C <- C - A * B^T.
void sgemm_nt_block(const float* a, const float* b, float* c, std::size_t n);
/// Row-band variant: `a`/`c` cover `rows` consecutive rows, `b` is full.
void sgemm_nt_band(const float* a, const float* b, float* c, std::size_t n,
                   std::size_t rows);

// --- single-precision blocked sparse LU kernels (row-major) --------------
/// In-place LU of a diagonal block without pivoting (caller guarantees
/// diagonal dominance): L strictly below the diagonal (unit diagonal
/// implied), U on and above.
void lu0_block(float* a, std::size_t n);

/// Forward elimination of a row-panel block: B <- L^-1 * B, with L the
/// unit-lower factor stored in `diag`.
void fwd_block(const float* diag, float* b, std::size_t n);

/// Column-panel update: B <- B * U^-1, with U the upper factor in `diag`.
void bdiv_block(const float* diag, float* b, std::size_t n);

/// Trailing update: C <- C - A * B.
void bmod_block(const float* a, const float* b, float* c, std::size_t n);
/// Row-band variant: `a`/`c` cover `rows` consecutive rows, `b` is full.
void bmod_band(const float* a, const float* b, float* c, std::size_t n,
               std::size_t rows);

// --- PBPI-style likelihood arithmetic ------------------------------------
/// Per-site partial likelihood update over a slice: a smooth, strictly
/// positive transform keeping values in a stable range (MCMC-like shape,
/// no actual phylogenetics needed for the reproduction).
void pbpi_partial_likelihood(const float* sites, float* partials,
                             std::size_t count);

/// Accumulate log-likelihood over a partials slice.
double pbpi_accumulate(const float* partials, std::size_t count);

}  // namespace versa::kernels
