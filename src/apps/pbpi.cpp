#include "apps/pbpi.h"

#include <algorithm>

#include "apps/kernels.h"
#include "common/check.h"
#include "common/random.h"
#include "machine/kernel_models.h"

namespace versa::apps {

const char* to_string(PbpiVariant variant) {
  switch (variant) {
    case PbpiVariant::kSmp:
      return "pbpi-smp";
    case PbpiVariant::kGpu:
      return "pbpi-gpu";
    case PbpiVariant::kHybrid:
      return "pbpi-hyb";
  }
  return "?";
}

namespace {

// loop3 body: accumulate the log-likelihood over every chunk, then
// renormalize the chunks (which is what forces them back out to the GPUs
// on the next generation). Chunk args come first, the accumulator last.
void loop3_body(TaskContext& ctx, std::size_t chunk_count,
                std::size_t chunk_elems) {
  if (ctx.arg(0) == nullptr) return;
  auto* acc = static_cast<double*>(ctx.arg(chunk_count));
  double log_likelihood = 0.0;
  for (std::size_t c = 0; c < chunk_count; ++c) {
    auto* chunk = static_cast<float*>(ctx.arg(c));
    log_likelihood += kernels::pbpi_accumulate(chunk, chunk_elems);
    for (std::size_t e = 0; e < chunk_elems; ++e) {
      chunk[e] = 0.5f * (chunk[e] + 1.0f);
    }
  }
  *acc += log_likelihood;
}

}  // namespace

PbpiApp::PbpiApp(Runtime& rt, PbpiParams params) : rt_(rt), params_(params) {
  VERSA_CHECK(params_.slices >= 1 && params_.chunks >= 1);
  slice_elems_ = params_.sites_bytes / sizeof(float) / params_.slices;
  chunk_elems_ = params_.chunks_bytes / sizeof(float) / params_.chunks;
  VERSA_CHECK(slice_elems_ >= 1 && chunk_elems_ >= 1);
  register_versions();
  register_data();
}

void PbpiApp::register_versions() {
  using kernels::PbpiCosts;
  const std::size_t slice_elems = slice_elems_;
  const std::size_t chunk_elems = chunk_elems_;

  const TaskFn loop1_body = [slice_elems](TaskContext& ctx) {
    auto* sites = static_cast<const float*>(ctx.arg(0));
    auto* partials = static_cast<float*>(ctx.arg(1));
    if (sites == nullptr) return;
    kernels::pbpi_partial_likelihood(sites, partials, slice_elems);
  };
  const TaskFn loop2_body = [slice_elems, chunk_elems](TaskContext& ctx) {
    auto* partials = static_cast<const float*>(ctx.arg(0));
    auto* chunk = static_cast<float*>(ctx.arg(1));
    if (partials == nullptr) return;
    kernels::pbpi_partial_likelihood(partials, chunk,
                                     std::min(slice_elems, chunk_elems));
  };

  t_loop1_ = rt_.declare_task("pbpi_loop1");
  if (params_.variant != PbpiVariant::kSmp) {
    v_loop1_gpu_ =
        rt_.add_version(t_loop1_, DeviceKind::kCuda, "cuda", loop1_body,
                        make_constant_cost(PbpiCosts::kLoop1Gpu));
  }
  if (params_.variant != PbpiVariant::kGpu) {
    v_loop1_smp_ = rt_.add_version(t_loop1_, DeviceKind::kSmp, "smp",
                                   loop1_body,
                                   make_constant_cost(PbpiCosts::kLoop1Smp));
  }

  t_loop2_ = rt_.declare_task("pbpi_loop2");
  if (params_.variant != PbpiVariant::kSmp) {
    v_loop2_gpu_ =
        rt_.add_version(t_loop2_, DeviceKind::kCuda, "cuda", loop2_body,
                        make_constant_cost(PbpiCosts::kLoop2Gpu));
  }
  if (params_.variant != PbpiVariant::kGpu) {
    v_loop2_smp_ = rt_.add_version(t_loop2_, DeviceKind::kSmp, "smp",
                                   loop2_body,
                                   make_constant_cost(PbpiCosts::kLoop2Smp));
  }

  t_loop3_ = rt_.declare_task("pbpi_loop3");
  const std::size_t chunk_count = params_.chunks;
  rt_.add_version(
      t_loop3_, DeviceKind::kSmp, "smp",
      [chunk_count, chunk_elems](TaskContext& ctx) {
        loop3_body(ctx, chunk_count, chunk_elems);
      },
      make_constant_cost(kernels::PbpiCosts::kLoop3Smp));
}

void PbpiApp::register_data() {
  Rng rng(params_.data_seed);
  const std::uint64_t slice_bytes = slice_elems_ * sizeof(float);
  const std::uint64_t chunk_bytes = chunk_elems_ * sizeof(float);

  for (std::size_t s = 0; s < params_.slices; ++s) {
    void* sites_ptr = nullptr;
    void* partials_ptr = nullptr;
    if (params_.real_compute) {
      sites_.emplace_back(slice_elems_);
      for (float& value : sites_.back()) {
        value = static_cast<float>(rng.uniform(0.0, 2.0));
      }
      partials_.emplace_back(slice_elems_, 1.0f);
      sites_ptr = sites_.back().data();
      partials_ptr = partials_.back().data();
    }
    site_regions_.push_back(rt_.register_data(
        "sites[" + std::to_string(s) + "]", slice_bytes, sites_ptr));
    partial_regions_.push_back(rt_.register_data(
        "partials[" + std::to_string(s) + "]", slice_bytes, partials_ptr));
  }
  for (std::size_t c = 0; c < params_.chunks; ++c) {
    void* ptr = nullptr;
    if (params_.real_compute) {
      chunks_.emplace_back(chunk_elems_, 1.0f);
      ptr = chunks_.back().data();
    }
    chunk_regions_.push_back(rt_.register_data(
        "chunk[" + std::to_string(c) + "]", chunk_bytes, ptr));
  }
  acc_region_ = rt_.register_data("likelihood", sizeof(double),
                                  params_.real_compute ? &acc_ : nullptr);
}

void PbpiApp::submit_all() {
  for (std::size_t g = 0; g < params_.generations; ++g) {
    // loop1: update partials from the site data; reading the accumulator
    // serializes generations behind the previous loop3 (the MCMC chain).
    for (std::size_t s = 0; s < params_.slices; ++s) {
      rt_.submit(t_loop1_,
                 {Access::in(site_regions_[s]),
                  Access::inout(partial_regions_[s]),
                  Access::in(acc_region_)},
                 "loop1");
    }
    // loop2: refine chunks from their slice's partials.
    for (std::size_t c = 0; c < params_.chunks; ++c) {
      rt_.submit(t_loop2_,
                 {Access::in(partial_regions_[c % params_.slices]),
                  Access::inout(chunk_regions_[c])},
                 "loop2");
    }
    // loop3: accumulate + renormalize every chunk on the host.
    AccessList loop3_accesses;
    loop3_accesses.reserve(params_.chunks + 1);
    for (std::size_t c = 0; c < params_.chunks; ++c) {
      loop3_accesses.push_back(Access::inout(chunk_regions_[c]));
    }
    loop3_accesses.push_back(Access::inout(acc_region_));
    rt_.submit(t_loop3_, std::move(loop3_accesses), "loop3");
  }
}

void PbpiApp::run() {
  submit_all();
  rt_.taskwait();
}

double PbpiApp::likelihood() const {
  VERSA_CHECK_MSG(params_.real_compute, "likelihood needs real compute");
  return acc_;
}

double PbpiApp::reference_likelihood() const {
  VERSA_CHECK_MSG(params_.real_compute, "reference needs real compute");
  // Re-run the exact pipeline sequentially on private copies.
  std::vector<std::vector<float>> partials;
  std::vector<std::vector<float>> chunks;
  partials.reserve(params_.slices);
  for (std::size_t s = 0; s < params_.slices; ++s) {
    partials.emplace_back(slice_elems_, 1.0f);
  }
  chunks.reserve(params_.chunks);
  for (std::size_t c = 0; c < params_.chunks; ++c) {
    chunks.emplace_back(chunk_elems_, 1.0f);
  }
  double acc = 0.0;
  const std::size_t loop2_count = std::min(slice_elems_, chunk_elems_);
  for (std::size_t g = 0; g < params_.generations; ++g) {
    for (std::size_t s = 0; s < params_.slices; ++s) {
      kernels::pbpi_partial_likelihood(sites_[s].data(), partials[s].data(),
                                       slice_elems_);
    }
    for (std::size_t c = 0; c < params_.chunks; ++c) {
      kernels::pbpi_partial_likelihood(partials[c % params_.slices].data(),
                                       chunks[c].data(), loop2_count);
    }
    double log_likelihood = 0.0;
    for (std::size_t c = 0; c < params_.chunks; ++c) {
      log_likelihood += kernels::pbpi_accumulate(chunks[c].data(), chunk_elems_);
      for (std::size_t e = 0; e < chunk_elems_; ++e) {
        chunks[c][e] = 0.5f * (chunks[c][e] + 1.0f);
      }
    }
    acc += log_likelihood;
  }
  return acc;
}

}  // namespace versa::apps
