#include "apps/jacobi.h"

#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "machine/cost_model.h"

namespace versa::apps {
namespace {

/// One Jacobi sweep over [begin, end) of a domain of `n` cells:
/// dst[i] = (src[i-1] + 2 src[i] + src[i+1]) / 4, clamped at the borders.
void sweep_range(const float* src, float* dst, std::size_t begin,
                 std::size_t end, std::size_t n) {
  for (std::size_t i = begin; i < end; ++i) {
    const float left = i == 0 ? src[0] : src[i - 1];
    const float right = i + 1 == n ? src[n - 1] : src[i + 1];
    dst[i] = 0.25f * (left + 2.0f * src[i] + right);
  }
}

}  // namespace

JacobiApp::JacobiApp(Runtime& rt, JacobiParams params)
    : rt_(rt), params_(params) {
  VERSA_CHECK_MSG(params_.slabs >= 2, "need at least two slabs");
  VERSA_CHECK_MSG(params_.cells % params_.slabs == 0,
                  "cells must divide evenly into slabs");
  slab_cells_ = params_.cells / params_.slabs;
  VERSA_CHECK(slab_cells_ >= 2);
  register_versions();
  register_slabs();
}

void JacobiApp::register_versions() {
  const std::size_t slab_cells = slab_cells_;

  // Body: fixed clause shape [src own, left halo cell, right halo cell,
  // dst]. Border slabs pass their own edge cell as the halo, which
  // reproduces the clamped boundary condition exactly.
  const TaskFn body = [slab_cells](TaskContext& ctx) {
    auto* own = static_cast<const float*>(ctx.arg(0));
    if (own == nullptr) return;  // virtual-region (timing-only) run
    auto* left = static_cast<const float*>(ctx.arg(1));
    auto* right = static_cast<const float*>(ctx.arg(2));
    auto* dst = static_cast<float*>(ctx.arg(3));
    // Stitch the local window [left, own..., right]; the halo values must
    // be read before any neighbour's dst write, which the in-clauses on
    // the *source* buffer guarantee (ping-pong buffers never alias).
    for (std::size_t i = 0; i < slab_cells; ++i) {
      const float l = i == 0 ? *left : own[i - 1];
      const float r = i + 1 == slab_cells ? *right : own[i + 1];
      dst[i] = 0.25f * (l + 2.0f * own[i] + r);
    }
  };

  const std::uint64_t slab_bytes = slab_cells_ * sizeof(float);
  task_type_ = rt_.declare_task("jacobi_sweep");
  // GPU: bandwidth-bound at ~120 GB/s effective; SMP core ~6 GB/s.
  v_gpu_ = rt_.add_version(
      task_type_, DeviceKind::kCuda, "cuda", body,
      make_constant_cost(static_cast<double>(3 * slab_bytes) / 120e9));
  if (params_.hybrid) {
    v_smp_ = rt_.add_version(
        task_type_, DeviceKind::kSmp, "smp", body,
        make_constant_cost(static_cast<double>(3 * slab_bytes) / 6e9));
  }
}

void JacobiApp::register_slabs() {
  Rng rng(params_.data_seed);
  const std::uint64_t slab_bytes = slab_cells_ * sizeof(float);
  for (int buffer = 0; buffer < 2; ++buffer) {
    for (std::size_t s = 0; s < params_.slabs; ++s) {
      void* ptr = nullptr;
      if (params_.real_compute) {
        data_[buffer].emplace_back(slab_cells_, 0.0f);
        if (buffer == 0) {
          for (float& cell : data_[buffer].back()) {
            cell = static_cast<float>(rng.uniform(0.0, 100.0));
          }
        }
        ptr = data_[buffer].back().data();
      }
      regions_[buffer].push_back(rt_.register_data(
          std::string(buffer == 0 ? "A[" : "B[") + std::to_string(s) + "]",
          slab_bytes, ptr));
    }
  }
  if (params_.real_compute) {
    initial_.reserve(params_.cells);
    for (const auto& slab : data_[0]) {
      initial_.insert(initial_.end(), slab.begin(), slab.end());
    }
  }
}

AccessList JacobiApp::slab_accesses(std::size_t slab, int src) const {
  const std::uint64_t slab_bytes = slab_cells_ * sizeof(float);
  const std::uint64_t last_cell = slab_bytes - sizeof(float);
  AccessList accesses;
  accesses.push_back(Access::in(regions_[src][slab]));
  // Left halo: the last cell of the left neighbour — an array-section
  // dependence on one float. Border slabs self-reference their own edge
  // (clamped boundary).
  const std::size_t left = slab > 0 ? slab - 1 : slab;
  accesses.push_back(Access::in_range(regions_[src][left],
                                      slab > 0 ? last_cell : 0,
                                      sizeof(float)));
  // Right halo: the first cell of the right neighbour.
  const std::size_t right = slab + 1 < params_.slabs ? slab + 1 : slab;
  accesses.push_back(Access::in_range(
      regions_[src][right], slab + 1 < params_.slabs ? 0 : last_cell,
      sizeof(float)));
  accesses.push_back(Access::out(regions_[1 - src][slab]));
  return accesses;
}

void JacobiApp::submit_all() {
  int src = 0;
  for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
    for (std::size_t slab = 0; slab < params_.slabs; ++slab) {
      rt_.submit(task_type_, slab_accesses(slab, src), "sweep");
    }
    src = 1 - src;
  }
}

void JacobiApp::run() {
  submit_all();
  rt_.taskwait();
}

double JacobiApp::max_error() const {
  VERSA_CHECK_MSG(params_.real_compute, "max_error needs real compute");
  // Sequential reference on the flat initial field.
  std::vector<float> a = initial_;
  std::vector<float> b(a.size());
  for (std::size_t sweep = 0; sweep < params_.sweeps; ++sweep) {
    sweep_range(a.data(), b.data(), 0, a.size(), a.size());
    a.swap(b);
  }
  // Final data lives in buffer (sweeps % 2 == 0 ? 0 : 1).
  const int final_buffer = params_.sweeps % 2 == 0 ? 0 : 1;
  double worst = 0.0;
  for (std::size_t s = 0; s < params_.slabs; ++s) {
    const std::vector<float>& slab = data_[final_buffer][s];
    for (std::size_t i = 0; i < slab_cells_; ++i) {
      worst = std::max(
          worst, std::fabs(static_cast<double>(slab[i]) -
                           a[s * slab_cells_ + i]));
    }
  }
  return worst;
}

double JacobiApp::checksum() const {
  VERSA_CHECK_MSG(params_.real_compute, "checksum needs real compute");
  const int final_buffer = params_.sweeps % 2 == 0 ? 0 : 1;
  double sum = 0.0;
  for (const auto& slab : data_[final_buffer]) {
    for (const float cell : slab) {
      sum += cell;
    }
  }
  return sum;
}

}  // namespace versa::apps
