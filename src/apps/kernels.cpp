#include "apps/kernels.h"

#include <algorithm>
#include <cmath>

namespace versa::kernels {

void dgemm_naive(const double* a, const double* b, double* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = 0; k < n; ++k) {
        acc += a[i * n + k] * b[k * n + j];
      }
      c[i * n + j] = acc;
    }
  }
}

void dgemm_blocked(const double* a, const double* b, double* c,
                   std::size_t n) {
  constexpr std::size_t kBlock = 32;
  for (std::size_t ii = 0; ii < n; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, n);
    for (std::size_t kk = 0; kk < n; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, n);
      for (std::size_t jj = 0; jj < n; jj += kBlock) {
        const std::size_t j_end = std::min(jj + kBlock, n);
        for (std::size_t i = ii; i < i_end; ++i) {
          for (std::size_t k = kk; k < k_end; ++k) {
            const double aik = a[i * n + k];
            for (std::size_t j = jj; j < j_end; ++j) {
              c[i * n + j] += aik * b[k * n + j];
            }
          }
        }
      }
    }
  }
}


void dgemm_band(const double* a, const double* b, double* c, std::size_t n,
                std::size_t rows) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const double aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] += aik * b[k * n + j];
      }
    }
  }
}

bool spotrf_block(float* a, std::size_t n) {
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) {
      diag -= static_cast<double>(a[j * n + k]) * a[j * n + k];
    }
    if (diag <= 0.0) return false;
    const float ljj = static_cast<float>(std::sqrt(diag));
    a[j * n + j] = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double value = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        value -= static_cast<double>(a[i * n + k]) * a[j * n + k];
      }
      a[i * n + j] = static_cast<float>(value / ljj);
    }
  }
  return true;
}

void strsm_block(const float* l, float* b, std::size_t n) {
  // Solve X * L^T = B row by row: forward substitution against L's rows.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double value = b[i * n + j];
      for (std::size_t k = 0; k < j; ++k) {
        value -= static_cast<double>(b[i * n + k]) * l[j * n + k];
      }
      b[i * n + j] = static_cast<float>(value / l[j * n + j]);
    }
  }
}

void ssyrk_block(const float* a, float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = 0; k < n; ++k) {
        acc -= static_cast<double>(a[i * n + k]) * a[j * n + k];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void sgemm_nt_block(const float* a, const float* b, float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = 0; k < n; ++k) {
        acc -= static_cast<double>(a[i * n + k]) * b[j * n + k];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}


void sgemm_nt_band(const float* a, const float* b, float* c, std::size_t n,
                   std::size_t rows) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = c[i * n + j];
      for (std::size_t k = 0; k < n; ++k) {
        acc -= static_cast<double>(a[i * n + k]) * b[j * n + k];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

void lu0_block(float* a, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    const float pivot = a[k * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      a[i * n + k] /= pivot;
      const float lik = a[i * n + k];
      for (std::size_t j = k + 1; j < n; ++j) {
        a[i * n + j] -= lik * a[k * n + j];
      }
    }
  }
}

void fwd_block(const float* diag, float* b, std::size_t n) {
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = k + 1; i < n; ++i) {
      const float lik = diag[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        b[i * n + j] -= lik * b[k * n + j];
      }
    }
  }
}

void bdiv_block(const float* diag, float* b, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      b[i * n + k] /= diag[k * n + k];
      const float bik = b[i * n + k];
      for (std::size_t j = k + 1; j < n; ++j) {
        b[i * n + j] -= bik * diag[k * n + j];
      }
    }
  }
}

void bmod_block(const float* a, const float* b, float* c, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] -= aik * b[k * n + j];
      }
    }
  }
}


void bmod_band(const float* a, const float* b, float* c, std::size_t n,
               std::size_t rows) {
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      const float aik = a[i * n + k];
      for (std::size_t j = 0; j < n; ++j) {
        c[i * n + j] -= aik * b[k * n + j];
      }
    }
  }
}

void pbpi_partial_likelihood(const float* sites, float* partials,
                             std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    // Bounded positive transform mixing the site pattern into the partial:
    // stays in (0, 2], so repeated generations neither overflow nor vanish.
    const float mixed = 0.5f * partials[i] + 0.5f * sites[i];
    partials[i] = 1.0f + std::tanh(mixed - 1.0f);
    partials[i] = std::max(partials[i], 1e-6f);
  }
}

double pbpi_accumulate(const float* partials, std::size_t count) {
  double log_likelihood = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    log_likelihood += std::log(static_cast<double>(partials[i]));
  }
  return log_likelihood;
}

}  // namespace versa::kernels
