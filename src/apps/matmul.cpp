#include "apps/matmul.h"

#include <cmath>

#include "apps/kernels.h"
#include "common/check.h"
#include "common/random.h"
#include "machine/kernel_models.h"

namespace versa::apps {
namespace {

TaskFn make_gemm_body(std::size_t tile, bool blocked) {
  return [tile, blocked](TaskContext& ctx) {
    auto* a = static_cast<const double*>(ctx.arg(0));
    auto* b = static_cast<const double*>(ctx.arg(1));
    auto* c = static_cast<double*>(ctx.arg(2));
    if (a == nullptr) return;  // virtual regions: timing-only task
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read(1);
    witness.read_write(2);
    if (blocked) {
      kernels::dgemm_blocked(a, b, c, tile);
    } else {
      kernels::dgemm_naive(a, b, c, tile);
    }
  };
}

// Row-band sub-kernel body (split children): arg 0/2 point at a band of
// consecutive rows of the A/C tiles, arg 1 is the full B tile. The band
// row count is recovered from the resolved access size.
TaskFn make_band_body(std::size_t tile) {
  return [tile](TaskContext& ctx) {
    auto* a = static_cast<const double*>(ctx.arg(0));
    auto* b = static_cast<const double*>(ctx.arg(1));
    auto* c = static_cast<double*>(ctx.arg(2));
    if (a == nullptr) return;
    AccessWitness witness(ctx);
    witness.read(0);
    witness.read(1);
    witness.read_write(2);
    const std::size_t rows = ctx.arg_size(0) / (tile * sizeof(double));
    kernels::dgemm_band(a, b, c, tile, rows);
  };
}

// Fused body (coalesced siblings sharing one C tile): arguments are
// [A_1, B_1, ..., A_p, B_p, C]; each pair contributes one tile product.
TaskFn make_fused_body(std::size_t tile, bool blocked) {
  return [tile, blocked](TaskContext& ctx) {
    auto* c = static_cast<double*>(ctx.arg(ctx.arg_count() - 1));
    if (ctx.arg(0) == nullptr) return;
    AccessWitness witness(ctx);
    witness.read_write(ctx.arg_count() - 1);
    const std::size_t pairs = (ctx.arg_count() - 1) / 2;
    for (std::size_t p = 0; p < pairs; ++p) {
      auto* a = static_cast<const double*>(ctx.arg(2 * p));
      auto* b = static_cast<const double*>(ctx.arg(2 * p + 1));
      witness.read(2 * p);
      witness.read(2 * p + 1);
      if (blocked) {
        kernels::dgemm_blocked(a, b, c, tile);
      } else {
        kernels::dgemm_naive(a, b, c, tile);
      }
    }
  };
}

}  // namespace

MatmulApp::MatmulApp(Runtime& rt, MatmulParams params)
    : rt_(rt), params_(params) {
  VERSA_CHECK_MSG(params_.tile > 0 && params_.n % params_.tile == 0,
                  "matrix edge must be a multiple of the tile edge");
  tiles_ = params_.n / params_.tile;
  register_versions();
  register_granularity();
  register_tiles();
}

void MatmulApp::register_versions() {
  const std::size_t tile = params_.tile;
  const Duration oh = params_.launch_overhead;
  task_type_ = rt_.declare_task("matmul_tile");
  // Main implementation: CUBLAS DGEMM (the mm-gpu task of §V-B1).
  v_cublas_ = rt_.add_version(
      task_type_, DeviceKind::kCuda, "cublas", make_gemm_body(tile, true),
      kernels::add_launch_overhead(kernels::cublas_dgemm_tile(tile), oh));
  if (params_.hybrid) {
    v_cuda_ = rt_.add_version(
        task_type_, DeviceKind::kCuda, "cuda", make_gemm_body(tile, false),
        kernels::add_launch_overhead(kernels::hand_cuda_dgemm_tile(tile), oh));
    v_cblas_ = rt_.add_version(
        task_type_, DeviceKind::kSmp, "cblas", make_gemm_body(tile, true),
        kernels::add_launch_overhead(kernels::cblas_dgemm_tile(tile), oh));
  }
}

void MatmulApp::register_granularity() {
  if (rt_.granularity() == nullptr) return;
  const std::size_t tile = params_.tile;
  const Duration oh = params_.launch_overhead;
  const std::uint64_t row_bytes = tile * sizeof(double);

  // Child type: a row band of one tile product, same version set as the
  // parent so the versioning scheduler keeps its device choice per band.
  band_type_ = rt_.declare_task("matmul_band");
  rt_.add_version(
      band_type_, DeviceKind::kCuda, "cublas", make_band_body(tile),
      kernels::gemm_band_cost(tile, sizeof(double),
                              kernels::Throughput::kCublasDgemm, oh));
  if (params_.hybrid) {
    rt_.add_version(
        band_type_, DeviceKind::kCuda, "cuda", make_band_body(tile),
        kernels::gemm_band_cost(tile, sizeof(double),
                                kernels::Throughput::kHandCudaDgemm, oh));
    rt_.add_version(
        band_type_, DeviceKind::kSmp, "cblas", make_band_body(tile),
        kernels::gemm_band_cost(tile, sizeof(double),
                                kernels::Throughput::kCblasDgemmCore, oh));
  }

  core::SplitRecipe split;
  split.child_type = band_type_;
  split.max_factor = 8;
  // Row bands: C row i = f(A row i, full B), so splitting accesses 0 (A)
  // and 2 (C) into `factor` row bands while keeping B whole is exact.
  split.partition = core::row_band_partition(row_bytes);
  rt_.set_split_recipe(task_type_, std::move(split));

  // Fused type: several tile products accumulated into one shared C tile
  // in a single launch — arguments [A_1, B_1, ..., A_p, B_p, C].
  fused_type_ = rt_.declare_task("matmul_tile_x2");
  rt_.add_version(
      fused_type_, DeviceKind::kCuda, "cublas", make_fused_body(tile, true),
      kernels::gemm_fused_cost(tile, sizeof(double),
                               kernels::Throughput::kCublasDgemm, oh));
  if (params_.hybrid) {
    rt_.add_version(
        fused_type_, DeviceKind::kCuda, "cuda", make_fused_body(tile, false),
        kernels::gemm_fused_cost(tile, sizeof(double),
                                 kernels::Throughput::kHandCudaDgemm, oh));
    rt_.add_version(
        fused_type_, DeviceKind::kSmp, "cblas", make_fused_body(tile, true),
        kernels::gemm_fused_cost(tile, sizeof(double),
                                 kernels::Throughput::kCblasDgemmCore, oh));
  }

  core::FuseRecipe fuse;
  fuse.fused_type = fused_type_;
  fuse.window = 2;
  // Siblings are fusable when they accumulate into the same C range —
  // the k-loop of one (i, j) tile — so fusion only serializes products
  // that were already ordered by their inout dependence on C.
  fuse.can_fuse = [](const AccessList& last, const AccessList& next) {
    return last.size() == 3 && next.size() == 3 &&
           last[2].region == next[2].region &&
           last[2].offset == next[2].offset &&
           last[2].length == next[2].length;
  };
  fuse.fuse = [](const std::vector<AccessList>& lists) {
    AccessList fused;
    fused.reserve(2 * lists.size() + 1);
    for (const AccessList& list : lists) {
      fused.push_back(list[0]);
      fused.push_back(list[1]);
    }
    fused.push_back(lists.front()[2]);
    return fused;
  };
  rt_.set_fuse_recipe(task_type_, std::move(fuse));
}

void MatmulApp::register_tiles() {
  const std::size_t tile_elems = params_.tile * params_.tile;
  const std::uint64_t tile_bytes = tile_elems * sizeof(double);
  const std::size_t tile_count = tiles_ * tiles_;

  Rng rng(params_.data_seed);
  auto make_matrix = [&](const char* name, std::vector<RegionId>& regions,
                         std::vector<std::vector<double>>& data,
                         bool randomize) {
    regions.reserve(tile_count);
    for (std::size_t t = 0; t < tile_count; ++t) {
      void* ptr = nullptr;
      if (params_.real_compute) {
        data.emplace_back(tile_elems, 0.0);
        if (randomize) {
          for (double& value : data.back()) {
            value = rng.uniform(-1.0, 1.0);
          }
        }
        ptr = data.back().data();
      }
      regions.push_back(rt_.register_data(
          std::string(name) + "[" + std::to_string(t) + "]", tile_bytes, ptr));
    }
  };
  make_matrix("A", a_regions_, a_data_, true);
  make_matrix("B", b_regions_, b_data_, true);
  make_matrix("C", c_regions_, c_data_, false);
}

void MatmulApp::submit_all() {
  for (std::size_t i = 0; i < tiles_; ++i) {
    for (std::size_t j = 0; j < tiles_; ++j) {
      for (std::size_t k = 0; k < tiles_; ++k) {
        rt_.submit(task_type_,
                   {Access::in(a_regions_[i * tiles_ + k]),
                    Access::in(b_regions_[k * tiles_ + j]),
                    Access::inout(c_regions_[i * tiles_ + j])});
      }
    }
  }
}

void MatmulApp::run() {
  submit_all();
  rt_.taskwait();
}

double MatmulApp::total_flops() const {
  const double n = static_cast<double>(params_.n);
  return 2.0 * n * n * n;
}

double MatmulApp::max_error() const {
  VERSA_CHECK_MSG(params_.real_compute, "max_error needs real compute");
  const std::size_t tile = params_.tile;
  double worst = 0.0;
  // Recompute each C tile with the naive kernel from scratch and compare.
  std::vector<double> reference(tile * tile);
  for (std::size_t i = 0; i < tiles_; ++i) {
    for (std::size_t j = 0; j < tiles_; ++j) {
      std::fill(reference.begin(), reference.end(), 0.0);
      for (std::size_t k = 0; k < tiles_; ++k) {
        kernels::dgemm_naive(a_data_[i * tiles_ + k].data(),
                             b_data_[k * tiles_ + j].data(), reference.data(),
                             tile);
      }
      const std::vector<double>& computed = c_data_[i * tiles_ + j];
      for (std::size_t e = 0; e < reference.size(); ++e) {
        worst = std::max(worst, std::fabs(reference[e] - computed[e]));
      }
    }
  }
  return worst;
}

}  // namespace versa::apps
