// Tiled Cholesky factorization — the paper's second evaluation application
// (§V-B2): A = L * L^T on an n x n single-precision SPD matrix stored in
// `block` x `block` tiles (paper: n = 32768, block = 2048). Four annotated
// tasks: potrf, trsm, syrk, gemm. trsm/syrk/gemm are GPU-only; potrf comes
// in three variants matching the paper's application versions:
//   potrf-smp — CBLAS (SMP) implementation only,
//   potrf-gpu — MAGMA (GPU) implementation only,
//   potrf-hyb — both (the versioning scheduler chooses).
//
// potrf is the critical task: whole panels of the graph wait on it, so its
// placement drives the application's exploitable parallelism.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace versa::apps {

enum class PotrfVariant : std::uint8_t { kSmp, kGpu, kHybrid };

const char* to_string(PotrfVariant variant);

struct CholeskyParams {
  std::size_t n = 32768;    ///< matrix edge, elements
  std::size_t block = 2048; ///< block edge, elements
  PotrfVariant potrf = PotrfVariant::kHybrid;
  bool real_compute = false;
  std::uint64_t data_seed = 11;
  /// OmpSs priority clause on the potrf tasks: they gate whole panels of
  /// the task graph (§V-B2), so bumping them ahead of queued updates
  /// shortens the critical path (see bench_abl_priority).
  int potrf_priority = 0;
};

class CholeskyApp {
 public:
  CholeskyApp(Runtime& rt, CholeskyParams params);

  void submit_all();
  void run();

  /// n^3 / 3 — FLOPs of the factorization.
  double total_flops() const;

  std::size_t blocks_per_edge() const { return blocks_; }
  std::size_t task_count() const;

  TaskTypeId potrf_type() const { return t_potrf_; }
  TaskTypeId trsm_type() const { return t_trsm_; }
  TaskTypeId syrk_type() const { return t_syrk_; }
  TaskTypeId gemm_type() const { return t_gemm_; }
  /// Adaptive-granularity sub-kernel type (DESIGN.md §11): a row band of
  /// one gemm update. kInvalidTaskType when the controller is off.
  TaskTypeId gemm_band_type() const { return t_gemm_band_; }
  VersionId potrf_gpu_version() const { return v_potrf_gpu_; }
  VersionId potrf_smp_version() const { return v_potrf_smp_; }

  /// Real-compute mode: max |(L L^T)_ij - A_ij| over the lower triangle.
  double max_error() const;

 private:
  Runtime& rt_;
  CholeskyParams params_;
  std::size_t blocks_;
  TaskTypeId t_potrf_ = kInvalidTaskType;
  TaskTypeId t_trsm_ = kInvalidTaskType;
  TaskTypeId t_syrk_ = kInvalidTaskType;
  TaskTypeId t_gemm_ = kInvalidTaskType;
  TaskTypeId t_gemm_band_ = kInvalidTaskType;
  VersionId v_potrf_gpu_ = kInvalidVersion;
  VersionId v_potrf_smp_ = kInvalidVersion;

  /// Lower-triangle block storage: index via block_index(i, j), j <= i.
  std::vector<RegionId> regions_;
  std::vector<std::vector<float>> data_;
  std::vector<std::vector<float>> original_;  ///< real mode: A before run

  std::size_t block_index(std::size_t i, std::size_t j) const;
  void register_versions();
  void register_granularity();
  void register_blocks();
};

}  // namespace versa::apps
