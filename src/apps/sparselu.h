// Blocked sparse LU factorization — the classic StarSs/OmpSs benchmark
// (it appears in the original StarSs dependence-support paper the runtime
// model builds on). A matrix of `blocks` x `blocks` tiles, many of them
// empty, is factorized in place:
//
//   for k:  lu0(A[k][k])
//           fwd(A[k][k], A[k][j])      for present A[k][j], j > k
//           bdiv(A[k][k], A[i][k])     for present A[i][k], i > k
//           bmod(A[i][k], A[k][j], A[i][j])  for i,j > k where both
//                                            factors exist — allocating
//                                            A[i][j] on first touch
//
// The *fill-in* in bmod exercises something the dense apps cannot:
// regions registered dynamically between task submissions, exactly how
// the OmpSs SparseLU creates blocks at task-creation time. Tasks carry
// hybrid GPU+SMP versions; verification compares against a sequential
// replay of the identical blocked algorithm.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"

namespace versa::apps {

struct SparseLuParams {
  std::size_t blocks = 16;      ///< blocks per edge
  std::size_t block_size = 64;  ///< elements per block edge
  double density = 0.35;        ///< probability an off-diagonal block exists
  bool hybrid = true;           ///< GPU+SMP versions vs GPU-only
  bool real_compute = false;
  std::uint64_t pattern_seed = 23;
  std::uint64_t data_seed = 29;
};

class SparseLuApp {
 public:
  SparseLuApp(Runtime& rt, SparseLuParams params);

  /// Submit the whole factorization (allocates fill-in blocks as it goes).
  void submit_all();
  void run();

  std::size_t initial_block_count() const { return initial_blocks_; }
  std::size_t final_block_count() const { return live_blocks_; }
  std::size_t fill_in_count() const { return live_blocks_ - initial_blocks_; }
  std::size_t task_count() const { return submitted_tasks_; }

  TaskTypeId lu0_type() const { return t_lu0_; }
  TaskTypeId fwd_type() const { return t_fwd_; }
  TaskTypeId bdiv_type() const { return t_bdiv_; }
  TaskTypeId bmod_type() const { return t_bmod_; }
  /// Adaptive-granularity sub-kernel type (DESIGN.md §11): a row band of
  /// one bmod update. kInvalidTaskType when the controller is off.
  TaskTypeId bmod_band_type() const { return t_bmod_band_; }

  /// Real-compute mode: max |block - reference| over all live blocks,
  /// where the reference is a sequential replay of the same algorithm.
  double max_error() const;

 private:
  Runtime& rt_;
  SparseLuParams params_;
  std::size_t initial_blocks_ = 0;
  std::size_t live_blocks_ = 0;
  std::size_t submitted_tasks_ = 0;

  TaskTypeId t_lu0_ = kInvalidTaskType;
  TaskTypeId t_fwd_ = kInvalidTaskType;
  TaskTypeId t_bdiv_ = kInvalidTaskType;
  TaskTypeId t_bmod_ = kInvalidTaskType;
  TaskTypeId t_bmod_band_ = kInvalidTaskType;

  /// kInvalidRegion-like sentinel: 0 is a valid region id, so presence is
  /// tracked separately.
  std::vector<bool> present_;
  std::vector<RegionId> regions_;
  std::vector<std::vector<float>> data_;      // real mode storage
  std::vector<std::vector<float>> original_;  // pre-run copy for reference

  std::size_t index(std::size_t i, std::size_t j) const;
  bool exists(std::size_t i, std::size_t j) const;

  /// Allocate + register block (i, j); fill-in blocks start at zero.
  void materialize(std::size_t i, std::size_t j, bool randomize);

  void register_versions();
  void register_granularity();
  void build_pattern();
};

}  // namespace versa::apps
