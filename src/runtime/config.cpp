#include "runtime/config.h"

#include <cstdlib>

#include "common/log.h"

namespace versa {

RuntimeConfig apply_env_overrides(RuntimeConfig config) {
  if (const char* name = std::getenv("VERSA_SCHEDULER")) {
    config.scheduler = name;
  }
  if (const char* lambda = std::getenv("VERSA_LAMBDA")) {
    const long value = std::strtol(lambda, nullptr, 10);
    if (value >= 1) {
      config.profile.lambda = static_cast<std::uint32_t>(value);
    } else {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_LAMBDA=" << lambda;
    }
  }
  if (const char* prefetch = std::getenv("VERSA_PREFETCH")) {
    config.prefetch = std::string(prefetch) != "0";
  }
  if (const char* seed = std::getenv("VERSA_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  if (const char* path = std::getenv("VERSA_PROFILE_LOAD")) {
    config.profile_load_path = path;
  }
  if (const char* path = std::getenv("VERSA_PROFILE_SAVE")) {
    config.profile_save_path = path;
  }
  if (const char* drift = std::getenv("VERSA_DRIFT")) {
    config.profile.drift.enabled = std::string(drift) != "0";
  }
  if (const char* threshold = std::getenv("VERSA_DRIFT_THRESHOLD")) {
    const double value = std::strtod(threshold, nullptr);
    if (value > 0.0) {
      config.profile.drift.threshold = value;
    } else {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_DRIFT_THRESHOLD="
                       << threshold;
    }
  }
  if (const char* trace = std::getenv("VERSA_SCHED_TRACE")) {
    config.sched_trace = std::string(trace) != "0";
  }
  if (const char* granularity = std::getenv("VERSA_GRANULARITY")) {
    if (!core::parse_granularity(granularity, config.granularity)) {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_GRANULARITY="
                       << granularity;
    }
  }
  if (const char* mode = std::getenv("VERSA_SANITIZE")) {
    if (!sanitize::parse_sanitize_mode(mode, config.sanitize.mode)) {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_SANITIZE=" << mode;
    }
  }
  if (const char* budget = std::getenv("VERSA_PREFETCH_BUDGET")) {
    char* end = nullptr;
    const unsigned long long value = std::strtoull(budget, &end, 10);
    if (end != budget && *end == '\0') {
      config.prefetch_budget = value;
    } else {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_PREFETCH_BUDGET=" << budget;
    }
  }
  if (const char* retries = std::getenv("VERSA_READ_RETRIES")) {
    char* end = nullptr;
    const long value = std::strtol(retries, &end, 10);
    if (end != retries && *end == '\0' && value >= 0) {
      config.consistent_read_retries = static_cast<int>(value);
    } else {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_READ_RETRIES=" << retries;
    }
  }
  return config;
}

}  // namespace versa
