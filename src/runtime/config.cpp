#include "runtime/config.h"

#include <cstdlib>

#include "common/log.h"

namespace versa {

RuntimeConfig apply_env_overrides(RuntimeConfig config) {
  if (const char* name = std::getenv("VERSA_SCHEDULER")) {
    config.scheduler = name;
  }
  if (const char* lambda = std::getenv("VERSA_LAMBDA")) {
    const long value = std::strtol(lambda, nullptr, 10);
    if (value >= 1) {
      config.profile.lambda = static_cast<std::uint32_t>(value);
    } else {
      VERSA_LOG(kWarn) << "ignoring invalid VERSA_LAMBDA=" << lambda;
    }
  }
  if (const char* prefetch = std::getenv("VERSA_PREFETCH")) {
    config.prefetch = std::string(prefetch) != "0";
  }
  if (const char* seed = std::getenv("VERSA_SEED")) {
    config.seed = std::strtoull(seed, nullptr, 10);
  }
  return config;
}

}  // namespace versa
