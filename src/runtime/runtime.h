// The versa runtime facade — the OmpSs-like public API.
//
// Typical use (mirrors the pragma annotations of the paper's Figures 1-4):
//
//   Machine machine = make_minotauro_node(8, 2);
//   Runtime rt(machine, config);
//
//   // "#pragma omp task inout(...) input(...)" + "implements" versions:
//   TaskTypeId matmul = rt.declare_task("matmul_tile");
//   rt.add_version(matmul, DeviceKind::kCuda, "cublas", body, cost);
//   rt.add_version(matmul, DeviceKind::kCuda, "cuda",   body, cost);
//   rt.add_version(matmul, DeviceKind::kSmp,  "cblas",  body, cost);
//
//   RegionId a = rt.register_data("A", bytes, ptr);
//   rt.submit(matmul, {Access::in(a), Access::in(b), Access::inout(c)});
//   rt.taskwait();
//
// Thread-safety: submit/taskwait are master-thread calls; task bodies may
// submit nested tasks. The runtime serializes internal state with one
// annotated recursive lock of class kLockRankRuntime (mutex_). Scheduler
// *decision* state therefore needs no locking of its own, as stated in the
// Scheduler contract; the dequeue fast path is the exception and carries
// its own locks (DESIGN.md §9). The graph, analyzer and registry
// aggregates are runtime-lock serialized through the REQUIRES annotations
// on the ExecutorPort accessors; the scalar result fields are
// GUARDED_BY(mutex_) directly. The directory is the deliberate exception:
// it synchronizes itself (sharded data/data.shard classes), so lookups,
// transfer_cost pricing, and prefetch acquires run WITHOUT the runtime
// lock — its accessors carry no runtime capability.
#pragma once

#include <memory>
#include <string>

#include "data/directory.h"
#include "exec/executor.h"
#include "machine/machine.h"
#include "perf/run_stats.h"
#include "profile/profile_store.h"
#include "runtime/config.h"
#include "sched/scheduler.h"
#include "task/dependency_analyzer.h"
#include "task/task_graph.h"
#include "task/version_registry.h"
#include "util/annotated_sync.h"

namespace versa {

namespace core {
class FairShareInterleaver;
}

class Runtime final : public SchedulerContext, public ExecutorPort {
 public:
  /// The machine is borrowed and must outlive the runtime.
  Runtime(const Machine& machine, RuntimeConfig config = {});
  ~Runtime() override;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // --- task-type / version registration (the `implements` surface) ------
  TaskTypeId declare_task(std::string name);
  VersionId add_version(TaskTypeId type, DeviceKind device, std::string name,
                        TaskFn fn = nullptr, CostModelPtr cost = nullptr);

  // --- data registration -------------------------------------------------
  /// Register application data the runtime manages across memory spaces.
  /// `host_ptr` may be null for virtual (simulation-only) regions.
  RegionId register_data(std::string name, std::uint64_t size,
                         void* host_ptr = nullptr);

  /// Stop managing a region (dynamic workloads freeing blocks). Every
  /// unfinished task touching it must have completed — call after a
  /// taskwait covering its last use. Dirty device copies are discarded;
  /// taskwait_on(region) first if the host copy matters.
  void unregister_data(RegionId region);

  // --- task submission and synchronization --------------------------------
  /// Submit one task instance (function-call analogue of an annotated
  /// task). Dependences derive from `accesses`; readiness may be immediate.
  /// `priority` maps to the OmpSs priority clause: higher-priority tasks
  /// overtake lower-priority ones inside worker queues.
  TaskId submit(TaskTypeId type, AccessList accesses, std::string label = {},
                int priority = 0);

  /// Service-mode submission options (DESIGN.md §10). `graph` must come
  /// from open_graph() (or stay kDefaultGraph). `regranulate` lets a
  /// caller pin one submission to its declared tiling even when the
  /// granularity controller is active (DESIGN.md §11).
  struct SubmitOptions {
    GraphId graph = kDefaultGraph;
    int priority = 0;
    std::string label;
    bool regranulate = true;
  };
  TaskId submit(TaskTypeId type, AccessList accesses, SubmitOptions options);

  // --- adaptive granularity (DESIGN.md §11) -------------------------------
  /// The split/fuse controller, or nullptr when --granularity=off (the
  /// default). Mutable controller state is runtime-lock serialized; read
  /// stats()/breakdown() quiescent (after waits).
  core::GranularityController* granularity() { return granularity_.get(); }
  const core::GranularityController* granularity() const {
    return granularity_.get();
  }

  /// Register how `type` re-tiles / coalesces (see granularity.h). No-ops
  /// when the controller is off, so apps can register unconditionally
  /// without perturbing figure runs.
  void set_split_recipe(TaskTypeId type, core::SplitRecipe recipe);
  void set_fuse_recipe(TaskTypeId type, core::FuseRecipe recipe);

  // --- dependence-spec sanitizer (DESIGN.md §12) --------------------------
  /// The access sanitizer, or nullptr when --sanitize=off (the default:
  /// nothing is constructed, no shadow state exists). Read its report
  /// quiescent (after waits).
  sanitize::AccessSanitizer* sanitizer() { return sanitizer_.get(); }
  const sanitize::AccessSanitizer* sanitizer() const {
    return sanitizer_.get();
  }

  // --- service mode (multi-graph roots) -----------------------------------
  /// Open an independent graph root owned by `tenant`. Tasks submitted
  /// with SubmitOptions{graph} are tracked per graph: wait_graph(graph)
  /// returns when exactly that graph's tasks have finished, regardless of
  /// other tenants' in-flight work.
  GraphId open_graph(TenantId tenant = kDefaultTenant);

  /// Block until every task of `graph` finished. No flush: service-mode
  /// graphs operate on virtual regions (the master-level taskwait()
  /// remains the flushing barrier for single-graph programs).
  void wait_graph(GraphId graph);

  /// Install (or clear, with nullptr) the weighted fair-share dispatch
  /// gate. The gate is borrowed and must outlive every graph submitted
  /// while it is installed; install before submitting service graphs.
  /// Assumes non-nested graphs — see fair_share.h.
  void set_fair_share(core::FairShareInterleaver* gate);

  /// Seed the scheduler's profile table from serialized native-store text
  /// (the service warm-start cache path). kMissing when the scheduler has
  /// no profile table or `text` is empty.
  ProfileLoadResult import_profile_text(const std::string& text);

  /// Serialized native-store text of the learned profile (empty when the
  /// scheduler has no profile table). Call quiescent (e.g. after waits).
  std::string export_profile_text() const;

  /// Barrier: wait for every task, then flush dirty device data to host.
  void taskwait();

  /// Barrier without flushing remote copies (taskwait noflush).
  void taskwait_noflush();

  /// Block until the last writer of `region` finished, then flush just
  /// that region (taskwait on(...)).
  void taskwait_on(RegionId region);

  // --- results ------------------------------------------------------------
  /// Makespan: last task finish or flush completion (virtual seconds under
  /// the sim backend, wall seconds otherwise).
  Time elapsed() const;

  TransferStats transfer_stats() const;

  /// Per-hop transfer timeline for the overlap analyzer (sim backend
  /// only; nullptr under the thread backend, whose copies are virtual).
  const std::vector<TransferRecord>* transfer_records() const;

  const RunStatsCollector& run_stats() const { return run_stats_; }

  /// Outcome of the warm-start profile load (kMissing when no load path
  /// was configured or the first task has not been submitted yet).
  /// Returned by value: the field is lock-guarded, so handing out a
  /// reference would leak it past the critical section.
  ProfileLoadResult profile_load_result() const;

  Scheduler& scheduler() { return *scheduler_; }
  const VersionRegistry& version_registry() const { return registry_; }
  DataDirectory& data_directory() { return directory_; }
  const TaskGraph& task_graph() const { return graph_; }
  const RuntimeConfig& config() const { return config_; }

  // --- SchedulerContext ---------------------------------------------------
  const Machine& machine() const override { return machine_; }
  const VersionRegistry& registry() const override { return registry_; }
  DataDirectory& directory() override { return directory_; }
  TaskGraph& graph() override { return graph_; }
  Time now() const override;
  /// Prefetch hook (SchedulerContext): always reached from a placement
  /// decision made under the runtime lock (task_ready/ready_batch_done or
  /// pop_task's pool fallback), and the executor side touches the
  /// directory, so the requirement is annotated like the port_* siblings.
  void task_assigned(TaskId task, WorkerId worker) override
      VERSA_REQUIRES(mutex_);

  // --- ExecutorPort -------------------------------------------------------
  Scheduler& port_scheduler() override { return *scheduler_; }
  TaskGraph& port_graph() override VERSA_REQUIRES(mutex_) { return graph_; }
  /// No runtime capability required: the directory is internally
  /// synchronized (see the class comment and ExecutorPort).
  DataDirectory& port_directory() override { return directory_; }
  const VersionRegistry& port_registry() override { return registry_; }
  const Machine& port_machine() override { return machine_; }
  void port_complete(TaskId task, WorkerId worker, Time start,
                     Time finish) override VERSA_REQUIRES(mutex_);
  void port_failed(TaskId task, WorkerId worker, Time start,
                   Time finish) override VERSA_REQUIRES(mutex_);
  versa::RecursiveMutex& port_mutex() override
      VERSA_RETURN_CAPABILITY(mutex_) {
    return mutex_;
  }
  sanitize::AccessSanitizer* port_sanitizer() override {
    return sanitizer_.get();
  }

  /// Transient attempt failures observed so far (failure injection).
  std::uint64_t failed_attempts() const;

 private:
  const Machine& machine_;
  RuntimeConfig config_;
  VersionRegistry registry_;
  DataDirectory directory_;
  DependencyAnalyzer analyzer_;
  TaskGraph graph_;
  RunStatsCollector run_stats_;
  /// The runtime lock (lock class kLockRankRuntime; see DESIGN.md §9).
  /// Recursive because task bodies running under the sim event loop may
  /// re-enter submit/taskwait. Mutable so quiescent const accessors
  /// (elapsed, failed_attempts) can lock honestly.
  mutable versa::RecursiveMutex mutex_{lock_order::kLockRankRuntime};
  std::unique_ptr<Scheduler> scheduler_;
  // Destroyed first (declared last): the thread backend joins its workers
  // in its destructor while the rest of the runtime is still alive.
  std::unique_ptr<Executor> executor_;
  Time makespan_ VERSA_GUARDED_BY(mutex_) = 0.0;
  std::uint64_t failed_attempts_ VERSA_GUARDED_BY(mutex_) = 0;
  bool profile_loaded_ VERSA_GUARDED_BY(mutex_) = false;
  ProfileLoadResult profile_load_ VERSA_GUARDED_BY(mutex_);

  /// Service-mode dispatch gate (borrowed; nullptr outside service mode).
  core::FairShareInterleaver* fair_share_ VERSA_GUARDED_BY(mutex_) = nullptr;

  /// Adaptive granularity controller (nullptr when off — the default —
  /// which keeps every submission byte-identical to the pre-controller
  /// path). Controller state is mutated only under the runtime lock.
  std::unique_ptr<core::GranularityController> granularity_;

  /// Dependence-spec sanitizer (nullptr when off — the default). The
  /// runtime-side hooks run under the runtime lock; the sanitizer's own
  /// mutexes (ranks 11/12/15) cover the executor-side witness path.
  std::unique_ptr<sanitize::AccessSanitizer> sanitizer_;

  /// The open fuse window: sibling submissions the controller decided to
  /// coalesce, created in the graph but with analyzer registration
  /// deferred until the window closes. At most one window is open at a
  /// time, and any submission that cannot join it flushes it first, so
  /// dependence registration stays in submission order.
  struct FuseWindow {
    bool open = false;
    TaskTypeId type = kInvalidTaskType;
    GraphId graph = kDefaultGraph;
    TaskId parent = kInvalidTask;
    int priority = 0;
    std::uint32_t limit = 0;
    std::vector<TaskId> members;
  };
  FuseWindow fuse_window_ VERSA_GUARDED_BY(mutex_);

  ProfileStore make_profile_store() const;
  void maybe_load_profile() VERSA_REQUIRES(mutex_);
  void maybe_save_profile();
  /// Register `task` with the analyzer, wire its dependence edges, and
  /// release it if it is already ready (the tail of every submission
  /// path: plain, split children, fused hosts).
  void register_and_release(Task& task) VERSA_REQUIRES(mutex_);
  /// The granularity hook inside submit(): may split the submission into
  /// children or park it in the fuse window. Returns true with `out` set
  /// when it consumed the submission; false lets the plain path proceed.
  bool granular_submit(TaskTypeId type, AccessList& accesses,
                       std::uint64_t data_set_size, SubmitOptions& options,
                       TaskId& out) VERSA_REQUIRES(mutex_);
  /// Close the open fuse window: one member registers as-is, several fold
  /// into the first (the host) via the recipe and the rest retire as
  /// stubs. Called from submissions that cannot join the window and from
  /// every barrier (taskwait*, wait_graph, unregister_data).
  void flush_fuse_window() VERSA_REQUIRES(mutex_);
  /// Max-min gap of the per-worker busy estimates (the split rule's
  /// imbalance term). Reads the scheduler account (rank 20) from under
  /// the runtime lock (rank 10), respecting the lock order.
  Duration busy_spread() const VERSA_REQUIRES(mutex_);
  /// Record a granularity decision into the shared decision trace.
  void trace_granularity(core::TraceEventKind kind, TaskId task,
                         TenantId tenant, TaskTypeId type, std::uint64_t size,
                         Duration spread, std::uint32_t children)
      VERSA_REQUIRES(mutex_);
  void release_ready(const std::vector<TaskId>& ready) VERSA_REQUIRES(mutex_);
  /// Hand `batch` (already gate-approved when a gate is installed) to the
  /// scheduler as one ready batch and poke the executor.
  void dispatch_batch(const std::vector<TaskId>& batch) VERSA_REQUIRES(mutex_);
};

}  // namespace versa
