#include "runtime/runtime.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/log.h"
#include "exec/sim_executor.h"
#include "exec/thread_executor.h"
#include "profile/machine_signature.h"
#include "sched/core/fair_share.h"
#include "sched/scheduler_factory.h"
#include "sched/versioning_scheduler.h"

namespace versa {

Runtime::Runtime(const Machine& machine, RuntimeConfig config)
    : machine_(machine),
      config_(apply_env_overrides(std::move(config))),
      directory_(machine_) {
  scheduler_ = make_scheduler(config_.scheduler, config_.profile);
  VERSA_CHECK_MSG(scheduler_ != nullptr, "unknown scheduler name");
  scheduler_->attach(*this);
  if (config_.sched_trace) {
    scheduler_->decision_trace().enable(config_.sched_trace_capacity);
  }
  if (config_.granularity.mode != core::GranularityMode::kOff) {
    granularity_ =
        std::make_unique<core::GranularityController>(config_.granularity);
    // Auto mode reads its group means from the versioning profile; other
    // schedulers leave the pointer null, which makes auto inert (fixed
    // split factors still apply).
    if (auto* versioning =
            dynamic_cast<VersioningScheduler*>(scheduler_.get())) {
      granularity_->set_profile(&versioning->profile());
    }
  }
  if (config_.sanitize.mode != sanitize::SanitizeMode::kOff) {
    sanitizer_ = std::make_unique<sanitize::AccessSanitizer>(config_.sanitize);
  }

  switch (config_.backend) {
    case Backend::kSim: {
      SimExecutorConfig sim_config;
      sim_config.noise = config_.noise;
      sim_config.seed = config_.seed;
      sim_config.prefetch = config_.prefetch;
      sim_config.default_task_duration = config_.default_task_duration;
      sim_config.failure_rate = config_.failure_rate;
      sim_config.max_attempts = config_.max_attempts;
      executor_ = std::make_unique<SimExecutor>(machine_, sim_config);
      break;
    }
    case Backend::kThreads: {
      ThreadExecutorConfig thread_config;
      thread_config.emulate_costs = config_.emulate_costs;
      thread_config.time_scale = config_.emulation_time_scale;
      thread_config.prefetch_budget = config_.prefetch_budget;
      executor_ = std::make_unique<ThreadExecutor>(machine_, thread_config);
      break;
    }
  }
  directory_.set_consistent_read_retries(config_.consistent_read_retries);
  executor_->attach(*this);
  VERSA_LOG(kInfo) << "runtime up: " << machine_.summary() << ", scheduler="
                   << scheduler_->name();
}

Runtime::~Runtime() {
  // Join worker threads before anything else is torn down, then persist
  // the learned profile if requested.
  executor_.reset();
  maybe_save_profile();
}

TaskTypeId Runtime::declare_task(std::string name) {
  versa::RecursiveLockGuard lock(mutex_);
  return registry_.declare_task(std::move(name));
}

VersionId Runtime::add_version(TaskTypeId type, DeviceKind device,
                               std::string name, TaskFn fn,
                               CostModelPtr cost) {
  versa::RecursiveLockGuard lock(mutex_);
  return registry_.add_version(type, device, std::move(name), std::move(fn),
                               std::move(cost));
}

RegionId Runtime::register_data(std::string name, std::uint64_t size,
                                void* host_ptr) {
  versa::RecursiveLockGuard lock(mutex_);
  return directory_.register_region(std::move(name), size, host_ptr);
}

void Runtime::unregister_data(RegionId region) {
  versa::RecursiveLockGuard lock(mutex_);
  // Close any open fuse window first: its members are unregistered, and
  // the liveness scan below must see their final (possibly fused) form.
  flush_fuse_window();
  // Guard against use-after-free at the task level: no live task may still
  // reference the region. (Linear scan: deregistration is a coarse event,
  // typically after a taskwait.)
  for (const Task& task : graph_.tasks()) {
    if (task.state == TaskState::kFinished) continue;
    for (const Access& access : task.accesses) {
      VERSA_CHECK_MSG(access.region != region,
                      "unregistering a region with unfinished tasks");
    }
  }
  analyzer_.clear_region(region);
  if (sanitizer_ != nullptr) sanitizer_->on_region_unregistered(region);
  directory_.unregister_region(region);
}

ProfileStore Runtime::make_profile_store() const {
  return ProfileStore(
      registry_,
      compute_machine_signature(machine_, config_.profile_signature_token));
}

void Runtime::maybe_load_profile() {
  if (profile_loaded_) return;
  profile_loaded_ = true;
  if (config_.profile_load_path.empty() && config_.hints_load_path.empty()) {
    return;
  }
  auto* versioning = dynamic_cast<VersioningScheduler*>(scheduler_.get());
  if (versioning == nullptr) {
    VERSA_LOG(kWarn) << "profile/hints file ignored: scheduler has no "
                        "profile table";
    return;
  }
  const ProfileStore store = make_profile_store();
  // The legacy hints path is just another importer into the same store, so
  // the two hint formats and the binary store cannot diverge in how they
  // seed the profile table. When both paths are set, profile_load_path is
  // primary and its result is the one reported.
  bool primary = true;
  for (const std::string* path :
       {&config_.profile_load_path, &config_.hints_load_path}) {
    if (!path->empty()) {
      const ProfileLoadResult result =
          store.load(*path, versioning->mutable_profile());
      if (result.status == ProfileLoadStatus::kOk) {
        VERSA_LOG(kInfo) << "profile " << *path << ": warm start, "
                         << result.applied << " entries applied, "
                         << result.skipped << " skipped (" << result.message
                         << ")";
      }
      if (primary) profile_load_ = result;
      primary = false;
    }
  }
}

void Runtime::maybe_save_profile() {
  if (config_.profile_save_path.empty() && config_.hints_save_path.empty()) {
    return;
  }
  auto* versioning = dynamic_cast<VersioningScheduler*>(scheduler_.get());
  if (versioning == nullptr) return;
  const ProfileStore store = make_profile_store();
  if (!config_.profile_save_path.empty() &&
      !store.save(config_.profile_save_path, versioning->profile())) {
    VERSA_LOG(kWarn) << "could not save profile to "
                     << config_.profile_save_path;
  }
  if (!config_.hints_save_path.empty() &&
      !store.save(config_.hints_save_path, versioning->profile(),
                  config_.hints_save_path.size() >= 4 &&
                          config_.hints_save_path.compare(
                              config_.hints_save_path.size() - 4, 4,
                              ".xml") == 0
                      ? ProfileStore::Format::kXmlHints
                      : ProfileStore::Format::kTextHints)) {
    VERSA_LOG(kWarn) << "could not save hints to " << config_.hints_save_path;
  }
}

TaskId Runtime::submit(TaskTypeId type, AccessList accesses, std::string label,
                       int priority) {
  SubmitOptions options;
  options.priority = priority;
  options.label = std::move(label);
  return submit(type, std::move(accesses), std::move(options));
}

TaskId Runtime::submit(TaskTypeId type, AccessList accesses,
                       SubmitOptions options) {
  versa::RecursiveLockGuard lock(mutex_);
  maybe_load_profile();

  // Resolve open-ended lengths and compute the data-set size with every
  // region counted once (paper footnote 2).
  std::set<RegionId> seen;
  std::uint64_t data_set_size = 0;
  for (Access& access : accesses) {
    const RegionDesc& desc = directory_.region(access.region);
    if (access.length == 0) {
      VERSA_CHECK_MSG(access.offset < desc.size, "access offset out of range");
      access.length = desc.size - access.offset;
    }
    VERSA_CHECK_MSG(access.offset + access.length <= desc.size,
                    "access range exceeds region");
    if (seen.insert(access.region).second) {
      data_set_size += desc.size;
    }
  }

  // Adaptive granularity hook: may re-tile the submission into children
  // or park it in the fuse window. Absent (the default), the path below
  // is byte-identical to the pre-controller runtime.
  if (granularity_ != nullptr) {
    TaskId out = kInvalidTask;
    if (granular_submit(type, accesses, data_set_size, options, out)) {
      return out;
    }
  }

  Task& task = graph_.create_task(type, std::move(accesses), data_set_size,
                                  std::move(options.label), options.graph);
  task.priority = options.priority;
  task.submit_time = now();

  // Nested submission: attribute the child to the submitting task so a
  // taskwait inside that body can wait for exactly its children.
  const TaskId parent = executor_->current_task();
  if (parent != kInvalidTask) {
    task.parent = parent;
    ++graph_.task(parent).live_children;
  }

  register_and_release(task);
  return task.id;
}

void Runtime::register_and_release(Task& task) {
  std::vector<TaskId> preds;
  analyzer_.add_task(task.id, task.accesses, preds);
  if (sanitizer_ != nullptr) {
    sanitizer_->on_task_registered(task, preds, task.parent);
  }
  const std::uint32_t live = graph_.add_dependencies(task, preds);
  if (live == 0) {
    release_ready({task.id});
  }
}

Duration Runtime::busy_spread() const {
  const std::size_t workers = machine_.worker_count();
  if (workers == 0) return 0.0;
  Duration lo = scheduler_->estimated_busy(0);
  Duration hi = lo;
  for (WorkerId w = 1; w < workers; ++w) {
    const Duration busy = scheduler_->estimated_busy(w);
    lo = std::min(lo, busy);
    hi = std::max(hi, busy);
  }
  return hi - lo;
}

void Runtime::trace_granularity(core::TraceEventKind kind, TaskId task,
                                TenantId tenant, TaskTypeId type,
                                std::uint64_t size, Duration spread,
                                std::uint32_t children) {
  core::DecisionTrace& trace = scheduler_->decision_trace();
  if (!trace.enabled()) return;
  core::TraceEvent event;
  event.time = now();
  event.task = task;
  event.type = type;
  event.busy_term = spread;
  event.candidates = children;
  event.kind = kind;
  event.tenant = tenant;
  event.group = granularity_->group_key(size);
  event.children = children;
  trace.record(event);
}

bool Runtime::granular_submit(TaskTypeId type, AccessList& accesses,
                              std::uint64_t data_set_size,
                              SubmitOptions& options, TaskId& out) {
  const TaskId parent = executor_->current_task();
  std::uint32_t factor = 0;
  Duration spread = 0.0;
  core::GranularityDecision decision = core::GranularityDecision::kKeep;
  if (options.regranulate) {
    spread = busy_spread();
    decision = granularity_->decide(type, data_set_size, spread, factor);
  }

  // Window-ordering rule: a submission either joins the open fuse window
  // or flushes it before anything registers, so the analyzer sees tasks
  // in submission order and no dependence can bypass a parked member.
  const core::FuseRecipe* fuse =
      decision == core::GranularityDecision::kFuse
          ? granularity_->fuse_recipe(type)
          : nullptr;
  const bool joins =
      fuse != nullptr && fuse_window_.open && fuse_window_.type == type &&
      fuse_window_.graph == options.graph && fuse_window_.parent == parent &&
      fuse_window_.priority == options.priority &&
      fuse_window_.members.size() < fuse_window_.limit &&
      fuse->can_fuse(graph_.task(fuse_window_.members.back()).accesses,
                     accesses);
  if (!joins) flush_fuse_window();

  switch (decision) {
    case core::GranularityDecision::kKeep:
      return false;

    case core::GranularityDecision::kFuse: {
      // Create the member now — the caller gets a stable TaskId — but
      // defer analyzer registration to the window flush.
      Task& task = graph_.create_task(type, std::move(accesses),
                                      data_set_size, std::move(options.label),
                                      options.graph);
      task.priority = options.priority;
      task.submit_time = now();
      if (parent != kInvalidTask) {
        task.parent = parent;
        ++graph_.task(parent).live_children;
      }
      if (!fuse_window_.open) {
        fuse_window_.open = true;
        fuse_window_.type = type;
        fuse_window_.graph = options.graph;
        fuse_window_.parent = parent;
        fuse_window_.priority = options.priority;
        fuse_window_.limit = std::max(
            2u, std::min(fuse->window, granularity_->config().fuse_window));
        fuse_window_.members.clear();
      }
      fuse_window_.members.push_back(task.id);
      out = task.id;
      if (fuse_window_.members.size() >= fuse_window_.limit) {
        flush_fuse_window();
      }
      return true;
    }

    case core::GranularityDecision::kSplit: {
      const core::SplitRecipe* recipe = granularity_->split_recipe(type);
      std::vector<AccessList> parts;
      if (recipe == nullptr || !recipe->partition(accesses, factor, parts) ||
          parts.size() < 2) {
        // The recipe declined this instance (e.g. indivisible tile):
        // submit untouched.
        return false;
      }
      // Shell: keeps the original identity and dependence clauses but is
      // never registered with the analyzer nor released — its children
      // carry the dependences at byte granularity instead.
      Task& shell = graph_.create_task(type, std::move(accesses),
                                       data_set_size, std::move(options.label),
                                       options.graph);
      shell.priority = options.priority;
      shell.submit_time = now();
      if (parent != kInvalidTask) {
        shell.parent = parent;
        ++graph_.task(parent).live_children;
      }
      const TaskId shell_id = shell.id;
      shell.split_children = static_cast<std::uint32_t>(parts.size());
      shell.split_live = shell.split_children;

      std::vector<TaskId> ready;
      for (AccessList& part : parts) {
        std::set<RegionId> seen;
        std::uint64_t child_size = 0;
        for (const Access& access : part) {
          const RegionDesc& desc = directory_.region(access.region);
          VERSA_CHECK_MSG(
              access.length > 0 && access.offset < desc.size &&
                  access.offset + access.length <= desc.size,
              "split recipe produced an out-of-range access");
          // Child data-set sizes come from the access *lengths* (each
          // region once), not the full region sizes: different tilings
          // must land in different profile groups for the controller to
          // learn from both.
          if (seen.insert(access.region).second) child_size += access.length;
        }
        Task& child = graph_.create_task(recipe->child_type, std::move(part),
                                         child_size, std::string(),
                                         options.graph);
        child.priority = options.priority;
        child.submit_time = now();
        child.split_parent = shell_id;
        std::vector<TaskId> preds;
        analyzer_.add_task(child.id, child.accesses, preds);
        if (sanitizer_ != nullptr) {
          // The shell never registers; its children inherit the lineage
          // edge from the task whose body submitted the shell.
          sanitizer_->on_task_registered(child, preds,
                                         graph_.task(shell_id).parent);
        }
        if (graph_.add_dependencies(child, preds) == 0) {
          ready.push_back(child.id);
        }
      }
      trace_granularity(core::TraceEventKind::kSplit, shell_id,
                        graph_.task(shell_id).tenant, type, data_set_size,
                        spread, static_cast<std::uint32_t>(parts.size()));
      release_ready(ready);
      out = shell_id;
      return true;
    }
  }
  return false;
}

void Runtime::flush_fuse_window() {
  if (!fuse_window_.open) return;
  fuse_window_.open = false;
  std::vector<TaskId> members = std::move(fuse_window_.members);
  fuse_window_.members.clear();
  if (members.empty()) return;
  Task& host = graph_.task(members.front());
  if (members.size() == 1) {
    // A window of one fuses nothing: the member registers as submitted.
    register_and_release(host);
    return;
  }
  const core::FuseRecipe* recipe = granularity_->fuse_recipe(host.type);
  VERSA_CHECK(recipe != nullptr);
  std::vector<AccessList> lists;
  lists.reserve(members.size());
  for (TaskId id : members) lists.push_back(graph_.task(id).accesses);
  AccessList fused = recipe->fuse(lists);
  std::set<RegionId> seen;
  std::uint64_t fused_size = 0;
  for (Access& access : fused) {
    const RegionDesc& desc = directory_.region(access.region);
    if (access.length == 0) {
      VERSA_CHECK_MSG(access.offset < desc.size,
                      "fuse recipe produced an out-of-range access");
      access.length = desc.size - access.offset;
    }
    VERSA_CHECK_MSG(access.offset + access.length <= desc.size,
                    "fuse recipe produced an out-of-range access");
    if (seen.insert(access.region).second) fused_size += desc.size;
  }

  const Time stamp = now();
  for (std::size_t i = 1; i < members.size(); ++i) {
    Task& member = graph_.task(members[i]);
    member.fused_into = host.id;
    if (sanitizer_ != nullptr) {
      sanitizer_->on_task_absorbed(member.id, host.id);
    }
    graph_.finish_stub(member.id, stamp);
    if (member.parent != kInvalidTask) {
      Task& member_parent = graph_.task(member.parent);
      VERSA_CHECK(member_parent.live_children > 0);
      --member_parent.live_children;
    }
  }
  // The first member becomes the fused host; it remembers the pre-fusion
  // identity so completion can feed the controller at the original key.
  host.origin_type = host.type;
  host.origin_size = host.data_set_size;
  host.type = recipe->fused_type;
  host.accesses = std::move(fused);
  host.data_set_size = fused_size;
  host.fused_count = static_cast<std::uint32_t>(members.size() - 1);
  trace_granularity(core::TraceEventKind::kFuse, host.id, host.tenant,
                    host.origin_type, host.origin_size, 0.0,
                    static_cast<std::uint32_t>(members.size()));
  register_and_release(host);
}

void Runtime::release_ready(const std::vector<TaskId>& ready) {
  if (ready.empty()) return;
  if (fair_share_ == nullptr) {
    dispatch_batch(ready);
    return;
  }
  // Service mode: each ready task must clear the fair-share gate first.
  // Parked tasks stay kCreated and are handed back by on_complete() when
  // the weighted round-robin reaches their tenant.
  std::vector<TaskId> dispatch;
  dispatch.reserve(ready.size());
  for (TaskId id : ready) {
    Task& task = graph_.task(id);
    if (fair_share_->offer(task.tenant, id)) dispatch.push_back(id);
  }
  dispatch_batch(dispatch);
}

void Runtime::dispatch_batch(const std::vector<TaskId>& batch) {
  if (batch.empty()) return;
  // Bracket the batch: schedulers that buffer submissions stage the whole
  // batch and publish per-shard runs in ready_batch_done (one submit-mutex
  // round trip per worker instead of one per task).
  scheduler_->ready_batch_begin();
  for (TaskId id : batch) {
    Task& task = graph_.task(id);
    VERSA_CHECK(task.state == TaskState::kCreated);
    task.state = TaskState::kReady;
    task.ready_time = now();
    scheduler_->task_ready(task);
  }
  scheduler_->ready_batch_done();
  executor_->work_available();
}

void Runtime::port_complete(TaskId id, WorkerId worker, Time start,
                            Time finish) {
  // Annotated VERSA_REQUIRES(mutex_) in the header, like port_failed: the
  // reporting executor already holds the runtime lock (the thread backend
  // locks around the call; the sim event loop holds it for the whole
  // wait), and the analysis checks every caller against that declaration.
  Task& task = graph_.task(id);
  task.start_time = start;
  task.measured_duration = finish - start;

  std::vector<TaskId> newly_ready;
  graph_.mark_finished(id, finish, newly_ready);
  makespan_ = std::max(makespan_, finish);
  if (sanitizer_ != nullptr) {
    // Witnesses (if any) were recorded by the executor before this report;
    // the checker runs conformance and shadows the touched bytes now.
    sanitizer_->on_task_complete(task);
  }
  if (task.parent != kInvalidTask) {
    Task& parent = graph_.task(task.parent);
    VERSA_CHECK(parent.live_children > 0);
    --parent.live_children;
  }

  // Split lineage: accumulate the child's time on its shell; the last
  // child retires the shell and feeds the controller's reversal CUSUM at
  // the original granularity key.
  if (task.split_parent != kInvalidTask) {
    Task& shell = graph_.task(task.split_parent);
    shell.split_accum += task.measured_duration;
    VERSA_CHECK(shell.split_live > 0);
    if (--shell.split_live == 0) {
      graph_.finish_stub(shell.id, finish);
      if (shell.parent != kInvalidTask) {
        Task& shell_parent = graph_.task(shell.parent);
        VERSA_CHECK(shell_parent.live_children > 0);
        --shell_parent.live_children;
      }
      if (granularity_ != nullptr &&
          granularity_->record_split_outcome(shell.type, shell.data_set_size,
                                             shell.split_accum,
                                             shell.split_children)) {
        trace_granularity(core::TraceEventKind::kReversal, shell.id,
                          shell.tenant, shell.type, shell.data_set_size, 0.0,
                          shell.split_children);
      }
    }
  }
  // Fused host: one completion stands for fused_count + 1 submissions.
  if (granularity_ != nullptr && task.fused_count > 0) {
    if (granularity_->record_fuse_outcome(task.origin_type, task.origin_size,
                                          task.measured_duration,
                                          task.fused_count + 1)) {
      trace_granularity(core::TraceEventKind::kReversal, task.id, task.tenant,
                        task.origin_type, task.origin_size, 0.0,
                        task.fused_count + 1);
    }
  }

  scheduler_->task_completed(task, worker, task.measured_duration);
  run_stats_.on_complete(task.type, task.chosen_version,
                         task.measured_duration);
  if (fair_share_ == nullptr) {
    release_ready(newly_ready);
    return;
  }
  // Service mode: the completion frees one window slot — refill it from
  // parked queues (weighted round-robin across tenants) *before* offering
  // this task's successors, so a backlogged tenant's parked work competes
  // fairly with the completing tenant's dependence chain. Both sets go to
  // the scheduler as one batch.
  std::vector<TaskId> dispatch;
  fair_share_->on_complete(task.tenant, dispatch);
  for (TaskId succ : newly_ready) {
    Task& s = graph_.task(succ);
    if (fair_share_->offer(s.tenant, succ)) dispatch.push_back(succ);
  }
  dispatch_batch(dispatch);
}

void Runtime::port_failed(TaskId id, WorkerId worker, Time /*start*/,
                          Time finish) {
  Task& task = graph_.task(id);
  VERSA_CHECK(task.state == TaskState::kRunning);
  ++failed_attempts_;
  makespan_ = std::max(makespan_, finish);
  scheduler_->task_failed(task, worker);
  // Back to ready: the scheduler re-decides version and worker, now aware
  // (through its busy estimates) that the failed worker lost time.
  task.state = TaskState::kReady;
  task.ready_time = finish;
  scheduler_->ready_batch_begin();
  scheduler_->task_ready(task);
  scheduler_->ready_batch_done();
  executor_->work_available();
}

GraphId Runtime::open_graph(TenantId tenant) {
  versa::RecursiveLockGuard lock(mutex_);
  return graph_.open_graph(tenant);
}

void Runtime::wait_graph(GraphId graph) {
  if (granularity_ != nullptr) {
    // Parked fuse-window members would never run — close the window
    // before blocking on the graph.
    versa::RecursiveLockGuard lock(mutex_);
    flush_fuse_window();
  }
  executor_->wait_graph(graph);
}

void Runtime::set_fair_share(core::FairShareInterleaver* gate) {
  versa::RecursiveLockGuard lock(mutex_);
  fair_share_ = gate;
}

void Runtime::set_split_recipe(TaskTypeId type, core::SplitRecipe recipe) {
  versa::RecursiveLockGuard lock(mutex_);
  if (granularity_ != nullptr) {
    granularity_->set_split_recipe(type, std::move(recipe));
  }
}

void Runtime::set_fuse_recipe(TaskTypeId type, core::FuseRecipe recipe) {
  versa::RecursiveLockGuard lock(mutex_);
  if (granularity_ != nullptr) {
    granularity_->set_fuse_recipe(type, std::move(recipe));
  }
}

ProfileLoadResult Runtime::import_profile_text(const std::string& text) {
  versa::RecursiveLockGuard lock(mutex_);
  ProfileLoadResult result;
  if (text.empty()) return result;
  auto* versioning = dynamic_cast<VersioningScheduler*>(scheduler_.get());
  if (versioning == nullptr) {
    result.message = "scheduler has no profile table";
    return result;
  }
  return make_profile_store().import_text(text, versioning->mutable_profile());
}

std::string Runtime::export_profile_text() const {
  versa::RecursiveLockGuard lock(mutex_);
  const auto* versioning =
      dynamic_cast<const VersioningScheduler*>(scheduler_.get());
  if (versioning == nullptr) return {};
  return make_profile_store().serialize(versioning->profile());
}

void Runtime::task_assigned(TaskId task, WorkerId worker) {
  // Hand the executor a stable task reference (deque storage): the thread
  // backend keeps it in its prefetch-intent buffer past this call.
  executor_->task_queued(graph_.task(task), worker);
}

void Runtime::taskwait() {
  if (granularity_ != nullptr) {
    versa::RecursiveLockGuard lock(mutex_);
    flush_fuse_window();
  }
  const TaskId current = executor_->current_task();
  if (current != kInvalidTask) {
    // Inside a task body: children-scoped barrier, no global flush (the
    // enclosing master-level taskwait flushes).
    executor_->wait_children(current);
    return;
  }
  executor_->wait_all();
  versa::RecursiveLockGuard lock(mutex_);
  TransferList ops;
  directory_.flush_all(ops);
  makespan_ = std::max(makespan_, executor_->flush(ops));
}

void Runtime::taskwait_noflush() {
  if (granularity_ != nullptr) {
    versa::RecursiveLockGuard lock(mutex_);
    flush_fuse_window();
  }
  const TaskId current = executor_->current_task();
  if (current != kInvalidTask) {
    executor_->wait_children(current);
    return;
  }
  executor_->wait_all();
}

void Runtime::taskwait_on(RegionId region) {
  TaskId writer = kInvalidTask;
  {
    versa::RecursiveLockGuard lock(mutex_);
    if (granularity_ != nullptr) flush_fuse_window();
    // Latest writer = the largest task id among interval writers; the
    // analyzer does not expose it directly, so scan the graph tail. Tasks
    // are few enough (and this call rare enough) for a linear scan.
    for (const Task& task : graph_.tasks()) {
      if (task.state == TaskState::kFinished) continue;
      for (const Access& access : task.accesses) {
        if (access.region == region && writes(access.mode)) {
          writer = std::max(writer == kInvalidTask ? 0 : writer, task.id);
        }
      }
    }
  }
  if (writer != kInvalidTask) {
    executor_->wait_task(writer);
  }
  versa::RecursiveLockGuard lock(mutex_);
  TransferList ops;
  directory_.flush_region(region, ops);
  makespan_ = std::max(makespan_, executor_->flush(ops));
}

Time Runtime::now() const { return executor_->now(); }

Time Runtime::elapsed() const {
  versa::RecursiveLockGuard lock(mutex_);
  return makespan_;
}

std::uint64_t Runtime::failed_attempts() const {
  versa::RecursiveLockGuard lock(mutex_);
  return failed_attempts_;
}

ProfileLoadResult Runtime::profile_load_result() const {
  versa::RecursiveLockGuard lock(mutex_);
  return profile_load_;
}

TransferStats Runtime::transfer_stats() const { return directory_.stats(); }

const std::vector<TransferRecord>* Runtime::transfer_records() const {
  const auto* sim = dynamic_cast<const SimExecutor*>(executor_.get());
  return sim == nullptr ? nullptr : &sim->transfer_engine().records();
}

}  // namespace versa
