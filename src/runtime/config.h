// Runtime configuration. As in Nanos++, most knobs can also be set through
// environment variables so the same binary can be re-run under different
// schedulers without recompiling (§III):
//
//   VERSA_SCHEDULER        — scheduler name (fifo / dep-aware / affinity /
//                            versioning / versioning-locality)
//   VERSA_LAMBDA           — learning-phase threshold λ
//   VERSA_PREFETCH         — 0/1, transfer overlap + prefetch
//   VERSA_SEED             — simulation RNG seed
//   VERSA_PROFILE_LOAD     — warm-start profile path (store/hints/XML)
//   VERSA_PROFILE_SAVE     — persist the learned profile on shutdown
//   VERSA_DRIFT            — 0/1, drift-adaptive relearning
//   VERSA_DRIFT_THRESHOLD  — CUSUM alarm threshold (normalized units)
//   VERSA_SCHED_TRACE      — 0/1, record the scheduler decision trace
//   VERSA_GRANULARITY      — off | auto | N, adaptive task granularity
//   VERSA_SANITIZE         — off | spec | race, dependence-spec sanitizer
//   VERSA_PREFETCH_BUDGET  — bytes of in-flight placement-time prefetch
//                            allowed per memory space (0 = unlimited)
//   VERSA_READ_RETRIES     — bounded seqlock retries of the directory's
//                            consistent-read path before the writer-mutex
//                            fallback
#pragma once

#include <cstdint>
#include <string>

#include "sanitizer/sanitizer.h"
#include "sched/core/granularity.h"
#include "sched/profile_table.h"
#include "sim/noise.h"

namespace versa {

enum class Backend : std::uint8_t {
  kSim,      ///< discrete-event virtual time (paper figures)
  kThreads,  ///< real std::thread pool (functional runs)
};

struct RuntimeConfig {
  std::string scheduler = "versioning";
  ProfileConfig profile;
  Backend backend = Backend::kSim;

  /// Overlap data transfers with computation and prefetch task data as
  /// soon as tasks are assigned (§V-A enables both for all schedulers).
  bool prefetch = true;

  /// Thread backend: bytes of placement-time prefetch allowed in flight
  /// per memory space before further intents wait for running tasks to
  /// start (0 = unlimited). Bounds how far ahead of execution the
  /// dedicated prefetch thread stages data; intents over budget fall back
  /// to the dequeue-time drain. Ignored by the sim backend (its prefetch
  /// is virtual-time-modelled).
  std::uint64_t prefetch_budget = 0;

  /// Bounded retry count of DataDirectory::read_consistent before it
  /// falls back to the writer mutex (counted in the transfer stats).
  /// Plumbed into DataDirectory::set_consistent_read_retries.
  int consistent_read_retries = 8;

  sim::NoiseConfig noise;
  std::uint64_t seed = 42;

  /// Fallback virtual duration for versions without a cost model (sim).
  Duration default_task_duration = 1e-3;

  /// Failure injection (sim backend): per-attempt transient failure
  /// probability, and the attempt number at which success is forced.
  double failure_rate = 0.0;
  std::uint32_t max_attempts = 4;

  /// Thread backend: emulate modelled device speeds by sleeping each task
  /// to its cost model's duration (scaled by emulation_time_scale). This
  /// lets real-thread runs reproduce the simulated figures' *shape* in
  /// wall-clock time — simulated "GPU" workers really finish tasks faster
  /// than SMP workers, so the versioning scheduler learns the same
  /// ratios. Off by default (bodies run at native speed).
  bool emulate_costs = false;
  double emulation_time_scale = 1.0;

  /// Persistent profile store: loaded before the first task, saved at
  /// runtime shutdown. Load sniffs the content format (native store, text
  /// hints, XML hints); save picks the format from the extension (".xml",
  /// ".txt"/".hints", else the signed native store). Empty = disabled.
  std::string profile_load_path;
  std::string profile_save_path;

  /// Extra salt mixed into the machine signature — set it to a digest of
  /// the host calibration so re-calibrated installs reject stale stores.
  std::string profile_signature_token;

  /// Legacy hint files (§VII future work #3). Both route through the same
  /// ProfileStore import path as profile_load_path; saves here keep the
  /// historical format rule (".xml" → XML, anything else → text hints).
  std::string hints_load_path;
  std::string hints_save_path;

  /// Record the scheduling core's decision trace (ring of the last
  /// sched_trace_capacity events; see sched/core/decision_trace.h). Free
  /// when off; versa_run --sched-trace renders it after the run.
  bool sched_trace = false;
  std::size_t sched_trace_capacity = 1 << 16;

  /// Adaptive task granularity (DESIGN.md §11): off (default, the
  /// controller is not even constructed, keeping fixed-seed figures
  /// byte-identical), auto (profile-guided split/fuse with CUSUM
  /// reversal), or a fixed split factor. Parsed from --granularity /
  /// VERSA_GRANULARITY via core::parse_granularity.
  core::GranularityConfig granularity;

  /// Dependence-spec sanitizer (DESIGN.md §12): off (default — the checker
  /// is not constructed, no shadow state exists and figure runs stay
  /// byte-identical), spec (per-task witness-vs-declaration conformance),
  /// or race (spec + vector-clock determinacy-race detection over a
  /// sharded shadow-byte map). Parsed from --sanitize / VERSA_SANITIZE via
  /// sanitize::parse_sanitize_mode.
  sanitize::SanitizeConfig sanitize;
};

/// Overlay environment-variable overrides onto `config`.
RuntimeConfig apply_env_overrides(RuntimeConfig config);

}  // namespace versa
