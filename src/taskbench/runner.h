// Submitting a generated dependence graph through the ordinary
// Runtime/SubmitOptions API (DESIGN.md §14).
//
// Every family's edges cross exactly one timestep, so two region sets
// double-buffer the whole graph: node (t, i) writes buffer[t % 2][i] and
// reads its parents' buffer[(t-1) % 2][...] — each oracle edge becomes a
// real RAW dependence through the analyzer, the directory prices and
// moves the payload bytes, and the scheduler/granularity/service layers
// see a completely ordinary program. (The double-buffer also introduces
// the classic WAR/WAW anti-dependences between reuses of a buffer; those
// only ever *add* ordering, so the oracle-closure conformance check stays
// one-directional: every oracle edge must be respected.) The trivial
// family reads one immutable per-point region instead, keeping it truly
// dependence-free.
//
// Task compute cost is controlled two ways, matching the backends: the
// registered versions carry a constant cost model (the sim backend's
// virtual duration), and `spin_bodies` installs a busy-spin body of the
// same duration (the thread backend's real compute).
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/runtime.h"
#include "taskbench/graph_spec.h"

namespace versa::taskbench {

struct SubmitGraphOptions {
  /// Per-task compute cost: the constant cost model every registered
  /// version carries (sim virtual seconds), and the busy-spin duration
  /// when spin_bodies is set (thread-backend wall seconds).
  Duration task_cost = 1e-3;
  /// Install busy-spin task bodies (thread backend). Off by default: the
  /// sim backend models cost virtually and spinning would only burn the
  /// host CPU driving the simulation.
  bool spin_bodies = false;
  /// Service mode: submit into this graph root.
  GraphId graph = kDefaultGraph;
};

/// Declare the spec's task type and versions (one per device kind the
/// machine has workers for), register the double-buffer regions, and
/// submit every node in flat-id order. Returns the TaskId of each node,
/// indexed by flat node id. The caller owns synchronization (taskwait /
/// wait_graph).
std::vector<TaskId> submit_graph(Runtime& rt, const GraphSpec& spec,
                                 const SubmitGraphOptions& options = {});

/// Parallel efficiency of one measured run: the dependence-aware ideal
/// makespan max(total_work / workers, critical_path × cost) over the
/// measured makespan. 0 when elapsed is not positive.
double parallel_efficiency(const GraphOracle& oracle, Duration task_cost,
                           std::size_t workers, Duration elapsed);

}  // namespace versa::taskbench
