#include "taskbench/metg.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace versa::taskbench {

MetgResult metg_bisect(const EfficiencyFn& efficiency_at, Duration lo,
                       Duration hi, double target, double tolerance_factor) {
  VERSA_CHECK_MSG(lo > 0.0 && hi > lo, "metg_bisect: need 0 < lo < hi");
  VERSA_CHECK_MSG(tolerance_factor > 1.0,
                  "metg_bisect: tolerance factor must exceed 1");
  MetgResult result;

  double eff_hi = efficiency_at(hi);
  ++result.evaluations;
  if (eff_hi < target) {
    result.all_overhead = true;
    result.metg = std::numeric_limits<Duration>::infinity();
    return result;
  }

  const double eff_lo = efficiency_at(lo);
  ++result.evaluations;
  if (eff_lo >= target) {
    result.zero_overhead = true;
    result.metg = lo;
    result.efficiency = eff_lo;
    return result;
  }

  // Invariant: lo fails, hi passes. Geometric midpoint keeps the probe
  // count logarithmic in the (typically decades-wide) bracket.
  while (hi / lo > tolerance_factor) {
    const double mid = std::sqrt(lo * hi);
    const double eff_mid = efficiency_at(mid);
    ++result.evaluations;
    if (eff_mid >= target) {
      hi = mid;
      eff_hi = eff_mid;
    } else {
      lo = mid;
    }
  }
  result.found = true;
  result.metg = hi;
  result.efficiency = eff_hi;
  return result;
}

}  // namespace versa::taskbench
