// Minimum effective task granularity (METG) — the smallest per-task
// compute cost at which a runtime configuration still reaches a target
// parallel efficiency (task-bench's METG(50%) headline metric).
//
// The search is a geometric bisection over task cost: efficiency is
// assumed monotone non-decreasing in cost (bigger tasks amortize any
// per-task overhead better), which holds for every per-task-overhead
// model and empirically for this runtime. The two degenerate regimes are
// reported explicitly instead of being folded into a number: a
// configuration whose efficiency never reaches the target inside the
// probed range is *all overhead* (METG = +inf), and one that meets the
// target even at the smallest probed cost is *zero overhead* within the
// range (METG = the lower probe bound).
#pragma once

#include <functional>

#include "common/types.h"

namespace versa::taskbench {

/// Measured (or modelled) parallel efficiency at one task cost.
using EfficiencyFn = std::function<double(Duration task_cost)>;

struct MetgResult {
  /// The efficiency crossing was bracketed inside [lo, hi].
  bool found = false;
  /// efficiency(hi) < target: overhead dominates the whole probed range.
  bool all_overhead = false;
  /// efficiency(lo) >= target: no measurable overhead down to lo.
  bool zero_overhead = false;
  /// Smallest probed task cost meeting the target: the bracketing upper
  /// bound after bisection (found), lo (zero_overhead), or +inf
  /// (all_overhead).
  Duration metg = 0.0;
  /// Efficiency measured at `metg` (0 when all_overhead).
  double efficiency = 0.0;
  /// EfficiencyFn evaluations performed.
  int evaluations = 0;
};

/// Bisect [lo, hi] (0 < lo < hi) for the smallest task cost whose
/// efficiency meets `target`, narrowing until hi/lo <= tolerance_factor
/// (> 1; e.g. 1.1 resolves METG to within 10%).
MetgResult metg_bisect(const EfficiencyFn& efficiency_at, Duration lo,
                       Duration hi, double target = 0.5,
                       double tolerance_factor = 1.1);

}  // namespace versa::taskbench
