#include "taskbench/graph_spec.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"
#include "common/random.h"

namespace versa::taskbench {
namespace {

/// Largest power of two <= n, at least `floor`.
std::uint32_t pow2_floor(std::uint32_t n, std::uint32_t floor) {
  std::uint32_t p = floor;
  while (p * 2 <= n) p *= 2;
  return p;
}

std::uint32_t log2_exact(std::uint32_t pow2) {
  std::uint32_t k = 0;
  while ((1u << k) < pow2) ++k;
  return k;
}

/// kTree's active-width triangle wave: width, width/2, ..., 1, 2, ...,
/// width, width/2, ... (strictly alternating between shrink and grow for
/// any power-of-two width >= 2).
std::uint32_t tree_active(std::uint32_t width, std::uint32_t k,
                          std::uint32_t step) {
  const std::uint32_t pos = step % (2 * k);
  return pos <= k ? width >> pos : width >> (2 * k - pos);
}

/// Per-family RNG stream: the seed is mixed with the normalized shape so
/// two parameter sets never share a parent stream by accident.
Rng family_rng(const TaskBenchParams& p) {
  std::uint64_t mix = p.seed;
  mix = mix * 0x100000001b3ull ^ static_cast<std::uint64_t>(p.family);
  mix = mix * 0x100000001b3ull ^ p.width;
  mix = mix * 0x100000001b3ull ^ p.steps;
  mix = mix * 0x100000001b3ull ^ p.fan;
  return Rng(mix);
}

}  // namespace

const char* to_string(GraphFamily family) {
  switch (family) {
    case GraphFamily::kTrivial: return "trivial";
    case GraphFamily::kChain: return "chain";
    case GraphFamily::kStencil1D: return "stencil";
    case GraphFamily::kStencil2D: return "stencil2d";
    case GraphFamily::kFft: return "fft";
    case GraphFamily::kTree: return "tree";
    case GraphFamily::kRandomFan: return "random";
  }
  return "?";
}

bool parse_family(const std::string& text, GraphFamily& family) {
  for (const GraphFamily candidate : all_families()) {
    if (text == to_string(candidate)) {
      family = candidate;
      return true;
    }
  }
  return false;
}

std::vector<GraphFamily> all_families() {
  return {GraphFamily::kTrivial,   GraphFamily::kChain,
          GraphFamily::kStencil1D, GraphFamily::kStencil2D,
          GraphFamily::kFft,       GraphFamily::kTree,
          GraphFamily::kRandomFan};
}

TaskBenchParams normalized(const TaskBenchParams& params) {
  TaskBenchParams p = params;
  if (p.width == 0) p.width = 1;
  if (p.steps == 0) p.steps = 1;
  if (p.fan == 0) p.fan = 1;
  switch (p.family) {
    case GraphFamily::kFft:
    case GraphFamily::kTree:
      p.width = pow2_floor(std::max(p.width, 2u), 2);
      break;
    case GraphFamily::kStencil2D: {
      std::uint32_t side = 1;
      while ((side + 1) * (side + 1) <= p.width) ++side;
      p.width = side * side;
      break;
    }
    default:
      break;
  }
  p.fan = std::min(p.fan, p.width);
  return p;
}

GraphOracle oracle_for(const TaskBenchParams& params) {
  const TaskBenchParams p = normalized(params);
  GraphOracle oracle;
  const std::uint64_t w = p.width;
  const std::uint64_t spans = p.steps - 1;  // timestep transitions
  switch (p.family) {
    case GraphFamily::kTrivial:
      oracle.nodes = w * p.steps;
      oracle.edges = 0;
      oracle.critical_path = 1;
      break;
    case GraphFamily::kChain:
      oracle.nodes = w * p.steps;
      oracle.edges = spans * w;
      oracle.critical_path = p.steps;
      break;
    case GraphFamily::kStencil1D:
      oracle.nodes = w * p.steps;
      // Interior nodes have 3 parents; the two boundary nodes lose one
      // each (w == 1 degenerates to a single self-parent chain).
      oracle.edges = spans * (w == 1 ? 1 : 3 * w - 2);
      oracle.critical_path = p.steps;
      break;
    case GraphFamily::kStencil2D: {
      std::uint64_t side = 1;
      while (side * side < w) ++side;
      // 5-point halo: s² self-parents + 4s² neighbour slots minus the
      // 4s missing off-grid neighbours along each border.
      oracle.nodes = w * p.steps;
      oracle.edges = spans * (w == 1 ? 1 : 5 * side * side - 4 * side);
      oracle.critical_path = p.steps;
      break;
    }
    case GraphFamily::kFft:
      oracle.nodes = w * p.steps;
      oracle.edges = spans * 2 * w;  // every node: self + butterfly partner
      oracle.critical_path = p.steps;
      break;
    case GraphFamily::kTree: {
      const std::uint32_t k = log2_exact(p.width);
      std::uint64_t nodes = p.width;  // step 0
      std::uint64_t edges = 0;
      for (std::uint32_t t = 1; t < p.steps; ++t) {
        const std::uint32_t active = tree_active(p.width, k, t);
        const std::uint32_t previous = tree_active(p.width, k, t - 1);
        nodes += active;
        // Reducing levels give every node two parents; broadcasting
        // levels give every node one.
        edges += active < previous ? 2ull * active : active;
      }
      oracle.nodes = nodes;
      oracle.edges = edges;
      oracle.critical_path = p.steps;
      break;
    }
    case GraphFamily::kRandomFan:
      oracle.nodes = w * p.steps;
      oracle.edges = spans * w * p.fan;
      oracle.critical_path = p.steps;
      break;
  }
  oracle.total_payload_bytes = oracle.edges * p.payload_bytes;
  return oracle;
}

std::pair<std::uint32_t, std::uint32_t> GraphSpec::locate(
    std::uint64_t flat) const {
  VERSA_CHECK_MSG(flat < node_count, "taskbench: flat node id out of range");
  std::uint32_t step = 0;
  while (step + 1 < level_offset.size() && level_offset[step + 1] <= flat) {
    ++step;
  }
  return {step, static_cast<std::uint32_t>(flat - level_offset[step])};
}

std::string GraphSpec::canonical_text() const {
  std::string out = "taskbench-graph v1\n";
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "family=%s width=%u steps=%u payload=%llu fan=%u seed=%llu\n",
                to_string(params.family), params.width, params.steps,
                static_cast<unsigned long long>(params.payload_bytes),
                params.fan, static_cast<unsigned long long>(params.seed));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), "nodes=%llu edges=%zu\n",
                static_cast<unsigned long long>(node_count), edges.size());
  out += buffer;
  out += "levels=";
  for (std::size_t i = 0; i < level_width.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(level_width[i]);
  }
  out += '\n';
  for (const auto& [from, to] : edges) {
    std::snprintf(buffer, sizeof(buffer), "%llu->%llu:%llu\n",
                  static_cast<unsigned long long>(from),
                  static_cast<unsigned long long>(to),
                  static_cast<unsigned long long>(params.payload_bytes));
    out += buffer;
  }
  return out;
}

GraphSpec generate_graph(const TaskBenchParams& params) {
  GraphSpec spec;
  spec.params = normalized(params);
  const TaskBenchParams& p = spec.params;
  const std::uint32_t k =
      p.family == GraphFamily::kTree ? log2_exact(p.width) : 0;

  spec.level_width.reserve(p.steps);
  spec.level_offset.reserve(p.steps);
  std::uint64_t offset = 0;
  for (std::uint32_t t = 0; t < p.steps; ++t) {
    const std::uint32_t active =
        p.family == GraphFamily::kTree ? tree_active(p.width, k, t) : p.width;
    spec.level_width.push_back(active);
    spec.level_offset.push_back(offset);
    offset += active;
  }
  spec.node_count = offset;

  Rng rng = family_rng(p);
  std::vector<std::uint32_t> parents;
  for (std::uint32_t t = 1; t < p.steps; ++t) {
    const std::uint64_t prev_offset = spec.level_offset[t - 1];
    const std::uint64_t this_offset = spec.level_offset[t];
    const std::uint32_t prev_width = spec.level_width[t - 1];
    for (std::uint32_t i = 0; i < spec.level_width[t]; ++i) {
      parents.clear();
      switch (p.family) {
        case GraphFamily::kTrivial:
          break;
        case GraphFamily::kChain:
          parents.push_back(i);
          break;
        case GraphFamily::kStencil1D:
          if (i > 0) parents.push_back(i - 1);
          parents.push_back(i);
          if (i + 1 < p.width) parents.push_back(i + 1);
          break;
        case GraphFamily::kStencil2D: {
          std::uint32_t side = 1;
          while (side * side < p.width) ++side;
          const std::uint32_t x = i % side;
          const std::uint32_t y = i / side;
          if (y > 0) parents.push_back(i - side);
          if (x > 0) parents.push_back(i - 1);
          parents.push_back(i);
          if (x + 1 < side) parents.push_back(i + 1);
          if (y + 1 < side) parents.push_back(i + side);
          break;
        }
        case GraphFamily::kFft: {
          const std::uint32_t bit = (t - 1) % log2_exact(p.width);
          const std::uint32_t partner = i ^ (1u << bit);
          parents.push_back(std::min(i, partner));
          parents.push_back(std::max(i, partner));
          break;
        }
        case GraphFamily::kTree:
          if (spec.level_width[t] < prev_width) {
            parents.push_back(2 * i);      // reduce
            parents.push_back(2 * i + 1);
          } else {
            parents.push_back(i / 2);      // broadcast
          }
          break;
        case GraphFamily::kRandomFan: {
          while (parents.size() < p.fan) {
            const std::uint32_t candidate =
                static_cast<std::uint32_t>(rng.next_below(prev_width));
            if (std::find(parents.begin(), parents.end(), candidate) ==
                parents.end()) {
              parents.push_back(candidate);
            }
          }
          std::sort(parents.begin(), parents.end());
          break;
        }
      }
      for (const std::uint32_t parent : parents) {
        spec.edges.emplace_back(prev_offset + parent, this_offset + i);
      }
    }
  }
  return spec;
}

std::vector<std::vector<std::uint64_t>> dependence_closure(
    const GraphSpec& spec) {
  const std::size_t words = (spec.node_count + 63) / 64;
  std::vector<std::vector<std::uint64_t>> closure(
      spec.node_count, std::vector<std::uint64_t>(words, 0));
  // Flat ids are topologically ordered (edges only cross one timestep
  // forward) and the edge list is sorted by destination, so one pass
  // accumulates every ancestor set.
  for (const auto& [from, to] : spec.edges) {
    VERSA_CHECK_MSG(from < to, "taskbench: edge against topological order");
    std::vector<std::uint64_t>& into = closure[to];
    const std::vector<std::uint64_t>& ancestors = closure[from];
    for (std::size_t w = 0; w < words; ++w) into[w] |= ancestors[w];
    into[from / 64] |= 1ull << (from % 64);
  }
  return closure;
}

bool closure_reaches(const std::vector<std::vector<std::uint64_t>>& closure,
                     std::uint64_t from, std::uint64_t to) {
  if (to >= closure.size()) return false;
  const std::vector<std::uint64_t>& ancestors = closure[to];
  return (ancestors[from / 64] >> (from % 64)) & 1u;
}

}  // namespace versa::taskbench
