// Synthetic workload generator (DESIGN.md §14) — task-bench-style
// parameterized dependence graphs.
//
// A graph is a grid of timesteps; every family places its dependence
// edges only between consecutive timesteps, which is what lets one
// double-buffered region set realize any family's edges through the
// ordinary in/out dependence clauses (taskbench::submit_graph). Each
// family ships with a *closed-form oracle* — expected node/edge counts,
// critical-path length and total edge-payload bytes computed from the
// parameters alone, never from the generated edge list — so the generator
// is permanently cross-checked against an independent model
// (taskbench_property_test), and the runtime's observed execution order
// can be validated against the oracle edges' transitive closure.
//
// Generation is deterministic: the same parameters and seed produce a
// byte-identical GraphSpec (canonical_text) on every platform, backend
// and build — the randomized families draw from the repo's own
// xoshiro-based Rng, never from library distributions.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/types.h"

namespace versa::taskbench {

/// Dependence-graph families, mirroring the task-bench set the ROADMAP
/// names. All edges connect timestep t-1 to timestep t.
enum class GraphFamily : std::uint8_t {
  kTrivial,    ///< no edges: width-way embarrassing parallelism
  kChain,      ///< width independent chains: (t-1,i) -> (t,i)
  kStencil1D,  ///< 3-point halo: parents {i-1, i, i+1} clamped
  kStencil2D,  ///< 5-point halo on a side×side grid (width = side²)
  kFft,        ///< butterfly: parents {i, i xor 2^((t-1) mod log2 w)}
  kTree,       ///< binary reduce then broadcast, repeating
  kRandomFan,  ///< each node picks `fan` distinct seeded-random parents
};

const char* to_string(GraphFamily family);

/// Parse "trivial|chain|stencil|stencil2d|fft|tree|random" (the names
/// to_string emits). False on an unknown name.
bool parse_family(const std::string& text, GraphFamily& family);

/// All seven families, generation order.
std::vector<GraphFamily> all_families();

struct TaskBenchParams {
  GraphFamily family = GraphFamily::kStencil1D;
  /// Points per timestep. Normalized per family: kFft and kTree round
  /// down to a power of two (min 2), kStencil2D rounds down to a square.
  std::uint32_t width = 16;
  std::uint32_t steps = 8;
  /// Bytes carried per dependence edge (= the size of every node's
  /// output region).
  std::uint64_t payload_bytes = 4096;
  /// kRandomFan only: distinct parents per node (clamped to width).
  std::uint32_t fan = 2;
  std::uint64_t seed = 42;
};

/// Copy of `params` with the family's width/fan constraints applied —
/// generate_graph and oracle_for both normalize first, so they always
/// agree on the effective shape.
TaskBenchParams normalized(const TaskBenchParams& params);

/// Closed-form expectations for a parameter set: computed analytically
/// (per-family formulas over normalized width/steps), independent of the
/// edge generator.
struct GraphOracle {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  /// Longest dependence chain, counted in tasks (1 = no dependences).
  std::uint32_t critical_path = 0;
  /// edges × payload_bytes: the byte volume the dependence edges carry.
  std::uint64_t total_payload_bytes = 0;
};

GraphOracle oracle_for(const TaskBenchParams& params);

/// A generated dependence graph. Nodes are identified by a flat id
/// (level_offset[step] + index); edges are (from, to) flat-id pairs,
/// sorted by (to, from).
struct GraphSpec {
  TaskBenchParams params;  ///< normalized parameters
  std::uint64_t node_count = 0;
  /// Active node count per timestep (uniform except kTree's wave).
  std::vector<std::uint32_t> level_width;
  /// Flat id of each timestep's first node.
  std::vector<std::uint64_t> level_offset;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> edges;

  /// (step, index) of a flat node id.
  std::pair<std::uint32_t, std::uint32_t> locate(std::uint64_t flat) const;

  /// Deterministic serialization of the whole spec (header, level table,
  /// edge list with per-edge payload bytes). Byte-identical for equal
  /// params on every platform — the determinism suite diffs this string
  /// across backends and granularity modes.
  std::string canonical_text() const;
};

/// Generate the dependence graph for `params` (normalized first).
GraphSpec generate_graph(const TaskBenchParams& params);

/// Transitive-closure reachability over the spec's edges: result[v] holds
/// the set of nodes u with a dependence path u -> v, as a flat bitset per
/// node (node_count bits each). Intended for conformance tests; cost is
/// O(nodes × edges / 64).
std::vector<std::vector<std::uint64_t>> dependence_closure(
    const GraphSpec& spec);

/// True when `from` reaches `to` in a closure built by dependence_closure.
bool closure_reaches(const std::vector<std::vector<std::uint64_t>>& closure,
                     std::uint64_t from, std::uint64_t to);

}  // namespace versa::taskbench
