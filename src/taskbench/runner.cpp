#include "taskbench/runner.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "machine/cost_model.h"

namespace versa::taskbench {
namespace {

/// Busy-spin for `cost` wall seconds — the thread backend's controlled
/// compute kernel. Spinning (not sleeping) is deliberate: METG measures
/// how runtime overhead competes with *compute* occupancy of a core.
TaskFn make_spin_body(Duration cost) {
  return [cost](TaskContext&) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(cost));
    while (std::chrono::steady_clock::now() < deadline) {
    }
  };
}

}  // namespace

std::vector<TaskId> submit_graph(Runtime& rt, const GraphSpec& spec,
                                 const SubmitGraphOptions& options) {
  const TaskBenchParams& p = spec.params;
  const std::uint32_t max_width =
      *std::max_element(spec.level_width.begin(), spec.level_width.end());

  // One task type per submitted spec; versions for every device kind the
  // machine actually has workers for, all with the same constant cost so
  // heterogeneity comes from the machine model, not the workload.
  const TaskTypeId type = rt.declare_task(
      std::string("tb_") + to_string(p.family) + "_" +
      std::to_string(rt.task_graph().size()));
  const TaskFn body =
      options.spin_bodies ? make_spin_body(options.task_cost) : TaskFn{};
  const CostModelPtr cost = make_constant_cost(options.task_cost);
  for (const DeviceKind kind : {DeviceKind::kSmp, DeviceKind::kCuda}) {
    if (rt.machine().count_workers(kind) > 0) {
      rt.add_version(type, kind, to_string(kind), body, cost);
    }
  }

  const std::uint64_t bytes = std::max<std::uint64_t>(p.payload_bytes, 1);
  std::vector<std::vector<RegionId>> buffers(2);
  std::vector<RegionId> sources;  // kTrivial's immutable read set
  const std::string tag = std::to_string(type);
  if (p.family == GraphFamily::kTrivial) {
    for (std::uint32_t i = 0; i < max_width; ++i) {
      sources.push_back(
          rt.register_data("tbsrc" + tag + "_" + std::to_string(i), bytes));
    }
  } else {
    for (int parity = 0; parity < 2; ++parity) {
      for (std::uint32_t i = 0; i < max_width; ++i) {
        buffers[parity].push_back(rt.register_data(
            "tb" + tag + "_" + std::to_string(parity) + "_" +
                std::to_string(i),
            bytes));
      }
    }
  }

  // Group the sorted edge list by destination while submitting in flat-id
  // order (the list is sorted by (to, from), so one cursor suffices).
  std::vector<TaskId> tasks(spec.node_count, kInvalidTask);
  std::size_t edge_cursor = 0;
  Runtime::SubmitOptions submit_options;
  submit_options.graph = options.graph;
  for (std::uint32_t t = 0; t < spec.level_width.size(); ++t) {
    for (std::uint32_t i = 0; i < spec.level_width[t]; ++i) {
      const std::uint64_t flat = spec.level_offset[t] + i;
      AccessList accesses;
      if (p.family == GraphFamily::kTrivial) {
        accesses.push_back(Access::in(sources[i]));
      } else {
        accesses.push_back(Access::out(buffers[t % 2][i]));
        while (edge_cursor < spec.edges.size() &&
               spec.edges[edge_cursor].second == flat) {
          const auto [parent_step, parent_index] =
              spec.locate(spec.edges[edge_cursor].first);
          accesses.push_back(
              Access::in(buffers[parent_step % 2][parent_index]));
          ++edge_cursor;
        }
      }
      submit_options.label =
          std::to_string(t) + "." + std::to_string(i);
      tasks[flat] = rt.submit(type, std::move(accesses), submit_options);
    }
  }
  return tasks;
}

double parallel_efficiency(const GraphOracle& oracle, Duration task_cost,
                           std::size_t workers, Duration elapsed) {
  if (elapsed <= 0.0 || workers == 0 || oracle.nodes == 0) return 0.0;
  const double total_work = static_cast<double>(oracle.nodes) * task_cost;
  const double span = static_cast<double>(oracle.critical_path) * task_cost;
  const double ideal =
      std::max(total_work / static_cast<double>(workers), span);
  return ideal / elapsed;
}

}  // namespace versa::taskbench
