#include "sanitizer/shadow_map.h"

#include <algorithm>

namespace versa::sanitize {

ShadowMap::ShadowMap() = default;

void ShadowMap::record(RegionId region, TaskId id, AccessMode mode,
                       std::uint64_t offset, std::uint64_t length,
                       const OrderedFn& ordered,
                       std::vector<ShadowConflict>& out) {
  if (length == 0) return;
  const std::uint64_t end = offset + length;
  Shard& s = shard(region);
  versa::LockGuard lock(s.mutex);
  IntervalMap& map = s.regions[region];

  auto split_at = [&map](IntervalMap::iterator it, std::uint64_t at) {
    // Precondition: it->first < at < it->second.end.
    Interval right = it->second;
    const std::uint64_t right_end = it->second.end;
    it->second.end = at;
    right.end = right_end;
    return map.emplace(at, std::move(right)).first;
  };

  // Position at the first interval overlapping [offset, end).
  auto it = map.upper_bound(offset);
  if (it != map.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > offset) {
      it = prev->first < offset ? split_at(prev, offset) : prev;
    }
  }

  std::uint64_t cursor = offset;
  while (cursor < end) {
    if (it == map.end() || it->first >= end) {
      // Tail gap [cursor, end): fresh interval, no priors to conflict.
      Interval fresh;
      fresh.end = end;
      if (writes(mode)) {
        fresh.writer = id;
      } else {
        fresh.readers.push_back(id);
      }
      map.emplace(cursor, std::move(fresh));
      break;
    }
    if (it->first > cursor) {
      // Gap [cursor, it->first): fresh interval, then continue at `it`.
      Interval fresh;
      fresh.end = it->first;
      if (writes(mode)) {
        fresh.writer = id;
      } else {
        fresh.readers.push_back(id);
      }
      const std::uint64_t gap_begin = cursor;
      cursor = it->first;
      map.emplace(gap_begin, std::move(fresh));
      continue;
    }
    // Overlapping interval starting at cursor; trim its tail to the span
    // (split_at leaves `it` on the left piece — the part inside the span;
    // the right piece keeps the prior epoch untouched).
    if (it->second.end > end) split_at(it, end);
    Interval& iv = it->second;
    const std::uint64_t iv_begin = it->first;
    const std::uint64_t iv_end = iv.end;

    // Conflicts against the prior epoch of these bytes.
    if (iv.writer != kInvalidTask && iv.writer != id && !ordered(iv.writer, id)) {
      out.push_back(ShadowConflict{iv.writer, AccessMode::kOut, iv_begin,
                                   iv_end});
    }
    if (writes(mode)) {
      for (const TaskId reader : iv.readers) {
        if (reader == id || ordered(reader, id)) continue;
        out.push_back(ShadowConflict{reader, AccessMode::kIn, iv_begin,
                                     iv_end});
      }
      // New write epoch: this task becomes the last writer. Its own reads
      // (inout) add nothing — any future conflict already sees the write.
      iv.writer = id;
      iv.readers.clear();
    } else if (std::find(iv.readers.begin(), iv.readers.end(), id) ==
               iv.readers.end()) {
      iv.readers.push_back(id);
    }
    cursor = iv_end;
    ++it;
  }
}

void ShadowMap::clear_region(RegionId region) {
  Shard& s = shard(region);
  versa::LockGuard lock(s.mutex);
  s.regions.erase(region);
}

std::size_t ShadowMap::interval_count() const {
  std::size_t total = 0;
  for (const Shard& s : shards_) {
    versa::LockGuard lock(s.mutex);
    for (const auto& [region, map] : s.regions) {
      (void)region;
      total += map.size();
    }
  }
  return total;
}

}  // namespace versa::sanitize
