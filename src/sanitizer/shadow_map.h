// Sharded shadow-byte map over registered regions (DESIGN.md §12).
//
// For every byte a completed task touched (declared clauses plus any
// witnessed out-of-spec spans), the map remembers the last writer and the
// readers since that write, as disjoint intervals keyed by begin offset —
// the same representation the dependence analyzer uses, so split/fused
// byte-exact clauses shadow exactly. record() walks the touched range,
// splits intervals at the boundaries, and reports every prior accessor
// that conflicts (write-write or read-write) and is NOT ordered against
// the recording task by the caller's happens-before oracle. Because every
// task records at completion, an unordered conflicting pair is always
// found when its second member completes — detection does not depend on
// which schedule the run happened to take.
//
// Regions hash onto kShardCount shards, each behind its own mutex of
// class sanitizer.shard (rank 11); the happens-before callback may take
// the clock mutex (rank 12) underneath it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/types.h"
#include "task/access.h"
#include "util/annotated_sync.h"
#include "util/lock_order.h"

namespace versa::sanitize {

/// One prior access conflicting with (and unordered against) the span
/// being recorded.
struct ShadowConflict {
  TaskId prior = kInvalidTask;
  AccessMode prior_mode = AccessMode::kIn;
  std::uint64_t begin = 0;  ///< region-absolute byte range
  std::uint64_t end = 0;
};

/// `ordered(a, b)` oracle the caller provides (the clock table).
using OrderedFn = std::function<bool(TaskId, TaskId)>;

class ShadowMap {
 public:
  static constexpr std::size_t kShardCount = 8;

  ShadowMap();

  /// Record task `id` touching [offset, offset+length) of `region` with
  /// `mode`; appends a ShadowConflict per unordered conflicting prior
  /// access. Recording the same task twice over a byte never conflicts
  /// with itself.
  void record(RegionId region, TaskId id, AccessMode mode,
              std::uint64_t offset, std::uint64_t length,
              const OrderedFn& ordered, std::vector<ShadowConflict>& out);

  /// Drop all shadow state of `region` (unregister_data).
  void clear_region(RegionId region);

  /// Total live intervals across shards (stats/tests).
  std::size_t interval_count() const;

 private:
  /// One disjoint interval [begin, end): begin is the map key.
  struct Interval {
    std::uint64_t end = 0;
    TaskId writer = kInvalidTask;  ///< last writer (kInvalidTask: none yet)
    std::vector<TaskId> readers;   ///< readers since that write
  };
  using IntervalMap = std::map<std::uint64_t, Interval>;

  struct Shard {
    Shard() : mutex(lock_order::kLockRankSanitizerShard) {}
    mutable versa::Mutex mutex;
    std::map<RegionId, IntervalMap> regions VERSA_GUARDED_BY(mutex);
  };

  Shard& shard(RegionId region) {
    return shards_[static_cast<std::size_t>(region) % kShardCount];
  }

  std::array<Shard, kShardCount> shards_;
};

}  // namespace versa::sanitize
