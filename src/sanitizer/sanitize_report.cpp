#include "sanitizer/sanitize_report.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

namespace versa::sanitize {

namespace {

constexpr char kHeader[] =
    "kind,task_a,type_a,task_b,type_b,region,begin,end,mode_a,mode_b,bytes";

const char* id_or_dash(std::uint64_t id, std::uint64_t invalid, char* buf,
                       std::size_t n) {
  if (id == invalid) return "-";
  std::snprintf(buf, n, "%" PRIu64, id);
  return buf;
}

bool parse_mode(const std::string& text, AccessMode& mode) {
  if (text == "in") {
    mode = AccessMode::kIn;
  } else if (text == "out") {
    mode = AccessMode::kOut;
  } else if (text == "inout") {
    mode = AccessMode::kInOut;
  } else {
    return false;
  }
  return true;
}

bool parse_kind(const std::string& text, ViolationKind& kind) {
  if (text == "race") {
    kind = ViolationKind::kRace;
  } else if (text == "out-of-spec") {
    kind = ViolationKind::kOutOfSpec;
  } else if (text == "over-declaration") {
    kind = ViolationKind::kOverDeclaration;
  } else {
    return false;
  }
  return true;
}

bool parse_id(const std::string& text, std::uint64_t& value) {
  if (text == "-") {
    value = kInvalidTask;
    return true;
  }
  char* tail = nullptr;
  value = std::strtoull(text.c_str(), &tail, 10);
  return tail != nullptr && *tail == '\0' && !text.empty();
}

}  // namespace

const char* to_string(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kRace:
      return "race";
    case ViolationKind::kOutOfSpec:
      return "out-of-spec";
    case ViolationKind::kOverDeclaration:
      return "over-declaration";
  }
  return "?";
}

bool write_csv(const std::string& path, const std::vector<Violation>& records,
               const SanitizeStats& stats) {
  std::ofstream out(path);
  if (!out) return false;
  out << kHeader << '\n';
  char a[32];
  char b[32];
  char ta[32];
  char tb[32];
  for (const Violation& v : records) {
    out << to_string(v.kind) << ','
        << id_or_dash(v.task_a, kInvalidTask, a, sizeof(a)) << ','
        << id_or_dash(v.type_a, kInvalidTaskType, ta, sizeof(ta)) << ','
        << id_or_dash(v.task_b, kInvalidTask, b, sizeof(b)) << ','
        << id_or_dash(v.type_b, kInvalidTaskType, tb, sizeof(tb)) << ','
        << v.region << ','
        << v.begin << ',' << v.end << ',' << to_string(v.mode_a) << ','
        << to_string(v.mode_b) << ',' << v.bytes << '\n';
  }
  out << "#stat,tasks_checked," << stats.tasks_checked << '\n';
  out << "#stat,tasks_witnessed," << stats.tasks_witnessed << '\n';
  out << "#stat,races," << stats.races << '\n';
  out << "#stat,out_of_spec," << stats.out_of_spec << '\n';
  out << "#stat,over_declaration," << stats.over_declaration << '\n';
  out << "#stat,wasted_transfer_bytes," << stats.wasted_transfer_bytes << '\n';
  out << "#stat,dropped," << stats.dropped << '\n';
  return static_cast<bool>(out);
}

bool read_csv(const std::string& path, std::vector<Violation>& records,
              SanitizeStats& stats, std::string& error) {
  std::ifstream in(path);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::string line;
  std::size_t line_no = 0;
  bool saw_header = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line.rfind("#stat,", 0) == 0) {
      std::stringstream ss(line.substr(6));
      std::string name;
      std::string value;
      if (!std::getline(ss, name, ',') || !std::getline(ss, value)) continue;
      const std::uint64_t n = std::strtoull(value.c_str(), nullptr, 10);
      if (name == "tasks_checked") stats.tasks_checked = n;
      if (name == "tasks_witnessed") stats.tasks_witnessed = n;
      if (name == "races") stats.races = n;
      if (name == "out_of_spec") stats.out_of_spec = n;
      if (name == "over_declaration") stats.over_declaration = n;
      if (name == "wasted_transfer_bytes") stats.wasted_transfer_bytes = n;
      if (name == "dropped") stats.dropped = n;
      continue;
    }
    if (!saw_header) {
      if (line != kHeader) {
        error = path + ": not a sanitize CSV (unexpected header)";
        return false;
      }
      saw_header = true;
      continue;
    }
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    Violation v;
    std::uint64_t type_a = 0;
    std::uint64_t type_b = 0;
    if (fields.size() != 11 || !parse_kind(fields[0], v.kind) ||
        !parse_id(fields[1], v.task_a) || !parse_id(fields[2], type_a) ||
        !parse_id(fields[3], v.task_b) || !parse_id(fields[4], type_b) ||
        !parse_id(fields[5], v.region) || !parse_id(fields[6], v.begin) ||
        !parse_id(fields[7], v.end) || !parse_mode(fields[8], v.mode_a) ||
        !parse_mode(fields[9], v.mode_b) || !parse_id(fields[10], v.bytes)) {
      error = path + ": malformed record at line " + std::to_string(line_no);
      return false;
    }
    v.type_a = type_a == kInvalidTask ? kInvalidTaskType
                                      : static_cast<TaskTypeId>(type_a);
    v.type_b = type_b == kInvalidTask ? kInvalidTaskType
                                      : static_cast<TaskTypeId>(type_b);
    records.push_back(v);
  }
  if (!saw_header) {
    error = path + ": empty file";
    return false;
  }
  return true;
}

void render_report(std::ostream& os, const std::vector<Violation>& records,
                   const SanitizeStats& stats, std::size_t max_rows) {
  os << "== sanitizer report ==\n";
  os << "  tasks checked:        " << stats.tasks_checked << " ("
     << stats.tasks_witnessed << " with witnesses)\n";
  os << "  races:                " << stats.races << '\n';
  os << "  out-of-spec:          " << stats.out_of_spec << '\n';
  os << "  over-declaration:     " << stats.over_declaration
     << " (wasted transfer bytes: " << stats.wasted_transfer_bytes << ")\n";
  if (stats.dropped > 0) {
    os << "  dropped (cap):        " << stats.dropped << '\n';
  }
  std::size_t shown = 0;
  for (const Violation& v : records) {
    if (shown++ >= max_rows) {
      os << "  ... " << (records.size() - max_rows) << " more record(s)\n";
      break;
    }
    os << "  [" << to_string(v.kind) << "] region " << v.region << " bytes ["
       << v.begin << ", " << v.end << ")";
    if (v.kind == ViolationKind::kRace) {
      os << ": task " << v.task_a << " (type " << v.type_a << ", "
         << to_string(v.mode_a) << ") unordered vs task " << v.task_b
         << " (type " << v.type_b << ", " << to_string(v.mode_b) << ")";
    } else {
      os << ": task " << v.task_a << " (type " << v.type_a << ", "
         << to_string(v.mode_a) << ")";
    }
    os << ", " << v.bytes << " byte(s)\n";
  }
  if (records.empty()) {
    os << "  no violations\n";
  }
}

}  // namespace versa::sanitize
