// Sanitizer violation records and their CSV interchange format
// (DESIGN.md §12). The runtime-side AccessSanitizer produces Violations;
// versa_run --sanitize-csv writes them with write_csv(); the offline
// versa_trace_report --sanitize-report reads them back with read_csv()
// and renders the same summary via render_report(). Keeping both ends in
// one translation unit is what keeps the format from drifting.
//
// CSV v1, one record per line after the header:
//   kind,task_a,type_a,task_b,type_b,region,begin,end,mode_a,mode_b,bytes
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "task/access.h"

namespace versa::sanitize {

enum class ViolationKind : std::uint8_t {
  kRace,             ///< graph-unordered conflicting accesses (error)
  kOutOfSpec,        ///< witnessed bytes outside the declared clauses (error)
  kOverDeclaration,  ///< declared bytes the body never touched (diagnostic)
};

const char* to_string(ViolationKind kind);

struct Violation {
  ViolationKind kind = ViolationKind::kRace;
  /// The two parties of a race (task_b completes second and triggers the
  /// report); conformance records leave task_b/type_b invalid.
  TaskId task_a = kInvalidTask;
  TaskTypeId type_a = kInvalidTaskType;
  TaskId task_b = kInvalidTask;
  TaskTypeId type_b = kInvalidTaskType;
  RegionId region = 0;
  /// First offending byte range seen for this record.
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  /// Access modes: for races, mode_a is the prior access and mode_b the
  /// completing one; for conformance records mode_a is the clause/witness
  /// mode and mode_b mirrors it.
  AccessMode mode_a = AccessMode::kIn;
  AccessMode mode_b = AccessMode::kIn;
  /// Total offending bytes accumulated into this (deduplicated) record —
  /// at least end - begin; more when later ranges folded in.
  std::uint64_t bytes = 0;
};

/// Aggregate counters reported next to the records.
struct SanitizeStats {
  std::uint64_t tasks_checked = 0;    ///< completions the checker processed
  std::uint64_t tasks_witnessed = 0;  ///< of those, bodies that reported spans
  std::uint64_t races = 0;
  std::uint64_t out_of_spec = 0;
  std::uint64_t over_declaration = 0;
  std::uint64_t wasted_transfer_bytes = 0;  ///< declared-but-untouched total
  std::uint64_t dropped = 0;  ///< records beyond the violation cap
};

/// Errors are what CI exit codes key on; over-declaration is advisory.
inline bool is_error(ViolationKind kind) {
  return kind != ViolationKind::kOverDeclaration;
}

bool write_csv(const std::string& path, const std::vector<Violation>& records,
               const SanitizeStats& stats);

/// Parse a CSV produced by write_csv. Returns false on open/parse failure
/// (with `error` set); stat lines (`#stat,...`) restore `stats`.
bool read_csv(const std::string& path, std::vector<Violation>& records,
              SanitizeStats& stats, std::string& error);

/// Human-readable report section (shared by versa_run and
/// versa_trace_report). `max_rows` bounds the per-kind record listing.
void render_report(std::ostream& os, const std::vector<Violation>& records,
                   const SanitizeStats& stats, std::size_t max_rows = 20);

}  // namespace versa::sanitize
