// Dependence-spec sanitizer (DESIGN.md §12): a vector-clock determinacy-
// race and spec-conformance checker over declared task accesses.
//
// Modes (VERSA_SANITIZE / versa_run --sanitize):
//   off   — the runtime does not construct the sanitizer at all: no shadow
//           map, no clocks, no witness logs, byte-identical figures.
//   spec  — per-task conformance only: bodies report touched spans through
//           versa::AccessWitness; at completion the checker flags witnessed
//           bytes outside the declared clauses (out-of-spec, an error) and
//           declared bytes never touched (over-declaration, a diagnostic
//           with wasted-transfer-bytes attribution). Tasks that report no
//           spans (uninstrumented bodies, sim-only virtual kernels) are
//           skipped — conformance is opt-in per body.
//   race  — spec plus cross-task determinacy-race detection: tasks get
//           happens-before clocks propagated along analyzer edges (and
//           split/fuse lineage), and a sharded shadow-byte map records the
//           last writer/readers of every touched byte so any graph-
//           unordered conflicting pair is flagged with both task ids,
//           types, and the offending byte range. Declared clauses are
//           always ordered by the analyzer, so a declared-span race is an
//           oracle over the runtime's own dependence machinery; witnessed
//           out-of-spec spans are shadowed too, so an under-declared
//           access surfaces both as out-of-spec and as the race it is.
//
// Threading: on_task_registered / on_task_absorbed / on_task_complete /
// on_region_unregistered run under the runtime lock (rank 10).
// record_witness arrives from executor threads with no runtime lock held
// (thread backend) and only touches the witness buffer under the state
// mutex (rank 15). Completion processing pulls the buffer under 15,
// releases it, then walks the shadow map (shard rank 11 → clock rank 12),
// and re-enters 15 to fold violations — so 15 is never held below 11/12.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "sanitizer/sanitize_report.h"
#include "sanitizer/shadow_map.h"
#include "sanitizer/task_clock.h"
#include "task/access.h"
#include "task/task.h"
#include "util/annotated_sync.h"

namespace versa::sanitize {

enum class SanitizeMode : std::uint8_t { kOff, kSpec, kRace };

const char* to_string(SanitizeMode mode);

/// Parse "off" | "spec" | "race" (the --sanitize / VERSA_SANITIZE value).
bool parse_sanitize_mode(const std::string& text, SanitizeMode& mode);

struct SanitizeConfig {
  SanitizeMode mode = SanitizeMode::kOff;
  /// Cap on retained violation records; excess increments stats().dropped.
  std::size_t max_violations = 10000;
};

class AccessSanitizer {
 public:
  explicit AccessSanitizer(SanitizeConfig config);

  SanitizeMode mode() const { return config_.mode; }

  // --- runtime hooks (under the runtime lock) ----------------------------
  /// A task registered with the analyzer: `preds` are its dependence
  /// edges, `hb_parent` the submitting task (kInvalidTask from the
  /// master thread). Split children pass their shell's parent.
  void on_task_registered(const Task& task, const std::vector<TaskId>& preds,
                          TaskId hb_parent);

  /// A fuse window absorbed `member` into `host` (lineage alias).
  void on_task_absorbed(TaskId member, TaskId host);

  /// A task completed: run conformance against its witness log and, in
  /// race mode, shadow its declared + out-of-spec spans.
  void on_task_complete(const Task& task);

  /// unregister_data: drop the region's shadow state.
  void on_region_unregistered(RegionId region);

  // --- executor hook (any thread, no runtime lock) -----------------------
  /// Attach the spans `task`'s body reported. Called after the body runs
  /// and strictly before the executor reports port_complete.
  void record_witness(TaskId task, WitnessLog&& log);

  // --- results (quiescent: after waits) ----------------------------------
  std::vector<Violation> violations() const;
  SanitizeStats stats() const;
  /// Races + out-of-spec records (what non-zero exit codes key on).
  std::uint64_t error_count() const;
  bool write_csv_report(const std::string& path) const;
  /// Render the human-readable section to `os`.
  void render(std::ostream& os) const;

  /// Shadow intervals currently live (tests; 0 outside race mode).
  std::size_t shadow_interval_count() const { return shadow_.interval_count(); }
  const ClockTable& clocks() const { return clocks_; }

 private:
  void add_violation(Violation v) VERSA_REQUIRES(state_mutex_);

  const SanitizeConfig config_;

  ClockTable clocks_;
  ShadowMap shadow_;

  mutable versa::Mutex state_mutex_;
  /// Task type of every registered task (race reports name both parties'
  /// types; the prior task is long gone by the time its race surfaces).
  std::unordered_map<TaskId, TaskTypeId> types_ VERSA_GUARDED_BY(state_mutex_);
  std::unordered_map<TaskId, WitnessLog> witnesses_
      VERSA_GUARDED_BY(state_mutex_);
  std::vector<Violation> violations_ VERSA_GUARDED_BY(state_mutex_);
  /// Dedup: race pair (low id, high id, region) → index into violations_.
  struct PairKey {
    TaskId a;
    TaskId b;
    RegionId region;
    bool operator==(const PairKey& o) const {
      return a == o.a && b == o.b && region == o.region;
    }
  };
  struct PairKeyHash {
    std::size_t operator()(const PairKey& k) const {
      std::size_t h = std::hash<TaskId>{}(k.a);
      h = h * 1315423911u ^ std::hash<TaskId>{}(k.b);
      h = h * 1315423911u ^ std::hash<RegionId>{}(k.region);
      return h;
    }
  };
  std::unordered_map<PairKey, std::size_t, PairKeyHash> race_index_
      VERSA_GUARDED_BY(state_mutex_);
  SanitizeStats stats_ VERSA_GUARDED_BY(state_mutex_);
};

}  // namespace versa::sanitize
