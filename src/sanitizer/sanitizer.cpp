#include "sanitizer/sanitizer.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <utility>

namespace versa::sanitize {

namespace {

/// Half-open byte ranges, kept sorted and disjoint by normalize().
using Range = std::pair<std::uint64_t, std::uint64_t>;
using Ranges = std::vector<Range>;

void normalize(Ranges& ranges) {
  std::sort(ranges.begin(), ranges.end());
  Ranges merged;
  for (const Range& r : ranges) {
    if (r.first >= r.second) continue;
    if (!merged.empty() && r.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, r.second);
    } else {
      merged.push_back(r);
    }
  }
  ranges = std::move(merged);
}

/// a minus b; both normalized.
Ranges subtract(const Ranges& a, const Ranges& b) {
  Ranges out;
  std::size_t bi = 0;
  for (const Range& r : a) {
    std::uint64_t cursor = r.first;
    while (bi < b.size() && b[bi].second <= cursor) ++bi;
    std::size_t j = bi;
    while (cursor < r.second) {
      if (j >= b.size() || b[j].first >= r.second) {
        out.emplace_back(cursor, r.second);
        break;
      }
      if (b[j].first > cursor) out.emplace_back(cursor, b[j].first);
      cursor = std::max(cursor, b[j].second);
      ++j;
    }
  }
  return out;
}

}  // namespace

const char* to_string(SanitizeMode mode) {
  switch (mode) {
    case SanitizeMode::kOff:
      return "off";
    case SanitizeMode::kSpec:
      return "spec";
    case SanitizeMode::kRace:
      return "race";
  }
  return "?";
}

bool parse_sanitize_mode(const std::string& text, SanitizeMode& mode) {
  if (text == "off") {
    mode = SanitizeMode::kOff;
  } else if (text == "spec") {
    mode = SanitizeMode::kSpec;
  } else if (text == "race") {
    mode = SanitizeMode::kRace;
  } else {
    return false;
  }
  return true;
}

AccessSanitizer::AccessSanitizer(SanitizeConfig config)
    : config_(config), state_mutex_(lock_order::kLockRankSanitizerState) {}

void AccessSanitizer::on_task_registered(const Task& task,
                                         const std::vector<TaskId>& preds,
                                         TaskId hb_parent) {
  if (config_.mode == SanitizeMode::kRace) {
    clocks_.add(task.id, preds, hb_parent);
  }
  versa::LockGuard lock(state_mutex_);
  types_[task.id] = task.type;
}

void AccessSanitizer::on_task_absorbed(TaskId member, TaskId host) {
  if (config_.mode == SanitizeMode::kRace) {
    clocks_.alias(member, host);
  }
}

void AccessSanitizer::record_witness(TaskId task, WitnessLog&& log) {
  if (log.empty()) return;
  versa::LockGuard lock(state_mutex_);
  WitnessLog& slot = witnesses_[task];
  if (slot.empty()) {
    slot = std::move(log);
  } else {
    slot.insert(slot.end(), log.begin(), log.end());
  }
}

void AccessSanitizer::add_violation(Violation v) {
  switch (v.kind) {
    case ViolationKind::kRace:
      ++stats_.races;
      break;
    case ViolationKind::kOutOfSpec:
      ++stats_.out_of_spec;
      break;
    case ViolationKind::kOverDeclaration:
      ++stats_.over_declaration;
      break;
  }
  if (violations_.size() >= config_.max_violations) {
    ++stats_.dropped;
    return;
  }
  violations_.push_back(v);
}

void AccessSanitizer::on_task_complete(const Task& task) {
  // Shells and fuse stubs retire through finish_stub, never through the
  // completion port; skip defensively if one ever shows up.
  if (task.split_children > 0 || task.fused_into != kInvalidTask) return;

  // Pull this task's witness log (never holding the state mutex across
  // the shadow walk below — rank 15 must not sit under ranks 11/12).
  WitnessLog witness;
  {
    versa::LockGuard lock(state_mutex_);
    ++stats_.tasks_checked;
    const auto it = witnesses_.find(task.id);
    if (it != witnesses_.end()) {
      witness = std::move(it->second);
      witnesses_.erase(it);
      ++stats_.tasks_witnessed;
    }
  }

  // --- conformance (spec + race modes): witness vs declaration ----------
  // Per region: the byte sets the clauses allow for reading/writing, and
  // the byte sets the body witnessed.
  std::vector<Violation> conformance;
  std::map<RegionId, Ranges> decl_read;
  std::map<RegionId, Ranges> decl_write;
  std::map<RegionId, Ranges> decl_all;
  for (const Access& access : task.accesses) {
    const Range r{access.offset, access.offset + access.length};
    if (reads(access.mode)) decl_read[access.region].push_back(r);
    if (writes(access.mode)) decl_write[access.region].push_back(r);
    decl_all[access.region].push_back(r);
  }
  for (auto& [region, ranges] : decl_read) normalize(ranges);
  for (auto& [region, ranges] : decl_write) normalize(ranges);
  for (auto& [region, ranges] : decl_all) normalize(ranges);

  /// Out-of-spec witness ranges per region, by direction — also the extra
  /// spans race mode must shadow (an under-declared access is unordered
  /// precisely because the analyzer never saw it).
  std::map<RegionId, Ranges> rogue_read;
  std::map<RegionId, Ranges> rogue_write;
  if (!witness.empty()) {
    std::map<RegionId, Ranges> wit_read;
    std::map<RegionId, Ranges> wit_write;
    std::map<RegionId, Ranges> wit_all;
    for (const WitnessSpan& span : witness) {
      const Range r{span.offset, span.offset + span.length};
      if (reads(span.mode)) wit_read[span.region].push_back(r);
      if (writes(span.mode)) wit_write[span.region].push_back(r);
      wit_all[span.region].push_back(r);
    }
    auto flag_rogue = [&](std::map<RegionId, Ranges>& witnessed,
                          std::map<RegionId, Ranges>& declared,
                          std::map<RegionId, Ranges>& rogue, AccessMode mode) {
      for (auto& [region, ranges] : witnessed) {
        normalize(ranges);
        const auto decl = declared.find(region);
        Ranges extra = decl == declared.end() ? ranges
                                              : subtract(ranges, decl->second);
        for (const Range& r : extra) {
          Violation v;
          v.kind = ViolationKind::kOutOfSpec;
          v.task_a = task.id;
          v.type_a = task.type;
          v.region = region;
          v.begin = r.first;
          v.end = r.second;
          v.mode_a = mode;
          v.mode_b = mode;
          v.bytes = r.second - r.first;
          conformance.push_back(v);
        }
        if (!extra.empty()) {
          Ranges& sink = rogue[region];
          sink.insert(sink.end(), extra.begin(), extra.end());
          normalize(sink);
        }
      }
    };
    flag_rogue(wit_read, decl_read, rogue_read, AccessMode::kIn);
    flag_rogue(wit_write, decl_write, rogue_write, AccessMode::kOut);

    // Over-declaration: declared bytes the body never touched in any
    // direction. Attributed as wasted transfer bytes — the copy_deps
    // machinery moved (or would move) them for nothing.
    for (auto& [region, declared] : decl_all) {
      const auto wit = wit_all.find(region);
      Ranges untouched = declared;
      if (wit != wit_all.end()) {
        normalize(wit->second);
        untouched = subtract(declared, wit->second);
      }
      for (const Range& r : untouched) {
        Violation v;
        v.kind = ViolationKind::kOverDeclaration;
        v.task_a = task.id;
        v.type_a = task.type;
        v.region = region;
        v.begin = r.first;
        v.end = r.second;
        v.mode_a = AccessMode::kIn;
        v.mode_b = AccessMode::kIn;
        v.bytes = r.second - r.first;
        conformance.push_back(v);
      }
    }
  }

  // --- determinacy races (race mode): shadow the touched bytes ----------
  struct TaggedConflict {
    ShadowConflict conflict;
    RegionId region;
    AccessMode mode;  ///< the completing task's access mode
  };
  std::vector<TaggedConflict> tagged;
  if (config_.mode == SanitizeMode::kRace) {
    const OrderedFn ordered = [this](TaskId a, TaskId b) {
      return clocks_.ordered(a, b);
    };
    std::vector<ShadowConflict> conflicts;
    auto shadow_span = [&](RegionId region, AccessMode mode,
                           std::uint64_t offset, std::uint64_t length) {
      conflicts.clear();
      shadow_.record(region, task.id, mode, offset, length, ordered,
                     conflicts);
      for (const ShadowConflict& c : conflicts) {
        tagged.push_back(TaggedConflict{c, region, mode});
      }
    };
    for (const Access& access : task.accesses) {
      shadow_span(access.region, access.mode, access.offset, access.length);
    }
    for (const auto& [region, ranges] : rogue_read) {
      for (const Range& r : ranges) {
        shadow_span(region, AccessMode::kIn, r.first, r.second - r.first);
      }
    }
    for (const auto& [region, ranges] : rogue_write) {
      for (const Range& r : ranges) {
        shadow_span(region, AccessMode::kOut, r.first, r.second - r.first);
      }
    }
  }

  // --- fold results into the report --------------------------------------
  versa::LockGuard lock(state_mutex_);
  for (Violation& v : conformance) {
    if (v.kind == ViolationKind::kOverDeclaration) {
      stats_.wasted_transfer_bytes += v.bytes;
    }
    add_violation(v);
  }
  for (const TaggedConflict& t : tagged) {
    const TaskId low = std::min(t.conflict.prior, task.id);
    const TaskId high = std::max(t.conflict.prior, task.id);
    const PairKey key{low, high, t.region};
    const std::uint64_t span_bytes = t.conflict.end - t.conflict.begin;
    const auto it = race_index_.find(key);
    if (it != race_index_.end()) {
      violations_[it->second].bytes += span_bytes;
      continue;
    }
    Violation v;
    v.kind = ViolationKind::kRace;
    v.task_a = t.conflict.prior;
    const auto prior_type = types_.find(t.conflict.prior);
    v.type_a = prior_type == types_.end() ? kInvalidTaskType
                                          : prior_type->second;
    v.task_b = task.id;
    v.type_b = task.type;
    v.region = t.region;
    v.begin = t.conflict.begin;
    v.end = t.conflict.end;
    v.mode_a = t.conflict.prior_mode;
    v.mode_b = t.mode;
    v.bytes = span_bytes;
    if (violations_.size() < config_.max_violations) {
      race_index_.emplace(key, violations_.size());
    }
    add_violation(v);
  }
}

void AccessSanitizer::on_region_unregistered(RegionId region) {
  if (config_.mode == SanitizeMode::kRace) {
    shadow_.clear_region(region);
  }
}

std::vector<Violation> AccessSanitizer::violations() const {
  versa::LockGuard lock(state_mutex_);
  return violations_;
}

SanitizeStats AccessSanitizer::stats() const {
  versa::LockGuard lock(state_mutex_);
  return stats_;
}

std::uint64_t AccessSanitizer::error_count() const {
  versa::LockGuard lock(state_mutex_);
  return stats_.races + stats_.out_of_spec;
}

bool AccessSanitizer::write_csv_report(const std::string& path) const {
  versa::LockGuard lock(state_mutex_);
  return write_csv(path, violations_, stats_);
}

void AccessSanitizer::render(std::ostream& os) const {
  versa::LockGuard lock(state_mutex_);
  render_report(os, violations_, stats_);
}

}  // namespace versa::sanitize
