#include "sanitizer/task_clock.h"

#include <algorithm>

namespace versa::sanitize {

TaskId ClockTable::resolve(TaskId id) const {
  // Alias chains are depth 1 by construction (a fuse host is never itself
  // absorbed — it registers with the analyzer), but loop defensively.
  for (std::size_t hops = 0; hops < 4; ++hops) {
    const auto it = aliases_.find(id);
    if (it == aliases_.end()) return id;
    id = it->second;
  }
  return id;
}

void ClockTable::add(TaskId task, const std::vector<TaskId>& preds,
                     TaskId hb_parent) {
  versa::LockGuard lock(mutex_);
  Entry entry;

  // The clock starts as the elementwise max over all predecessor clocks,
  // with each predecessor's own (chain, pos) folded in.
  std::uint32_t best_chain = 0;
  std::uint32_t best_pos = 0;
  bool extends = false;
  auto absorb = [&](TaskId pred) {
    if (pred == kInvalidTask || pred == task) return;
    const auto it = entries_.find(resolve(pred));
    if (it == entries_.end()) return;
    const Entry& pe = it->second;
    if (entry.knows.size() < pe.knows.size()) {
      entry.knows.resize(pe.knows.size(), 0);
    }
    for (std::size_t c = 0; c < pe.knows.size(); ++c) {
      entry.knows[c] = std::max(entry.knows[c], pe.knows[c]);
    }
    if (entry.knows.size() <= pe.chain) entry.knows.resize(pe.chain + 1, 0);
    entry.knows[pe.chain] = std::max(entry.knows[pe.chain], pe.pos + 1);
    // Chain rule: extend a predecessor that is still its chain's tail.
    if (chain_tails_[pe.chain] == resolve(pred) &&
        (!extends || pe.pos + 1 > best_pos)) {
      extends = true;
      best_chain = pe.chain;
      best_pos = pe.pos + 1;
    }
  };
  for (const TaskId pred : preds) absorb(pred);
  absorb(hb_parent);

  if (extends) {
    entry.chain = best_chain;
    entry.pos = best_pos;
  } else {
    entry.chain = static_cast<std::uint32_t>(chain_tails_.size());
    entry.pos = 0;
    chain_tails_.push_back(kInvalidTask);
  }
  chain_tails_[entry.chain] = task;
  if (entry.knows.size() <= entry.chain) entry.knows.resize(entry.chain + 1, 0);
  entry.knows[entry.chain] = std::max(entry.knows[entry.chain], entry.pos + 1);
  entries_[task] = std::move(entry);
}

void ClockTable::alias(TaskId member, TaskId host) {
  versa::LockGuard lock(mutex_);
  if (member != host) aliases_[member] = host;
}

bool ClockTable::hb(const Entry& a, const Entry& b) const {
  return a.chain < b.knows.size() && b.knows[a.chain] >= a.pos + 1;
}

bool ClockTable::ordered(TaskId a, TaskId b) const {
  versa::LockGuard lock(mutex_);
  const TaskId ra = resolve(a);
  const TaskId rb = resolve(b);
  if (ra == rb) return true;
  const auto ia = entries_.find(ra);
  const auto ib = entries_.find(rb);
  if (ia == entries_.end() || ib == entries_.end()) return false;
  return hb(ia->second, ib->second) || hb(ib->second, ia->second);
}

std::size_t ClockTable::chain_count() const {
  versa::LockGuard lock(mutex_);
  return chain_tails_.size();
}

std::size_t ClockTable::task_count() const {
  versa::LockGuard lock(mutex_);
  return entries_.size();
}

}  // namespace versa::sanitize
