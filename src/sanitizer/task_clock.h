// Happens-before clocks over the task graph (DESIGN.md §12).
//
// The sanitizer needs `ordered(a, b)` — is there a dependence path between
// two tasks? — for every pair the shadow map finds touching the same
// bytes. Full vector clocks over tasks would cost O(tasks) per task; this
// table uses the standard chain-decomposition compression instead: every
// task is appended to a *chain* (it extends the chain of one predecessor
// that is still that chain's tail, or starts a new chain), and its clock
// stores, per chain, the highest position it is ordered after. Chains
// number at most the graph's width (the largest antichain), so clocks are
// O(width) and a happens-before query is one array lookup:
//
//   hb(a, b)  ⟺  clock(b).knows[chain(a)] covers pos(a)
//
// Edges come from the dependence analyzer (RAW/WAR/WAW predecessors,
// including the byte-exact edges of split children) plus one lineage edge
// per nested submission (parent → child; the symmetric ordered() check
// also covers the child-completes-before-parent's-post-taskwait-reads
// direction — see §12 on why parent/child pairs are never reported).
// Fuse hosts register with the window's combined accesses; absorbed
// members alias to their host so lineage queries resolve somewhere real.
//
// Thread-safety: one internal mutex of class sanitizer.clock (rank 12).
// Callers hold the runtime lock (10) or a shadow shard (11); both nest.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "util/annotated_sync.h"
#include "util/lock_order.h"

namespace versa::sanitize {

class ClockTable {
 public:
  ClockTable() : mutex_(lock_order::kLockRankSanitizerClock) {}

  /// Register `task` with happens-before edges from every task in `preds`
  /// plus `hb_parent` (pass kInvalidTask for master-thread submissions).
  /// Predecessors must already be registered; unknown ids are skipped.
  void add(TaskId task, const std::vector<TaskId>& preds, TaskId hb_parent);

  /// Record that `member` was absorbed into `host` by a fuse window:
  /// queries against `member` resolve to `host`'s clock.
  void alias(TaskId member, TaskId host);

  /// True iff a dependence path orders the pair (either direction).
  /// Unregistered ids are reported unordered — the sanitizer only queries
  /// tasks it registered, so an unknown id is itself a bug to surface.
  bool ordered(TaskId a, TaskId b) const;

  std::size_t chain_count() const;
  std::size_t task_count() const;

 private:
  struct Entry {
    std::uint32_t chain = 0;
    std::uint32_t pos = 0;
    /// knows[c] = 1 + highest position in chain c this task is ordered
    /// after (0 = none). Sized lazily; missing tail entries mean 0.
    std::vector<std::uint32_t> knows;
  };

  TaskId resolve(TaskId id) const VERSA_REQUIRES(mutex_);
  bool hb(const Entry& a, const Entry& b) const;

  mutable versa::Mutex mutex_;
  std::unordered_map<TaskId, Entry> entries_ VERSA_GUARDED_BY(mutex_);
  std::unordered_map<TaskId, TaskId> aliases_ VERSA_GUARDED_BY(mutex_);
  std::vector<TaskId> chain_tails_ VERSA_GUARDED_BY(mutex_);
};

}  // namespace versa::sanitize
