#include "sched/fifo_scheduler.h"

#include "common/check.h"

namespace versa {

void FifoScheduler::attach(SchedulerContext& ctx) {
  Scheduler::attach(ctx);
  ready_.clear();
}

void FifoScheduler::task_ready(Task& task) {
  VERSA_CHECK(task.state == TaskState::kReady);
  // Priority insertion (stable): overtake strictly lower priorities.
  auto it = ready_.end();
  while (it != ready_.begin() &&
         ctx_->graph().task(*(it - 1)).priority < task.priority) {
    --it;
  }
  ready_.insert(it, task.id);
}

TaskId FifoScheduler::pop_task(WorkerId worker) {
  const DeviceKind kind = ctx_->machine().worker(worker).kind;
  std::uint32_t scanned = 0;
  for (auto it = ready_.begin(); it != ready_.end(); ++it) {
    Task& task = ctx_->graph().task(*it);
    const TaskVersion& main = main_version_of(task);
    ++scanned;
    if (main.device != kind) continue;
    const TaskId id = *it;
    ready_.erase(it);
    task.chosen_version = main.id;
    task.assigned_worker = worker;
    task.state = TaskState::kQueued;
    if (trace_.enabled()) {
      trace_.record(core::TraceEvent{ctx_->now(), id, task.type, main.id,
                                     worker, 0.0, 0.0, 0.0, scanned,
                                     core::TraceEventKind::kPlacement,
                                     task.tenant});
    }
    return id;
  }
  return kInvalidTask;
}

bool FifoScheduler::has_pending() const { return !ready_.empty(); }

}  // namespace versa
