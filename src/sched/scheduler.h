// Scheduler plugin interface, mirroring the Nanos++ scheduling-policy
// plugin design the paper builds on: policies are selected by name at
// runtime (configuration argument / environment variable), and the rest of
// the runtime is policy-agnostic.
//
// Contract with the runtime:
//  * task_ready(t)        — t's dependences are satisfied; the policy must
//                           eventually make it poppable by some worker.
//  * pop_task(w)          — worker w is idle and asks for work.
//  * task_completed(t,w,d)— t finished on w with measured duration d;
//                           called before the successors' task_ready.
// All calls arrive under the runtime lock; policies need no internal
// synchronization.
#pragma once

#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "data/directory.h"
#include "machine/machine.h"
#include "sched/core/decision_trace.h"
#include "sched/core/load_account.h"
#include "task/task.h"
#include "task/task_graph.h"
#include "task/version_registry.h"

namespace versa {

/// Runtime services a policy may use.
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;
  virtual const Machine& machine() const = 0;
  virtual const VersionRegistry& registry() const = 0;
  virtual DataDirectory& directory() = 0;
  virtual TaskGraph& graph() = 0;
  virtual Time now() const = 0;
  /// Tell the executor a task landed on `worker`'s queue (prefetch hook;
  /// the executor may start the task's copies immediately).
  virtual void task_assigned(TaskId task, WorkerId worker) = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  /// Called once before any task flows through the policy.
  virtual void attach(SchedulerContext& ctx);

  virtual void task_ready(Task& task) = 0;

  /// Called once after each wave of task_ready calls (one submission, or
  /// the successors released by one completion). Batch-mapping policies
  /// (sufferage) decide here; per-task policies ignore it.
  virtual void ready_batch_done() {}

  /// Next task for an idle worker, or kInvalidTask.
  virtual TaskId pop_task(WorkerId worker) = 0;

  virtual void task_completed(Task& task, WorkerId worker, Duration measured);

  /// A dispatched task failed transiently on `worker` and will be made
  /// ready again. Policies must release any per-worker accounting; they
  /// must NOT record the wasted time as a measurement.
  virtual void task_failed(Task& task, WorkerId worker);

  /// Estimated seconds of queued + running work on `worker` (0 when the
  /// policy does not track it).
  virtual Duration estimated_busy(WorkerId worker) const;

  /// True if some ready task has not been handed to a worker yet.
  virtual bool has_pending() const = 0;

  /// Decision-trace ring shared by every policy: disabled (and free) by
  /// default; the runtime enables it on --sched-trace / VERSA_SCHED_TRACE
  /// and src/perf/sched_trace.h renders it after the run.
  core::DecisionTrace& decision_trace() { return trace_; }
  const core::DecisionTrace& decision_trace() const { return trace_; }

 protected:
  SchedulerContext* ctx_ = nullptr;
  core::DecisionTrace trace_;

  /// Main-version helpers shared by the baseline policies (which, per the
  /// paper, ignore `implements` and only ever run the main version).
  const TaskVersion& main_version_of(const Task& task) const;

  /// Workers whose device kind can run `version`.
  std::vector<WorkerId> compatible_workers(const TaskVersion& version) const;
};

/// Placement context threaded into the load account and the decision
/// trace by QueueScheduler::push_to_worker.
struct PushInfo {
  Duration estimate = 0.0;       ///< execution-time charge for the account
  Duration penalty = 0.0;        ///< extra placement cost (locality)
  std::uint32_t candidates = 0;  ///< (version, worker) pairs evaluated
  bool learning = false;         ///< forced-sampling placement
};

/// Shared per-worker FIFO queue machinery for push-style policies.
class QueueScheduler : public Scheduler {
 public:
  void attach(SchedulerContext& ctx) override;
  TaskId pop_task(WorkerId worker) override;
  bool has_pending() const override;

  /// Queue length of a worker (tie-breaking and tests).
  std::size_t queue_length(WorkerId worker) const;

  /// The tasks queued on a worker, head first (busy-time estimation).
  const std::deque<TaskId>& queue(WorkerId worker) const;

  /// Estimated seconds of queued + running work, maintained incrementally
  /// by the load account (exact zero for policies that charge no
  /// estimates, matching the historical behaviour).
  Duration estimated_busy(WorkerId worker) const override;

  void task_completed(Task& task, WorkerId worker, Duration measured) override;
  void task_failed(Task& task, WorkerId worker) override;

 protected:
  /// Assign `task` to `worker` running `version`: charges the account,
  /// records the trace event, freezes the applied charge into
  /// task.scheduler_estimate, queues with priority insertion, and fires
  /// the prefetch hook.
  void push_to_worker(Task& task, VersionId version, WorkerId worker,
                      const PushInfo& info = PushInfo());

  /// Size-group component of the account price key for `task` (policies
  /// with profile tables override this with their grouping policy).
  virtual std::uint64_t price_group(const Task& task) const;

  /// Enable same-device-kind work stealing on empty pops.
  void set_stealing(bool enabled) { stealing_ = enabled; }

  /// Least-loaded worker among `candidates` (by queue length, then id).
  WorkerId least_loaded(const std::vector<WorkerId>& candidates) const;

  /// Incremental busy accounting + per-kind finish-time index.
  core::LoadAccount account_;

 private:
  std::vector<std::deque<TaskId>> queues_;
  std::size_t pending_ = 0;
  bool stealing_ = false;

  TaskId steal_for(WorkerId thief);
};

}  // namespace versa
