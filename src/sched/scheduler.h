// Scheduler plugin interface, mirroring the Nanos++ scheduling-policy
// plugin design the paper builds on: policies are selected by name at
// runtime (configuration argument / environment variable), and the rest of
// the runtime is policy-agnostic.
//
// Contract with the runtime:
//  * task_ready(t)        — t's dependences are satisfied; the policy must
//                           eventually make it poppable by some worker.
//  * pop_task(w)          — worker w is idle and asks for work.
//  * task_completed(t,w,d)— t finished on w with measured duration d;
//                           called before the successors' task_ready.
// These calls arrive under the runtime lock; policy-*decision* state
// (pools, cursors, profile tables) therefore needs no locking of its own.
//
// The exception, since the ThreadExecutor lock split, is the dequeue fast
// path: try_pop_queued(w) may be called by a worker thread WITHOUT the
// runtime lock. QueueScheduler implements it over the sharded WorkerQueues
// (per-worker queue mutexes) and the account mutex, so popping and
// stealing already-placed work never serializes on the runtime lock; the
// base implementation returns kInvalidTask, which makes executors fall
// back to pop_task under the runtime lock. Lock classes and ranking are
// documented in DESIGN.md §9.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/directory.h"
#include "machine/machine.h"
#include "sched/core/decision_trace.h"
#include "sched/core/load_account.h"
#include "sched/core/worker_queues.h"
#include "task/task.h"
#include "task/task_graph.h"
#include "task/version_registry.h"
#include "util/annotated_sync.h"

namespace versa {

/// Runtime services a policy may use. All of them are runtime-lock
/// serialized (policies call them from under the runtime lock).
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;
  virtual const Machine& machine() const = 0;
  virtual const VersionRegistry& registry() const = 0;
  virtual DataDirectory& directory() = 0;
  virtual TaskGraph& graph() = 0;
  virtual Time now() const = 0;
  /// Tell the executor a task landed on `worker`'s queue (prefetch hook;
  /// the executor may start the task's copies immediately).
  virtual void task_assigned(TaskId task, WorkerId worker) = 0;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual const char* name() const = 0;

  /// Called once before any task flows through the policy.
  virtual void attach(SchedulerContext& ctx);

  virtual void task_ready(Task& task) = 0;

  /// Called once before each wave of task_ready calls (one submission, or
  /// the successors released by one completion). Queue-backed policies
  /// open a staging window here so the whole batch is appended to each
  /// shard's submission buffer in one mutex round trip (ready_batch_done).
  virtual void ready_batch_begin() {}

  /// Called once after each wave of task_ready calls (one submission, or
  /// the successors released by one completion). Batch-mapping policies
  /// (sufferage) decide here; per-task policies ignore it.
  virtual void ready_batch_done() {}

  /// Next task for an idle worker, or kInvalidTask. Runtime lock held.
  virtual TaskId pop_task(WorkerId worker) = 0;

  /// Lock-split fast path: dequeue work already placed on a worker queue
  /// (own queue first, then steals) WITHOUT the runtime lock. Policies
  /// with no such path return kInvalidTask and the executor falls back to
  /// pop_task under the runtime lock. Must not touch the task graph.
  virtual TaskId try_pop_queued(WorkerId worker);

  virtual void task_completed(Task& task, WorkerId worker, Duration measured);

  /// A dispatched task failed transiently on `worker` and will be made
  /// ready again. Policies must release any per-worker accounting; they
  /// must NOT record the wasted time as a measurement.
  virtual void task_failed(Task& task, WorkerId worker);

  /// Estimated seconds of queued + running work on `worker` (0 when the
  /// policy does not track it).
  virtual Duration estimated_busy(WorkerId worker) const;

  /// True if some ready task has not been handed to a worker yet.
  virtual bool has_pending() const = 0;

  /// Decision-trace ring shared by every policy: disabled (and free) by
  /// default; the runtime enables it on --sched-trace / VERSA_SCHED_TRACE
  /// and src/perf/sched_trace.h renders it after the run. Internally
  /// synchronized (lock class kLockRankTrace) — steals record events from
  /// worker threads outside the runtime lock.
  core::DecisionTrace& decision_trace() { return trace_; }
  const core::DecisionTrace& decision_trace() const { return trace_; }

 protected:
  SchedulerContext* ctx_ = nullptr;
  core::DecisionTrace trace_;

  /// Main-version helpers shared by the baseline policies (which, per the
  /// paper, ignore `implements` and only ever run the main version).
  const TaskVersion& main_version_of(const Task& task) const;

  /// Workers whose device kind can run `version`.
  std::vector<WorkerId> compatible_workers(const TaskVersion& version) const;
};

/// Placement context threaded into the load account and the decision
/// trace by QueueScheduler::push_to_worker.
struct PushInfo {
  Duration estimate = 0.0;       ///< execution-time charge for the account
  Duration penalty = 0.0;        ///< extra placement cost (locality)
  std::uint32_t candidates = 0;  ///< (version, worker) pairs evaluated
  bool learning = false;         ///< forced-sampling placement
};

/// Shared per-worker FIFO queue machinery for push-style policies.
///
/// Lock split (DESIGN.md §9): already-placed work lives in the sharded
/// WorkerQueues (one kLockRankQueue mutex per worker), busy accounting and
/// the finish-time index live in account_ under the kLockRankAccount
/// mutex, and the pending counter is atomic — so try_pop_queued (pop +
/// steal) runs without the runtime lock. Placement *decisions*
/// (task_ready and subclass policy state) still arrive under the runtime
/// lock, which orders them against the task graph.
///
/// Producer-side split (PR 4): push_to_worker appends the placement to the
/// shard's submission buffer (kLockRankSubmit) instead of the shard deque,
/// and completion-driven re-prices are *deferred* into a per-round dirty
/// set keyed by PriceKey — flushed all at once at round boundaries
/// (ready_batch_done) and before any price-reading walk, and flushed per
/// key on the pop/steal paths so the running-slot charge always matches
/// the live profile mean. A burst of completions therefore issues at most
/// one LoadAccount::reprice per distinct key per round, and neither
/// submission nor completion serializes shard work on the runtime lock.
///
/// PR 5 batches the buffer appends themselves: ready_batch_begin opens a
/// WorkerQueues staging window, placements accumulate in producer-private
/// per-worker runs, and ready_batch_done publishes each non-empty run
/// with ONE submit-mutex acquisition — one round trip per worker per
/// ready batch instead of one per task (buffer_push_batches() counts the
/// appended runs).
class QueueScheduler : public Scheduler {
 public:
  void attach(SchedulerContext& ctx) override;
  TaskId pop_task(WorkerId worker) override;
  TaskId try_pop_queued(WorkerId worker) override;
  void ready_batch_begin() override;
  void ready_batch_done() override;
  bool has_pending() const override;

  /// Deferred-reprice observability (tests, trace_report): how many
  /// re-price requests arrived (one per profile-mean move) vs how many
  /// LoadAccount::reprice calls were actually issued. flushes <= requests
  /// always; strictly smaller when a completion burst coalesced.
  std::uint64_t reprice_requests() const;
  std::uint64_t reprice_flushes() const;

  /// Batched-submission observability (tests, trace_report): how many
  /// per-shard runs end_batch appended. Each non-empty run is one submit
  /// mutex acquisition, however many tasks the batch placed on that
  /// worker — so batches > 0 with batches < tasks placed proves the
  /// per-task round trips were coalesced.
  std::uint64_t buffer_push_batches() const;

  /// Queue length of a worker (tie-breaking and tests). Lock-free read of
  /// the shard's atomic length mirror.
  std::size_t queue_length(WorkerId worker) const;

  /// Snapshot of the task ids queued on a worker, head first (busy-time
  /// rescan cross-checks and tests). Replaces the old by-reference
  /// queue() accessor, which could not survive concurrent shard access.
  std::vector<TaskId> queued_tasks(WorkerId worker) const;

  /// Estimated seconds of queued + running work, maintained incrementally
  /// by the load account (exact zero for policies that charge no
  /// estimates, matching the historical behaviour).
  Duration estimated_busy(WorkerId worker) const override;

  void task_completed(Task& task, WorkerId worker, Duration measured) override;
  void task_failed(Task& task, WorkerId worker) override;

 protected:
  /// Assign `task` to `worker` running `version`: charges the account,
  /// records the trace event, freezes the applied charge into
  /// task.scheduler_estimate, appends to the worker's submission buffer,
  /// and fires the prefetch hook. Runtime lock held (mutates the task);
  /// the shard queue mutex is NOT taken — the entry is published by the
  /// next drain (round boundary, or the owner/thief before dequeuing).
  void push_to_worker(Task& task, VersionId version, WorkerId worker,
                      const PushInfo& info = PushInfo());

  /// Record that the profile mean of `key` moved (nullopt = forgotten).
  /// The actual LoadAccount::reprice is deferred: coalesced per key until
  /// the next flush. Safe from any thread (takes the account lock).
  void defer_reprice(const core::PriceKey& key, std::optional<Duration> mean);

  /// Apply every deferred re-price. Called at round boundaries and at the
  /// top of any account critical section that reads prices or busy sums
  /// for a decision, so decisions always see fully re-priced state.
  void flush_deferred_reprices() const VERSA_REQUIRES(account_mutex_);

  /// Apply only `key`'s deferred re-price, if one is pending (pop/steal:
  /// on_pop freezes the bucket price into the running slot, so the bucket
  /// must be current for exactly this key).
  void flush_deferred_reprice(const core::PriceKey& key) const
      VERSA_REQUIRES(account_mutex_);

  /// Size-group component of the account price key for `task` (policies
  /// with profile tables override this with their grouping policy).
  virtual std::uint64_t price_group(const Task& task) const;

  /// Enable same-device-kind work stealing on empty pops. Policies set
  /// this at construction, before any worker thread exists.
  void set_stealing(bool enabled) { stealing_ = enabled; }

  /// Least-loaded worker among `candidates` (by queue length, then id).
  WorkerId least_loaded(const std::vector<WorkerId>& candidates) const;

  /// Guards account_: the incremental busy accounting and its per-kind
  /// finish-time index. Acquired after the runtime lock and never while a
  /// queue shard is held (rank 20, between runtime and queue shards).
  mutable versa::Mutex account_mutex_{lock_order::kLockRankAccount};

  /// Incremental busy accounting + per-kind finish-time index. Mutable
  /// (with the pending-reprice set) so const readers like estimated_busy
  /// can flush deferred re-prices before reading.
  mutable core::LoadAccount account_ VERSA_GUARDED_BY(account_mutex_);

 private:
  core::WorkerQueues queues_;
  std::atomic<std::size_t> pending_{0};
  bool stealing_ = false;

  /// Dirty price keys of the current round: key -> latest mean observed
  /// (nullopt = forgotten). Insertions coalesce; a flush drains it.
  mutable std::unordered_map<core::PriceKey, std::optional<Duration>,
                             core::PriceKeyHash>
      pending_reprices_ VERSA_GUARDED_BY(account_mutex_);
  mutable std::uint64_t reprice_requests_ VERSA_GUARDED_BY(account_mutex_) = 0;
  mutable std::uint64_t reprice_flushes_ VERSA_GUARDED_BY(account_mutex_) = 0;

  TaskId steal_for(WorkerId thief);
};

}  // namespace versa
