#include "sched/affinity_scheduler.h"

#include "common/check.h"

namespace versa {

AffinityScheduler::AffinityScheduler() { set_stealing(true); }

void AffinityScheduler::task_ready(Task& task) {
  const TaskVersion& main = main_version_of(task);
  const std::vector<WorkerId> candidates = compatible_workers(main);
  VERSA_CHECK_MSG(!candidates.empty(), "no compatible worker for task");

  // The candidate scan reads directory residency, which worker-thread
  // prefetch acquires can move mid-scan (the directory is off the runtime
  // lock). Re-validate against the per-shard epochs of exactly the shards
  // this task's accesses touch (shard_epoch) with one bounded retry, so
  // the committed placement priced a residency state that actually
  // existed during the scan — and acquires over *other* shards no longer
  // force the re-price. Under the sim backend the epochs never move here,
  // so the loop runs once and the figures stay deterministic.
  const std::uint64_t shard_mask = DataDirectory::shard_mask(task.accesses);
  WorkerId best = kInvalidWorker;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const std::uint64_t epoch_before =
        ctx_->directory().shard_epoch(shard_mask);
    best = kInvalidWorker;
    std::uint64_t best_missing = 0;
    std::size_t best_queue = 0;
    for (WorkerId w : candidates) {
      const SpaceId space = ctx_->machine().worker(w).space;
      const std::uint64_t missing =
          ctx_->directory().bytes_missing(task.accesses, space);
      const std::size_t queue = queue_length(w);
      if (best == kInvalidWorker || missing < best_missing ||
          (missing == best_missing && queue < best_queue)) {
        best = w;
        best_missing = missing;
        best_queue = queue;
      }
    }
    if (ctx_->directory().shard_epoch(shard_mask) == epoch_before) break;
  }
  PushInfo info;
  info.candidates = static_cast<std::uint32_t>(candidates.size());
  push_to_worker(task, main.id, best, info);
}

}  // namespace versa
