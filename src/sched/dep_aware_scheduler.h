// Dependency-aware scheduler (paper §V-A): follows task dependency chains,
// scheduling consecutive tasks of a chain to the worker that produced their
// input. "Its decisions are fast, but in some cases cannot fully exploit
// data locality." Main implementation only.
#pragma once

#include "sched/scheduler.h"

namespace versa {

class DepAwareScheduler final : public QueueScheduler {
 public:
  DepAwareScheduler();
  const char* name() const override { return "dep-aware"; }
  void task_ready(Task& task) override;
  void task_completed(Task& task, WorkerId worker, Duration measured) override;

 private:
  /// Worker of the completion that released the tasks currently flowing
  /// through task_ready (the chain head). kInvalidWorker outside that
  /// window — e.g. for initial tasks with no predecessors.
  WorkerId releasing_worker_ = kInvalidWorker;
};

}  // namespace versa
