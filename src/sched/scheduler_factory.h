// Scheduler plugin factory. Mirrors the Nanos++ plugin mechanism the paper
// leans on: the policy is chosen by name at runtime (configuration or the
// VERSA_SCHEDULER environment variable) with no recompilation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/profile_table.h"
#include "sched/scheduler.h"

namespace versa {

/// Create a scheduler by name: "fifo", "dep-aware", "affinity",
/// "versioning", "versioning-locality". Returns nullptr for unknown names.
/// `profile_config` parameterizes the versioning policies (λ, mean kind,
/// size grouping) and is ignored by the baselines.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const ProfileConfig& profile_config = {});

/// Names accepted by make_scheduler.
std::vector<std::string> scheduler_names();

}  // namespace versa
