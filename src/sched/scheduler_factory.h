// Scheduler plugin factory. Mirrors the Nanos++ plugin mechanism the paper
// leans on: the policy is chosen by name at runtime (configuration or the
// VERSA_SCHEDULER environment variable) with no recompilation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/profile_table.h"
#include "sched/scheduler.h"

namespace versa {

/// Create a scheduler by name: "fifo", "dep-aware", "affinity",
/// "versioning", "versioning-locality". Returns nullptr for unknown names.
/// `profile_config` parameterizes the versioning policies (λ, mean kind,
/// size grouping) and is ignored by the baselines.
std::unique_ptr<Scheduler> make_scheduler(const std::string& name,
                                          const ProfileConfig& profile_config = {});

/// Canonical policy names — one per distinct Scheduler::name(). Iterated
/// by the benches/examples that sweep "every policy".
std::vector<std::string> scheduler_names();

/// Every name make_scheduler accepts, including configuration variants
/// that report another policy's name() ("versioning-fastest"). This is
/// the list a CLI should print for an unknown --sched value.
std::vector<std::string> scheduler_factory_names();

}  // namespace versa
