#include "sched/xml_hints.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "common/log.h"
#include "common/string_util.h"

namespace versa {
namespace {

/// Minimal XML subset tokenizer: yields element-open (with attributes),
/// element-close, and self-closing events. Text content, comments and
/// declarations are skipped. Attribute values must be double-quoted.
class XmlReader {
 public:
  explicit XmlReader(std::string_view text) : text_(text) {}

  struct Element {
    std::string name;
    std::map<std::string, std::string> attributes;
    bool self_closing = false;
    bool closing = false;  ///< </name>
  };

  /// Next element event; nullopt at end. ok() turns false on error.
  std::optional<Element> next() {
    while (true) {
      skip_until('<');
      if (done() || !ok_) return std::nullopt;
      ++pos_;  // consume '<'
      if (peek() == '?') {  // declaration
        skip_past("?>");
        continue;
      }
      if (starts_with(text_.substr(pos_), "!--")) {  // comment
        skip_past("-->");
        continue;
      }
      Element element;
      if (peek() == '/') {
        ++pos_;
        element.closing = true;
      }
      element.name = read_name();
      if (element.name.empty()) return fail("expected element name");
      skip_spaces();
      while (ok_ && !done() && peek() != '>' && peek() != '/') {
        const std::string key = read_name();
        if (key.empty()) return fail("expected attribute name");
        skip_spaces();
        if (done() || peek() != '=') return fail("expected '='");
        ++pos_;
        skip_spaces();
        if (done() || peek() != '"') return fail("expected '\"'");
        ++pos_;
        const std::size_t end = text_.find('"', pos_);
        if (end == std::string_view::npos) return fail("unterminated value");
        element.attributes[key] = std::string(text_.substr(pos_, end - pos_));
        pos_ = end + 1;
        skip_spaces();
      }
      if (!ok_) return std::nullopt;
      if (!done() && peek() == '/') {
        element.self_closing = true;
        ++pos_;
      }
      if (done() || peek() != '>') return fail("expected '>'");
      ++pos_;
      return element;
    }
  }

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  int line() const { return line_; }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  bool ok_ = true;
  std::string error_;

  bool done() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void advance_line_counter(char ch) {
    if (ch == '\n') ++line_;
  }

  void skip_until(char target) {
    while (!done() && text_[pos_] != target) {
      advance_line_counter(text_[pos_]);
      ++pos_;
    }
  }

  void skip_past(std::string_view marker) {
    const std::size_t found = text_.find(marker, pos_);
    if (found == std::string_view::npos) {
      ok_ = false;
      error_ = "unterminated construct";
      pos_ = text_.size();
      return;
    }
    for (std::size_t i = pos_; i < found; ++i) {
      advance_line_counter(text_[i]);
    }
    pos_ = found + marker.size();
  }

  void skip_spaces() {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance_line_counter(peek());
      ++pos_;
    }
  }

  std::string read_name() {
    const std::size_t start = pos_;
    while (!done() &&
           (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
            peek() == '-' || peek() == ':')) {
      ++pos_;
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::optional<Element> fail(const std::string& message) {
    ok_ = false;
    error_ = message + " (line " + std::to_string(line_) + ")";
    return std::nullopt;
  }
};

}  // namespace

std::string serialize_xml_hints(const VersionRegistry& registry,
                                const ProfileTable& table) {
  // Group entries per (task, group) to nest them as the schema expects.
  std::map<std::pair<TaskTypeId, std::uint64_t>,
           std::vector<ProfileTable::Entry>>
      grouped;
  for (const ProfileTable::Entry& entry : table.entries()) {
    if (entry.count == 0) continue;
    grouped[{entry.type, entry.group_key}].push_back(entry);
  }

  std::ostringstream out;
  out << "<?xml version=\"1.0\"?>\n<hints>\n";
  TaskTypeId open_task = kInvalidTaskType;
  for (const auto& [key, entries] : grouped) {
    if (key.first != open_task) {
      if (open_task != kInvalidTaskType) out << "  </task>\n";
      out << "  <task name=\"" << registry.task_name(key.first) << "\">\n";
      open_task = key.first;
    }
    out << "    <group size=\"" << key.second << "\">\n";
    for (const ProfileTable::Entry& entry : entries) {
      char line[192];
      std::snprintf(line, sizeof(line),
                    "      <version name=\"%s\" mean=\"%.9e\" count=\"%llu\"/>\n",
                    registry.version(entry.version).name.c_str(), entry.mean,
                    static_cast<unsigned long long>(entry.count));
      out << line;
    }
    out << "    </group>\n";
  }
  if (open_task != kInvalidTaskType) out << "  </task>\n";
  out << "</hints>\n";
  return out.str();
}

int parse_xml_hints(std::string_view text, const VersionRegistry& registry,
                    ProfileTable& table, std::string* error) {
  XmlReader reader(text);
  int applied = 0;
  TaskTypeId current_task = kInvalidTaskType;
  bool task_known = false;
  std::uint64_t current_group = 0;
  bool group_open = false;

  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    return -1;
  };

  while (auto element = reader.next()) {
    if (element->closing) {
      if (element->name == "task") {
        current_task = kInvalidTaskType;
        task_known = false;
      } else if (element->name == "group") {
        group_open = false;
      }
      continue;
    }
    if (element->name == "hints") continue;
    if (element->name == "task") {
      const auto name = element->attributes.find("name");
      if (name == element->attributes.end()) {
        return fail("task element without name attribute");
      }
      current_task = registry.find_task(name->second);
      task_known = current_task != kInvalidTaskType;
      if (!task_known) {
        VERSA_LOG(kWarn) << "xml hints: unknown task '" << name->second
                         << "' skipped";
      }
      continue;
    }
    if (element->name == "group") {
      const auto size = element->attributes.find("size");
      if (size == element->attributes.end()) {
        return fail("group element without size attribute");
      }
      try {
        current_group = std::stoull(size->second);
        group_open = true;
      } catch (...) {
        return fail("bad group size '" + size->second + "'");
      }
      continue;
    }
    if (element->name == "version") {
      if (!group_open) {
        return fail("version element outside a group");
      }
      const auto name = element->attributes.find("name");
      const auto mean = element->attributes.find("mean");
      const auto count = element->attributes.find("count");
      if (name == element->attributes.end() ||
          mean == element->attributes.end() ||
          count == element->attributes.end()) {
        return fail("version element missing name/mean/count");
      }
      if (!task_known) continue;  // whole task skipped
      double mean_value = 0.0;
      unsigned long long count_value = 0;
      try {
        mean_value = std::stod(mean->second);
        count_value = std::stoull(count->second);
      } catch (...) {
        return fail("bad mean/count in version element");
      }
      if (mean_value < 0.0 || count_value == 0) {
        return fail("non-positive mean/count in version element");
      }
      const VersionId version =
          registry.find_version(current_task, name->second);
      if (version == kInvalidVersion) {
        VERSA_LOG(kWarn) << "xml hints: unknown version '" << name->second
                         << "' skipped";
        continue;
      }
      const std::uint64_t primed = std::min<std::uint64_t>(
          count_value, table.config().lambda);
      table.prime(current_task, version, current_group, mean_value,
                  primed);
      ++applied;
      continue;
    }
    return fail("unexpected element <" + element->name + ">");
  }
  if (!reader.ok()) return fail(reader.error());
  return applied;
}

bool save_xml_hints(const std::string& path, const VersionRegistry& registry,
                    const ProfileTable& table) {
  std::ofstream out(path);
  if (!out) return false;
  out << serialize_xml_hints(registry, table);
  return static_cast<bool>(out);
}

int load_xml_hints(const std::string& path, const VersionRegistry& registry,
                   ProfileTable& table) {
  std::ifstream in(path);
  if (!in) return -1;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  const int applied = parse_xml_hints(buffer.str(), registry, table, &error);
  if (applied < 0) {
    VERSA_LOG(kWarn) << "xml hints: " << error;
  }
  return applied;
}

}  // namespace versa
