// XML hints files — the paper's §VII wording verbatim: "read an XML file
// with additional information about tasks versions. This file can be
// written by the user, but it could also be written by OmpSs runtime from
// a previous application's execution."
//
// Format:
//
//   <?xml version="1.0"?>
//   <hints>
//     <task name="matmul_tile">
//       <group size="25165824">
//         <version name="cublas" mean="5.2e-3" count="40"/>
//         <version name="cblas"  mean="0.31"   count="12"/>
//       </group>
//     </task>
//   </hints>
//
// The parser is a deliberately small, self-contained XML subset reader
// (elements, attributes, self-closing tags, comments, declarations) —
// enough for this schema, with line-numbered error reporting. The plain
// text format in hints_file.h remains the default; Runtime picks XML for
// paths ending in ".xml".
#pragma once

#include <string>
#include <string_view>

#include "sched/profile_table.h"
#include "task/version_registry.h"

namespace versa {

/// Serialize every profile entry as the XML schema above.
std::string serialize_xml_hints(const VersionRegistry& registry,
                                const ProfileTable& table);

/// Parse XML hints into `table`. Unknown task/version names are skipped
/// with a warning; malformed XML returns -1 (with the reason in *error if
/// provided). Returns the number of entries applied.
int parse_xml_hints(std::string_view text, const VersionRegistry& registry,
                    ProfileTable& table, std::string* error = nullptr);

/// File wrappers, mirroring hints_file.h.
bool save_xml_hints(const std::string& path, const VersionRegistry& registry,
                    const ProfileTable& table);
int load_xml_hints(const std::string& path, const VersionRegistry& registry,
                   ProfileTable& table);

}  // namespace versa
